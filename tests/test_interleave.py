"""Unit tests for channel interleaving (repro.memsys.interleave)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.address import DEFAULT_GEOMETRY, Geometry
from repro.errors import AddressError
from repro.memsys.interleave import Interleaver


class TestChunkMapping:
    def setup_method(self):
        self.il = Interleaver(DEFAULT_GEOMETRY, num_channels=16)

    def test_consecutive_chunks_hit_consecutive_channels(self):
        channels = [self.il.device_chunk_location(0, c)[0] for c in range(16)]
        assert channels == list(range(16))

    def test_frames_rotate_start_channel(self):
        """Frame 1 (with 16 chunks over 16 channels) starts where frame 0
        ended - continuous round-robin, no partition camping."""
        ch_frame0_chunk0 = self.il.device_chunk_location(0, 0)[0]
        ch_frame1_chunk0 = self.il.device_chunk_location(1, 0)[0]
        # 16 chunks per page over 16 channels: wraps to the same channel but
        # a different local slot.
        assert ch_frame0_chunk0 == ch_frame1_chunk0
        assert (
            self.il.device_chunk_location(0, 0)[1]
            != self.il.device_chunk_location(1, 0)[1]
        )

    def test_page_covers_all_channels(self):
        assert self.il.channels_per_page == 16
        assert len(self.il.channels_of_page(0)) == 16

    def test_fewer_channels_than_chunks(self):
        il = Interleaver(DEFAULT_GEOMETRY, num_channels=8)
        assert il.channels_per_page == 8
        # Each channel holds exactly two of the page's chunks.
        from collections import Counter
        counts = Counter(il.device_chunk_location(0, c)[0] for c in range(16))
        assert all(v == 2 for v in counts.values())

    def test_bounds(self):
        with pytest.raises(AddressError):
            self.il.device_chunk_location(-1, 0)
        with pytest.raises(AddressError):
            self.il.device_chunk_location(0, 16)
        with pytest.raises(AddressError):
            Interleaver(DEFAULT_GEOMETRY, num_channels=0)


class TestSectorMapping:
    def setup_method(self):
        self.il = Interleaver(DEFAULT_GEOMETRY, num_channels=16)

    def test_sectors_of_chunk_share_channel(self):
        base = self.il.device_sector_location(0, 0)
        for s in range(8):
            channel, slot = self.il.device_sector_location(0, s)
            assert channel == base[0]
            assert slot == base[1] + s

    def test_sector_crosses_to_next_channel_at_chunk_boundary(self):
        ch7 = self.il.device_sector_location(0, 7)[0]
        ch8 = self.il.device_sector_location(0, 8)[0]
        assert ch8 == (ch7 + 1) % 16


@given(
    frames=st.integers(1, 64),
    channels=st.sampled_from([2, 4, 8, 16, 32]),
)
@settings(max_examples=40, deadline=None)
def test_mapping_is_bijective_per_channel(frames, channels):
    """Distinct (frame, chunk) pairs never collide in (channel, slot)."""
    il = Interleaver(DEFAULT_GEOMETRY, channels)
    seen = set()
    for frame in range(frames):
        for chunk in range(DEFAULT_GEOMETRY.chunks_per_page):
            loc = il.device_chunk_location(frame, chunk)
            assert loc not in seen
            seen.add(loc)


@given(channels=st.sampled_from([2, 4, 8, 16, 32]))
@settings(max_examples=10, deadline=None)
def test_load_balanced(channels):
    """Over many frames, chunks distribute exactly evenly over channels."""
    from collections import Counter

    il = Interleaver(DEFAULT_GEOMETRY, channels)
    counts = Counter()
    for frame in range(channels):  # one full rotation
        for chunk in range(DEFAULT_GEOMETRY.chunks_per_page):
            counts[il.device_chunk_location(frame, chunk)[0]] += 1
    assert len(set(counts.values())) == 1


def test_custom_geometry():
    il = Interleaver(Geometry(page_bytes=2048), num_channels=4)
    assert il.channels_per_page == 4

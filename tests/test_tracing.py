"""Tests for the observability layer: tracer, metrics taxonomy, reports.

Covers the guarantees the docs promise: a disabled tracer is free and never
perturbs results, ring eviction is deterministic, begin/end nesting is
balanced per component, the Chrome-trace export is schema-valid, and the
``repro trace`` golden file is byte-stable across parallelism settings.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.config import SystemConfig
from repro.errors import SimulationError
from repro.gpu.gpusim import RunResult
from repro.harness.engine import ExperimentEngine, SimJob
from repro.harness.report import render_csv, render_markdown_report
from repro.harness.runner import run_model
from repro.sim.events import EventQueue, PeriodicSampler
from repro.sim.metrics import channel_security_shares, derived_metrics, subtree
from repro.sim.trace import NULL_TRACER, Tracer, resolve_tracer
from repro.workloads.suite import build_trace

CFG = SystemConfig.small()
N, SEED = 500, 3


def small_trace(bench="nw"):
    return build_trace(bench, n_accesses=N, seed=SEED, num_sms=CFG.gpu.num_sms)


# -- tracer core ------------------------------------------------------------

class TestTracerCore:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(capacity=100, enabled=False)
        t.span("c", "op", 0, 10)
        t.instant("c", "evt", 5)
        t.counter("ctr", 5, {"x": 1})
        t.begin("c", "outer", 0)
        t.end("c", 1)
        assert len(t) == 0
        assert t.total_recorded == 0
        assert t.open_span_depth("c") == 0

    def test_zero_capacity_forces_disabled(self):
        assert not Tracer(capacity=0).enabled
        assert not NULL_TRACER.enabled

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=-1)

    def test_resolve_tracer(self):
        assert resolve_tracer(None) is NULL_TRACER
        t = Tracer()
        assert resolve_tracer(t) is t

    def test_ring_eviction_is_deterministic_oldest_first(self):
        t = Tracer(capacity=8)
        for ts in range(20):
            t.instant("c", f"e{ts}", ts)
        assert t.total_recorded == 20
        assert t.dropped == 12
        assert len(t) == 8
        # The ring retains exactly the newest 8 events, oldest first.
        assert [e[4] for e in t.events()] == list(range(12, 20))

    def test_ring_not_full_keeps_insertion_order(self):
        t = Tracer(capacity=8)
        for ts in range(5):
            t.instant("c", f"e{ts}", ts)
        assert t.dropped == 0
        assert [e[4] for e in t.events()] == [0, 1, 2, 3, 4]

    def test_span_clamps_negative_duration(self):
        t = Tracer(capacity=4)
        t.span("c", "op", 10, -5)
        assert t.events()[0][5] == 0

    def test_begin_end_nesting(self):
        t = Tracer(capacity=16)
        t.begin("c", "outer", 0)
        t.begin("c", "inner", 1)
        assert t.open_span_depth("c") == 2
        t.end("c", 2)
        assert t.open_span_depth("c") == 1
        t.end("c", 3)
        assert t.open_span_depth("c") == 0
        phases = [e[0] for e in t.events()]
        assert phases == ["B", "B", "E", "E"]
        # LIFO: the first end closes the innermost begin.
        assert [e[2] for e in t.events()] == ["outer", "inner", "inner", "outer"]

    def test_nesting_is_per_component(self):
        t = Tracer(capacity=16)
        t.begin("a", "op", 0)
        t.begin("b", "op", 0)
        t.end("a", 1)
        assert t.open_span_depth("a") == 0
        assert t.open_span_depth("b") == 1

    def test_unbalanced_end_is_a_noop(self):
        t = Tracer(capacity=16)
        t.end("c", 5)
        assert len(t) == 0
        t.begin("c", "op", 0)
        t.end("c", 1)
        t.end("c", 2)  # extra end after the stack emptied
        assert len(t) == 2


# -- Chrome export ----------------------------------------------------------

def validate_chrome_trace(doc):
    """Minimal Chrome Trace Event Format (JSON object flavour) checker."""
    assert isinstance(doc, dict)
    assert isinstance(doc["traceEvents"], list)
    for event in doc["traceEvents"]:
        assert isinstance(event["name"], str)
        assert event["ph"] in ("X", "B", "E", "i", "C", "M")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name")
            assert "name" in event["args"]
            continue
        assert isinstance(event["ts"], int)
        if event["ph"] == "X":
            assert isinstance(event["dur"], int) and event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] in ("t", "p", "g")
        if event["ph"] == "C":
            assert all(
                isinstance(v, (int, float)) for v in event["args"].values()
            )


class TestChromeExport:
    def test_export_schema(self):
        t = Tracer(capacity=64)
        t.span("chan", "read", 0, 10, cat="mem", args={"bytes": 32})
        t.instant("ctr[0]", "miss", 4, cat="metadata")
        t.counter("traffic", 8, {"dev": 1, "cxl": 2})
        t.begin("salus", "fetch", 2)
        t.end("salus", 9)
        validate_chrome_trace(t.to_chrome())

    def test_metadata_events_lead_and_tids_are_sorted(self):
        t = Tracer(capacity=64)
        t.instant("zeta", "z", 0)
        t.instant("alpha", "a", 1)
        doc = t.to_chrome()
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert doc["traceEvents"][: len(metas)] == metas
        names = [e["args"]["name"] for e in metas if e["name"] == "thread_name"]
        assert names == ["alpha", "zeta"]
        tids = {e["args"]["name"]: e["tid"] for e in metas if e["name"] == "thread_name"}
        assert tids["alpha"] < tids["zeta"]

    def test_dropped_count_exported(self):
        t = Tracer(capacity=4)
        for ts in range(10):
            t.instant("c", "e", ts)
        doc = t.to_chrome()
        assert doc["otherData"]["dropped_events"] == 6
        assert doc["otherData"]["total_events"] == 10

    def test_write_is_deterministic(self, tmp_path):
        def build():
            t = Tracer(capacity=64)
            t.span("chan", "read", 0, 10, args={"bytes": 32})
            t.instant("ctr", "miss", 4)
            return t

        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        build().write(p1)
        build().write(p2)
        assert p1.read_bytes() == p2.read_bytes()
        validate_chrome_trace(json.loads(p1.read_text()))


# -- sampler ----------------------------------------------------------------

class TestPeriodicSampler:
    def test_fires_on_epoch_boundaries(self):
        queue = EventQueue()
        seen = []
        sampler = PeriodicSampler(queue, 100, seen.append)
        queue.run(until=350)
        assert seen == [100, 200, 300]
        assert sampler.samples == 3

    def test_stop_halts_future_fires(self):
        queue = EventQueue()
        seen = []
        sampler = PeriodicSampler(queue, 100, seen.append)
        queue.run(until=150)
        sampler.stop()
        queue.run(until=1000)
        assert seen == [100]

    def test_rejects_nonpositive_epoch(self):
        with pytest.raises(SimulationError):
            PeriodicSampler(EventQueue(), 0, lambda now: None)


# -- simulation integration -------------------------------------------------

class TestTracedSimulation:
    def test_tracing_never_changes_results(self):
        untraced = run_model(CFG, small_trace(), "salus")
        traced = run_model(CFG, small_trace(), "salus", tracer=Tracer())
        assert traced.to_dict() == untraced.to_dict()

    def test_traced_run_emits_all_phases(self):
        tracer = Tracer()
        run_model(CFG, small_trace(), "salus", tracer=tracer)
        phases = {e[0] for e in tracer.events()}
        assert {"X", "i", "C"} <= phases
        validate_chrome_trace(tracer.to_chrome())

    def test_traced_run_covers_expected_components(self):
        tracer = Tracer()
        run_model(CFG, small_trace(), "salus", tracer=tracer)
        components = {e[1] for e in tracer.events() if e[1]}
        assert any(c.startswith("hbm[") for c in components)  # memory channels
        assert any(c.startswith("l2[") for c in components)
        assert any(c.startswith("ctr[") for c in components)  # metadata caches
        assert any(c.startswith("sm") for c in components)
        assert {"migration", "salus"} <= components

    def test_no_open_spans_after_run(self):
        tracer = Tracer()
        run_model(CFG, small_trace(), "salus", tracer=tracer)
        components = {e[1] for e in tracer.events() if e[1]}
        assert all(tracer.open_span_depth(c) == 0 for c in components)


# -- metric taxonomy --------------------------------------------------------

class TestMetrics:
    @pytest.fixture(scope="class")
    def result(self):
        return run_model(CFG, small_trace(), "salus")

    def test_metric_tree_shape(self, result):
        tree = result.metrics
        assert tree["sim.instructions"] > 0
        assert tree["sim.final_cycle"] > 0
        assert any(k.startswith("gpu.channel") for k in tree)
        assert any(k.startswith("cxl.rx.") for k in tree)
        assert any(k.startswith("meta.") for k in tree)
        assert "migration.fills" in tree

    def test_subtree_filters_by_prefix(self, result):
        mig = subtree(result.metrics, "migration")
        assert set(mig) == {
            "migration.fills",
            "migration.evictions",
            "migration.evict_stall_cycles",
        }
        assert mig["migration.fills"] == result.fills

    def test_derived_metrics(self, result):
        derived = derived_metrics(result.metrics, result.stats)
        assert derived["derived.ipc"] == pytest.approx(result.ipc)
        assert 0 < derived["derived.security_share.total"] < 1
        assert 0 <= derived["derived.l2_hit_rate"] <= 1

    def test_channel_security_shares(self, result):
        shares = channel_security_shares(result.metrics)
        assert shares, "expected per-component share entries"
        assert all(0 <= v <= 1 for v in shares.values())
        # Salus on an oversubscribed footprint moves security traffic.
        assert any(v > 0 for v in shares.values())

    def test_metrics_survive_serialization(self, result):
        restored = RunResult.from_dict(result.to_dict())
        assert restored.metrics == result.metrics

    def test_nosec_has_zero_security_share(self):
        result = run_model(CFG, small_trace(), "nosec")
        derived = derived_metrics(result.metrics, result.stats)
        assert derived["derived.security_share.total"] == 0


# -- reports ----------------------------------------------------------------

class TestReports:
    @pytest.fixture(scope="class")
    def results(self):
        return [run_model(CFG, small_trace(), m) for m in ("nosec", "salus")]

    def test_markdown_report_sections(self, results):
        text = render_markdown_report(results)
        assert "## nw / salus" in text
        assert "Per-component security-traffic share" in text
        assert "derived.security_share.total" in text

    def test_markdown_report_from_serialized_results_is_identical(self, results):
        restored = [RunResult.from_dict(r.to_dict()) for r in results]
        assert render_markdown_report(restored) == render_markdown_report(results)

    def test_csv_report_is_parseable(self, results):
        lines = render_csv(results).splitlines()
        assert lines[0] == "workload,model,metric,value"
        assert len(lines) > 10
        for line in lines[1:]:
            workload, model, metric, value = line.split(",")
            float(value)  # must parse
        assert any(",salus,derived.security_share.total," in l for l in lines)


# -- engine + CLI integration ----------------------------------------------

class TestEngineTracing:
    def test_engine_writes_one_trace_per_job(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=None, trace_dir=tmp_path)
        jobs = [SimJob.of(CFG, "nw", m, N, SEED) for m in ("nosec", "salus")]
        engine.map(jobs)
        files = sorted(tmp_path.glob("*.trace.json"))
        assert len(files) == 2
        for f in files:
            validate_chrome_trace(json.loads(f.read_text()))

    def test_tracing_bypasses_cache_but_matches_cached_results(self, tmp_path):
        cache, traces = tmp_path / "cache", tmp_path / "traces"
        plain = ExperimentEngine(jobs=1, cache_dir=cache)
        tracing = ExperimentEngine(jobs=1, cache_dir=cache, trace_dir=traces)
        job = SimJob.of(CFG, "nw", "salus", N, SEED)
        first = plain.map([job])[job]
        second = tracing.map([job])[job]
        assert tracing.stats.simulations == 1  # cache hit was skipped
        assert second.to_dict() == first.to_dict()
        assert list(traces.glob("*.trace.json"))


class TestCliGoldenTrace:
    def run_trace(self, tmp_path, name, jobs):
        out = tmp_path / name
        code = main(
            [
                "trace", "nw", "--accesses", str(N), "--seed", str(SEED),
                "--trace-out", str(out), "--jobs", str(jobs),
            ]
        )
        assert code == 0
        return out.read_bytes()

    def test_trace_json_byte_stable_across_jobs(self, tmp_path, capsys):
        serial = self.run_trace(tmp_path, "serial.json", jobs=1)
        parallel = self.run_trace(tmp_path, "parallel.json", jobs=2)
        capsys.readouterr()
        assert serial == parallel
        validate_chrome_trace(json.loads(serial.decode("utf-8")))

    def test_trace_npz_export_still_works(self, tmp_path, capsys):
        out = tmp_path / "nw.npz"
        assert main(["trace", "nw", str(out), "--accesses", "300"]) == 0
        assert "requests" in capsys.readouterr().out
        assert out.exists()

    def test_report_command_renders_markdown(self, tmp_path, capsys):
        result = run_model(CFG, small_trace(), "salus")
        path = tmp_path / "r.json"
        path.write_text(json.dumps([result.to_dict()]))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Per-component security-traffic share" in out

    def test_report_command_csv_to_file(self, tmp_path, capsys):
        result = run_model(CFG, small_trace(), "nosec")
        path = tmp_path / "r.json"
        path.write_text(json.dumps(result.to_dict()))  # bare dict accepted
        out = tmp_path / "report.csv"
        assert main(["report", str(path), "--format", "csv", "-o", str(out)]) == 0
        capsys.readouterr()
        assert out.read_text().startswith("workload,model,metric,value")

"""Smoke tests of the paper's full Table-I configuration.

The figures run on the scaled ``bench()`` machine; these tests drive a short
trace through the *full* Volta-class configuration (80 SMs, 32 channels,
4.5 MiB L2, Table-II caches) to guarantee the paper configuration stays
runnable end to end under every model.
"""

import pytest

from repro.config import SystemConfig
from repro.harness.runner import run_model
from repro.sim.stats import Side
from repro.workloads.generators import WorkloadSpec, generate_trace

VOLTA = SystemConfig.volta()


@pytest.fixture(scope="module")
def volta_trace():
    spec = WorkloadSpec(
        name="volta-smoke", footprint_pages=256, chunk_coverage=0.4,
        concurrent_pages=16, write_fraction=0.3,
        sectors_per_chunk_touched=4, reuse=1, compute_per_mem=4,
    )
    return generate_trace(spec, 3000, num_sms=VOLTA.gpu.num_sms)


@pytest.mark.parametrize("model", ["nosec", "baseline", "salus"])
def test_volta_configuration_runs(volta_trace, model):
    result = run_model(VOLTA, volta_trace, model)
    assert result.cycles > 0
    assert result.fills > 0
    assert result.stats.instructions == len(volta_trace) * (
        1 + volta_trace.compute_per_mem
    )


def test_volta_page_spans_half_the_channels(volta_trace):
    """With 32 channels and 16 chunks per page, a page covers 16 channels -
    the 'page distributed over multiple partitions' premise of Section II-D."""
    from repro.memsys.interleave import Interleaver

    interleaver = Interleaver(VOLTA.geometry, VOLTA.gpu.num_channels)
    assert interleaver.channels_per_page == 16


def test_volta_salus_still_cuts_security_traffic(volta_trace):
    baseline = run_model(VOLTA, volta_trace, "baseline")
    salus = run_model(VOLTA, volta_trace, "salus")
    assert salus.stats.security_bytes(Side.CXL) < baseline.stats.security_bytes(Side.CXL)

"""Unit tests for the shared memory fabric (repro.security.fabric)."""

import pytest

from repro.config import SystemConfig
from repro.metadata.bmt import BMTGeometry
from repro.security.fabric import MemoryFabric
from repro.sim.stats import Side, StatRegistry, TrafficCategory


def make_fabric(footprint_pages=64, **config_overrides):
    config = SystemConfig.small(**config_overrides)
    return MemoryFabric(config, footprint_pages, StatRegistry())


class TestConstruction:
    def test_resources_sized_from_config(self):
        fabric = make_fabric()
        gpu = fabric.config.gpu
        assert len(fabric.channels) == gpu.num_channels
        assert len(fabric.aes_engines) == gpu.num_channels
        assert len(fabric.device_meta) == gpu.num_channels

    def test_frames_follow_capacity_ratio(self):
        fabric = make_fabric(footprint_pages=100)
        assert fabric.num_frames == 35  # default 35% ratio

    def test_frames_never_zero(self):
        fabric = make_fabric(footprint_pages=1)
        assert fabric.num_frames >= 1


class TestLocate:
    def test_coordinates(self):
        fabric = make_fabric()
        geom = fabric.geometry
        addr = 2 * geom.page_bytes + 3 * geom.chunk_bytes + 5 * geom.sector_bytes
        loc = fabric.locate(addr, frame=7)
        assert loc.page == 2
        assert loc.chunk_in_page == 3
        assert loc.sector_in_chunk == 5
        assert loc.frame == 7
        assert loc.device_chunk == 7 * geom.chunks_per_page + 3
        expected_channel, expected_chunk = fabric.interleaver.device_chunk_location(7, 3)
        assert loc.channel == expected_channel
        assert loc.local_chunk == expected_chunk
        assert loc.local_sector == expected_chunk * 8 + 5
        assert loc.local_block == loc.local_sector // 4
        assert loc.cxl_sector == addr // 32

    def test_same_page_different_frames_different_channels_possible(self):
        fabric = make_fabric()
        l1 = fabric.locate(0, frame=0)
        l2 = fabric.locate(0, frame=1)
        assert (l1.channel, l1.local_chunk) != (l2.channel, l2.local_chunk)


class TestMetadataAccess:
    def test_hit_costs_nothing(self):
        fabric = make_fabric()
        cache = fabric.device_meta[0].counter
        reads = []
        read_fn = lambda t, n: reads.append(n) or t + 50
        write_fn = lambda t, n: t
        fabric.metadata_access(0, cache, 3, read_fn, write_fn, TrafficCategory.COUNTER)
        ready, hit = fabric.metadata_access(
            10, cache, 3, read_fn, write_fn, TrafficCategory.COUNTER
        )
        assert hit and ready == 10
        assert reads == [32]  # only the first access fetched

    def test_dirty_eviction_writes_back(self):
        fabric = make_fabric()
        cache = fabric.device_meta[0].counter
        writes = []
        read_fn = lambda t, n: t
        write_fn = lambda t, n: writes.append(n) or t
        # Dirty enough units to force evictions from the small cache.
        capacity_units = (
            fabric.config.security.counter_cache_bytes // 32
        )
        for unit in range(capacity_units * 4):
            fabric.metadata_access(
                0, cache, unit, read_fn, write_fn,
                TrafficCategory.COUNTER, write=True,
            )
        assert writes  # dirty lines were pushed out


class TestBmtWalks:
    def test_cold_walk_reads_path_not_root(self):
        fabric = make_fabric()
        geom = BMTGeometry(num_leaves=4096)  # depth 4 -> 3 non-root levels
        reads = []
        read_fn = lambda t, n: reads.append(n) or t + 10
        write_fn = lambda t, n: t
        fabric.bmt_read_walk(
            0, fabric.device_meta[0].bmt, geom, 0, read_fn, write_fn
        )
        assert len(reads) == 3
        assert all(n == 64 for n in reads)

    def test_warm_walk_stops_at_first_hit(self):
        fabric = make_fabric()
        geom = BMTGeometry(num_leaves=4096)
        cache = fabric.device_meta[0].bmt
        read_fn = lambda t, n: t + 10
        write_fn = lambda t, n: t
        fabric.bmt_read_walk(0, cache, geom, 0, read_fn, write_fn)
        reads = []
        read2 = lambda t, n: reads.append(n) or t + 10
        # Leaf 1 shares every ancestor with leaf 0: fully cached.
        fabric.bmt_read_walk(0, cache, geom, 1, read2, write_fn)
        assert reads == []

    def test_tiny_tree_update_free(self):
        fabric = make_fabric()
        geom = BMTGeometry(num_leaves=4)  # depth 1: parent is on-chip root
        reads = []
        fabric.bmt_update_walk(
            0, fabric.device_meta[0].bmt, geom, 0,
            lambda t, n: reads.append(n) or t, lambda t, n: t,
        )
        assert reads == []

    def test_update_dirties_parent(self):
        fabric = make_fabric()
        geom = BMTGeometry(num_leaves=4096)
        cache = fabric.device_meta[0].bmt
        fabric.bmt_update_walk(0, cache, geom, 0, lambda t, n: t, lambda t, n: t)
        node = geom.node_ordinal(1, 0)
        line = cache._set_for(node // 2)[node // 2]
        assert line.dirty_mask


class TestBookingHelpers:
    def test_device_read_routes_to_channel(self):
        fabric = make_fabric()
        fabric.device_read(0, 3, 32, TrafficCategory.DATA)
        assert fabric.channels[3].busy_cycles > 0
        assert fabric.channels[2].busy_cycles == 0

    def test_link_direction_split(self):
        fabric = make_fabric()
        fabric.link_read(0, 64, TrafficCategory.MAC)
        fabric.link_write(0, 64, TrafficCategory.MAC)
        assert fabric.link.to_device.busy_cycles > 0
        assert fabric.link.to_cxl.busy_cycles > 0

    def test_flush_metadata_caches(self):
        fabric = make_fabric()
        categories = {"counter": TrafficCategory.COUNTER}
        read_fn = lambda t, n: t
        write_fn = lambda t, n: t
        fabric.metadata_access(
            0, fabric.device_meta[0].counter, 0, read_fn, write_fn,
            TrafficCategory.COUNTER, write=True,
        )
        before = fabric.stats.bytes_for(Side.DEVICE, TrafficCategory.COUNTER)
        fabric.flush_metadata_caches(100, categories, categories)
        after = fabric.stats.bytes_for(Side.DEVICE, TrafficCategory.COUNTER)
        assert after == before + 32

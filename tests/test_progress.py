"""Tests for live engine telemetry (heartbeats, sinks, `--progress`).

The load-bearing invariant: progress is an *observer*. Every test that
enables it checks the resulting fingerprints against a run without it -
including the acceptance check that a quick-sweep job run with telemetry
still matches the recorded ``BENCH_perf.json`` reference bit for bit.
"""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.config import SystemConfig
from repro.gpu.gpusim import RunResult
from repro.harness.engine import ExperimentEngine, SimJob
from repro.harness.runner import (
    ProgressJsonlWriter,
    ProgressRenderer,
    combine_progress_sinks,
    run_model,
)
from repro.workloads.suite import build_trace

REPO_ROOT = Path(__file__).resolve().parents[1]

CFG = SystemConfig.small()
N, SEED = 500, 3


def small_trace(bench="nw", seed=SEED):
    return build_trace(bench, n_accesses=N, seed=seed, num_sms=CFG.gpu.num_sms)


class TestHeartbeats:
    def test_snapshots_are_emitted_and_monotone(self):
        events = []
        result = run_model(
            CFG, small_trace(), "salus", progress=events.append, progress_epoch=1000
        )
        assert events, "progress callback never fired"
        cycles = [e["cycles"] for e in events]
        assert cycles == sorted(cycles)
        assert events[-1]["cycles"] == result.cycles
        assert events[-1]["instructions"] == result.stats.instructions
        assert events[-1]["fills"] == result.fills
        epochs = [e["epoch"] for e in events]
        assert epochs == list(range(1, len(events) + 1))

    def test_progress_is_fingerprint_inert(self):
        bare = run_model(CFG, small_trace(), "salus").fingerprint()
        observed = run_model(
            CFG, small_trace(), "salus", progress=lambda e: None, progress_epoch=500
        ).fingerprint()
        assert observed == bare

    def test_progress_composes_with_tracing_unchanged(self):
        from repro.sim.trace import Tracer

        tracer_a = Tracer()
        run_model(CFG, small_trace(), "salus", tracer=tracer_a)
        tracer_b = Tracer()
        run_model(
            CFG, small_trace(), "salus", tracer=tracer_b,
            progress=lambda e: None, progress_epoch=700,
        )
        # Progress sampling must not perturb the trace byte stream either.
        assert json.dumps(tracer_a.to_chrome(), sort_keys=True) == json.dumps(
            tracer_b.to_chrome(), sort_keys=True
        )

    def test_broken_sink_does_not_kill_the_run(self):
        def explode(_event):
            raise RuntimeError("sink bug")

        result = run_model(
            CFG, small_trace(), "nosec", progress=explode, progress_epoch=1000
        )
        assert result.cycles > 0


class TestEngineDelivery:
    @staticmethod
    def jobs():
        return [
            SimJob.of(CFG, "nw", model, N, SEED) for model in ("nosec", "salus")
        ]

    def test_serial_event_stream(self):
        events = []
        engine = ExperimentEngine(progress=events.append, progress_epoch=1000)
        results = engine.map(self.jobs())
        kinds = [e["kind"] for e in events]
        assert kinds.count("start") == 2
        assert kinds.count("done") == 2
        assert kinds.count("heartbeat") > 0
        done = [e for e in events if e["kind"] == "done"]
        assert {e["source"] for e in done} == {"run"}
        assert all(e["wall_s"] > 0 for e in done)
        bare = ExperimentEngine().map(self.jobs())
        assert {j: r.fingerprint() for j, r in results.items()} == {
            j: r.fingerprint() for j, r in bare.items()
        }

    def test_cache_hits_emit_done_without_start(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.map(self.jobs())
        events = []
        warm = ExperimentEngine(cache_dir=tmp_path, progress=events.append)
        warm.map(self.jobs())
        assert [e["kind"] for e in events] == ["done", "done"]
        assert {e["source"] for e in events} == {"disk"}

    def test_parallel_pool_failure_falls_back_serially(self, monkeypatch):
        class BrokenPool:
            def __init__(self, *a, **k):
                raise OSError("no pools in this sandbox")

        monkeypatch.setattr(
            "repro.harness.engine.ProcessPoolExecutor", BrokenPool
        )
        events = []
        engine = ExperimentEngine(
            jobs=4, progress=events.append, progress_epoch=1000
        )
        results = engine.map(self.jobs())
        kinds = [e["kind"] for e in events]
        assert kinds.count("done") == 2 and kinds.count("start") == 2
        bare = ExperimentEngine().map(self.jobs())
        assert {j: r.fingerprint() for j, r in results.items()} == {
            j: r.fingerprint() for j, r in bare.items()
        }

    def test_parallel_delivery_when_pools_work(self):
        events = []
        engine = ExperimentEngine(
            jobs=2, progress=events.append, progress_epoch=1000
        )
        try:
            results = engine.map(self.jobs())
        except Exception:
            pytest.skip("process pools unavailable in this environment")
        kinds = [e["kind"] for e in events]
        assert kinds.count("done") == 2
        bare = ExperimentEngine().map(self.jobs())
        assert {j: r.fingerprint() for j, r in results.items()} == {
            j: r.fingerprint() for j, r in bare.items()
        }


class TestSinks:
    def test_renderer_plain_stream(self):
        stream = io.StringIO()  # not a TTY: plain lines, no escape codes
        renderer = ProgressRenderer(stream=stream, total=2)
        renderer({"kind": "heartbeat", "job": "nw/salus", "cycles": 1234,
                  "instructions": 500, "fills": 3, "evictions": 1})
        renderer({"kind": "done", "job": "nw/salus", "source": "run",
                  "wall_s": 0.5})
        renderer({"kind": "error", "job": "nw/nosec"})
        text = stream.getvalue()
        assert "\x1b[2K" not in text
        assert "cycle 1,234" in text
        assert "[1/2] nw/salus: run in 0.500s" in text
        assert "[2/2] nw/nosec: FAILED" in text

    def test_jsonl_writer(self, tmp_path):
        path = tmp_path / "sub" / "progress.jsonl"
        writer = ProgressJsonlWriter(path)
        writer({"kind": "start", "job": "a"})
        writer({"kind": "done", "job": "a", "wall_s": 0.1})
        writer.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(l)["kind"] for l in lines] == ["start", "done"]

    def test_combine(self):
        assert combine_progress_sinks(None, None) is None
        one, other = [], []
        sink = one.append
        assert combine_progress_sinks(sink, None) is sink
        fan = combine_progress_sinks(one.append, other.append)
        fan({"kind": "x"})
        assert one == other == [{"kind": "x"}]


class TestCliProgress:
    def test_progress_jsonl_flag(self, tmp_path, capsys):
        out = tmp_path / "events.jsonl"
        rc = main([
            "run", "nw", "--accesses", "600", "--models", "nosec",
            "--no-cache", "--progress-jsonl", str(out),
        ])
        assert rc == 0
        capsys.readouterr()
        kinds = [json.loads(l)["kind"] for l in out.read_text().splitlines()]
        assert "start" in kinds and "done" in kinds

    def test_progress_renderer_forced_without_tty(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FORCE_PROGRESS", "1")
        rc = main([
            "run", "nw", "--accesses", "600", "--models", "nosec",
            "--no-cache", "--progress",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "nw/nosec@600#7" in captured.err

    def test_progress_off_without_tty(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FORCE_PROGRESS", raising=False)
        rc = main([
            "run", "nw", "--accesses", "600", "--models", "nosec",
            "--no-cache", "--progress",
        ])
        assert rc == 0
        assert "nw/nosec@600#7" not in capsys.readouterr().err


class TestQuickSweepInertness:
    """Acceptance: telemetry + ledger on, fingerprints still match the
    recorded BENCH_perf.json quick-sweep reference."""

    def test_cli_run_with_telemetry_matches_recorded_reference(
        self, tmp_path, capsys
    ):
        store = json.loads(
            (REPO_ROOT / "BENCH_perf.json").read_text(encoding="utf-8")
        )
        sweep = store["sweeps"]["quick"]
        ref = next(e for e in sweep["entries"] if e["label"] == "post")

        out = tmp_path / "results.json"
        rc = main([
            "run", "nw",
            "--accesses", str(sweep["accesses"]),
            "--seed", str(sweep["seed"]),
            "--json",
            "--cache-dir", str(tmp_path / "cache"),
            "--progress-jsonl", str(tmp_path / "progress.jsonl"),
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 3
        for entry in payload:
            label = f"{entry['workload']}/{entry['model']}"
            live = RunResult.from_dict(entry).fingerprint()
            assert live == ref["jobs"][label]["fingerprint"], (
                f"{label}: telemetry/ledger changed the result fingerprint"
            )
            # The engine sidecar rides outside the fingerprinted payload.
            assert entry["engine"]["source"] == "run"
        # ... and the ledger recorded the same fingerprints.
        from repro.harness.ledger import RunLedger

        recorded = RunLedger(tmp_path / "cache").entries()
        assert {e.result_fingerprint for e in recorded} == {
            ref["jobs"][f"nw/{m}"]["fingerprint"]
            for m in ("nosec", "baseline", "salus")
        }

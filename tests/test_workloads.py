"""Unit tests for workload generation (repro.workloads)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.address import DEFAULT_GEOMETRY
from repro.errors import TraceError
from repro.memsys.request import Access, MemoryRequest
from repro.workloads.generators import WorkloadSpec, generate_trace
from repro.workloads.suite import BENCHMARKS, benchmark_names, build_trace, spec_for
from repro.workloads.trace import Trace


class TestTrace:
    def test_metadata(self):
        trace = Trace(name="t", footprint_pages=4, compute_per_mem=2)
        assert len(trace) == 0
        trace.requests.append(MemoryRequest(0, Access.READ))
        trace.requests.append(MemoryRequest(32, Access.WRITE))
        assert trace.write_fraction == pytest.approx(0.5)
        assert trace.distinct_pages(4096) == 1

    def test_head(self):
        trace = Trace(name="t", footprint_pages=4, compute_per_mem=2)
        trace.requests.extend(MemoryRequest(i * 32, Access.READ) for i in range(10))
        assert len(trace.head(3)) == 3
        assert trace.head(3).name == "t"

    def test_validation(self):
        with pytest.raises(TraceError):
            Trace(name="t", footprint_pages=0, compute_per_mem=0)
        with pytest.raises(TraceError):
            Trace(name="t", footprint_pages=1, compute_per_mem=-1)


class TestWorkloadSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_coverage": 0.0},
            {"chunk_coverage": 1.5},
            {"write_fraction": -0.1},
            {"concurrent_pages": 0},
            {"reuse": 0},
            {"page_order": "bogus"},
            {"footprint_pages": 0},
            {"sectors_per_chunk_touched": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(TraceError):
            WorkloadSpec(name="x", **kwargs)


class TestGeneration:
    def test_deterministic_across_calls(self):
        spec = WorkloadSpec(name="det", footprint_pages=64)
        t1 = generate_trace(spec, 2000, seed=3)
        t2 = generate_trace(spec, 2000, seed=3)
        assert [r.cxl_addr for r in t1] == [r.cxl_addr for r in t2]
        assert [r.access for r in t1] == [r.access for r in t2]

    def test_seed_changes_stream(self):
        spec = WorkloadSpec(name="det", footprint_pages=64)
        t1 = generate_trace(spec, 2000, seed=3)
        t2 = generate_trace(spec, 2000, seed=4)
        assert [r.cxl_addr for r in t1] != [r.cxl_addr for r in t2]

    def test_addresses_sector_aligned_and_in_footprint(self):
        spec = WorkloadSpec(name="x", footprint_pages=32)
        trace = generate_trace(spec, 3000)
        limit = 32 * DEFAULT_GEOMETRY.page_bytes
        for req in trace:
            assert 0 <= req.cxl_addr < limit
            assert req.cxl_addr % 32 == 0

    def test_write_fraction_approximated(self):
        spec = WorkloadSpec(name="x", footprint_pages=64, write_fraction=0.4)
        trace = generate_trace(spec, 8000)
        assert abs(trace.write_fraction - 0.4) < 0.05

    def test_chunk_coverage_respected(self):
        """Low coverage leaves most chunks of each touched page untouched."""
        # One visit per page (single pass) so the per-residency coverage
        # is visible rather than the union over many passes.
        spec = WorkloadSpec(
            name="x", footprint_pages=512, chunk_coverage=0.2,
            concurrent_pages=1, reuse=1,
        )
        trace = generate_trace(spec, 4000)
        from collections import defaultdict

        chunks = defaultdict(set)
        geom = DEFAULT_GEOMETRY
        for req in trace:
            chunks[geom.page_of(req.cxl_addr)].add(geom.chunk_in_page(req.cxl_addr))
        coverages = [len(c) / geom.chunks_per_page for c in chunks.values()]
        assert sum(coverages) / len(coverages) < 0.35

    def test_concurrency_interleaves_pages(self):
        spec = WorkloadSpec(
            name="x", footprint_pages=64, concurrent_pages=8, chunk_coverage=0.5
        )
        trace = generate_trace(spec, 2000)
        first_window = {
            DEFAULT_GEOMETRY.page_of(r.cxl_addr) for r in trace.requests[:64]
        }
        assert len(first_window) >= 8

    def test_sm_assignment_round_robin(self):
        spec = WorkloadSpec(name="x", footprint_pages=16)
        trace = generate_trace(spec, 100, num_sms=4)
        assert [r.sm for r in trace.requests[:8]] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_invalid_count(self):
        with pytest.raises(TraceError):
            generate_trace(WorkloadSpec(name="x"), 0)

    @pytest.mark.parametrize("order", ["stream", "tiled", "zipf"])
    def test_page_orders_produce_valid_traces(self, order):
        spec = WorkloadSpec(name="x", footprint_pages=32, page_order=order)
        trace = generate_trace(spec, 1000)
        assert len(trace) == 1000

    def test_zipf_is_skewed(self):
        from collections import Counter

        spec = WorkloadSpec(
            name="x", footprint_pages=128, page_order="zipf", zipf_skew=1.2,
            concurrent_pages=1,
        )
        trace = generate_trace(spec, 8000)
        counts = Counter(DEFAULT_GEOMETRY.page_of(r.cxl_addr) for r in trace)
        top = sum(c for _, c in counts.most_common(13))
        assert top / len(trace) > 0.3  # top 10% of pages carry >30% of traffic


class TestSuite:
    def test_twelve_benchmarks(self):
        assert len(benchmark_names()) == 12

    def test_paper_suites_represented(self):
        suites = {spec.suite for spec in BENCHMARKS.values()}
        assert suites == {"rodinia", "parboil", "lonestar", "pannotia"}

    def test_paper_low_intensity_group(self):
        """Stencil, B+tree, Lava and NW are the paper's low-intensity set."""
        for name in ("stencil", "btree", "lava", "nw"):
            assert BENCHMARKS[name].intensity == "low"

    def test_winners_have_sparse_coverage(self):
        """NW/B+tree/Lava: under half the channels touched per residency."""
        for name in ("nw", "btree", "lava"):
            assert BENCHMARKS[name].chunk_coverage < 0.5

    def test_non_winners_have_dense_spread_access(self):
        for name in ("backprop", "sgemm"):
            assert BENCHMARKS[name].chunk_coverage > 0.9
            assert BENCHMARKS[name].concurrent_pages >= 32

    def test_spec_for_unknown(self):
        with pytest.raises(TraceError):
            spec_for("doom")

    def test_build_trace(self):
        trace = build_trace("nw", n_accesses=500)
        assert trace.name == "nw"
        assert len(trace) == 500
        assert trace.compute_per_mem == BENCHMARKS["nw"].compute_per_mem

    def test_build_trace_scaled(self):
        full = build_trace("nw", n_accesses=1000)
        small = build_trace("nw", n_accesses=1000, scale=0.25)
        assert small.footprint_pages < full.footprint_pages
        assert len(small) < len(full)

    def test_scale_validation(self):
        with pytest.raises(TraceError):
            build_trace("nw", scale=0.0)


@given(
    coverage=st.floats(min_value=0.1, max_value=1.0),
    writes=st.floats(min_value=0.0, max_value=1.0),
    concurrent=st.integers(1, 16),
)
@settings(max_examples=15, deadline=None)
def test_generation_total_and_bounds_property(coverage, writes, concurrent):
    spec = WorkloadSpec(
        name="prop", footprint_pages=32, chunk_coverage=coverage,
        write_fraction=writes, concurrent_pages=concurrent,
    )
    trace = generate_trace(spec, 500)
    assert len(trace) == 500
    limit = 32 * DEFAULT_GEOMETRY.page_bytes
    assert all(0 <= r.cxl_addr < limit for r in trace)

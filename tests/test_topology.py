"""Topology layer: TopologyConfig, shard math, and multi-device behavior.

Three layers of guarantees:

* **Config validation** - :class:`~repro.config.TopologyConfig` rejects
  malformed fabrics at construction.
* **Shard-math properties** (Hypothesis) - for any 1-4 device fabric the
  home-device function is a *total, balanced partition* of the CXL page
  space, ``local_page`` is a bijection onto each device's slice, and
  :class:`~repro.memsys.interleave.Interleaver` chunk placement covers all
  device channels.
* **Behavior preservation** - a size-1 topology is bit-identical to the
  pre-topology simulator: the quick perf sweep reproduces the recorded
  RunResult fingerprints in ``BENCH_perf.json``, and an explicit
  ``TopologyConfig(num_devices=1)`` matches the default config run for run.
  Multi-device runs complete and publish per-device link metrics.
"""

import importlib.util
import json
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.address import DEFAULT_GEOMETRY, ShardMap
from repro.config import SystemConfig, TopologyConfig
from repro.errors import AddressError, ConfigError
from repro.harness.runner import run_model
from repro.memsys.interleave import Interleaver
from repro.workloads import build_trace

REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------- validation
class TestTopologyConfig:
    def test_default_is_single_device(self):
        topo = SystemConfig.bench().topology
        assert topo.num_devices == 1
        assert topo.sharding == "page"

    def test_rejects_zero_devices(self):
        with pytest.raises(ConfigError):
            TopologyConfig(num_devices=0)

    def test_rejects_unknown_sharding(self):
        with pytest.raises(ConfigError):
            TopologyConfig(num_devices=2, sharding="hash")

    def test_rejects_mismatched_tuples(self):
        with pytest.raises(ConfigError):
            TopologyConfig(num_devices=2, link_bw_ratios=(0.1,))
        with pytest.raises(ConfigError):
            TopologyConfig(num_devices=2, link_latencies=(100, 100, 100))

    def test_rejects_bad_link_parameters(self):
        with pytest.raises(ConfigError):
            TopologyConfig(num_devices=1, link_bw_ratios=(0.0,))
        with pytest.raises(ConfigError):
            TopologyConfig(num_devices=1, link_bw_ratios=(1.5,))
        with pytest.raises(ConfigError):
            TopologyConfig(num_devices=1, link_latencies=(-1,))

    def test_per_device_overrides_and_defaults(self):
        topo = TopologyConfig(
            num_devices=2, link_bw_ratios=(0.25, 0.125), link_latencies=(300, 500)
        )
        assert topo.bw_ratio(0, 1 / 16) == 0.25
        assert topo.bw_ratio(1, 1 / 16) == 0.125
        assert topo.latency(1, 400) == 500
        default = TopologyConfig(num_devices=2)
        assert default.bw_ratio(1, 1 / 16) == 1 / 16
        assert default.latency(0, 400) == 400

    def test_with_cxl_devices(self):
        cfg = SystemConfig.bench().with_cxl_devices(4, sharding="range")
        assert cfg.topology.num_devices == 4
        assert cfg.topology.sharding == "range"
        # A topology change must change the config fingerprint (cache key).
        assert cfg.fingerprint() != SystemConfig.bench().fingerprint()


# ---------------------------------------------------------------- shard math
@st.composite
def shard_maps(draw):
    num_devices = draw(st.integers(min_value=1, max_value=4))
    policy = draw(st.sampled_from(["page", "range"]))
    total_pages = draw(st.integers(min_value=num_devices, max_value=4096))
    return ShardMap(
        geometry=DEFAULT_GEOMETRY,
        num_devices=num_devices,
        policy=policy,
        total_pages=total_pages,
    )


class TestShardProperties:
    @given(shard=shard_maps())
    @settings(max_examples=60, deadline=None)
    def test_total_partition(self, shard):
        """Every page has exactly one home device within the fabric."""
        for page in range(shard.total_pages):
            home = shard.home_of_page(page)
            assert 0 <= home < shard.num_devices

    @given(shard=shard_maps())
    @settings(max_examples=60, deadline=None)
    def test_pages_on_is_exact(self, shard):
        """pages_on(d) agrees with brute-force counting, and sums to total."""
        counts = Counter(
            shard.home_of_page(p) for p in range(shard.total_pages)
        )
        assert sum(
            shard.pages_on(d) for d in range(shard.num_devices)
        ) == shard.total_pages
        for d in range(shard.num_devices):
            assert shard.pages_on(d) == counts.get(d, 0)

    @given(shard=shard_maps())
    @settings(max_examples=60, deadline=None)
    def test_balance(self, shard):
        """Page policy balances within one page; range within one span."""
        counts = [shard.pages_on(d) for d in range(shard.num_devices)]
        if shard.policy == "page":
            assert max(counts) - min(counts) <= 1
        else:
            span = -(-shard.total_pages // shard.num_devices)
            assert max(counts) <= span

    @given(shard=shard_maps())
    @settings(max_examples=40, deadline=None)
    def test_local_page_is_bijection(self, shard):
        """local_page maps each device's homed pages 1:1 onto its slice."""
        per_device = {d: set() for d in range(shard.num_devices)}
        for page in range(shard.total_pages):
            d = shard.home_of_page(page)
            local = shard.local_page(page)
            assert local not in per_device[d]
            per_device[d].add(local)
        for d, locals_ in per_device.items():
            assert locals_ == set(range(shard.pages_on(d)))

    @given(shard=shard_maps(), sector=st.integers(min_value=0, max_value=1 << 20))
    @settings(max_examples=60, deadline=None)
    def test_home_of_addr_matches_page(self, shard, sector):
        addr = sector * DEFAULT_GEOMETRY.sector_bytes
        assert shard.home_of_addr(addr) == shard.home_of_page(
            addr // DEFAULT_GEOMETRY.page_bytes
        )

    def test_negative_page_rejected(self):
        shard = ShardMap(geometry=DEFAULT_GEOMETRY, num_devices=2, total_pages=8)
        with pytest.raises(AddressError):
            shard.home_of_page(-1)
        with pytest.raises(AddressError):
            shard.local_page(-1)

    @given(
        num_channels=st.sampled_from([4, 8, 16]),
        frame=st.integers(min_value=0, max_value=256),
    )
    @settings(max_examples=40, deadline=None)
    def test_interleaver_covers_all_channels(self, num_channels, frame):
        """Chunk placement of any frame reaches every device channel."""
        il = Interleaver(DEFAULT_GEOMETRY, num_channels=num_channels)
        channels = {
            il.device_chunk_location(frame, c)[0]
            for c in range(DEFAULT_GEOMETRY.chunks_per_page)
        }
        assert channels == set(range(num_channels))


# ---------------------------------------------------- behavior preservation
def _load_bench_perf_module():
    spec = importlib.util.spec_from_file_location(
        "bench_perf", REPO_ROOT / "scripts" / "bench_perf.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSizeOnePreservation:
    def test_explicit_size1_topology_is_bit_identical(self):
        """Explicit TopologyConfig(1) == default config, run for run."""
        base = SystemConfig.bench()
        explicit = base.with_topology(
            TopologyConfig(num_devices=1, sharding="page")
        )
        trace = build_trace(
            "backprop", n_accesses=1_500, seed=7, num_sms=base.gpu.num_sms
        )
        for model in ("nosec", "baseline", "salus"):
            a = run_model(base, trace, model)
            b = run_model(explicit, trace, model)
            assert a.fingerprint() == b.fingerprint()

    def test_quick_sweep_reproduces_recorded_fingerprints(self):
        """The refactor rides under the established perf/fingerprint gate:
        the quick sweep's RunResult sha-256 fingerprints must equal the
        entries recorded in BENCH_perf.json before the topology layer
        existed."""
        bench_perf = _load_bench_perf_module()
        store = bench_perf.load_store(REPO_ROOT / "BENCH_perf.json")
        spec = bench_perf.sweep_spec(quick=True)
        ref = bench_perf.find_entry(store, spec["name"], "baseline")
        assert ref is not None, "BENCH_perf.json lacks the quick/baseline entry"
        jobs, _results = bench_perf.run_sweep(spec)
        assert set(jobs) == set(ref["jobs"])
        for label, job in jobs.items():
            assert job["fingerprint"] == ref["jobs"][label]["fingerprint"], (
                f"{label}: fingerprint diverged from recorded baseline"
            )


class TestMultiDeviceRuns:
    def test_two_device_run_publishes_per_device_metrics(self):
        cfg = SystemConfig.bench().with_cxl_devices(2)
        trace = build_trace(
            "backprop", n_accesses=1_500, seed=7, num_sms=cfg.gpu.num_sms
        )
        result = run_model(cfg, trace, "salus")
        for d in range(2):
            assert f"cxl.dev{d}.link_bytes" in result.metrics
            assert f"migration.dev{d}.fills" in result.metrics
        # Round-robin sharding touches both links.
        assert result.metrics["cxl.dev0.link_bytes"] > 0
        assert result.metrics["cxl.dev1.link_bytes"] > 0
        # Per-device fills sum to the engine total.
        assert (
            result.metrics["migration.dev0.fills"]
            + result.metrics["migration.dev1.fills"]
            == result.metrics["migration.fills"]
        )
        # Serialization survives the new namespaces.
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["metrics"]["cxl.dev1.link_bytes"] > 0

    def test_single_device_tree_has_no_dev_namespaces(self):
        """Size-1 metric trees keep the historical layout exactly."""
        cfg = SystemConfig.bench()
        trace = build_trace(
            "backprop", n_accesses=1_000, seed=7, num_sms=cfg.gpu.num_sms
        )
        result = run_model(cfg, trace, "salus")
        assert not any(".dev0." in key for key in result.metrics)
        assert not any(key.startswith("migration.dev") for key in result.metrics)

    def test_range_sharding_runs_all_models(self):
        cfg = SystemConfig.bench().with_cxl_devices(2, sharding="range")
        trace = build_trace(
            "backprop", n_accesses=1_000, seed=7, num_sms=cfg.gpu.num_sms
        )
        for model in ("nosec", "baseline", "salus"):
            result = run_model(cfg, trace, model)
            assert result.stats.final_cycle > 0

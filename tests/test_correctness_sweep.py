"""Regression tests for the sim-kernel correctness sweep.

One test class per fixed bug:

* ``EventQueue.cancel`` used to leave a stale ``(time, seq)`` entry behind
  when cancelling an already-fired event, making ``__len__`` undercount
  (even go negative); ``PeriodicSampler.stop`` used to leave its pending
  self-reschedule in the queue forever.
* ``SectoredCache`` used the builtin ``hash()`` for set indexing, which is
  ``PYTHONHASHSEED``-salted for str/bytes keys - silently nondeterministic
  across processes.
* ``ConventionalSplitCounterStore.set_major`` accepted a *smaller* major,
  which would reuse one-time pads.
* ``MemoryFabric.metadata_access`` was annotated ``-> int`` but returns a
  ``(ready, sector_hit)`` pair.

Plus a property test that ``flush_dirty``/``invalidate_line`` keep the
hit/miss accounting and dirty-mask state consistent under random access
sequences.
"""

import subprocess
import sys
import typing

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CounterOverflowError
from repro.memsys.sectored_cache import SectoredCache, stable_line_key
from repro.metadata.counters import ConventionalSplitCounterStore
from repro.sim.events import EventQueue, PeriodicSampler


class TestEventQueueCancel:
    def test_cancel_pending_event_skips_it(self):
        q = EventQueue()
        fired = []
        event = q.schedule(10, lambda: fired.append("x"))
        q.cancel(event)
        q.run()
        assert fired == []
        assert len(q) == 0

    def test_cancel_after_fire_is_noop(self):
        q = EventQueue()
        event = q.schedule(5, lambda: None)
        q.run()
        assert len(q) == 0
        q.cancel(event)  # already fired: must not poison the count
        assert len(q) == 0
        q.schedule(5, lambda: None)
        assert len(q) == 1  # regression: used to report 0 here

    def test_len_never_negative_under_repeated_cancel(self):
        q = EventQueue()
        event = q.schedule(1, lambda: None)
        q.run()
        for _ in range(3):
            q.cancel(event)
        assert len(q) == 0

    def test_double_cancel_same_pending_event(self):
        q = EventQueue()
        event = q.schedule(7, lambda: None)
        q.cancel(event)
        q.cancel(event)
        assert len(q) == 0
        assert q.run() == 0

    def test_cancel_of_skipped_event_is_noop(self):
        q = EventQueue()
        event = q.schedule(3, lambda: None)
        q.cancel(event)
        q.run()  # skips (and forgets) the cancelled event
        q.cancel(event)
        q.schedule(1, lambda: None)
        assert len(q) == 1

    def test_sampler_stop_leaves_queue_empty(self):
        q = EventQueue()
        ticks = []
        sampler = PeriodicSampler(q, epoch=10, callback=ticks.append)
        q.run(until=35)
        assert sampler.samples == 3
        sampler.stop()
        assert len(q) == 0  # regression: the pending reschedule lingered
        assert q.run() == 0
        assert ticks == [10, 20, 30]

    def test_sampler_stop_is_idempotent(self):
        q = EventQueue()
        sampler = PeriodicSampler(q, epoch=5, callback=lambda now: None)
        sampler.stop()
        sampler.stop()
        assert len(q) == 0


class TestStableLineKey:
    def test_int_keys_map_to_themselves(self):
        assert stable_line_key(0) == 0
        assert stable_line_key(12345) == 12345

    def test_str_key_is_seed_independent(self):
        # The same value a fresh interpreter with a different hash seed
        # computes: the builtin hash() would disagree between the two.
        snippet = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.memsys.sectored_cache import stable_line_key; "
            "print(stable_line_key('line:42'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, check=True,
            env={"PYTHONHASHSEED": "12345", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
        )
        assert int(out.stdout.strip()) == stable_line_key("line:42")

    def test_tuple_of_ints_matches_builtin_hash(self):
        # (page, block) keys keep their historical set mapping.
        assert stable_line_key((3, 17)) == hash((3, 17))

    def test_tuple_with_str_element_is_deterministic(self):
        import zlib
        expected = hash((zlib.crc32(b"ctr"), 9))
        assert stable_line_key(("ctr", 9)) == expected

    def test_str_key_round_trips_through_cache(self):
        cache = SectoredCache("t", 1024, 2, 128, 32)
        assert not cache.access("page:0", 1).sector_hit
        assert cache.access("page:0", 1).sector_hit


class TestSetMajorMonotonic:
    def test_backwards_install_raises(self):
        store = ConventionalSplitCounterStore()
        store.set_major(0, 5)
        with pytest.raises(CounterOverflowError):
            store.set_major(0, 4)

    def test_backwards_install_leaves_state_unchanged(self):
        store = ConventionalSplitCounterStore()
        store.set_major(0, 5)
        store.increment(0)
        with pytest.raises(CounterOverflowError):
            store.set_major(0, 2)
        pair = store.read(0)
        assert pair.major == 5
        assert pair.minor == 1

    def test_equal_install_is_noop(self):
        store = ConventionalSplitCounterStore()
        store.set_major(0, 5)
        store.increment(0)
        assert store.set_major(0, 5) == ()
        assert store.read(0).minor == 1  # minors survive the no-op

    def test_forward_install_resets_minors(self):
        store = ConventionalSplitCounterStore()
        store.increment(0)
        siblings = store.set_major(0, 9)
        assert len(siblings) == store.minors_per_major
        assert store.read(0) == type(store.read(0))(major=9, minor=0)


class TestMetadataAccessAnnotation:
    def test_returns_ready_hit_pair(self):
        from repro.config import SystemConfig
        from repro.security.fabric import MemoryFabric
        from repro.sim.stats import StatRegistry, TrafficCategory

        fabric = MemoryFabric(SystemConfig.bench(), footprint_pages=4,
                              stats=StatRegistry())
        read_fn = lambda t, n: t + 10
        write_fn = lambda t, n: t
        result = fabric.metadata_access(
            0, fabric.device_meta[0].counter, 0, read_fn, write_fn,
            TrafficCategory.COUNTER,
        )
        assert isinstance(result, tuple) and len(result) == 2
        ready, hit = result
        assert isinstance(ready, int)
        assert isinstance(hit, bool)
        assert (ready, hit) == (10, False)
        ready, hit = fabric.metadata_access(
            20, fabric.device_meta[0].counter, 0, read_fn, write_fn,
            TrafficCategory.COUNTER,
        )
        assert (ready, hit) == (20, True)

    def test_annotation_is_a_pair(self):
        from repro.security.fabric import MemoryFabric

        hints = typing.get_type_hints(MemoryFabric.metadata_access)
        assert typing.get_origin(hints["return"]) is tuple


# --------------------------------------------------------------------------
# Property test: accounting/dirty-state consistency under random sequences.
# --------------------------------------------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("access"), st.integers(0, 15), st.integers(0, 3),
                  st.booleans()),
        st.tuples(st.just("flush"), st.just(0), st.just(0), st.just(False)),
        st.tuples(st.just("invalidate"), st.integers(0, 15), st.just(0),
                  st.just(False)),
    ),
    min_size=1, max_size=200,
)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_cache_accounting_consistent_under_random_sequences(ops):
    cache = SectoredCache("prop", 1024, 2, 128, 32)
    written = {}          # line_addr -> set of sectors ever written (since last clear)
    accesses = 0
    for op, line, sector, write in ops:
        if op == "access":
            result = cache.access(line, sector, write=write)
            accesses += 1
            if write:
                written.setdefault(line, set()).add(sector)
            if result.evicted is not None:
                dirty = set(result.evicted.dirty_sectors)
                # Every reported dirty sector was actually written.
                assert dirty <= written.get(result.evicted.line_addr, set())
                written.pop(result.evicted.line_addr, None)
        elif op == "flush":
            for drained in cache.flush_dirty():
                dirty = set(drained.dirty_sectors)
                assert dirty
                assert dirty <= written.get(drained.line_addr, set())
                written.pop(drained.line_addr, None)
            # Flush is complete: an immediate second flush drains nothing.
            assert cache.flush_dirty() == []
        else:  # invalidate
            evicted = cache.invalidate_line(line)
            if evicted is not None:
                assert set(evicted.dirty_sectors) <= written.get(line, set())
                # The line is gone: no sector of it can probe as present.
                for s in range(cache.sectors_per_line):
                    assert not cache.probe(line, s)
            written.pop(line, None)
        # Hit/miss accounting always matches the number of accesses.
        assert cache.hits + cache.misses == accesses
        assert cache.hits >= 0 and cache.misses >= 0
    # After draining everything, no dirty state remains anywhere.
    cache.flush_dirty()
    assert cache.flush_dirty() == []

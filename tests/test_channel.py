"""Unit tests for channels, the CXL link pair, and crypto engines."""

import pytest

from repro.errors import SimulationError
from repro.memsys.channel import Channel, CryptoEngine, LinkPair
from repro.sim.stats import Side, StatRegistry, TrafficCategory


def make_channel(bpc=8.0, latency=100, overhead=0, stats=None):
    return Channel(
        "ch0", bpc, latency, Side.DEVICE, stats or StatRegistry(), overhead
    )


class TestChannelService:
    def test_service_cycles(self):
        ch = make_channel(bpc=8.0)
        assert ch.service_cycles(32) == 4
        assert ch.service_cycles(1) == 1  # at least one cycle

    def test_overhead_added_per_transaction(self):
        ch = make_channel(bpc=8.0, overhead=10)
        assert ch.service_cycles(32) == 14

    def test_critical_includes_latency(self):
        ch = make_channel(bpc=32.0, latency=100)
        done = ch.book(0, 32, TrafficCategory.DATA, critical=True)
        assert done == 101  # 1 cycle service + 100 latency

    def test_posted_excludes_latency(self):
        ch = make_channel(bpc=32.0, latency=100)
        done = ch.book(0, 32, TrafficCategory.DATA, critical=False)
        assert done == 1

    def test_invalid_bookings(self):
        ch = make_channel()
        with pytest.raises(SimulationError):
            ch.book(-1, 32, TrafficCategory.DATA)
        with pytest.raises(SimulationError):
            ch.book(0, 0, TrafficCategory.DATA)


class TestBacklog:
    def test_back_to_back_queueing(self):
        ch = make_channel(bpc=32.0, latency=0)
        first = ch.book(0, 320, TrafficCategory.DATA)   # 10 cycles
        second = ch.book(0, 320, TrafficCategory.DATA)  # queues behind
        assert first == 10
        assert second == 20

    def test_backlog_drains_in_real_time(self):
        """Work-conserving: the queue empties while no one books."""
        ch = make_channel(bpc=32.0, latency=0)
        ch.book(0, 320, TrafficCategory.DATA)  # backlog 10
        done = ch.book(100, 32, TrafficCategory.DATA)
        assert done == 101  # backlog long gone; just the 1-cycle service

    def test_no_holes_from_future_bookings(self):
        """A booking with a far-future timestamp must not block earlier
        traffic - the serial-Merkle-walk pathology the leaky bucket fixes."""
        ch = make_channel(bpc=32.0, latency=0)
        ch.book(10_000, 32, TrafficCategory.DATA)  # chained access, far future
        done = ch.book(0, 32, TrafficCategory.DATA)
        # Only the one-transaction backlog is visible, not a 10k-cycle hole.
        assert done <= 2

    def test_busy_cycles_accumulate(self):
        ch = make_channel(bpc=32.0)
        ch.book(0, 320, TrafficCategory.DATA)
        ch.book(0, 320, TrafficCategory.MAC)
        assert ch.busy_cycles == 20

    def test_utilization(self):
        ch = make_channel(bpc=32.0)
        ch.book(0, 3200, TrafficCategory.DATA)
        assert ch.utilization(200) == pytest.approx(0.5)
        assert ch.utilization(0) == 0.0


class TestPriority:
    def test_priority_overtakes_bulk(self):
        ch = make_channel(bpc=32.0, latency=0)
        ch.book(0, 3200, TrafficCategory.DATA)  # bulk: 100-cycle backlog
        prio = ch.book(0, 32, TrafficCategory.MAC, priority=True)
        bulk = ch.book(0, 32, TrafficCategory.DATA)
        assert prio < bulk  # the small demand read jumped the page copy

    def test_priority_work_delays_bulk(self):
        ch = make_channel(bpc=32.0, latency=0)
        ch.book(0, 320, TrafficCategory.MAC, priority=True)  # 10 cycles
        bulk = ch.book(0, 32, TrafficCategory.DATA)
        assert bulk == 11  # bulk sees the priority work as backlog

    def test_priority_queue_among_itself(self):
        ch = make_channel(bpc=32.0, latency=0)
        first = ch.book(0, 320, TrafficCategory.MAC, priority=True)
        second = ch.book(0, 320, TrafficCategory.MAC, priority=True)
        assert second > first


class TestTrafficAccounting:
    def test_stats_tagged_with_side_and_category(self):
        stats = StatRegistry()
        ch = make_channel(stats=stats)
        ch.book(0, 64, TrafficCategory.COUNTER)
        assert stats.bytes_for(Side.DEVICE, TrafficCategory.COUNTER) == 64
        assert stats.bytes_for(Side.CXL) == 0


class TestLinkPair:
    def test_directions_independent(self):
        stats = StatRegistry()
        link = LinkPair(bytes_per_cycle=16.0, latency_cycles=0, stats=stats)
        rx = link.to_device.book(0, 800, TrafficCategory.DATA)
        tx = link.to_cxl.book(0, 32, TrafficCategory.DATA)
        assert tx < rx  # TX did not queue behind RX

    def test_half_bandwidth_each(self):
        link = LinkPair(bytes_per_cycle=16.0, latency_cycles=0, stats=StatRegistry())
        assert link.to_device.bytes_per_cycle == pytest.approx(8.0)

    def test_busy_cycles_summed(self):
        link = LinkPair(bytes_per_cycle=16.0, latency_cycles=0, stats=StatRegistry())
        link.to_device.book(0, 80, TrafficCategory.DATA)
        link.to_cxl.book(0, 80, TrafficCategory.DATA)
        assert link.busy_cycles == 20

    def test_sides_are_cxl(self):
        stats = StatRegistry()
        link = LinkPair(bytes_per_cycle=16.0, latency_cycles=0, stats=stats)
        link.to_device.book(0, 32, TrafficCategory.MAC)
        assert stats.bytes_for(Side.CXL, TrafficCategory.MAC) == 32


class TestCryptoEngine:
    def test_single_op_latency(self):
        engine = CryptoEngine("aes", latency_cycles=40, interval_cycles=4)
        assert engine.book(0, 1) == 40

    def test_pipelining(self):
        engine = CryptoEngine("aes", latency_cycles=40, interval_cycles=4)
        done = engine.book(0, 8)
        assert done == 7 * 4 + 40 + 4 - 4  # 8 ops, one every 4 cycles

    def test_backlog_drains(self):
        engine = CryptoEngine("aes", latency_cycles=40, interval_cycles=4)
        engine.book(0, 100)
        # Long after the burst, a single op sees an idle pipe again.
        assert engine.book(10_000, 1) == 10_040

    def test_sector_count_validated(self):
        with pytest.raises(SimulationError):
            CryptoEngine("aes", 40, 4).book(0, 0)

    def test_counts_ops(self):
        engine = CryptoEngine("aes", 40, 4)
        engine.book(0, 3)
        engine.book(0, 2)
        assert engine.sectors_processed == 5

"""Unit tests for the four counter organizations (repro.metadata.counters)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CounterOverflowError
from repro.metadata.counters import (
    CollapsedCounterStore,
    ConventionalSplitCounterStore,
    CounterPair,
    InterleavingFriendlyCounterStore,
    MonolithicCounterStore,
)


class TestMonolithic:
    def test_starts_at_zero(self):
        store = MonolithicCounterStore()
        assert store.read(5) == CounterPair(major=0, minor=0)

    def test_increment(self):
        store = MonolithicCounterStore()
        assert store.increment(5).pair.major == 1
        assert store.increment(5).pair.major == 2
        assert store.read(6).major == 0  # independent sectors

    def test_width_guard(self):
        store = MonolithicCounterStore(counter_bits=2)
        store.increment(0)
        store.increment(0)
        store.increment(0)
        with pytest.raises(CounterOverflowError):
            store.increment(0)


class TestConventionalSplit:
    def test_group_of_32_sectors(self):
        store = ConventionalSplitCounterStore()
        assert store.group_index(0) == store.group_index(31)
        assert store.group_index(31) != store.group_index(32)

    def test_increment_isolated_until_overflow(self):
        store = ConventionalSplitCounterStore()
        store.increment(0)
        assert store.read(0) == CounterPair(0, 1)
        assert store.read(1) == CounterPair(0, 0)

    def test_minor_overflow_resets_whole_group(self):
        store = ConventionalSplitCounterStore(minor_bits=3)
        store.increment(5)  # give a sibling some history
        result = None
        for _ in range(8):
            result = store.increment(0)
        assert result.overflowed
        assert result.pair.major == 1
        # Every sibling under the shared major must re-encrypt.
        assert result.reencrypt_units == tuple(range(32))
        # Sibling minors were reset - its old pad can never be reused
        # because the major moved on.
        assert store.read(5) == CounterPair(1, 0)

    def test_overflow_written_sector_distinguishable(self):
        """After reset, the written sector is at minor 1, siblings at 0."""
        store = ConventionalSplitCounterStore(minor_bits=3)
        for _ in range(8):
            result = store.increment(0)
        assert result.pair == CounterPair(1, 1)
        assert store.read(0) == CounterPair(1, 1)
        assert store.read(1) == CounterPair(1, 0)

    def test_set_major_forces_reencrypt_list(self):
        store = ConventionalSplitCounterStore()
        siblings = store.set_major(0, 7)
        assert len(siblings) == 32
        assert store.read_major(0) == 7
        # Same major again: no work.
        assert store.set_major(3, 7) == ()

    def test_pairs_never_repeat_within_group_history(self):
        """No (major, minor) pair is ever issued twice for one sector."""
        store = ConventionalSplitCounterStore(minor_bits=3)
        seen = set()
        for _ in range(40):
            pair = store.increment(2).pair
            assert (pair.major, pair.minor) not in seen
            seen.add((pair.major, pair.minor))


class TestInterleavingFriendly:
    def test_install_and_tag_check(self):
        store = InterleavingFriendlyCounterStore()
        store.install(10, epoch=5, cxl_page=99)
        assert store.is_installed_for(10, 99)
        assert not store.is_installed_for(10, 98)
        assert not store.is_installed_for(11, 99)

    def test_install_resets_minors(self):
        store = InterleavingFriendlyCounterStore()
        store.install(0, epoch=3, cxl_page=1)
        for s in range(8):
            assert store.read(0, s) == CounterPair(3, 0)

    def test_increment_chunk_local(self):
        store = InterleavingFriendlyCounterStore()
        store.install(0, epoch=0, cxl_page=1)
        store.install(1, epoch=0, cxl_page=2)
        store.increment(0, 3)
        assert store.read(0, 3).minor == 1
        assert store.read(1, 3).minor == 0  # neighbour chunk untouched

    def test_overflow_stays_within_chunk(self):
        """The Figure-4 guarantee: overflow re-encrypts 8 sectors, never a
        neighbour chunk from another page."""
        store = InterleavingFriendlyCounterStore(minor_bits=2)
        store.install(0, epoch=0, cxl_page=1)
        result = None
        for _ in range(4):
            result = store.increment(0, 0)
        assert result.overflowed
        assert result.reencrypt_units == tuple(range(8))
        assert result.pair == CounterPair(1, 1)

    def test_collapse_predicate(self):
        store = InterleavingFriendlyCounterStore()
        store.install(4, epoch=9, cxl_page=2)
        assert not store.any_minor_nonzero(4)
        store.increment(4, 7)
        assert store.any_minor_nonzero(4)

    def test_collapse_predicate_survives_overflow(self):
        store = InterleavingFriendlyCounterStore(minor_bits=2)
        store.install(0, epoch=0, cxl_page=1)
        for _ in range(4):
            store.increment(0, 0)
        assert store.any_minor_nonzero(0)

    def test_evict_uninstalls(self):
        store = InterleavingFriendlyCounterStore()
        store.install(3, epoch=1, cxl_page=7)
        store.evict(3)
        assert not store.is_installed_for(3, 7)
        with pytest.raises(KeyError):
            store.read(3, 0)

    def test_read_uninstalled_raises(self):
        with pytest.raises(KeyError):
            InterleavingFriendlyCounterStore().read(0, 0)


class TestCollapsed:
    def test_epoch_starts_at_zero(self):
        store = CollapsedCounterStore()
        assert store.chunk_epoch(0, 0) == 0
        assert store.read(0, 0) == CounterPair(0, 0)

    def test_collapse_advances_epoch(self):
        store = CollapsedCounterStore()
        e0 = store.chunk_epoch(3, 5)
        store.collapse(3, 5)
        assert store.chunk_epoch(3, 5) == e0 + 1
        assert store.chunk_epoch(3, 6) == 0  # neighbour chunk untouched

    def test_epochs_strictly_increase(self):
        store = CollapsedCounterStore(minor_bits=3)
        last = -1
        for _ in range(30):  # crosses several page-major overflows
            store.collapse(0, 0)
            epoch = store.chunk_epoch(0, 0)
            assert epoch > last
            last = epoch

    def test_page_major_overflow_reencrypts_page(self):
        store = CollapsedCounterStore(minor_bits=2, chunks_per_page=4)
        result = None
        for _ in range(4):
            result = store.collapse(0, 1)
        assert result.overflowed
        assert result.reencrypt_units == (0, 1, 2, 3)

    def test_major_width_guard(self):
        store = CollapsedCounterStore(minor_bits=1, major_bits=1, chunks_per_page=2)
        store.collapse(0, 0)   # minor 0->1
        store.collapse(0, 0)   # overflow: major 0->1
        store.collapse(0, 0)   # minor 0->1
        with pytest.raises(CounterOverflowError):
            store.collapse(0, 0)  # major would need 2 bits

    @given(ops=st.lists(st.integers(0, 15), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_epoch_monotone_per_chunk(self, ops):
        """Whatever the collapse interleaving, each chunk's epoch only grows."""
        store = CollapsedCounterStore()
        last = {}
        for chunk in ops:
            store.collapse(0, chunk)
            epoch = store.chunk_epoch(0, chunk)
            assert epoch > last.get(chunk, -1)
            last[chunk] = epoch


@given(
    increments=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 7)), min_size=1, max_size=200
    )
)
@settings(max_examples=30, deadline=None)
def test_ifsc_pairs_never_repeat(increments):
    """One-time-pad safety across arbitrary chunk/sector write patterns."""
    store = InterleavingFriendlyCounterStore(minor_bits=3)
    for chunk in range(4):
        store.install(chunk, epoch=0, cxl_page=chunk)
    seen = set()
    for chunk, sector in increments:
        pair = store.increment(chunk, sector).pair
        key = (chunk, sector, pair.major, pair.minor)
        assert key not in seen
        seen.add(key)

"""Property-based invariants of the timing simulator.

Hypothesis generates workload shapes; the invariants below must hold for
every one of them - they are conservation laws of the model, not tuning
outcomes:

* residency behaviour (fills/evictions) is identical across security models
  for the same trace - models differ in *cost*, never in *what migrates*;
* data traffic is conserved: every fill moves exactly one page (or, in chunk
  mode, every chunk fill exactly one chunk) across the link RX, and TX is a
  whole number of writeback units;
* no security model is faster than running with no security on read-only
  workloads (with writes, Salus's fine dirty tracking may legitimately move
  less data than the coarse-bit unprotected system);
* the simulator is deterministic.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.harness.runner import run_model
from repro.sim.stats import Side, TrafficCategory
from repro.workloads.generators import WorkloadSpec, generate_trace

CFG = SystemConfig.small()
CHUNK_CFG = SystemConfig.small(gpu=replace(CFG.gpu, fill_granularity="chunk"))

spec_strategy = st.builds(
    WorkloadSpec,
    name=st.just("prop"),
    footprint_pages=st.sampled_from([48, 96, 160]),
    chunk_coverage=st.floats(min_value=0.15, max_value=1.0),
    concurrent_pages=st.integers(1, 12),
    write_fraction=st.floats(min_value=0.0, max_value=0.6),
    sectors_per_chunk_touched=st.integers(2, 8),
    reuse=st.integers(1, 3),
    compute_per_mem=st.integers(0, 8),
    page_order=st.sampled_from(["stream", "tiled", "zipf"]),
)


@given(spec=spec_strategy, seed=st.integers(0, 4))
@settings(max_examples=8, deadline=None)
def test_residency_identical_across_models(spec, seed):
    trace = generate_trace(spec, 1200, seed=seed, num_sms=CFG.gpu.num_sms)
    results = [run_model(CFG, trace, m) for m in ("nosec", "baseline", "salus")]
    assert len({r.fills for r in results}) == 1
    assert len({r.evictions for r in results}) == 1


@given(spec=spec_strategy, seed=st.integers(0, 4))
@settings(max_examples=8, deadline=None)
def test_page_mode_data_conservation(spec, seed):
    trace = generate_trace(spec, 1200, seed=seed, num_sms=CFG.gpu.num_sms)
    result = run_model(CFG, trace, "nosec")
    geom = CFG.geometry
    # The stat registry sums both link directions; in page mode every unit
    # is a whole page (fills inbound, coarse-bit dirty writebacks outbound):
    #   total = fills * page + dirty_evictions * page.
    total = result.stats.bytes_for(Side.CXL, TrafficCategory.DATA)
    assert total % geom.page_bytes == 0
    assert total >= result.fills * geom.page_bytes
    assert total <= (result.fills + result.evictions) * geom.page_bytes


@given(spec=spec_strategy, seed=st.integers(0, 4))
@settings(max_examples=8, deadline=None)
def test_chunk_mode_data_conservation(spec, seed):
    trace = generate_trace(spec, 1200, seed=seed, num_sms=CHUNK_CFG.gpu.num_sms)
    result = run_model(CHUNK_CFG, trace, "nosec")
    geom = CHUNK_CFG.geometry
    chunk_fills = result.counters["chunk_fills"]
    rx_data = chunk_fills * geom.chunk_bytes
    total = result.stats.bytes_for(Side.CXL, TrafficCategory.DATA)
    # total = chunk fills in + whole-page coarse writebacks out.
    assert total >= rx_data
    assert (total - rx_data) % geom.page_bytes == 0
    assert chunk_fills <= result.fills * geom.chunks_per_page


@given(spec=spec_strategy, seed=st.integers(0, 4))
@settings(max_examples=6, deadline=None)
def test_read_only_security_never_speeds_up(spec, seed):
    read_only = replace(spec, write_fraction=0.0)
    trace = generate_trace(read_only, 1000, seed=seed, num_sms=CFG.gpu.num_sms)
    nosec = run_model(CFG, trace, "nosec")
    for model in ("baseline", "salus"):
        assert run_model(CFG, trace, model).ipc <= nosec.ipc + 1e-9


@given(spec=spec_strategy)
@settings(max_examples=4, deadline=None)
def test_simulation_deterministic(spec):
    trace = generate_trace(spec, 800, seed=1, num_sms=CFG.gpu.num_sms)
    a = run_model(CFG, trace, "salus")
    b = run_model(CFG, trace, "salus")
    assert a.cycles == b.cycles
    assert a.stats.breakdown() == b.stats.breakdown()


@given(
    spec=spec_strategy.filter(lambda s: s.chunk_coverage <= 0.4),
    seed=st.integers(0, 3),
)
@settings(max_examples=6, deadline=None)
def test_salus_traffic_advantage_on_sparse_workloads(spec, seed):
    """For any sparse-coverage workload, Salus never moves more security
    bytes over the link than the conventional design."""
    trace = generate_trace(spec, 1500, seed=seed, num_sms=CFG.gpu.num_sms)
    baseline = run_model(CFG, trace, "baseline")
    salus = run_model(CFG, trace, "salus")
    assert salus.stats.security_bytes(Side.CXL) <= baseline.stats.security_bytes(
        Side.CXL
    )

"""Tests for the simulation job service (src/repro/service/) and its client.

Covers the ISSUE acceptance criteria:

* N concurrent identical submissions -> exactly one simulation (one
  ledger ``run`` entry; every submitter gets the same fingerprint);
* a full queue yields a retryable saturation error (HTTP 429 +
  Retry-After over the wire);
* graceful shutdown drains in-flight jobs and leaves the ledger flushed;
* a service-mode quick sweep reproduces the exact result fingerprints
  recorded in BENCH_perf.json - service execution is bit-identical to
  local execution.
"""

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.config import ConfigError, SystemConfig
from repro.errors import ServiceClosedError, ServiceError, ServiceSaturatedError
from repro.gpu.gpusim import RunResult
from repro.harness.client import RemoteEngine, ServiceClient, job_payload
from repro.harness.engine import SimJob, TraceSpec
from repro.harness.ledger import RunLedger
from repro.service import (
    CacheEvictionPolicy,
    ServiceConfig,
    SimService,
    SimServiceServer,
    evict_result_cache,
    parse_job_payload,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
CFG = SystemConfig.small()
N = 400
SEED = 3


def small_job(model="nosec", bench="nw", seed=SEED, n=N):
    return SimJob(config=CFG, trace=TraceSpec(bench, n, seed), model=model)


def run_async(coro):
    return asyncio.run(coro)


# -- config round trip (what makes remote submission content-addressed) ------

class TestConfigRoundTrip:
    @pytest.mark.parametrize("config", [
        SystemConfig.bench(),
        SystemConfig.small(),
        SystemConfig.volta(),
        SystemConfig.bench().with_cxl_devices(3, sharding="range"),
        SystemConfig.bench().with_cxl_bw_ratio(1 / 4),
        SystemConfig.small().with_capacity_ratio(0.5),
    ])
    def test_from_dict_preserves_fingerprint(self, config):
        clone = SystemConfig.from_dict(config.to_dict())
        assert clone.fingerprint() == config.fingerprint()
        assert clone.to_dict() == config.to_dict()

    def test_from_dict_survives_json(self):
        config = SystemConfig.bench().with_cxl_devices(2)
        wire = json.loads(json.dumps(config.to_dict()))
        assert SystemConfig.from_dict(wire).fingerprint() == config.fingerprint()

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigError):
            SystemConfig.from_dict("volta")


class TestJobPayload:
    def test_payload_round_trips_to_same_fingerprint(self):
        job = small_job("salus")
        parsed = parse_job_payload(json.loads(json.dumps(job_payload(job))))
        assert parsed.fingerprint() == job.fingerprint()

    def test_rejects_unknown_bench_and_model(self):
        with pytest.raises(ConfigError):
            parse_job_payload({"bench": "nope", "model": "nosec"})
        with pytest.raises(ConfigError):
            parse_job_payload({"bench": "nw", "model": "nope"})
        with pytest.raises(ConfigError):
            parse_job_payload({"bench": "nw", "model": "nosec",
                               "n_accesses": "lots"})


# -- cache eviction (store.py) -----------------------------------------------

def _fake_entry(root, name, mtime, size=100):
    path = root / name[:2] / f"{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("x" * size)
    import os

    os.utime(path, (mtime, mtime))
    return path


class TestEviction:
    def test_disabled_policy_keeps_everything(self, tmp_path):
        _fake_entry(tmp_path, "aa" * 20, 1000.0)
        report = evict_result_cache(tmp_path, CacheEvictionPolicy())
        assert report.evicted == 0 and report.scanned == 0

    def test_ttl_drops_only_stale_entries(self, tmp_path):
        old = _fake_entry(tmp_path, "aa" * 20, 1000.0)
        new = _fake_entry(tmp_path, "bb" * 20, 9000.0)
        report = evict_result_cache(
            tmp_path, CacheEvictionPolicy(ttl_s=500.0), now=9100.0
        )
        assert report.evicted_ttl == 1 and report.kept == 1
        assert not old.exists() and new.exists()
        # the emptied shard directory is pruned
        assert not old.parent.exists()

    def test_lru_keeps_most_recently_used(self, tmp_path):
        names = [f"{i:02d}" * 20 for i in range(5)]
        for i, name in enumerate(names):
            _fake_entry(tmp_path, name, 1000.0 + i)
        report = evict_result_cache(
            tmp_path, CacheEvictionPolicy(max_entries=2), now=2000.0
        )
        assert report.evicted_lru == 3 and report.kept == 2
        survivors = {p.stem for p in tmp_path.glob("*/*.json")}
        assert survivors == set(names[-2:])

    def test_ledger_is_never_evicted(self, tmp_path):
        _fake_entry(tmp_path, "aa" * 20, 1000.0)
        ledger = tmp_path / "ledger.jsonl"
        ledger.write_text('{"bench": "nw"}\n')
        report = evict_result_cache(
            tmp_path, CacheEvictionPolicy(max_entries=0, ttl_s=1.0), now=99999.0
        )
        assert report.evicted == 1
        assert ledger.exists()

    def test_cache_read_refreshes_mtime_for_lru(self, tmp_path):
        # ResultCache.get touches mtime on hit, so a recently *read* entry
        # outranks a recently *written* one under LRU.
        from repro.harness.engine import ResultCache

        cache = ResultCache(tmp_path)
        job = small_job()
        result = job.execute()
        fp = job.fingerprint()
        path = cache.put(fp, job, result)
        import os

        os.utime(path, (1000.0, 1000.0))
        assert cache.get(fp) is not None
        assert path.stat().st_mtime > 1000.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CacheEvictionPolicy(max_entries=-1)
        with pytest.raises(ValueError):
            CacheEvictionPolicy(ttl_s=-0.5)


# -- SimService core (no HTTP) -----------------------------------------------

class TestSimService:
    def test_identical_submissions_coalesce_into_one_simulation(self, tmp_path):
        async def scenario():
            service = SimService(ServiceConfig(
                workers=2, queue_depth=8, cache_dir=str(tmp_path)
            ))
            await service.start()
            try:
                await service.pause()  # hold dispatch so all 5 attach in flight
                job = small_job()
                records = [service.submit(job) for _ in range(5)]
                assert [c for _, c in records] == [False, True, True, True, True]
                assert len({id(r) for r, _ in records}) == 1
                await service.resume()
                record = records[0][0]
                await asyncio.wait_for(record.done.wait(), timeout=60)
                assert record.state == "done"
                return service.stats, record
            finally:
                await service.shutdown(drain=True)

        stats, record = run_async(scenario())
        assert stats.simulations == 1
        assert stats.submitted == 1 and stats.coalesced == 4
        # exactly one simulated ledger entry; one attach entry per rider
        ledger = RunLedger(tmp_path)
        sources = sorted(e.source for e in ledger.entries())
        assert sources == ["coalesced"] * 4 + ["run"]
        fingerprints = {e.result_fingerprint for e in ledger.entries()}
        assert fingerprints == {record.result.fingerprint()}

    def test_completed_record_answers_as_memo_hit(self, tmp_path):
        async def scenario():
            service = SimService(ServiceConfig(
                workers=1, queue_depth=4, cache_dir=str(tmp_path)
            ))
            await service.start()
            try:
                job = small_job()
                record, coalesced = service.submit(job)
                assert not coalesced
                await asyncio.wait_for(record.done.wait(), timeout=60)
                again, coalesced = service.submit(job)
                assert coalesced and again is record
                return service.stats
            finally:
                await service.shutdown(drain=True)

        stats = run_async(scenario())
        assert stats.memo_hits == 1 and stats.simulations == 1
        assert [e.source for e in RunLedger(tmp_path).entries(source="memory")]

    def test_full_queue_raises_retryable_saturation(self, tmp_path):
        async def scenario():
            service = SimService(ServiceConfig(
                workers=1, queue_depth=2, cache_dir=str(tmp_path),
                retry_after_s=2.5,
            ))
            await service.start()
            try:
                await service.pause()
                service.submit(small_job(seed=101))
                service.submit(small_job(seed=102))
                with pytest.raises(ServiceSaturatedError) as exc_info:
                    service.submit(small_job(seed=103))
                assert exc_info.value.retry_after_s == 2.5
                # the queued jobs still complete once resumed
                await service.resume()
                for rec in list(service.records.values()):
                    await asyncio.wait_for(rec.done.wait(), timeout=60)
                return service.stats
            finally:
                await service.shutdown(drain=True)

        stats = run_async(scenario())
        assert stats.rejected == 1
        assert stats.completed == 2

    def test_graceful_shutdown_drains_and_flushes_ledger(self, tmp_path):
        async def scenario():
            service = SimService(ServiceConfig(
                workers=1, queue_depth=8, cache_dir=str(tmp_path)
            ))
            await service.start()
            records = [service.submit(small_job(seed=s))[0] for s in (7, 8)]
            await service.shutdown(drain=True)  # returns only when drained
            return records

        records = run_async(scenario())
        assert all(r.state == "done" for r in records)
        entries = RunLedger(tmp_path).entries()
        assert sorted(e.source for e in entries) == ["run", "run"]
        assert {e.result_fingerprint for e in entries} == {
            r.result.fingerprint() for r in records
        }

    def test_abandoning_shutdown_cancels_queued_jobs(self, tmp_path):
        async def scenario():
            service = SimService(ServiceConfig(
                workers=1, queue_depth=8, cache_dir=str(tmp_path)
            ))
            await service.start()
            await service.pause()  # nothing dispatches
            records = [service.submit(small_job(seed=s))[0] for s in (11, 12)]
            await service.shutdown(drain=False)
            return service.stats, records

        stats, records = run_async(scenario())
        assert all(r.state == "cancelled" for r in records)
        assert stats.cancelled == 2
        assert not RunLedger(tmp_path).entries()

    def test_draining_service_rejects_new_submissions(self, tmp_path):
        async def scenario():
            service = SimService(ServiceConfig(workers=1, queue_depth=4))
            await service.start()
            await service.shutdown(drain=True)
            with pytest.raises(ServiceClosedError):
                service.submit(small_job())

        run_async(scenario())


# -- HTTP server + client -----------------------------------------------------

class ServerHarness:
    """Run SimService + SimServiceServer on a private loop thread."""

    def __init__(self, tmp_path, **config_kwargs):
        config_kwargs.setdefault("workers", 2)
        config_kwargs.setdefault("queue_depth", 8)
        config_kwargs.setdefault("cache_dir", str(tmp_path))
        self.config = ServiceConfig(**config_kwargs)
        self.url = None
        self.loop = None
        self.service = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self.service = SimService(self.config)
        await self.service.start()
        server = SimServiceServer(self.service, "127.0.0.1", 0)
        await server.start()
        self.url = server.url
        self._ready.set()
        await server.serve_until_shutdown()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "server failed to start"
        return self

    def __exit__(self, *exc):
        try:
            ServiceClient(self.url).shutdown(drain=True)
        except ServiceError:
            pass
        self._thread.join(timeout=60)


class TestServiceHTTP:
    def test_health_and_stats(self, tmp_path):
        with ServerHarness(tmp_path) as srv:
            client = ServiceClient(srv.url)
            health = client.health()
            assert health["status"] == "ok"
            assert health["queue_capacity"] == 8
            stats = client.stats()
            assert stats["stats"]["submitted"] == 0
            assert "eviction_policy" in stats

    def test_submit_result_matches_local_execution(self, tmp_path):
        job = small_job("salus")
        with ServerHarness(tmp_path) as srv:
            client = ServiceClient(srv.url)
            snapshot = client.submit(job)
            assert snapshot["fingerprint"] == job.fingerprint()
            assert snapshot["coalesced"] is False
            envelope = client.result(job.fingerprint(), timeout_s=120)
            remote = RunResult.from_dict(envelope["result"])
        local = job.execute()
        assert remote.fingerprint() == local.fingerprint()
        assert envelope["result_fingerprint"] == local.fingerprint()
        assert envelope["source"] == "run"

    def test_event_stream_ends_with_terminal_result(self, tmp_path):
        job = small_job()
        with ServerHarness(tmp_path) as srv:
            client = ServiceClient(srv.url)
            client.submit(job)
            events = list(client.events(job.fingerprint(), timeout_s=120))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "result"
        assert all(e["fingerprint"] == job.fingerprint() for e in events)
        assert events[-1]["state"] == "done"

    def test_unknown_job_is_404(self, tmp_path):
        with ServerHarness(tmp_path) as srv:
            status, _body = ServiceClient(srv.url).request(
                "GET", "/jobs/" + "0" * 40
            )
            assert status == 404

    def test_saturated_server_returns_429_with_retry_after(self, tmp_path):
        with ServerHarness(tmp_path, workers=1, queue_depth=1,
                           retry_after_s=3.0) as srv:
            client = ServiceClient(srv.url, submit_attempts=1)
            client.pause()
            client.submit(small_job(seed=31))
            with pytest.raises(ServiceSaturatedError) as exc_info:
                client.submit(small_job(seed=32))
            assert exc_info.value.retry_after_s == 3.0
            # raw status check: proper HTTP semantics, not just the mapping
            req = urllib.request.Request(
                srv.url + "/jobs", method="POST",
                data=json.dumps(job_payload(small_job(seed=33))).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as http_err:
                urllib.request.urlopen(req, timeout=30)
            assert http_err.value.code == 429
            assert http_err.value.headers["Retry-After"] == "3"
            client.resume()

    def test_concurrent_identical_submissions_simulate_once(self, tmp_path):
        """ISSUE acceptance: N concurrent clients, one simulation."""
        job = small_job("baseline", seed=77)
        workers = 6
        results = [None] * workers
        with ServerHarness(tmp_path) as srv:
            ServiceClient(srv.url).pause()  # everyone attaches pre-dispatch

            def submit_and_wait(i):
                client = ServiceClient(srv.url)
                snapshot = client.submit(job)
                envelope = client.result(job.fingerprint(), timeout_s=120)
                results[i] = (snapshot, envelope)

            threads = [
                threading.Thread(target=submit_and_wait, args=(i,))
                for i in range(workers)
            ]
            for t in threads:
                t.start()
            # let every submission land before dispatch starts
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = ServiceClient(srv.url).stats()["stats"]
                if stats["submitted"] + stats["coalesced"] >= workers:
                    break
                time.sleep(0.05)
            ServiceClient(srv.url).resume()
            for t in threads:
                t.join(timeout=120)
            stats = ServiceClient(srv.url).stats()["stats"]

        assert all(r is not None for r in results)
        fingerprints = {env["result_fingerprint"] for _snap, env in results}
        assert fingerprints == {job.execute().fingerprint()}
        assert stats["simulations"] == 1
        assert stats["submitted"] == 1 and stats["coalesced"] == workers - 1
        # ledger: exactly one simulated entry; one attach entry per rider
        entries = RunLedger(tmp_path).entries()
        assert [e.source for e in entries].count("run") == 1
        assert [e.source for e in entries].count("coalesced") == workers - 1
        coalesced = [s for s, _ in results if s["coalesced"]]
        assert len(coalesced) == workers - 1

    def test_admin_evict_applies_policy(self, tmp_path):
        with ServerHarness(
            tmp_path, workers=1,
            eviction=CacheEvictionPolicy(max_entries=1),
        ) as srv:
            client = ServiceClient(srv.url)
            for seed in (51, 52, 53):
                client.submit(small_job(seed=seed))
                client.result(small_job(seed=seed).fingerprint(),
                              timeout_s=120)
            report = client.evict()
            assert report["kept"] <= 1
        assert len(list(Path(tmp_path).glob("*/*.json"))) <= 1


class TestRemoteEngine:
    def test_remote_engine_is_a_drop_in(self, tmp_path):
        with ServerHarness(tmp_path) as srv:
            engine = RemoteEngine(srv.url)
            results = engine.matrix(CFG, ["nw"], ["nosec", "salus"], N, SEED)
            assert engine.stats.simulations == 2
            # warm pass: served from the service's completed records
            results2 = engine.matrix(CFG, ["nw"], ["nosec", "salus"], N, SEED)
            assert engine.stats.simulations == 2
            assert engine.stats.memory_hits == 2
        for key, result in results.items():
            assert results2[key].fingerprint() == result.fingerprint()
        local = small_job("salus").execute()
        assert results[("nw", "salus")].fingerprint() == local.fingerprint()

    def test_run_jobs_reports_outcomes_in_order(self, tmp_path):
        jobs = [small_job(m, seed=61) for m in ("nosec", "baseline")]
        with ServerHarness(tmp_path) as srv:
            engine = RemoteEngine(srv.url)
            outcomes = engine.run_jobs(jobs)
            assert engine.last_outcomes == outcomes
        assert [o.job.model for o in outcomes] == ["nosec", "baseline"]
        assert all(o.ok and o.source == "run" for o in outcomes)

    def test_unreachable_server_is_a_service_error(self):
        engine = RemoteEngine("http://127.0.0.1:1", timeout_s=2)
        from repro.errors import EngineError

        with pytest.raises(EngineError, match="cannot reach job service"):
            engine.run_one(CFG, "nw", "nosec", N, SEED)


class TestServiceQuickSweepReference:
    """ISSUE acceptance: a service-mode quick sweep is fingerprint-identical
    to the recorded BENCH_perf.json reference - remote execution provably
    changes nothing about the results."""

    def test_served_sweep_matches_recorded_fingerprints(self, tmp_path):
        store = json.loads(
            (REPO_ROOT / "BENCH_perf.json").read_text(encoding="utf-8")
        )
        sweep = store["sweeps"]["quick"]
        ref = next(e for e in sweep["entries"] if e["label"] == "post")
        config = SystemConfig.bench()

        with ServerHarness(tmp_path, workers=2, queue_depth=16) as srv:
            engine = RemoteEngine(srv.url)
            results = engine.matrix(
                config, sweep["benches"],
                ["nosec", "baseline", "salus"],
                sweep["accesses"], sweep["seed"],
            )

        assert len(results) == len(ref["jobs"])
        for (bench, model), result in results.items():
            label = f"{bench}/{model}"
            assert result.fingerprint() == ref["jobs"][label]["fingerprint"], (
                f"{label}: service-mode result fingerprint diverged from "
                f"the recorded reference"
            )
        # and the server-side ledger recorded those exact fingerprints
        recorded = {
            e.result_fingerprint for e in RunLedger(tmp_path).entries(source="run")
        }
        assert recorded == {j["fingerprint"] for j in ref["jobs"].values()}


class TestServeCLI:
    def test_parser_accepts_serve_and_server_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args([
            "serve", "--port", "0", "--workers", "3", "--queue-depth", "5",
            "--cache-max-entries", "100", "--cache-ttl", "3600",
        ])
        assert args.func.__name__ == "cmd_serve"
        assert args.workers == 3 and args.cache_max_entries == 100
        args = parser.parse_args(["run", "nw", "--server", "http://x:1"])
        assert args.server == "http://x:1"
        args = parser.parse_args(["runs", "--source", "coalesced"])
        assert args.source == "coalesced"

    def test_cli_run_against_server_is_identical_and_coalesces(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        with ServerHarness(tmp_path) as srv:
            rc = main([
                "run", "nw", "--accesses", str(N), "--seed", str(SEED),
                "--json", "--server", srv.url,
            ])
            assert rc == 0
            payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 3
        for entry in payload:
            assert entry["engine"]["source"] == "run"

    def test_cli_trace_with_server_is_rejected(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "run", "nw", "--server", "http://127.0.0.1:1", "--trace",
        ])
        assert rc == 2
        assert "--trace" in capsys.readouterr().err

"""Cross-module invariants taken directly from the paper's figures.

These tests pin the bit-level arithmetic that makes the Salus layouts work
at all - if any constant drifts, the design claims stop being true, so they
are asserted here as executable documentation.
"""

import pytest

from repro.address import DEFAULT_GEOMETRY
from repro.config import SecurityConfig, SystemConfig
from repro.metadata.layout import (
    ConventionalLayout,
    SalusCXLLayout,
    SalusDeviceLayout,
)

GEOM = DEFAULT_GEOMETRY
SEC = SecurityConfig()


class TestFigure4InterleavingFriendlyCounters:
    """One tagged group per 256 B chunk, two groups per 32 B sector."""

    def test_group_fits_in_half_a_sector(self):
        group_bits = (
            SEC.major_counter_bits                        # 32-bit major
            + GEOM.sectors_per_chunk * SEC.minor_counter_bits  # 8 x 7-bit minors
            + 32                                          # CXL page tag
        )
        assert group_bits <= 16 * 8  # half of a 32 B counter sector

    def test_two_chunks_per_counter_sector(self):
        layout = SalusDeviceLayout(geometry=GEOM, data_sectors=1024)
        assert layout.chunks_per_counter_sector == 2

    def test_major_never_shared_across_chunks(self):
        """The whole point: a group's major covers exactly one interleaving
        chunk, so chunk movement never entangles other pages' counters."""
        layout = SalusDeviceLayout(geometry=GEOM, data_sectors=1024)
        for chunk in range(16):
            base = chunk * GEOM.sectors_per_chunk
            groups = {
                (layout.counter_sector(base + s), layout.group_in_sector(base + s))
                for s in range(GEOM.sectors_per_chunk)
            }
            assert len(groups) == 1  # all 8 sectors in one group...
        all_groups = {
            (
                layout.counter_sector(c * GEOM.sectors_per_chunk),
                layout.group_in_sector(c * GEOM.sectors_per_chunk),
            )
            for c in range(16)
        }
        assert len(all_groups) == 16  # ...and every chunk in its own


class TestFigure5MacSectorEmbedding:
    """4 x 56-bit MACs + one 32-bit collapsed major = exactly 32 bytes."""

    def test_exact_packing(self):
        assert 4 * SEC.mac_bits + SEC.major_counter_bits == 32 * 8

    def test_mac_sector_covers_one_block(self):
        layout = SalusDeviceLayout(geometry=GEOM, data_sectors=1024)
        assert layout.mac_sector(0) == layout.mac_sector(3)
        assert layout.mac_sector(3) != layout.mac_sector(4)


class TestFigure6CollapsedCxlCounters:
    """32-bit page major + 16 doubled (14-bit) per-chunk minors = 32 bytes."""

    def test_exact_packing(self):
        bits = (
            SEC.major_counter_bits
            + GEOM.chunks_per_page * SEC.cxl_minor_counter_bits
        )
        assert bits == 32 * 8

    def test_minors_doubled_vs_device_side(self):
        assert SEC.cxl_minor_counter_bits == 2 * SEC.minor_counter_bits

    def test_one_sector_protects_one_page(self):
        layout = SalusCXLLayout(geometry=GEOM, data_sectors=8 * 128)
        assert layout.num_counter_sectors == 8


class TestConventionalPacking:
    """Baseline split counters: 32-bit major + 32 x 7-bit minors = 32 bytes."""

    def test_exact_packing(self):
        bits = SEC.major_counter_bits + 32 * SEC.minor_counter_bits
        assert bits == 32 * 8

    def test_span_is_four_chunks(self):
        """The conventional major covers 1 KiB = four interleaving chunks -
        the sharing problem Section IV-A1 exists to fix."""
        layout = ConventionalLayout(geometry=GEOM, data_sectors=1024)
        sectors_covered = layout.sectors_per_counter
        assert sectors_covered * GEOM.sector_bytes == 4 * GEOM.chunk_bytes


class TestBmtNodePacking:
    def test_node_holds_arity_hashes(self):
        """A 64 B node holds 8 x 64-bit child digests."""
        assert SEC.bmt_node_bytes * 8 == SEC.bmt_arity * 64


class TestPaperBandwidthRatios:
    def test_cxl_is_one_sixteenth_by_default(self):
        gpu = SystemConfig.volta().gpu
        assert gpu.cxl_bytes_per_cycle == pytest.approx(
            gpu.device_bytes_per_cycle_per_channel * gpu.num_channels / 16
        )

    def test_figure13_sweep_points_constructible(self):
        base = SystemConfig.bench()
        for ratio in (1 / 32, 1 / 16, 1 / 8, 1 / 4):
            assert base.with_cxl_bw_ratio(ratio).gpu.cxl_bw_ratio == pytest.approx(ratio)

    def test_figure14_sweep_points_constructible(self):
        base = SystemConfig.bench()
        for ratio in (0.20, 0.35, 0.50):
            cfg = base.with_capacity_ratio(ratio)
            assert cfg.device_capacity_ratio == pytest.approx(ratio)

"""Unit tests for the simulation kernel (events + stats)."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.stats import Side, StatRegistry, TrafficCategory


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(30, lambda: fired.append("c"))
        q.schedule(10, lambda: fired.append("a"))
        q.schedule(20, lambda: fired.append("b"))
        q.run()
        assert fired == ["a", "b", "c"]
        assert q.now == 30

    def test_same_time_fifo(self):
        q = EventQueue()
        fired = []
        for name in "abc":
            q.schedule(5, lambda n=name: fired.append(n))
        q.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_at(self):
        q = EventQueue()
        q.schedule(10, lambda: None)
        q.step()
        q.schedule_at(25, lambda: None)
        q.step()
        assert q.now == 25

    def test_no_past_scheduling(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1, lambda: None)
        q.schedule(10, lambda: None)
        q.step()
        with pytest.raises(SimulationError):
            q.schedule_at(5, lambda: None)

    def test_cancel(self):
        q = EventQueue()
        fired = []
        event = q.schedule(10, lambda: fired.append("x"))
        q.schedule(20, lambda: fired.append("y"))
        q.cancel(event)
        q.run()
        assert fired == ["y"]

    def test_run_until(self):
        q = EventQueue()
        fired = []
        q.schedule(10, lambda: fired.append(1))
        q.schedule(100, lambda: fired.append(2))
        q.run(until=50)
        assert fired == [1]
        assert len(q) == 1

    def test_max_events_guard(self):
        q = EventQueue()

        def reschedule():
            q.schedule(1, reschedule)

        q.schedule(0, reschedule)
        fired = q.run(max_events=50)
        assert fired == 50

    def test_self_scheduling_during_fire(self):
        q = EventQueue()
        fired = []

        def first():
            fired.append("first")
            q.schedule(5, lambda: fired.append("second"))

        q.schedule(0, first)
        q.run()
        assert fired == ["first", "second"]
        assert q.now == 5

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        e = q.schedule(1, lambda: None)
        q.schedule(2, lambda: None)
        q.cancel(e)
        assert len(q) == 1


class TestStatRegistry:
    def test_traffic_tallies(self):
        stats = StatRegistry()
        stats.add_traffic(Side.DEVICE, TrafficCategory.DATA, 100)
        stats.add_traffic(Side.DEVICE, TrafficCategory.MAC, 50)
        stats.add_traffic(Side.CXL, TrafficCategory.DATA, 25)
        assert stats.total_bytes() == 175
        assert stats.total_bytes(Side.DEVICE) == 150
        assert stats.data_bytes() == 125
        assert stats.bytes_for(Side.CXL, TrafficCategory.DATA) == 25

    def test_security_classification(self):
        """Exactly counter/MAC/BMT/re-encryption traffic is 'security'."""
        stats = StatRegistry()
        for category in TrafficCategory:
            stats.add_traffic(Side.DEVICE, category, 10)
        assert stats.security_bytes() == 40
        assert TrafficCategory.DATA.is_security is False
        assert TrafficCategory.MAPPING.is_security is False
        assert TrafficCategory.REENC_DATA.is_security is True

    def test_counters(self):
        stats = StatRegistry()
        stats.bump("fills")
        stats.bump("fills", 3)
        assert stats.counters["fills"] == 4

    def test_ipc(self):
        stats = StatRegistry()
        assert stats.ipc == 0.0
        stats.instructions = 500
        stats.final_cycle = 1000
        assert stats.ipc == 0.5

    def test_breakdown_keys(self):
        stats = StatRegistry()
        stats.add_traffic(Side.CXL, TrafficCategory.BMT, 64)
        assert stats.breakdown() == {"cxl.bmt": 64}

    def test_merge(self):
        a, b = StatRegistry(), StatRegistry()
        a.add_traffic(Side.DEVICE, TrafficCategory.DATA, 10)
        b.add_traffic(Side.DEVICE, TrafficCategory.DATA, 5)
        b.bump("x")
        b.instructions = 7
        b.final_cycle = 99
        a.merge([b])
        assert a.bytes_for(Side.DEVICE, TrafficCategory.DATA) == 15
        assert a.counters["x"] == 1
        assert a.final_cycle == 99

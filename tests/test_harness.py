"""Tests for the experiment harness (runner, report, experiments)."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.harness.experiments import (
    cached_run,
    clear_cache,
    run_ablation,
    run_fig03_motivation,
    run_fig10_ipc,
    run_fig11_traffic,
    run_fig12_bandwidth,
    run_fig13_cxl_bw,
    run_fig14_footprint,
)
from repro.harness.report import format_table, geomean, normalized
from repro.harness.runner import MODEL_NAMES, model_factory, run_benchmark, run_model
from repro.workloads.suite import build_trace

# A deliberately tiny setup so every figure function runs in seconds.
CFG = SystemConfig.small()
FAST = dict(config=CFG, benchmarks=("nw", "sgemm"), n_accesses=1200, seed=3)


@pytest.fixture(autouse=True, scope="module")
def _clean_cache():
    clear_cache()
    yield
    clear_cache()


class TestReportHelpers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_format_table(self):
        text = format_table(
            ("name", "value"), [("a", 1.5), ("bb", 2.0)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "1.5000" in text

    def test_normalized(self):
        out = normalized({"a": 2.0, "b": 4.0}, basis="a")
        assert out == {"a": 1.0, "b": 2.0}
        with pytest.raises(ValueError):
            normalized({"a": 0.0}, basis="a")


class TestRunner:
    def test_all_model_names_resolve(self):
        for name in MODEL_NAMES:
            assert callable(model_factory(name))

    def test_unknown_model(self):
        with pytest.raises(ConfigError):
            model_factory("quantum")

    def test_run_model_labels_result(self):
        trace = build_trace("nw", n_accesses=400, num_sms=CFG.gpu.num_sms, scale=0.1)
        result = run_model(CFG, trace, "salus-nofoa")
        assert result.model == "salus-nofoa"
        assert result.workload == "nw"
        assert result.cycles > 0

    def test_run_benchmark_default_models(self):
        trace = build_trace("nw", n_accesses=400, num_sms=CFG.gpu.num_sms, scale=0.1)
        results = run_benchmark(CFG, trace)
        assert set(results) == {"nosec", "baseline", "salus"}


class TestFigureRunners:
    def test_cached_run_reuses(self):
        r1 = cached_run(CFG, "nw", "nosec", 1200, 3)
        r2 = cached_run(CFG, "nw", "nosec", 1200, 3)
        assert r1 is r2

    def test_fig03(self):
        result = run_fig03_motivation(**FAST)
        assert len(result.rows) == 2
        assert result.summary["geomean_slowdown"] > 1.0

    def test_fig10(self):
        result = run_fig10_ipc(**FAST)
        assert result.figure == "fig10"
        for _, base, salus, improvement in result.rows:
            assert 0 < base <= 1.2
            assert improvement == pytest.approx(salus / base)
        assert "geomean_improvement" in result.summary

    def test_fig11(self):
        result = run_fig11_traffic(**FAST)
        for _, base_mb, salus_mb, ratio in result.rows:
            assert ratio == pytest.approx(salus_mb / base_mb)
        assert result.summary["mean_normalized_traffic"] < 1.0

    def test_fig12(self):
        result = run_fig12_bandwidth(**FAST)
        assert len(result.rows) == 2
        assert "mean_cxl_usage_reduction" in result.summary

    def test_fig13(self):
        result = run_fig13_cxl_bw(ratios=(1 / 16, 1 / 4), **FAST)
        assert [row[0] for row in result.rows] == ["1/16", "1/4"]

    def test_fig14(self):
        result = run_fig14_footprint(capacity_ratios=(0.35, 0.5), **FAST)
        assert len(result.rows) == 2

    def test_ablation(self):
        result = run_ablation(**FAST)
        variants = [row[0] for row in result.rows]
        assert variants[0] == "baseline"
        assert variants[-1] == "salus"
        assert len(variants) == 6

    def test_to_text_renders(self):
        result = run_fig10_ipc(**FAST)
        text = result.to_text()
        assert "Fig. 10" in text
        assert "geomean_improvement" in text

"""The dual-engine contract: scalar and batched kernels are bit-identical.

Three layers of evidence, mirroring how the batched engine is built:

1. unit equivalence of every vectorized primitive against its scalar
   twin (shard maps, interleaver coordinates, BMT walk ordinals, counter
   lookups, cache tag probes, trace fingerprints);
2. whole-run equivalence - identical ``RunResult.to_dict()`` trees and
   fingerprints - across security models, device counts, fill
   granularities, and hypothesis-generated workload shapes;
3. harness equivalence - the experiment engine and run ledger record the
   same fingerprints whichever kernel executed the job.
"""

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.address import ShardMap
from repro.config import SecurityConfig, SystemConfig
from repro.errors import ConfigError
from repro.harness.runner import run_model
from repro.kernel import KERNEL_ENV_VAR, numpy_or_none, resolve_kernel
from repro.metadata.bmt import BMTGeometry
from repro.metadata.cache import MetadataCaches
from repro.metadata.counters import (
    CollapsedCounterStore,
    ConventionalSplitCounterStore,
)
from repro.memsys.interleave import Interleaver
from repro.memsys.sectored_cache import SectoredCache
from repro.security.fabric import MemoryFabric
from repro.sim.stats import StatRegistry
from repro.workloads.generators import WorkloadSpec, generate_trace
from repro.workloads.suite import build_trace

np = numpy_or_none()
pytestmark = pytest.mark.skipif(np is None, reason="batched kernel needs numpy")

CFG = SystemConfig.small()


# -- kernel resolution --------------------------------------------------------

class TestResolveKernel:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "batched")
        assert resolve_kernel("scalar") == "scalar"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "scalar")
        assert resolve_kernel() == "scalar"

    def test_auto_resolves_to_batched_with_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert resolve_kernel("auto") == "batched"
        assert resolve_kernel() == "batched"

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "")
        assert resolve_kernel() in ("scalar", "batched")

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            resolve_kernel("simd")

    def test_case_and_whitespace_normalized(self):
        assert resolve_kernel("  Scalar ") == "scalar"


# -- trace fingerprints -------------------------------------------------------

class TestTraceFingerprint:
    def test_numpy_and_struct_paths_agree(self, monkeypatch):
        trace = build_trace("nw", n_accesses=700, seed=3,
                            num_sms=CFG.gpu.num_sms)
        vectorized = trace.fingerprint()
        import repro.workloads.trace as trace_mod

        monkeypatch.setattr(trace_mod, "numpy_or_none", lambda: None)
        assert trace.fingerprint() == vectorized

    def test_dense_view_matches_requests(self):
        trace = build_trace("kmeans", n_accesses=400, seed=5,
                            num_sms=CFG.gpu.num_sms)
        d = trace.dense()
        assert len(d) == len(trace)
        for i, req in enumerate(trace.requests):
            assert int(d.addrs[i]) == req.cxl_addr
            assert int(d.is_write[i]) == (1 if req.is_write else 0)
            assert int(d.sm_id[i]) == req.sm
            assert int(d.warp[i]) == req.warp
        assert d.ts.tolist() == list(range(len(trace)))

    def test_dense_cache_invalidates_on_growth(self):
        trace = build_trace("nw", n_accesses=100, seed=1,
                            num_sms=CFG.gpu.num_sms)
        first = trace.dense()
        trace.requests.append(trace.requests[0])
        assert len(trace.dense()) == len(first) + 1


# -- address-layer batch queries ----------------------------------------------

class TestShardBatchQueries:
    @pytest.mark.parametrize("policy", ["page", "range"])
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_home_and_local_match_scalar(self, policy, devices):
        shard = ShardMap(geometry=CFG.geometry, num_devices=devices,
                         policy=policy, total_pages=1000)
        pages = list(range(0, 1000, 7)) + [0, 999]
        homes = shard.home_of_pages(pages)
        locals_ = shard.local_pages(pages)
        for i, page in enumerate(pages):
            assert int(homes[i]) == shard.home_of_page(page)
            assert int(locals_[i]) == shard.local_page(page)

    def test_negative_page_rejected(self):
        from repro.errors import AddressError

        shard = ShardMap(geometry=CFG.geometry, num_devices=2)
        with pytest.raises(AddressError):
            shard.home_of_pages([3, -1])

    def test_interleaver_batch_matches_scalar(self):
        inter = Interleaver(geometry=CFG.geometry,
                            num_channels=CFG.gpu.num_channels)
        cpp = CFG.geometry.chunks_per_page
        frames = [f for f in range(40) for _ in range(cpp)]
        chunks = [c for _ in range(40) for c in range(cpp)]
        channels, slots = inter.device_chunk_locations(frames, chunks)
        for i in range(len(frames)):
            channel, slot = inter.device_chunk_location(frames[i], chunks[i])
            assert int(channels[i]) == channel
            assert int(slots[i]) == slot


class TestLocateBatch:
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_matches_scalar_locate(self, devices):
        config = CFG.with_cxl_devices(devices) if devices > 1 else CFG
        pages = 64
        fabric_a = MemoryFabric(config, pages, StatRegistry())
        fabric_b = MemoryFabric(config, pages, StatRegistry())
        sector = config.geometry.sector_bytes
        addrs = [i * sector * 3 % (pages * config.geometry.page_bytes)
                 for i in range(120)]
        frames = [(i * 5) % fabric_a.num_frames for i in range(120)]
        batch = fabric_b.locate_batch(addrs, frames)
        for i in range(len(addrs)):
            assert batch[i] == fabric_a.locate(addrs[i], frames[i])

    def test_memo_install_and_input_order(self):
        config = CFG.with_cxl_devices(2)
        fabric = MemoryFabric(config, 64, StatRegistry())
        sector = config.geometry.sector_bytes
        addrs = [5 * sector, 3 * sector, 5 * sector, 900 * sector]
        frames = [1, 2, 1, 3]
        locs = fabric.locate_batch(addrs, frames)
        # Input order preserved, duplicates memo-shared.
        assert locs[0] is locs[2]
        for i in range(4):
            assert locs[i] == fabric.locate(addrs[i], frames[i])

    def test_table_backed_page_queries(self):
        config = CFG.with_cxl_devices(4)
        fabric = MemoryFabric(config, 128, StatRegistry())
        for page in range(128):
            assert fabric.home_of_page(page) == fabric.shard.home_of_page(page)
            assert fabric.local_page(page) == fabric.shard.local_page(page)


# -- metadata batch queries ---------------------------------------------------

class TestMetadataBatchQueries:
    def test_bmt_path_steps_and_table(self):
        for leaves in (1, 8, 64, 100, 512):
            geom = BMTGeometry(num_leaves=leaves)
            table = geom.path_table()
            assert table.shape == (leaves, geom.depth - 1)
            for leaf in range(leaves):
                steps = [
                    (geom.node_ordinal(lv, ix) // 2,
                     (geom.node_ordinal(lv, ix) % 2) * 2)
                    for lv, ix in geom.path(leaf)
                ]
                assert list(geom.path_steps(leaf)) == steps
                assert table[leaf].tolist() == [
                    geom.node_ordinal(lv, ix) for lv, ix in geom.path(leaf)
                ]

    def test_bmt_node_ordinals_vectorized(self):
        geom = BMTGeometry(num_leaves=100)
        pairs = [(lv, ix) for leaf in range(0, 100, 9)
                 for lv, ix in geom.path(leaf)]
        levels = [lv for lv, _ in pairs]
        indices = [ix for _, ix in pairs]
        ordinals = geom.node_ordinals(levels, indices)
        assert ordinals.tolist() == [
            geom.node_ordinal(lv, ix) for lv, ix in pairs
        ]

    def test_counter_group_indices(self):
        store = ConventionalSplitCounterStore()
        sectors = list(range(0, 500, 13))
        assert store.group_indices(sectors).tolist() == [
            store.group_index(s) for s in sectors
        ]

    def test_collapsed_chunk_epochs(self):
        store = CollapsedCounterStore(chunks_per_page=16)
        for _ in range(3):
            store.collapse(4, 7)
        store.collapse(9, 0)
        pages = [4, 4, 9, 2]
        chunks = [7, 0, 0, 5]
        epochs = store.chunk_epochs(pages, chunks)
        assert epochs.tolist() == [
            store.chunk_epoch(p, c) for p, c in zip(pages, chunks)
        ]

    def test_chunk_epochs_leaves_store_sparse(self):
        store = CollapsedCounterStore()
        store.chunk_epochs([100, 200], [0, 1])
        assert 100 not in store._pages and 200 not in store._pages

    def test_probe_batch_matches_probe_and_is_inert(self):
        cache = SectoredCache("t", total_bytes=4096, ways=4,
                              line_bytes=128, sector_bytes=32)
        for line in range(10):
            cache.access(line, line % 4, write=bool(line % 2))
        hits, misses = cache.hits, cache.misses
        lines = [l for l in range(12) for _ in range(4)]
        sectors = [s for _ in range(12) for s in range(4)]
        probed = cache.probe_batch(lines, sectors)
        for i in range(len(lines)):
            assert bool(probed[i]) == cache.probe(lines[i], sectors[i])
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_probe_units_selects_cache_kind(self):
        caches = MetadataCaches.build(0, SecurityConfig())
        caches.counter.access(3, 1)
        probed = caches.probe_units("counter", [13, 12, 99])
        assert probed.tolist() == [True, False, False]
        with pytest.raises(KeyError):
            caches.probe_units("l1", [0])


# -- whole-run equivalence ----------------------------------------------------

def _pair(config, trace, model):
    a = run_model(config, trace, model, kernel="scalar")
    b = run_model(config, trace, model, kernel="batched")
    return a, b


def _assert_identical(a, b):
    assert a.fingerprint() == b.fingerprint()
    assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
        b.to_dict(), sort_keys=True
    )


class TestRunEquivalence:
    @pytest.mark.parametrize("model", ["nosec", "baseline", "salus"])
    def test_models_identical(self, model):
        trace = build_trace("backprop", n_accesses=1500, seed=7,
                            num_sms=CFG.gpu.num_sms)
        _assert_identical(*_pair(CFG, trace, model))

    @pytest.mark.parametrize("devices", [2, 4])
    def test_multi_device_identical(self, devices):
        config = CFG.with_cxl_devices(devices)
        trace = build_trace("kmeans", n_accesses=1200, seed=11,
                            num_sms=config.gpu.num_sms)
        for model in ("nosec", "salus"):
            _assert_identical(*_pair(config, trace, model))

    def test_migration_heavy_identical(self):
        # bfs streams far beyond device capacity -> constant fills/evicts,
        # exercising the batched engine's fallback seams hardest.
        trace = build_trace("bfs", n_accesses=2000, seed=3,
                            num_sms=CFG.gpu.num_sms)
        for model in ("nosec", "baseline", "salus"):
            _assert_identical(*_pair(CFG, trace, model))

    def test_chunk_fill_granularity_identical(self):
        config = SystemConfig.small(
            gpu=replace(CFG.gpu, fill_granularity="chunk")
        )
        trace = build_trace("backprop", n_accesses=1200, seed=7,
                            num_sms=config.gpu.num_sms)
        _assert_identical(*_pair(config, trace, "salus"))

    def test_out_of_range_raises_identically(self):
        from repro.errors import TraceError
        from repro.workloads.trace import Trace
        from repro.memsys.request import Access, MemoryRequest

        good = MemoryRequest(cxl_addr=0, access=Access.READ)
        bad = MemoryRequest(
            cxl_addr=10**12, access=Access.READ
        )
        trace = Trace(name="bad", footprint_pages=8, compute_per_mem=0,
                      requests=[good, good, bad, good])
        from repro.gpu.gpusim import GpuSim
        from repro.harness.runner import model_factory

        messages = []
        for kernel in ("scalar", "batched"):
            sim = GpuSim(CFG, 8, model_factory("nosec"))
            with pytest.raises(TraceError) as err:
                sim.run(trace, kernel=kernel)
            messages.append(str(err.value))
            # The valid prefix was processed before the raise.
            assert sum(sm.instructions for sm in sim.sms) == 2
        assert messages[0] == messages[1]


spec_strategy = st.builds(
    WorkloadSpec,
    name=st.just("keq"),
    footprint_pages=st.sampled_from([48, 96, 160]),
    chunk_coverage=st.floats(min_value=0.15, max_value=1.0),
    concurrent_pages=st.integers(1, 12),
    write_fraction=st.floats(min_value=0.0, max_value=0.6),
    sectors_per_chunk_touched=st.integers(2, 8),
    reuse=st.integers(1, 3),
    compute_per_mem=st.integers(0, 8),
    page_order=st.sampled_from(["stream", "tiled", "zipf"]),
)


@given(spec=spec_strategy, seed=st.integers(0, 4),
       model=st.sampled_from(["nosec", "baseline", "salus"]))
@settings(max_examples=10, deadline=None)
def test_random_traces_identical(spec, seed, model):
    trace = generate_trace(spec, 900, seed=seed, num_sms=CFG.gpu.num_sms)
    _assert_identical(*_pair(CFG, trace, model))


# -- harness equivalence ------------------------------------------------------

class TestHarnessEquivalence:
    def test_engine_and_ledger_agree_across_kernels(self, tmp_path):
        from repro.harness.engine import ExperimentEngine, SimJob
        from repro.harness.ledger import RunLedger

        fingerprints = {}
        for kernel in ("scalar", "batched"):
            cache_dir = tmp_path / kernel
            engine = ExperimentEngine(cache_dir=cache_dir, kernel=kernel)
            job = SimJob.of(CFG, "nw", "salus", 800, 7)
            result = engine.map([job])[job]
            fingerprints[kernel] = result.fingerprint()
            entries = RunLedger(cache_dir).entries()
            assert entries[0].result_fingerprint == result.fingerprint()
        assert fingerprints["scalar"] == fingerprints["batched"]

    def test_kernel_not_in_job_fingerprint(self):
        # Same cache slot for both kernels: a batched run may be served by
        # a scalar-produced entry, which is exactly the contract.
        from repro.harness.engine import SimJob

        job = SimJob.of(CFG, "nw", "salus", 800, 7)
        twin = SimJob.of(CFG, "nw", "salus", 800, 7)
        assert job.fingerprint() == twin.fingerprint()

    def test_compare_harness_reports_match(self):
        from repro.harness.compare import compare_kernels

        rows = compare_kernels("scalar", "batched", accesses=300,
                               benches=("nw",), models=("nosec", "salus"))
        assert len(rows) == 2
        assert all(row["match"] for row in rows)

    def test_cli_kernel_flag_and_compare(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["run", "nw", "--accesses", "300", "--models", "nosec",
                   "--kernel", "batched", "--no-cache", "--json"])
        assert rc == 0
        batched_out = json.loads(capsys.readouterr().out)
        rc = main(["run", "nw", "--accesses", "300", "--models", "nosec",
                   "--kernel", "scalar", "--no-cache", "--json"])
        assert rc == 0
        scalar_out = json.loads(capsys.readouterr().out)
        for entry in (*batched_out, *scalar_out):
            entry.pop("engine", None)
        assert batched_out == scalar_out

    def test_cli_perf_compare_smoke(self, capsys):
        from repro.cli import main

        rc = main(["perf", "--compare", "scalar", "batched",
                   "--compare-accesses", "200"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bit-identical across kernels" in out

"""Unit tests for the Salus core components (repro.core.*)."""

import pytest

from repro.address import DEFAULT_GEOMETRY
from repro.core.collapsed import CollapsedCXLMetadata
from repro.core.dirty_tracking import FineDirtyTracking
from repro.core.fetch_on_access import FetchOnAccessTracker
from repro.core.ifsc import DeviceCounterGroups
from repro.core.unified import UnifiedAddressSpace
from repro.errors import AddressError, SecurityError
from repro.metadata.mac_store import MacSector
from repro.migration.dirty import DirtyTracker

GEOM = DEFAULT_GEOMETRY


class TestUnifiedAddressSpace:
    def setup_method(self):
        self.space = UnifiedAddressSpace(geometry=GEOM, footprint_pages=16)

    def test_coordinates(self):
        addr = 3 * 4096 + 2 * 256 + 5 * 32
        coords = self.space.coordinates(addr)
        assert coords.page == 3
        assert coords.chunk_in_page == 2
        assert coords.sector_in_chunk == 5
        assert coords.cxl_sector_addr == addr

    def test_spatial_iv_is_permanent_address(self):
        addr = 5 * 4096 + 7 * 32
        assert self.space.iv_spatial(addr) == addr
        assert self.space.iv_spatial(addr + 5) == addr  # sector-aligned

    def test_chunk_key(self):
        assert self.space.chunk_key(4096 + 256) == (1, 1)

    def test_footprint_bounds(self):
        with pytest.raises(AddressError):
            self.space.coordinates(16 * 4096)
        with pytest.raises(AddressError):
            UnifiedAddressSpace(geometry=GEOM, footprint_pages=0)


class TestDeviceCounterGroups:
    def setup_method(self):
        self.groups = DeviceCounterGroups(
            geometry=GEOM, num_channels=4, data_sectors_per_channel=1024
        )

    def test_install_read_increment(self):
        self.groups.install(7, epoch=3, cxl_page=2)
        assert self.groups.read(7, 0).major == 3
        self.groups.increment(7, 0)
        assert self.groups.read(7, 0).minor == 1
        assert self.groups.needs_collapse(7)

    def test_tag_check(self):
        self.groups.install(7, epoch=3, cxl_page=2)
        assert self.groups.is_installed_for(7, 2)
        assert not self.groups.is_installed_for(7, 3)
        self.groups.drop(7)
        assert not self.groups.is_installed_for(7, 2)

    def test_counter_sector_unit(self):
        # Two chunks (16 sectors) per counter sector.
        assert self.groups.counter_sector_unit(0) == self.groups.counter_sector_unit(15)
        assert self.groups.counter_sector_unit(15) != self.groups.counter_sector_unit(16)

    def test_bmt_geometry(self):
        geom = self.groups.bmt_geometry()
        assert geom.num_leaves == self.groups.layout.num_counter_sectors

    def test_lifecycle_counters(self):
        self.groups.install(1, 0, 0)
        self.groups.drop(1)
        assert self.groups.installs == 1
        assert self.groups.evictions == 1


class TestCollapsedCXLMetadata:
    def setup_method(self):
        self.meta = CollapsedCXLMetadata(geometry=GEOM, footprint_pages=8)

    def test_epoch_lifecycle(self):
        assert self.meta.chunk_epoch(2, 3) == 0
        self.meta.collapse(2, 3)
        assert self.meta.chunk_epoch(2, 3) == 1
        assert self.meta.collapses == 1

    def test_embed_extract_roundtrip(self):
        sector = MacSector(macs=[1, 2, 3, 4])
        embedded = self.meta.embed_epoch(sector, epoch=77)
        assert self.meta.extract_epoch(embedded) == 77
        assert embedded.macs == [1, 2, 3, 4]  # MACs untouched

    def test_embed_survives_serialization(self):
        sector = self.meta.embed_epoch(MacSector(), epoch=123456)
        assert MacSector.unpack(sector.pack()).embedded_major == 123456

    def test_embed_overflow_guard(self):
        with pytest.raises(SecurityError):
            self.meta.embed_epoch(MacSector(), epoch=1 << 32)

    def test_one_counter_unit_per_page(self):
        assert self.meta.counter_sector_unit(3) != self.meta.counter_sector_unit(4)
        assert self.meta.bmt_geometry().num_leaves == 8

    def test_mac_sector_unit(self):
        assert self.meta.mac_sector_unit(0, 0) == 0
        assert self.meta.mac_sector_unit(1, 0) == GEOM.blocks_per_page


class TestFetchOnAccessTracker:
    def setup_method(self):
        groups = DeviceCounterGroups(
            geometry=GEOM, num_channels=4, data_sectors_per_channel=1024
        )
        self.tracker = FetchOnAccessTracker(groups=groups)

    def test_fill_creates_debt(self):
        self.tracker.note_fill(page=5, device_chunks=(0, 1, 2))
        assert self.tracker.needs_fetch(5, 0)

    def test_fetch_clears_debt(self):
        self.tracker.note_fill(page=5, device_chunks=(0, 1))
        self.tracker.record_fetch(5, 0, epoch=9)
        assert not self.tracker.needs_fetch(5, 0)
        assert self.tracker.needs_fetch(5, 1)
        assert self.tracker.first_touch_fetches == 1

    def test_avoided_fetches_counted_at_evict(self):
        self.tracker.note_fill(page=5, device_chunks=(0, 1, 2, 3))
        self.tracker.record_fetch(5, 0, epoch=0)
        self.tracker.note_evict(page=5, device_chunks=(0, 1, 2, 3))
        assert self.tracker.avoided_fetches == 3
        assert self.tracker.avoidance_rate == pytest.approx(0.75)

    def test_frame_reuse_by_other_page_needs_fetch(self):
        """The Figure-7 tag mismatch: stale metadata from a previous tenant
        of the device location must not be accepted."""
        self.tracker.note_fill(page=5, device_chunks=(0,))
        self.tracker.record_fetch(5, 0, epoch=0)
        self.tracker.note_evict(page=5, device_chunks=(0,))
        self.tracker.note_fill(page=6, device_chunks=(0,))
        assert self.tracker.needs_fetch(6, 0)


class TestFineDirtyTracking:
    def setup_method(self):
        self.fine = FineDirtyTracking(tracker=DirtyTracker(16), buffer_entries=2)

    def test_first_write_fetches_mapping(self):
        cost = self.fine.on_store(page=1, chunk_in_page=0)
        assert cost.mapping_reads == 1
        assert cost.mapping_writes == 0

    def test_buffered_writes_free(self):
        self.fine.on_store(1, 0)
        cost = self.fine.on_store(1, 5)
        assert cost.mapping_reads == 0 and cost.mapping_writes == 0
        assert self.fine.buffered_updates == 1

    def test_buffer_pressure_writes_back(self):
        self.fine.on_store(1, 0)
        self.fine.on_store(2, 0)
        cost = self.fine.on_store(3, 0)
        assert cost.mapping_writes == 1  # LRU mapping pushed to memory

    def test_consume_on_evict(self):
        self.fine.on_store(1, 0)
        self.fine.on_store(1, 7)
        chunks, extra_reads = self.fine.consume_on_evict(1)
        assert chunks == (0, 7)
        assert extra_reads == 0  # freshest mask was buffered

    def test_evict_unbuffered_dirty_needs_read(self):
        self.fine.on_store(1, 0)
        self.fine.on_store(2, 0)
        self.fine.on_store(3, 0)  # page 1 evicted from buffer
        chunks, extra_reads = self.fine.consume_on_evict(1)
        assert chunks == (0,)
        assert extra_reads == 1

    def test_authoritative_mask_shared(self):
        """The bitmask lives in the shared tracker; mapping traffic is an
        orthogonal accounting concern."""
        self.fine.on_store(4, 3)
        assert self.fine.tracker.dirty_chunks(4) == (3,)
        assert self.fine.mask_of(4) == (3,)
        assert self.fine.mask_of(5) is None

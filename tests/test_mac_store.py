"""Unit tests for MAC sectors and the embedded-major slot."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.metadata.mac_store import (
    EMBED_BITS,
    MAC_BITS,
    MAC_SECTOR_BYTES,
    MACS_PER_SECTOR,
    MacSector,
    MacStore,
)


class TestLayoutArithmetic:
    def test_figure5_packing_is_exact(self):
        """4 x 56-bit MACs + 32-bit embedded major == exactly 32 bytes.

        This is the bit-level fact that makes collapsed-counter embedding
        free (paper Figure 5)."""
        assert MACS_PER_SECTOR * MAC_BITS + EMBED_BITS == MAC_SECTOR_BYTES * 8

    def test_pack_length(self):
        assert len(MacSector().pack()) == 32


class TestMacSector:
    def test_roundtrip(self):
        sector = MacSector(
            macs=[0x12345678ABCDEF, 0, (1 << 56) - 1, 42],
            embedded_major=0xDEADBEEF,
        )
        assert MacSector.unpack(sector.pack()) == sector

    def test_mac_width_enforced(self):
        with pytest.raises(ConfigError):
            MacSector(macs=[1 << 56, 0, 0, 0])

    def test_embed_width_enforced(self):
        with pytest.raises(ConfigError):
            MacSector(embedded_major=1 << 32)

    def test_mac_count_enforced(self):
        with pytest.raises(ConfigError):
            MacSector(macs=[0, 0, 0])

    def test_unpack_length_checked(self):
        with pytest.raises(ConfigError):
            MacSector.unpack(b"\x00" * 31)

    @given(
        macs=st.lists(
            st.integers(0, (1 << 56) - 1), min_size=4, max_size=4
        ),
        embedded=st.integers(0, (1 << 32) - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_bijective(self, macs, embedded):
        sector = MacSector(macs=macs, embedded_major=embedded)
        back = MacSector.unpack(sector.pack())
        assert back.macs == macs
        assert back.embedded_major == embedded


class TestMacStore:
    def test_absent_block_reads_zero(self):
        store = MacStore()
        assert store.get_mac(7, 2) == 0

    def test_set_get(self):
        store = MacStore()
        store.set_mac(7, 2, 0xABC)
        assert store.get_mac(7, 2) == 0xABC
        assert store.get_mac(7, 3) == 0

    def test_peek_does_not_create(self):
        store = MacStore()
        assert store.peek(3) is None
        store.get(3)
        assert store.peek(3) is not None

    def test_put_replaces(self):
        store = MacStore()
        store.put(0, MacSector(macs=[1, 2, 3, 4], embedded_major=9))
        assert store.get(0).embedded_major == 9

    def test_items(self):
        store = MacStore()
        store.set_mac(1, 0, 5)
        store.set_mac(9, 3, 6)
        assert {b for b, _ in store.items()} == {1, 9}

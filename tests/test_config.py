"""Unit tests for system configuration (repro.config)."""

import pytest

from repro.config import GPUConfig, SalusConfig, SecurityConfig, SystemConfig
from repro.errors import ConfigError


class TestGPUConfigTableI:
    """The volta preset mirrors the paper's Table I machine."""

    def test_defaults(self):
        gpu = GPUConfig()
        assert gpu.num_sms == 80
        assert gpu.warps_per_sm == 64
        assert gpu.num_channels == 32
        assert gpu.cxl_bw_ratio == pytest.approx(1 / 16)

    def test_derived_bandwidths(self):
        gpu = GPUConfig()
        total_bpc = gpu.device_bandwidth_gbps / gpu.core_clock_ghz
        assert gpu.device_bytes_per_cycle_per_channel == pytest.approx(
            total_bpc / 32
        )
        assert gpu.cxl_bytes_per_cycle == pytest.approx(total_bpc / 16)

    def test_l2_slice(self):
        gpu = GPUConfig()
        assert gpu.l2_slice_bytes * gpu.num_channels == gpu.l2_total_bytes

    def test_sms_per_gpc(self):
        assert GPUConfig().sms_per_gpc == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sms": 0},
            {"num_channels": 0},
            {"cxl_bw_ratio": 0.0},
            {"cxl_bw_ratio": 1.5},
            {"device_bandwidth_gbps": -1.0},
            {"num_sms": 7, "num_gpcs": 2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            GPUConfig(**kwargs)


class TestSecurityConfigTableII:
    def test_defaults(self):
        sec = SecurityConfig()
        assert sec.mac_cache_bytes == 2 * 1024       # Table II
        assert sec.mac_latency_cycles == 40          # Table II
        assert sec.aes_pipes_per_partition == 1      # Table II
        assert sec.mac_bits == 56                    # Gueron truncation
        assert sec.minor_counter_bits == 7
        assert sec.cxl_minor_counter_bits == 14      # doubled (Figure 6)
        assert sec.bmt_arity == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mac_cache_bytes": 0},
            {"bmt_arity": 1},
            {"mac_bits": 0},
            {"mac_bits": 65},
            {"minor_counter_bits": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            SecurityConfig(**kwargs)


class TestSalusConfig:
    def test_full_enables_everything(self):
        cfg = SalusConfig.full()
        assert cfg.unified_metadata
        assert cfg.interleaving_friendly_counters
        assert cfg.collapsed_counters
        assert cfg.fetch_on_access
        assert cfg.fine_dirty_tracking

    def test_unified_only(self):
        cfg = SalusConfig.unified_only()
        assert cfg.unified_metadata
        assert not cfg.interleaving_friendly_counters
        assert not cfg.fetch_on_access

    def test_optimizations_require_unified(self):
        with pytest.raises(ConfigError):
            SalusConfig(unified_metadata=False, collapsed_counters=True)

    def test_collapse_requires_ifsc(self):
        with pytest.raises(ConfigError):
            SalusConfig(
                interleaving_friendly_counters=False, collapsed_counters=True
            )

    def test_individual_ablations_valid(self):
        SalusConfig(fetch_on_access=False)
        SalusConfig(collapsed_counters=False)
        SalusConfig(fine_dirty_tracking=False)


class TestSystemConfig:
    def test_default_capacity_ratio_is_paper_value(self):
        assert SystemConfig().device_capacity_ratio == pytest.approx(0.35)

    def test_capacity_ratio_validated(self):
        with pytest.raises(ConfigError):
            SystemConfig(device_capacity_ratio=0.0)

    def test_presets_construct(self):
        for cfg in (SystemConfig.volta(), SystemConfig.bench(), SystemConfig.small()):
            assert cfg.gpu.num_sms > 0

    def test_bench_preserves_capacity_relationships(self):
        cfg = SystemConfig.bench()
        # L2 must stay much smaller than a typical resident set.
        resident = 512 * cfg.geometry.page_bytes * cfg.device_capacity_ratio
        assert cfg.gpu.l2_total_bytes < resident

    def test_with_cxl_bw_ratio(self):
        cfg = SystemConfig.bench().with_cxl_bw_ratio(1 / 4)
        assert cfg.gpu.cxl_bw_ratio == pytest.approx(0.25)
        # Everything else is untouched.
        assert cfg.gpu.num_channels == SystemConfig.bench().gpu.num_channels

    def test_with_capacity_ratio(self):
        cfg = SystemConfig.bench().with_capacity_ratio(0.2)
        assert cfg.device_capacity_ratio == pytest.approx(0.2)

    def test_with_salus(self):
        cfg = SystemConfig.bench().with_salus(SalusConfig.unified_only())
        assert not cfg.salus.fetch_on_access

    def test_configs_are_hashable(self):
        # The harness caches runs keyed by config.
        assert hash(SystemConfig.bench()) == hash(SystemConfig.bench())
        assert SystemConfig.bench() == SystemConfig.bench()

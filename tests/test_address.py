"""Unit tests for the address geometry (repro.address)."""

import pytest
from hypothesis import given, strategies as st

from repro.address import (
    BLOCK_BYTES,
    CHUNK_BYTES,
    DEFAULT_GEOMETRY,
    Geometry,
    SECTOR_BYTES,
    is_power_of_two,
)
from repro.errors import AddressError


class TestConstants:
    def test_paper_granularities(self):
        # Section II-D / IV-A1: 32 B sectors, 128 B blocks, 256 B chunks.
        assert SECTOR_BYTES == 32
        assert BLOCK_BYTES == 128
        assert CHUNK_BYTES == 256

    def test_default_geometry_ratios(self):
        g = DEFAULT_GEOMETRY
        assert g.sectors_per_block == 4
        assert g.sectors_per_chunk == 8
        assert g.blocks_per_chunk == 2
        assert g.chunks_per_page == 16
        assert g.sectors_per_page == 128
        assert g.blocks_per_page == 32


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 256, 4096, 1 << 40])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -1, 3, 6, 100, 4095])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestGeometryValidation:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(AddressError):
            Geometry(page_bytes=3000)

    def test_unordered_granularities_rejected(self):
        with pytest.raises(AddressError):
            Geometry(sector_bytes=256, chunk_bytes=64, block_bytes=128)

    def test_custom_page_size(self):
        g = Geometry(page_bytes=2048)
        assert g.chunks_per_page == 8
        assert g.sectors_per_page == 64


class TestIndexExtraction:
    def test_page_of(self):
        g = DEFAULT_GEOMETRY
        assert g.page_of(0) == 0
        assert g.page_of(4095) == 0
        assert g.page_of(4096) == 1

    def test_chunk_in_page(self):
        g = DEFAULT_GEOMETRY
        assert g.chunk_in_page(0) == 0
        assert g.chunk_in_page(255) == 0
        assert g.chunk_in_page(256) == 1
        assert g.chunk_in_page(4096 + 256) == 1  # independent of page

    def test_sector_in_chunk(self):
        g = DEFAULT_GEOMETRY
        assert g.sector_in_chunk(0) == 0
        assert g.sector_in_chunk(32) == 1
        assert g.sector_in_chunk(255) == 7

    def test_sector_in_block(self):
        g = DEFAULT_GEOMETRY
        assert g.sector_in_block(96) == 3
        assert g.sector_in_block(128) == 0

    def test_negative_address_rejected(self):
        with pytest.raises(AddressError):
            DEFAULT_GEOMETRY.page_of(-1)


class TestAddressConstruction:
    def test_sector_addr_roundtrip(self):
        g = DEFAULT_GEOMETRY
        addr = g.sector_addr(page=3, sector_in_page=17)
        assert g.page_of(addr) == 3
        assert g.sector_in_page(addr) == 17

    def test_sector_addr_range_checked(self):
        with pytest.raises(AddressError):
            DEFAULT_GEOMETRY.sector_addr(0, 128)

    def test_chunk_addr_roundtrip(self):
        g = DEFAULT_GEOMETRY
        addr = g.chunk_addr(page=5, chunk_in_page=9)
        assert g.page_of(addr) == 5
        assert g.chunk_in_page(addr) == 9

    def test_chunk_addr_range_checked(self):
        with pytest.raises(AddressError):
            DEFAULT_GEOMETRY.chunk_addr(0, 16)


class TestAlignment:
    def test_align_sector(self):
        g = DEFAULT_GEOMETRY
        assert g.align_sector(33) == 32
        assert g.align_sector(32) == 32

    def test_align_chunk(self):
        assert DEFAULT_GEOMETRY.align_chunk(257) == 256

    def test_align_page(self):
        assert DEFAULT_GEOMETRY.align_page(8191) == 4096


@given(addr=st.integers(min_value=0, max_value=1 << 48))
def test_index_consistency(addr):
    """Page/chunk/sector decomposition always recomposes to the alignment."""
    g = DEFAULT_GEOMETRY
    page = g.page_of(addr)
    reassembled = (
        page * g.page_bytes
        + g.chunk_in_page(addr) * g.chunk_bytes
        + g.sector_in_chunk(addr) * g.sector_bytes
    )
    assert reassembled == g.align_sector(addr)


@given(addr=st.integers(min_value=0, max_value=1 << 48))
def test_sector_in_page_bounds(addr):
    g = DEFAULT_GEOMETRY
    assert 0 <= g.sector_in_page(addr) < g.sectors_per_page
    assert 0 <= g.chunk_in_page(addr) < g.chunks_per_page
    assert 0 <= g.sector_in_chunk(addr) < g.sectors_per_chunk


@given(
    page=st.integers(min_value=0, max_value=1 << 30),
    sector=st.integers(min_value=0, max_value=127),
)
def test_sector_addr_bijective(page, sector):
    g = DEFAULT_GEOMETRY
    addr = g.sector_addr(page, sector)
    assert g.page_of(addr) == page
    assert g.sector_in_page(addr) == sector

"""Unit tests for Bonsai Merkle trees (repro.metadata.bmt)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, FreshnessError
from repro.metadata.bmt import BMTGeometry, BonsaiMerkleTree


class TestGeometry:
    def test_depth(self):
        assert BMTGeometry(num_leaves=1).depth == 1
        assert BMTGeometry(num_leaves=8).depth == 1
        assert BMTGeometry(num_leaves=9).depth == 2
        assert BMTGeometry(num_leaves=64).depth == 2
        assert BMTGeometry(num_leaves=4096).depth == 4

    def test_nodes_at_level(self):
        geom = BMTGeometry(num_leaves=100)
        assert geom.nodes_at_level(0) == 100
        assert geom.nodes_at_level(1) == 13
        assert geom.nodes_at_level(2) == 2
        assert geom.nodes_at_level(geom.depth) == 1

    def test_parent(self):
        geom = BMTGeometry(num_leaves=64)
        assert geom.parent(0, 0) == (1, 0)
        assert geom.parent(0, 7) == (1, 0)
        assert geom.parent(0, 8) == (1, 1)

    def test_path_excludes_root(self):
        geom = BMTGeometry(num_leaves=64)  # depth 2
        path = geom.path(10)
        assert path == [(1, 1)]  # only internal non-root level

    def test_path_empty_for_tiny_tree(self):
        # depth 1: the leaf's parent IS the on-chip root - no memory nodes.
        assert BMTGeometry(num_leaves=8).path(3) == []

    def test_path_bounds_checked(self):
        with pytest.raises(ConfigError):
            BMTGeometry(num_leaves=8).path(8)

    def test_node_ordinal_unique(self):
        geom = BMTGeometry(num_leaves=512)  # depth 3: levels 1 (64), 2 (8), 3 (1)
        seen = set()
        for level in range(1, geom.depth + 1):
            for idx in range(geom.nodes_at_level(level)):
                ordinal = geom.node_ordinal(level, idx)
                assert ordinal not in seen
                seen.add(ordinal)
        assert len(seen) == geom.total_internal_nodes

    def test_validation(self):
        with pytest.raises(ConfigError):
            BMTGeometry(num_leaves=0)
        with pytest.raises(ConfigError):
            BMTGeometry(num_leaves=4, arity=1)


class TestFunctionalTree:
    def test_fresh_tree_verifies_default_leaves(self):
        tree = BonsaiMerkleTree(BMTGeometry(num_leaves=64))
        assert tree.verify(5, b"\x00" * 32)

    def test_update_then_verify(self):
        tree = BonsaiMerkleTree(BMTGeometry(num_leaves=64))
        tree.update(5, b"counters-v1" + b"\x00" * 21)
        assert tree.verify(5, b"counters-v1" + b"\x00" * 21)
        assert not tree.verify(5, b"\x00" * 32)

    def test_root_changes_on_update(self):
        tree = BonsaiMerkleTree(BMTGeometry(num_leaves=64))
        root0 = tree.root
        tree.update(0, b"x" * 32)
        assert tree.root != root0

    def test_unrelated_leaves_unaffected(self):
        tree = BonsaiMerkleTree(BMTGeometry(num_leaves=64))
        tree.update(0, b"x" * 32)
        assert tree.verify(63, b"\x00" * 32)

    def test_tampered_internal_node_detected(self):
        tree = BonsaiMerkleTree(BMTGeometry(num_leaves=64))
        tree.update(9, b"v1" * 16)
        tree.tamper_node(1, 1, b"attacker-node")
        assert not tree.verify(9, b"v1" * 16)

    def test_replayed_leaf_detected(self):
        tree = BonsaiMerkleTree(BMTGeometry(num_leaves=64))
        tree.update(9, b"v1" * 16)
        old = tree.raw_leaf_hash(9)
        tree.update(9, b"v2" * 16)
        tree.restore_leaf_hash(9, old)
        # Even presenting the matching old payload fails: ancestors moved on.
        assert not tree.verify(9, b"v1" * 16)

    def test_update_refuses_to_launder_replayed_sibling(self):
        """A legitimate update must not fold a replayed sibling into the new
        root (the read-verify-modify-write discipline)."""
        tree = BonsaiMerkleTree(BMTGeometry(num_leaves=8))  # depth 1
        tree.update(0, b"v1" * 16)
        old = tree.raw_leaf_hash(0)
        tree.update(0, b"v2" * 16)
        tree.restore_leaf_hash(0, old)  # attacker replays leaf 0
        with pytest.raises(FreshnessError):
            tree.update(1, b"other" * 6 + b"xx")

    def test_verify_or_raise(self):
        tree = BonsaiMerkleTree(BMTGeometry(num_leaves=8))
        tree.update(0, b"a" * 32)
        tree.verify_or_raise(0, b"a" * 32)
        with pytest.raises(FreshnessError):
            tree.verify_or_raise(0, b"b" * 32)

    def test_custom_default_leaf(self):
        default = b"\xff" * 64
        tree = BonsaiMerkleTree(BMTGeometry(num_leaves=16), default_leaf=default)
        assert tree.verify(3, default)
        assert not tree.verify(3, b"\x00" * 64)

    def test_deep_tree(self):
        tree = BonsaiMerkleTree(BMTGeometry(num_leaves=600))  # depth 4
        tree.update(599, b"tail" * 8)
        assert tree.verify(599, b"tail" * 8)
        tree.update(0, b"head" * 8)
        assert tree.verify(599, b"tail" * 8)
        assert tree.verify(0, b"head" * 8)


@given(
    updates=st.lists(
        st.tuples(st.integers(0, 63), st.binary(min_size=1, max_size=40)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_last_write_wins_property(updates):
    """After any update sequence, each leaf verifies exactly its last value."""
    tree = BonsaiMerkleTree(BMTGeometry(num_leaves=64))
    last = {}
    for leaf, payload in updates:
        tree.update(leaf, payload)
        last[leaf] = payload
    for leaf, payload in last.items():
        assert tree.verify(leaf, payload)


@given(
    leaf=st.integers(0, 63),
    payload=st.binary(min_size=1, max_size=40),
    wrong=st.binary(min_size=1, max_size=40),
)
@settings(max_examples=50, deadline=None)
def test_wrong_payload_never_verifies(leaf, payload, wrong):
    tree = BonsaiMerkleTree(BMTGeometry(num_leaves=64))
    tree.update(leaf, payload)
    if wrong != payload:
        assert not tree.verify(leaf, wrong)

"""Unit tests for the crypto substrate (repro.crypto)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES128
from repro.crypto.ctr_mode import CounterModeCipher, make_iv
from repro.crypto.keys import KeySet
from repro.crypto.mac import truncated_mac, verify_mac


class TestAES128:
    def test_fips197_appendix_b_vector(self):
        """The FIPS-197 worked example must match exactly."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_block_length_checked(self):
        with pytest.raises(ValueError):
            AES128(bytes(16)).encrypt_block(b"x" * 15)

    def test_deterministic(self):
        aes = AES128(bytes(range(16)))
        assert aes.encrypt_block(bytes(16)) == aes.encrypt_block(bytes(16))

    def test_key_sensitivity(self):
        p = bytes(16)
        out1 = AES128(bytes(16)).encrypt_block(p)
        out2 = AES128(bytes([1] + [0] * 15)).encrypt_block(p)
        assert out1 != out2

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_plaintext_sensitivity(self, p1, p2):
        aes = AES128(b"k" * 16)
        if p1 != p2:
            assert aes.encrypt_block(p1) != aes.encrypt_block(p2)


class TestKeySet:
    def test_from_seed_deterministic(self):
        assert KeySet.from_seed(b"a") == KeySet.from_seed(b"a")
        assert KeySet.from_seed(b"a") != KeySet.from_seed(b"b")

    def test_keys_are_independent(self):
        ks = KeySet.default()
        assert ks.encryption_key != ks.mac_key[:16]

    def test_length_validation(self):
        with pytest.raises(ValueError):
            KeySet(encryption_key=b"x" * 8, mac_key=b"y" * 32)
        with pytest.raises(ValueError):
            KeySet(encryption_key=b"x" * 16, mac_key=b"y" * 8)


class TestIV:
    def test_iv_is_one_aes_block(self):
        assert len(make_iv(0, 0, 0)) == 16

    def test_distinct_components_distinct_ivs(self):
        base = make_iv(0x1000, 5, 3)
        assert make_iv(0x1020, 5, 3) != base   # different address
        assert make_iv(0x1000, 6, 3) != base   # different major
        assert make_iv(0x1000, 5, 4) != base   # different minor

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_iv(-1, 0, 0)

    @given(
        a1=st.integers(0, (1 << 40) - 1), m1=st.integers(0, (1 << 30) - 1),
        n1=st.integers(0, (1 << 14) - 1),
        a2=st.integers(0, (1 << 40) - 1), m2=st.integers(0, (1 << 30) - 1),
        n2=st.integers(0, (1 << 14) - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_iv_injective(self, a1, m1, n1, a2, m2, n2):
        """No two distinct (addr, major, minor) triples share an IV.

        This is the one-time-pad-uniqueness property the whole unified
        security model rests on (paper, "Security Impact").
        """
        if (a1, m1, n1) != (a2, m2, n2):
            assert make_iv(a1, m1, n1) != make_iv(a2, m2, n2)


class TestCounterMode:
    def setup_method(self):
        self.cipher = CounterModeCipher(KeySet.default().encryption_key)

    def test_roundtrip(self):
        plaintext = bytes(range(32))
        ct = self.cipher.crypt_sector(plaintext, 0x2000, 7, 3)
        assert ct != plaintext
        assert self.cipher.crypt_sector(ct, 0x2000, 7, 3) == plaintext

    def test_wrong_counter_garbles(self):
        plaintext = b"secret-data-secret-data-secret!!"
        ct = self.cipher.crypt_sector(plaintext, 0x2000, 7, 3)
        assert self.cipher.crypt_sector(ct, 0x2000, 7, 4) != plaintext

    def test_wrong_address_garbles(self):
        """Same counters at a different address decrypt to garbage - device
        locations can reuse counter values safely."""
        plaintext = b"secret-data-secret-data-secret!!"
        ct = self.cipher.crypt_sector(plaintext, 0x2000, 7, 3)
        assert self.cipher.crypt_sector(ct, 0x4000, 7, 3) != plaintext

    def test_sector_size_enforced(self):
        with pytest.raises(ValueError):
            self.cipher.crypt_sector(b"short", 0, 0, 0)

    def test_otp_precomputable(self):
        """The pad depends only on (addr, major, minor) - the property that
        hides decryption latency behind the data fetch."""
        pad = self.cipher.one_time_pad(0x80, 1, 2)
        plaintext = b"A" * 32
        ct = self.cipher.crypt_sector(plaintext, 0x80, 1, 2)
        assert bytes(a ^ b for a, b in zip(plaintext, pad)) == ct

    @given(
        data=st.binary(min_size=32, max_size=32),
        addr=st.integers(0, 1 << 40).map(lambda a: a & ~31),
        major=st.integers(0, (1 << 32) - 1),
        minor=st.integers(0, (1 << 14) - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data, addr, major, minor):
        ct = self.cipher.crypt_sector(data, addr, major, minor)
        assert self.cipher.crypt_sector(ct, addr, major, minor) == data


class TestMAC:
    def setup_method(self):
        self.key = KeySet.default().mac_key

    def test_verify_roundtrip(self):
        mac = truncated_mac(self.key, b"c" * 32, 0x100, 3, 1)
        assert verify_mac(self.key, b"c" * 32, 0x100, 3, 1, mac)

    def test_tampered_data_fails(self):
        mac = truncated_mac(self.key, b"c" * 32, 0x100, 3, 1)
        assert not verify_mac(self.key, b"d" * 32, 0x100, 3, 1, mac)

    def test_wrong_address_fails(self):
        """Splicing: moving valid ciphertext+MAC to another address fails."""
        mac = truncated_mac(self.key, b"c" * 32, 0x100, 3, 1)
        assert not verify_mac(self.key, b"c" * 32, 0x120, 3, 1, mac)

    def test_stale_counter_fails(self):
        """The counter is bound into the MAC (the BMT-MAC linkage of
        Section II-A3): a fresh counter with a stale MAC fails."""
        mac = truncated_mac(self.key, b"c" * 32, 0x100, 3, 1)
        assert not verify_mac(self.key, b"c" * 32, 0x100, 4, 1, mac)

    def test_fits_56_bits(self):
        mac = truncated_mac(self.key, b"c" * 32, 0x100, 3, 1, mac_bits=56)
        assert 0 <= mac < (1 << 56)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            truncated_mac(self.key, b"", 0, 0, 0, mac_bits=0)
        with pytest.raises(ValueError):
            truncated_mac(self.key, b"", 0, 0, 0, mac_bits=65)

    def test_key_sensitivity(self):
        mac = truncated_mac(self.key, b"c" * 32, 0x100, 3, 1)
        other = KeySet.from_seed(b"other").mac_key
        assert not verify_mac(other, b"c" * 32, 0x100, 3, 1, mac)

    @given(width=st.integers(min_value=8, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_width_respected(self, width):
        mac = truncated_mac(self.key, b"z" * 32, 64, 1, 1, mac_bits=width)
        assert 0 <= mac < (1 << width)

"""Hook-level tests of the three timing security models.

These exercise the models directly against a small fabric, asserting the
paper's qualitative claims at the traffic level: what each model books on a
fill, an eviction, a demand read and a writeback.
"""

import pytest

from repro.config import SalusConfig, SystemConfig
from repro.core.salus import SalusSecurityModel
from repro.security.baseline import BaselineSecurityModel
from repro.security.fabric import MemoryFabric
from repro.security.none import NoSecurityModel
from repro.sim.stats import Side, StatRegistry, TrafficCategory


def make_fabric(footprint_pages=64):
    return MemoryFabric(SystemConfig.small(), footprint_pages, StatRegistry())


def security_bytes(fabric, side=None):
    return fabric.stats.security_bytes(side)


class TestNoSecurity:
    def test_fill_moves_only_data(self):
        fabric = make_fabric()
        model = NoSecurityModel(fabric)
        model.fill(0, page=3, frame=0)
        assert fabric.stats.data_bytes(Side.CXL) == fabric.geometry.page_bytes
        assert security_bytes(fabric) == 0

    def test_read_is_just_data(self):
        fabric = make_fabric()
        model = NoSecurityModel(fabric)
        loc = fabric.locate(0, frame=0)
        assert model.read_complete(5, loc, data_ready=42) == 42

    def test_clean_eviction_free(self):
        fabric = make_fabric()
        model = NoSecurityModel(fabric)
        drain = model.evict(7, page=3, frame=0, dirty_chunks=(), page_dirty=False)
        assert drain == 7
        assert fabric.stats.total_bytes() == 0

    def test_dirty_eviction_writes_whole_page(self):
        """Coarse dirty bit: one dirty chunk drags the whole page back."""
        fabric = make_fabric()
        model = NoSecurityModel(fabric)
        model.evict(0, page=3, frame=0, dirty_chunks=(2,), page_dirty=True)
        assert fabric.stats.bytes_for(Side.CXL, TrafficCategory.DATA) == (
            fabric.geometry.page_bytes
        )


class TestBaseline:
    def test_fill_moves_metadata_and_reencrypts(self):
        fabric = make_fabric()
        model = BaselineSecurityModel(fabric)
        model.fill(0, page=3, frame=0)
        stats = fabric.stats
        # Counters and MACs crossed the link...
        assert stats.bytes_for(Side.CXL, TrafficCategory.COUNTER) > 0
        assert stats.bytes_for(Side.CXL, TrafficCategory.MAC) >= (
            fabric.geometry.blocks_per_page * 32
        )
        # ...and every sector went through the AES pipes twice.
        total_aes = sum(e.sectors_processed for e in fabric.aes_engines)
        assert total_aes == 2 * fabric.geometry.sectors_per_page

    def test_fill_completion_after_data(self):
        fabric = make_fabric()
        model = BaselineSecurityModel(fabric)
        done = model.fill(0, page=3, frame=0)
        nosec_fabric = make_fabric()
        nosec_done = NoSecurityModel(nosec_fabric).fill(0, page=3, frame=0)
        assert done > nosec_done  # security work extends the fill

    def test_free_migration_variant(self):
        fabric = make_fabric()
        model = BaselineSecurityModel(fabric, free_migration_security=True)
        model.fill(0, page=3, frame=0)
        assert security_bytes(fabric) == 0

    def test_dirty_eviction_full_metadata(self):
        fabric = make_fabric()
        model = BaselineSecurityModel(fabric)
        drain = model.evict(
            0, page=3, frame=0, dirty_chunks=(0,), page_dirty=True
        )
        assert drain > 0
        assert fabric.stats.bytes_for(Side.CXL, TrafficCategory.MAC) >= (
            fabric.geometry.blocks_per_page * 32
        )

    def test_clean_eviction_free(self):
        fabric = make_fabric()
        model = BaselineSecurityModel(fabric)
        model.evict(0, page=3, frame=0, dirty_chunks=(), page_dirty=False)
        assert fabric.stats.total_bytes() == 0

    def test_read_books_metadata_legs(self):
        fabric = make_fabric()
        model = BaselineSecurityModel(fabric)
        loc = fabric.locate(0, frame=0)
        done = model.read_complete(0, loc, data_ready=10)
        assert done > 10  # counter fetch + MAC latency on the cold path

    def test_writeback_counts_counter_and_mac(self):
        fabric = make_fabric()
        model = BaselineSecurityModel(fabric)
        loc = fabric.locate(0, frame=0)
        for _ in range(200):  # enough to overflow 7-bit minors
            model.writeback(0, loc)
        assert fabric.stats.counters["baseline.ctr_overflow_reencrypts"] >= 1
        assert fabric.stats.bytes_for(Side.DEVICE, TrafficCategory.REENC_DATA) > 0


class TestSalus:
    def test_fill_is_pure_data_copy(self):
        """The headline claim: migration needs no security work at all."""
        fabric = make_fabric()
        model = SalusSecurityModel(fabric)
        model.fill(0, page=3, frame=0)
        assert security_bytes(fabric) == 0
        assert sum(e.sectors_processed for e in fabric.aes_engines) == 0

    def test_fill_completion_matches_nosec(self):
        fabric_s = make_fabric()
        fabric_n = make_fabric()
        done_s = SalusSecurityModel(fabric_s).fill(0, page=3, frame=0)
        done_n = NoSecurityModel(fabric_n).fill(0, page=3, frame=0)
        assert done_s == done_n

    def test_first_touch_fetches_chunk_metadata(self):
        fabric = make_fabric()
        model = SalusSecurityModel(fabric)
        model.fill(0, page=3, frame=0)
        loc = fabric.locate(3 * 4096, frame=0)
        model.read_complete(100, loc, data_ready=110)
        # One chunk's MAC sectors (2 x 32 B) crossed the link.
        assert fabric.stats.bytes_for(Side.CXL, TrafficCategory.MAC) == 64
        assert model.foa.first_touch_fetches == 1
        # A second read of the same chunk does not refetch.
        model.read_complete(200, loc, data_ready=210)
        assert fabric.stats.bytes_for(Side.CXL, TrafficCategory.MAC) == 64

    def test_untouched_chunks_never_fetch(self):
        fabric = make_fabric()
        model = SalusSecurityModel(fabric)
        model.fill(0, page=3, frame=0)
        loc = fabric.locate(3 * 4096, frame=0)
        model.read_complete(100, loc, data_ready=110)
        model.evict(
            500, page=3, frame=0, dirty_chunks=(), page_dirty=False
        )
        # 15 of 16 chunks avoided their metadata movement entirely.
        assert model.foa.avoided_fetches == 15

    def test_eviction_writes_only_dirty_chunks(self):
        fabric = make_fabric()
        model = SalusSecurityModel(fabric)
        model.fill(0, page=3, frame=0)
        loc = fabric.locate(3 * 4096, frame=0)
        model.on_store(50, loc)
        model.writeback(60, loc)
        data_before = fabric.stats.bytes_for(Side.CXL, TrafficCategory.DATA)
        model.evict(100, page=3, frame=0, dirty_chunks=(0,), page_dirty=True)
        data_after = fabric.stats.bytes_for(Side.CXL, TrafficCategory.DATA)
        # One 256 B chunk, not a 4 KiB page.
        assert data_after - data_before == fabric.geometry.chunk_bytes

    def test_collapse_advances_epoch(self):
        fabric = make_fabric()
        model = SalusSecurityModel(fabric)
        model.fill(0, page=3, frame=0)
        loc = fabric.locate(3 * 4096, frame=0)
        model.on_store(50, loc)
        model.writeback(60, loc)
        e0 = model.cxl_state.chunk_epoch(3, 0)
        model.evict(100, page=3, frame=0, dirty_chunks=(0,), page_dirty=True)
        assert model.cxl_state.chunk_epoch(3, 0) == e0 + 1

    def test_no_counter_bytes_on_link_with_collapse(self):
        """Collapsed counters ride inside MAC sectors: the only dedicated
        counter transfers are the (cacheable) verification reads."""
        fabric = make_fabric()
        model = SalusSecurityModel(fabric)
        model.fill(0, page=3, frame=0)
        loc0 = fabric.locate(3 * 4096, frame=0)
        loc1 = fabric.locate(3 * 4096 + 256, frame=0)
        model.read_complete(100, loc0, data_ready=110)
        ctr_after_first = fabric.stats.bytes_for(Side.CXL, TrafficCategory.COUNTER)
        model.read_complete(200, loc1, data_ready=210)
        # Second chunk of the same page: counter sector already cached.
        assert fabric.stats.bytes_for(Side.CXL, TrafficCategory.COUNTER) == ctr_after_first

    def test_store_dirty_tracking_costs_bounded_mapping_traffic(self):
        fabric = make_fabric()
        model = SalusSecurityModel(fabric)
        from repro.migration.dirty import DirtyTracker

        model.attach_dirty_tracker(DirtyTracker(fabric.geometry.chunks_per_page))
        model.fill(0, page=3, frame=0)
        loc = fabric.locate(3 * 4096, frame=0)
        for t in range(10):
            model.on_store(t, loc)
        # First write fetched the mapping; the rest hit the dirty buffer.
        assert fabric.stats.bytes_for(Side.DEVICE, TrafficCategory.MAPPING) == 32


class TestSalusAblations:
    def test_nofoa_moves_all_metadata_at_fill(self):
        fabric = make_fabric()
        model = SalusSecurityModel(fabric, SalusConfig(fetch_on_access=False))
        model.fill(0, page=3, frame=0)
        assert fabric.stats.bytes_for(Side.CXL, TrafficCategory.MAC) == (
            fabric.geometry.chunks_per_page * 64
        )

    def test_nocollapse_pays_counter_transfers(self):
        fabric = make_fabric()
        model = SalusSecurityModel(
            fabric, SalusConfig(collapsed_counters=False, fetch_on_access=False)
        )
        model.fill(0, page=3, frame=0)
        assert fabric.stats.bytes_for(Side.CXL, TrafficCategory.COUNTER) > 0

    def test_coarse_dirty_writes_whole_page(self):
        fabric = make_fabric()
        model = SalusSecurityModel(fabric, SalusConfig(fine_dirty_tracking=False))
        model.fill(0, page=3, frame=0)
        loc = fabric.locate(3 * 4096, frame=0)
        model.read_complete(10, loc, 20)
        model.on_store(50, loc)
        model.writeback(60, loc)
        model.evict(100, page=3, frame=0, dirty_chunks=(0,), page_dirty=True)
        assert fabric.stats.bytes_for(Side.CXL, TrafficCategory.DATA) >= (
            fabric.geometry.page_bytes + fabric.geometry.page_bytes
        )

    def test_unified_only_pays_unification(self):
        fabric = make_fabric()
        model = SalusSecurityModel(fabric, SalusConfig.unified_only())
        from repro.migration.dirty import DirtyTracker

        model.attach_dirty_tracker(DirtyTracker(fabric.geometry.chunks_per_page))
        # Install two pages whose chunks share device counter sectors with
        # different epochs.
        model.cxl_state.collapse(4, 0)  # page 4 chunk 0 now at epoch 1
        model.fill(0, page=3, frame=0)
        model.fill(0, page=4, frame=1)
        assert fabric.stats.counters.get("salus.unification_reencrypts", 0) > 0

"""Tests for first-divergence diffing (harness/diff.py and `repro diff`).

The contract under test: given two runs that the fingerprint gate calls
different, the diff names *where* they differ - the exact first event for
traces, the subtree of moved metric leaves for results - and stays silent
(exit 0, "identical") for byte-identical inputs.
"""

import copy
import json

import pytest

from repro.cli import main
from repro.config import SystemConfig
from repro.harness.diff import (
    DiffError,
    diff_chrome_traces,
    diff_paths,
    diff_result_dicts,
    load_payload,
    pair_results,
)
from repro.harness.runner import run_model
from repro.sim.metrics import diff_trees, group_diffs_by_subtree
from repro.sim.trace import (
    Tracer,
    first_event_divergence,
    normalized_events,
    render_normalized_event,
)
from repro.workloads.suite import build_trace

CFG = SystemConfig.small()
N = 500


def run_dict(bench="nw", model="salus", seed=3, n=N):
    trace = build_trace(bench, n_accesses=n, seed=seed, num_sms=CFG.gpu.num_sms)
    return run_model(CFG, trace, model).to_dict()


@pytest.fixture(scope="module")
def salus_seed3():
    return run_dict(seed=3)


@pytest.fixture(scope="module")
def salus_seed4():
    return run_dict(seed=4)


class TestMetricTreeDiff:
    def test_identical_trees_diff_empty(self):
        tree = {"a.x": 1, "a.y": 2.5}
        assert diff_trees(tree, dict(tree)) == {}

    def test_reports_changed_added_and_removed(self):
        diffs = diff_trees({"a.x": 1, "a.y": 2}, {"a.x": 5, "a.z": 7})
        assert diffs == {"a.x": (1, 5), "a.y": (2, None), "a.z": (None, 7)}

    def test_grouping_by_subtree(self):
        diffs = {"gpu.l2.hits": (1, 2), "gpu.l2.misses": (3, 4), "cxl.rx.ops": (5, 6)}
        groups = group_diffs_by_subtree(diffs)
        assert set(groups) == {"gpu.l2", "cxl.rx"}
        assert set(groups["gpu.l2"]) == {"gpu.l2.hits", "gpu.l2.misses"}


class TestResultDiff:
    def test_identical_results(self, salus_seed3):
        diff = diff_result_dicts(salus_seed3, copy.deepcopy(salus_seed3))
        assert diff.identical
        assert "identical" in diff.render()

    def test_cross_seed_divergence_names_leaves(self, salus_seed3, salus_seed4):
        diff = diff_result_dicts(salus_seed3, salus_seed4, "s3", "s4")
        assert not diff.identical
        assert diff.metrics, "different seeds must move some metric leaf"
        first = diff.first_metric()
        assert first in diff.metrics
        text = diff.render()
        assert "s3" in text and "s4" in text
        assert first.split(".")[0] in text

    def test_single_injected_leaf(self, salus_seed3):
        mutated = copy.deepcopy(salus_seed3)
        leaf = sorted(mutated["metrics"])[0]
        mutated["metrics"][leaf] += 1
        diff = diff_result_dicts(salus_seed3, mutated)
        assert list(diff.metrics) == [leaf]
        assert diff.first_metric() == leaf
        assert leaf in diff.render()

    def test_max_leaves_truncation(self, salus_seed3, salus_seed4):
        diff = diff_result_dicts(salus_seed3, salus_seed4)
        if len(diff.metrics) > 3:
            assert "more leaves" in diff.render(max_leaves=3)


class TestPairing:
    def test_singletons_pair_directly(self):
        a = {"workload": "nw", "model": "nosec"}
        b = {"workload": "nw", "model": "salus"}
        pairs = pair_results([a], [b])
        assert len(pairs) == 1

    def test_pairs_by_workload_model_key(self):
        a = [{"workload": "nw", "model": "nosec"}, {"workload": "nw", "model": "salus"}]
        b = [{"workload": "nw", "model": "salus"}]
        pairs = pair_results(a, b)
        assert [key for _, _, key in pairs] == ["nw/salus"]

    def test_pick_restricts(self):
        a = [{"workload": "nw", "model": "nosec"}, {"workload": "nw", "model": "salus"}]
        pairs = pair_results(a, a, pick="nw/nosec")
        assert [key for _, _, key in pairs] == ["nw/nosec"]
        with pytest.raises(DiffError):
            pair_results(a, a, pick="nw/missing")

    def test_no_common_pairs_is_an_error(self):
        with pytest.raises(DiffError):
            pair_results(
                [{"workload": "nw", "model": "nosec"}] * 2,
                [{"workload": "bfs", "model": "salus"}] * 2,
            )


class TestTraceDiff:
    @staticmethod
    def traced_payload(seed=3):
        trace = build_trace("nw", n_accesses=N, seed=seed, num_sms=CFG.gpu.num_sms)
        tracer = Tracer()
        run_model(CFG, trace, "salus", tracer=tracer)
        return tracer.to_chrome()

    def test_identical_traces(self):
        payload = self.traced_payload()
        diff = diff_chrome_traces(payload, copy.deepcopy(payload))
        assert diff.identical
        assert "identical" in diff.render()

    def test_injected_event_divergence_is_localized_exactly(self):
        payload_a = self.traced_payload()
        payload_b = copy.deepcopy(payload_a)
        # Mutate the 8th non-metadata event: nudge its timestamp.
        data_indices = [
            i for i, e in enumerate(payload_b["traceEvents"]) if e.get("ph") != "M"
        ]
        victim = data_indices[7]
        payload_b["traceEvents"][victim]["ts"] += 1

        events_a = normalized_events(payload_a)
        index = first_event_divergence(events_a, normalized_events(payload_b))
        assert index == 7

        diff = diff_chrome_traces(payload_a, payload_b, "good", "bad")
        assert diff.index == 7
        text = diff.render()
        assert "diverge at event index 7" in text
        # The report names the exact event on both sides, with context.
        assert render_normalized_event(events_a[7]) in text
        assert "good" in text and "bad" in text
        assert "[6]" in text  # context window shows the aligned prefix

    def test_truncated_stream_diverges_at_its_end(self):
        payload_a = self.traced_payload()
        payload_b = copy.deepcopy(payload_a)
        payload_b["traceEvents"] = payload_b["traceEvents"][:-1]
        diff = diff_chrome_traces(payload_a, payload_b)
        assert not diff.identical
        assert diff.index == diff.total_b
        assert "<end of stream>" in diff.render()

    def test_tid_renumbering_is_not_divergence(self):
        payload_a = self.traced_payload()
        payload_b = copy.deepcopy(payload_a)
        # Swap two tids consistently (metadata and events): same components,
        # different numbering - the normalized streams must still align.
        tids = sorted(
            {e["tid"] for e in payload_b["traceEvents"] if "tid" in e}
        )
        if len(tids) >= 2:
            swap = {tids[0]: tids[1], tids[1]: tids[0]}
            for event in payload_b["traceEvents"]:
                if event.get("tid") in swap:
                    event["tid"] = swap[event["tid"]]
            assert diff_chrome_traces(payload_a, payload_b).identical


class TestDiffPaths:
    def test_classification(self, tmp_path, salus_seed3):
        results = tmp_path / "r.json"
        results.write_text(json.dumps([salus_seed3]), encoding="utf-8")
        kind, payload = load_payload(results)
        assert kind == "results" and isinstance(payload, list)

        trace_file = tmp_path / "t.json"
        trace_file.write_text(
            json.dumps(TestTraceDiff.traced_payload()), encoding="utf-8"
        )
        kind, _ = load_payload(trace_file)
        assert kind == "trace"

        bad = tmp_path / "bad.json"
        bad.write_text('{"neither": true}', encoding="utf-8")
        with pytest.raises(DiffError):
            load_payload(bad)
        with pytest.raises(DiffError):
            load_payload(tmp_path / "missing.json")

    def test_kind_mismatch_is_an_error(self, tmp_path, salus_seed3):
        results = tmp_path / "r.json"
        results.write_text(json.dumps(salus_seed3), encoding="utf-8")
        trace_file = tmp_path / "t.json"
        trace_file.write_text(
            json.dumps(TestTraceDiff.traced_payload()), encoding="utf-8"
        )
        with pytest.raises(DiffError):
            diff_paths(results, trace_file)

    def test_outcome_bit(self, tmp_path, salus_seed3, salus_seed4):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(salus_seed3), encoding="utf-8")
        b.write_text(json.dumps(salus_seed4), encoding="utf-8")
        assert diff_paths(a, a).identical
        assert not diff_paths(a, b).identical


class TestCli:
    def test_exit_codes(self, tmp_path, capsys, salus_seed3, salus_seed4):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(salus_seed3), encoding="utf-8")
        b.write_text(json.dumps(salus_seed4), encoding="utf-8")

        assert main(["diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out

        assert main(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "differing metric leaves" in out

        assert main(["diff", str(a), str(tmp_path / "missing.json")]) == 2
        assert "repro diff" in capsys.readouterr().err

"""End-to-end tests of the functional security system (real crypto).

These execute the paper's security argument:

* round-trip correctness through arbitrary migration churn, in both modes;
* Salus moves ciphertext verbatim (zero migration re-encryptions);
* the baseline re-encrypts at every move;
* tampering raises IntegrityError, replay raises FreshnessError;
* one-time pads never repeat under either design.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ctr_mode import CounterModeCipher
from repro.errors import FreshnessError, IntegrityError, SecurityError
from repro.security.functional import FunctionalSecureSystem


def make_system(mode="salus", pages=8, frames=2):
    return FunctionalSecureSystem(footprint_pages=pages, frames=frames, mode=mode)


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["salus", "baseline"])
    def test_simple_write_read(self, mode):
        system = make_system(mode)
        system.write(0, b"hello-world-hello-world-hello-w!")
        assert system.read(0) == b"hello-world-hello-world-hello-w!"

    @pytest.mark.parametrize("mode", ["salus", "baseline"])
    def test_overwrite(self, mode):
        system = make_system(mode)
        system.write(64, b"v1" * 16)
        system.write(64, b"v2" * 16)
        assert system.read(64) == b"v2" * 16

    @pytest.mark.parametrize("mode", ["salus", "baseline"])
    def test_survives_migration_churn(self, mode):
        system = make_system(mode, pages=12, frames=3)
        rng = random.Random(42)
        expected = {}
        for _ in range(400):
            addr = rng.randrange(12 * 128) * 32
            value = bytes(rng.randrange(256) for _ in range(32))
            system.write(addr, value)
            expected[addr] = value
        assert system.stats.evictions > 50  # real churn happened
        for addr, value in expected.items():
            assert system.read(addr) == value

    def test_unwritten_sector_reads_deterministically(self):
        system = make_system()
        first = system.read(0)
        assert system.read(0) == first

    def test_sector_size_enforced(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            make_system().write(0, b"short")


class TestMigrationReencryption:
    def test_salus_never_reencrypts_on_migration(self):
        """The core claim of the unified model (Section IV-A)."""
        system = make_system("salus", pages=12, frames=2)
        rng = random.Random(7)
        for _ in range(300):
            system.write(rng.randrange(12 * 128) * 32, bytes(32))
        assert system.stats.fills > 20
        assert system.stats.migration_reencrypted_sectors == 0

    def test_baseline_reencrypts_every_fill(self):
        system = make_system("baseline", pages=12, frames=2)
        rng = random.Random(7)
        for _ in range(300):
            system.write(rng.randrange(12 * 128) * 32, bytes(32))
        assert system.stats.migration_reencrypted_sectors >= (
            system.stats.fills * system.geometry.sectors_per_page
        ) - system.geometry.sectors_per_page

    def test_salus_ciphertext_moves_verbatim(self):
        system = make_system("salus", pages=4, frames=1)
        system.write(0, b"Q" * 32)
        system.write(4096, b"x" * 32)  # evicts page 0
        cxl_bytes = system.cxl_data.read(0)
        assert system.read(0) == b"Q" * 32  # refaults page 0
        frame = system.page_cache.frame_of(0)
        assert system.device_data.read(frame * 128) == cxl_bytes

    def test_salus_fetch_on_access_counts(self):
        system = make_system("salus", pages=4, frames=2)
        system.write(0, b"a" * 32)
        system.write(32, b"b" * 32)   # same chunk: no second fetch
        system.write(256, b"c" * 32)  # next chunk: one more fetch
        assert system.stats.metadata_chunks_fetched == 2

    def test_clean_chunks_skip_writeback(self):
        system = make_system("salus", pages=4, frames=1)
        system.write(0, b"a" * 32)
        _ = system.read(4096)      # page 1 evicts page 0 (chunk 0 dirty)
        epoch_dirty = system.cxl_counters.chunk_epoch(0, 0)
        epoch_clean = system.cxl_counters.chunk_epoch(0, 1)
        assert epoch_dirty == 1   # collapsed once
        assert epoch_clean == 0   # untouched chunk kept its epoch


class TestIntegrity:
    def test_tampered_device_data_detected(self):
        system = make_system()
        system.write(0, b"A" * 32)
        system.tamper_device_sector(0, b"B" * 32)
        with pytest.raises(IntegrityError):
            system.read(0)

    def test_tampered_cxl_data_detected_after_refault(self):
        system = make_system("salus", pages=4, frames=1)
        system.write(0, b"A" * 32)
        system.write(4096, b"x" * 32)  # page 0 evicted to CXL
        system.tamper_cxl_sector(0, b"E" * 32)
        with pytest.raises(IntegrityError):
            system.read(0)

    def test_baseline_detects_tampering_at_fill(self):
        system = make_system("baseline", pages=4, frames=1)
        system.write(0, b"A" * 32)
        system.write(4096, b"x" * 32)
        system.tamper_cxl_sector(0, b"E" * 32)
        with pytest.raises(IntegrityError):
            system.read(0)  # baseline verifies during the fill

    def test_bitflip_detected(self):
        system = make_system()
        system.write(0, b"A" * 32)
        frame = system.page_cache.frame_of(0)
        original = system.device_data.read(frame * 128)
        flipped = bytes([original[0] ^ 1]) + original[1:]
        system.tamper_device_sector(0, flipped)
        with pytest.raises(IntegrityError):
            system.read(0)


class TestFreshness:
    def test_replayed_chunk_detected(self):
        """A fully self-consistent stale snapshot (data + MACs + counters +
        Merkle leaf) still fails: the on-chip root moved on."""
        system = make_system("salus", pages=4, frames=1)
        system.write(0, b"old0" * 8)
        system.write(4096, b"x" * 32)          # page 0 evicted at epoch 1
        snapshot = system.snapshot_chunk(0)
        system.write(0, b"new0" * 8)           # refault, rewrite
        system.write(4096, b"z" * 32)          # evicted again at epoch 2
        system.replay_chunk(snapshot)
        with pytest.raises(SecurityError):
            system.read(0)

    def test_snapshot_restores_cleanly_detectable_state(self):
        system = make_system("salus", pages=4, frames=1)
        system.write(0, b"v" * 32)
        system.write(4096, b"w" * 32)
        snapshot = system.snapshot_chunk(0)
        # Replaying the *current* state is a no-op and must still verify.
        system.replay_chunk(snapshot)
        assert system.read(0) == b"v" * 32


class TestOtpUniqueness:
    @pytest.mark.parametrize("mode", ["salus", "baseline"])
    def test_no_iv_reuse_under_churn(self, mode):
        """Track every IV fed to AES; none may repeat for actual encryption
        (decryptions legitimately reuse the encryption IV)."""
        system = make_system(mode, pages=6, frames=2)
        seen = set()
        duplicates = []
        original = CounterModeCipher.one_time_pad

        def tracked(cipher_self, addr, major, minor):
            return original(cipher_self, addr, major, minor)

        rng = random.Random(3)
        # Record IVs at write time only (encryption direction).
        write = system.write

        def write_tracked(addr, data):
            write(addr, data)

        for _ in range(200):
            addr = rng.randrange(6 * 128) * 32
            coords = system.unified.coordinates(addr)
            write_tracked(addr, bytes(rng.randrange(256) for _ in range(32)))
            if mode == "salus":
                frame = system.page_cache.frame_of(coords.page)
                device_chunk = (
                    frame * system.geometry.chunks_per_page + coords.chunk_in_page
                )
                pair = system.device_groups.read(device_chunk, coords.sector_in_chunk)
                iv = (coords.cxl_sector_addr, pair.major, pair.minor)
            else:
                frame = system.page_cache.frame_of(coords.page)
                dev_sector = frame * 128 + system.geometry.sector_in_page(addr)
                pair = system.device_counters_conv.read(dev_sector)
                iv = (dev_sector * 32, pair.major, pair.minor)
            if iv in seen:
                duplicates.append(iv)
            seen.add(iv)
        assert not duplicates


@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 8 * 128 - 1),  # sector index within footprint
            st.binary(min_size=32, max_size=32),
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=10, deadline=None)
def test_salus_functional_model_property(ops):
    """Arbitrary op sequences: last write wins, zero migration re-encryption."""
    system = make_system("salus", pages=8, frames=2)
    expected = {}
    for sector, value in ops:
        system.write(sector * 32, value)
        expected[sector * 32] = value
    for addr, value in expected.items():
        assert system.read(addr) == value
    assert system.stats.migration_reencrypted_sectors == 0

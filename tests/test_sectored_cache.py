"""Unit tests for the generic sectored cache (repro.memsys.sectored_cache)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.memsys.sectored_cache import SectoredCache


def make_cache(total=1024, ways=2, line=128, sector=32):
    return SectoredCache("test", total, ways, line, sector)


class TestBasics:
    def test_dimensions(self):
        cache = make_cache()
        assert cache.num_sets == 4
        assert cache.sectors_per_line == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_cache(total=1000)  # not divisible
        with pytest.raises(ConfigError):
            SectoredCache("x", 1024, 2, 100, 32)  # line not multiple of sector
        with pytest.raises(ConfigError):
            make_cache(total=0)

    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0, 0).sector_hit
        assert cache.access(0, 0).sector_hit

    def test_sector_granularity(self):
        """Line-hit but sector-miss: the sectored organization's whole point."""
        cache = make_cache()
        cache.access(0, 0)
        result = cache.access(0, 1)
        assert result.line_hit
        assert not result.sector_hit

    def test_sector_bounds_checked(self):
        with pytest.raises(ConfigError):
            make_cache().access(0, 4)


class TestEviction:
    def test_lru_victim(self):
        cache = make_cache(total=256, ways=2, line=128)  # 1 set, 2 ways
        cache.access(0, 0)
        cache.access(1, 0)
        cache.access(0, 1)  # touch 0: now 1 is LRU
        result = cache.access(2, 0)
        assert result.evicted is not None
        assert result.evicted.line_addr == 1

    def test_dirty_sectors_reported(self):
        cache = make_cache(total=256, ways=2, line=128)
        cache.access(0, 1, write=True)
        cache.access(0, 3, write=True)
        cache.access(1, 0)
        result = cache.access(2, 0)
        assert result.evicted.line_addr == 0
        assert result.evicted.dirty_sectors == (1, 3)
        assert result.evicted.was_dirty

    def test_clean_eviction(self):
        cache = make_cache(total=256, ways=2, line=128)
        cache.access(0, 0)
        cache.access(1, 0)
        result = cache.access(2, 0)
        assert result.evicted is not None
        assert not result.evicted.was_dirty


class TestInvalidation:
    def test_invalidate_line_returns_dirty(self):
        cache = make_cache()
        cache.access(5, 2, write=True)
        evicted = cache.invalidate_line(5)
        assert evicted.dirty_sectors == (2,)
        assert not cache.probe(5, 2)

    def test_invalidate_absent_line(self):
        assert make_cache().invalidate_line(99) is None

    def test_invalidate_sector_discards_dirty(self):
        cache = make_cache()
        cache.access(5, 2, write=True)
        assert cache.invalidate_sector(5, 2) is True
        assert not cache.probe(5, 2)
        # The line itself survives with its other sectors.
        cache.access(5, 1)
        assert cache.invalidate_sector(5, 1) is False  # clean sector

    def test_invalidate_sector_absent(self):
        assert make_cache().invalidate_sector(0, 0) is False


class TestFlushAndPayload:
    def test_flush_dirty(self):
        cache = make_cache()
        cache.access(0, 0, write=True)
        cache.access(1, 2, write=True)
        cache.access(2, 3)  # clean
        drained = cache.flush_dirty()
        assert {d.line_addr for d in drained} == {0, 1}
        assert cache.flush_dirty() == []  # idempotent

    def test_tag_payload(self):
        cache = make_cache()
        cache.access(3, 0, tag_payload="page-9")
        assert cache.line_payload(3) == "page-9"
        assert cache.line_payload(4) is None
        # Hits do not clobber the payload.
        cache.access(3, 1, tag_payload="other")
        assert cache.line_payload(3) == "page-9"

    def test_hit_rate(self):
        cache = make_cache()
        cache.access(0, 0)
        cache.access(0, 0)
        assert cache.hit_rate == pytest.approx(0.5)


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 3), st.booleans()),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=30, deadline=None)
def test_capacity_never_exceeded(accesses):
    cache = make_cache(total=512, ways=2, line=128)  # 2 sets x 2 ways
    for line, sector, write in accesses:
        cache.access(line, sector, write=write)
    for cache_set in cache._sets:
        assert len(cache_set) <= cache.ways


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 3)), min_size=1, max_size=200
    )
)
@settings(max_examples=30, deadline=None)
def test_probe_agrees_with_access_history(accesses):
    """probe() is consistent: a probed-present sector hits on access."""
    cache = make_cache(total=2048, ways=4, line=128)
    for line, sector in accesses:
        present = cache.probe(line, sector)
        result = cache.access(line, sector)
        assert result.sector_hit == present

"""Unit tests for CXL-to-GPU mapping machinery (repro.cxl)."""

import pytest

from repro.cxl.device import ExpansionMemory, SectorStore
from repro.cxl.mapping import MAPPINGS_PER_SECTOR, MappingEntry, MappingTable
from repro.cxl.mapping_cache import DirtyBuffer, MappingCache, MappingMissHandler
from repro.errors import AddressError, ConfigError


class TestSectorStore:
    def test_untouched_reads_zero(self):
        store = SectorStore()
        assert store.read(100) == b"\x00" * 32

    def test_write_read(self):
        store = SectorStore()
        store.write(5, b"a" * 32)
        assert store.read(5) == b"a" * 32
        assert 5 in store and 6 not in store

    def test_size_enforced(self):
        with pytest.raises(AddressError):
            SectorStore().write(0, b"short")

    def test_discard(self):
        store = SectorStore()
        store.write(5, b"a" * 32)
        store.discard(5)
        assert store.read(5) == b"\x00" * 32

    def test_negative_index(self):
        with pytest.raises(AddressError):
            SectorStore().read(-1)

    def test_expander_capacity(self):
        mem = ExpansionMemory(capacity_sectors=10)
        mem.write(9, b"x" * 32)
        with pytest.raises(AddressError):
            mem.read(10)


class TestMappingTable:
    def test_entry_lifecycle(self):
        table = MappingTable(num_pages=8)
        assert not table.is_resident(3)
        table.map_page(3, frame=5)
        assert table.is_resident(3)
        assert table.entry(3).frame == 5

    def test_unmap_returns_final_dirty_state(self):
        table = MappingTable(num_pages=8)
        table.map_page(3, frame=5)
        table.entry(3).mark_dirty_chunk(2)
        table.entry(3).mark_dirty_chunk(9)
        snapshot = table.unmap_page(3)
        assert snapshot.frame == 5
        assert snapshot.dirty_chunks(16) == (2, 9)
        assert snapshot.page_dirty
        assert not table.is_resident(3)
        # The live entry was wiped.
        assert table.entry(3).dirty_mask == 0

    def test_remap_clears_dirty(self):
        table = MappingTable(num_pages=8)
        table.map_page(3, frame=5)
        table.entry(3).mark_dirty_chunk(0)
        table.unmap_page(3)
        table.map_page(3, frame=1)
        assert not table.entry(3).page_dirty

    def test_unmap_non_resident_raises(self):
        with pytest.raises(AddressError):
            MappingTable(num_pages=8).unmap_page(0)

    def test_bounds(self):
        with pytest.raises(AddressError):
            MappingTable(num_pages=8).entry(8)
        with pytest.raises(AddressError):
            MappingTable(num_pages=0)

    def test_mapping_sector_packs_four(self):
        assert MAPPINGS_PER_SECTOR == 4
        assert MappingTable.mapping_sector(0) == MappingTable.mapping_sector(3)
        assert MappingTable.mapping_sector(3) != MappingTable.mapping_sector(4)


class TestMappingEntry:
    def test_dirty_mask(self):
        entry = MappingEntry(frame=0)
        entry.mark_dirty_chunk(0)
        entry.mark_dirty_chunk(15)
        assert entry.dirty_chunks(16) == (0, 15)
        entry.clear_dirty()
        assert entry.dirty_chunks(16) == ()
        assert not entry.page_dirty


class TestMappingCache:
    def test_128_entries_default(self):
        assert MappingCache(0).entries == 128

    def test_lru_eviction(self):
        cache = MappingCache(0, entries=2)
        cache.install(1, 10)
        cache.install(2, 20)
        cache.lookup(1)           # 2 becomes LRU
        cache.install(3, 30)
        assert cache.lookup(2) is None
        assert cache.lookup(1) == 10
        assert cache.lookup(3) == 30

    def test_hit_rate(self):
        cache = MappingCache(0)
        cache.lookup(1)
        cache.install(1, 5)
        cache.lookup(1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalidate(self):
        cache = MappingCache(0)
        cache.install(1, 5)
        assert cache.invalidate(1)
        assert not cache.invalidate(1)
        assert cache.lookup(1) is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            MappingCache(0, entries=0)


class TestDirtyBuffer:
    def test_buffered_writes_are_free(self):
        buf = DirtyBuffer(entries=4)
        needed, evicted = buf.note_write(7)
        assert needed and evicted is None
        needed, evicted = buf.note_write(7)
        assert not needed and evicted is None

    def test_lru_eviction_writes_back(self):
        buf = DirtyBuffer(entries=2)
        buf.note_write(1)
        buf.note_write(2)
        needed, evicted = buf.note_write(3)
        assert needed
        assert evicted == 1  # LRU mapping pushed to memory

    def test_recency(self):
        buf = DirtyBuffer(entries=2)
        buf.note_write(1)
        buf.note_write(2)
        buf.note_write(1)  # refresh 1
        _, evicted = buf.note_write(3)
        assert evicted == 2

    def test_drop(self):
        buf = DirtyBuffer(entries=2)
        buf.note_write(5)
        assert buf.drop(5)
        assert not buf.drop(5)
        assert 5 not in buf


class TestMissHandler:
    def test_targeted_invalidation(self):
        """Only the GPCs that were handed a translation get invalidated."""
        handler = MappingMissHandler(num_gpcs=4)
        handler.record_fill(0, page=9, frame=1)
        handler.record_fill(2, page=9, frame=1)
        handler.record_fill(1, page=7, frame=2)
        sent = handler.invalidate_page(9)
        assert sent == 2
        assert handler.cache_for(0).lookup(9) is None
        assert handler.cache_for(2).lookup(9) is None
        assert handler.cache_for(1).lookup(7) == 2  # untouched

    def test_invalidate_unknown_page(self):
        handler = MappingMissHandler(num_gpcs=2)
        assert handler.invalidate_page(42) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            MappingMissHandler(num_gpcs=0)

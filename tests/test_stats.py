"""Tests for StatRegistry merge semantics and (de)serialization round-trips."""

import json

import pytest

from repro.config import SystemConfig
from repro.gpu.gpusim import RunResult
from repro.harness.runner import run_model
from repro.sim.stats import Side, StatRegistry, TrafficCategory
from repro.workloads.suite import build_trace


def _registry(device_data=0, cxl_mac=0, counters=None, instructions=0, final_cycle=0):
    reg = StatRegistry()
    if device_data:
        reg.add_traffic(Side.DEVICE, TrafficCategory.DATA, device_data)
    if cxl_mac:
        reg.add_traffic(Side.CXL, TrafficCategory.MAC, cxl_mac)
    for name, amount in (counters or {}).items():
        reg.bump(name, amount)
    reg.instructions = instructions
    reg.final_cycle = final_cycle
    return reg


class TestMerge:
    def test_merge_sums_traffic_and_counters(self):
        a = _registry(device_data=100, counters={"fills": 2}, instructions=10,
                      final_cycle=50)
        b = _registry(device_data=40, cxl_mac=8, counters={"fills": 3, "evicts": 1},
                      instructions=7, final_cycle=20)
        a.merge([b])
        assert a.bytes_for(Side.DEVICE, TrafficCategory.DATA) == 140
        assert a.bytes_for(Side.CXL, TrafficCategory.MAC) == 8
        assert a.counters["fills"] == 5
        assert a.counters["evicts"] == 1
        assert a.instructions == 17

    def test_merge_final_cycle_is_max_not_sum(self):
        a = _registry(final_cycle=50)
        b = _registry(final_cycle=200)
        c = _registry(final_cycle=120)
        a.merge([b, c])
        assert a.final_cycle == 200

    def test_merge_multi_registry_fold_matches_pairwise(self):
        shards = [
            _registry(device_data=i * 10, cxl_mac=i, counters={"x": i},
                      instructions=i, final_cycle=i * 100)
            for i in range(1, 5)
        ]
        folded = StatRegistry().merge(shards)
        pairwise = StatRegistry()
        for shard in shards:
            pairwise.merge([shard])
        assert folded.to_dict() == pairwise.to_dict()

    def test_merge_returns_self(self):
        a = _registry()
        assert a.merge([_registry()]) is a


class TestStatRegistryRoundTrip:
    def test_round_trip_through_json(self):
        reg = _registry(device_data=123, cxl_mac=45,
                        counters={"fills": 7}, instructions=99, final_cycle=1000)
        reg.add_traffic(Side.CXL, TrafficCategory.REENC_DATA, 512)
        back = StatRegistry.from_dict(json.loads(json.dumps(reg.to_dict())))
        assert back.to_dict() == reg.to_dict()
        assert back.breakdown() == reg.breakdown()
        assert back.ipc == reg.ipc
        assert back.security_bytes() == reg.security_bytes()
        assert back.security_bytes(Side.CXL) == reg.security_bytes(Side.CXL)

    def test_empty_registry_round_trips(self):
        back = StatRegistry.from_dict(StatRegistry().to_dict())
        assert back.total_bytes() == 0
        assert back.ipc == 0.0

    def test_malformed_side_rejected(self):
        with pytest.raises(ValueError):
            StatRegistry.from_dict({"traffic_bytes": {"moon.data": 5}})

    def test_optional_filters_accept_none(self):
        reg = _registry(device_data=64, cxl_mac=32)
        assert reg.bytes_for() == 96
        assert reg.bytes_for(side=None, category=None) == 96
        assert reg.total_bytes(None) == 96


class TestRunResultRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        config = SystemConfig.small()
        trace = build_trace("nw", n_accesses=600, seed=3,
                            num_sms=config.gpu.num_sms)
        return run_model(config, trace, "salus")

    def test_round_trip_preserves_everything_figures_use(self, result):
        back = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.model == result.model
        assert back.workload == result.workload
        assert back.ipc == result.ipc
        assert back.cycles == result.cycles
        assert back.fills == result.fills
        assert back.evictions == result.evictions
        assert back.counters == result.counters
        assert back.stats.breakdown() == result.stats.breakdown()
        assert back.stats.security_bytes() == result.stats.security_bytes()
        assert back.stats.security_bytes(Side.CXL) == result.stats.security_bytes(Side.CXL)
        assert dict(back.stats.counters) == dict(result.stats.counters)

    def test_to_dict_is_its_own_fixpoint(self, result):
        once = RunResult.from_dict(result.to_dict())
        twice = RunResult.from_dict(once.to_dict())
        assert once.to_dict() == twice.to_dict() == result.to_dict()

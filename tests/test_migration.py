"""Unit tests for the migration substrate (page cache, dirty, engine)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cxl.mapping import MappingTable
from repro.errors import SimulationError
from repro.migration.dirty import DirtyTracker
from repro.migration.engine import MigrationEngine
from repro.migration.page_cache import PageCache
from repro.migration.policies import FIFOPolicy, LRUPolicy


class TestPolicies:
    def test_lru(self):
        policy = LRUPolicy()
        for p in (1, 2, 3):
            policy.on_insert(p)
        policy.on_access(1)
        assert policy.victim() == 2

    def test_fifo_ignores_recency(self):
        policy = FIFOPolicy()
        for p in (1, 2, 3):
            policy.on_insert(p)
        policy.on_access(1)
        assert policy.victim() == 1

    def test_remove(self):
        policy = LRUPolicy()
        policy.on_insert(1)
        policy.on_insert(2)
        policy.on_remove(1)
        assert policy.victim() == 2
        assert len(policy) == 1

    def test_empty_victim_raises(self):
        with pytest.raises(SimulationError):
            LRUPolicy().victim()


class TestPageCache:
    def test_fill_uses_free_frames_first(self):
        cache = PageCache(num_frames=2)
        r1 = cache.fault(10)
        r2 = cache.fault(11)
        assert r1.victim_page is None and r2.victim_page is None
        assert {r1.frame, r2.frame} == {0, 1}

    def test_fault_when_full_evicts_lru(self):
        cache = PageCache(num_frames=2)
        cache.fault(10)
        cache.fault(11)
        cache.touch(10)
        result = cache.fault(12)
        assert result.victim_page == 11
        assert result.frame == result.victim_frame
        assert not cache.is_resident(11)
        assert cache.frame_of(12) == result.victim_frame

    def test_double_fault_rejected(self):
        cache = PageCache(num_frames=2)
        cache.fault(10)
        with pytest.raises(SimulationError):
            cache.fault(10)

    def test_touch_non_resident_rejected(self):
        with pytest.raises(SimulationError):
            PageCache(num_frames=1).touch(5)

    def test_explicit_evict_frees_frame(self):
        cache = PageCache(num_frames=1)
        r = cache.fault(10)
        cache.evict(10)
        assert cache.free_frame_count == 1
        assert cache.fault(11).frame == r.frame

    def test_counters(self):
        cache = PageCache(num_frames=1)
        cache.fault(1)
        cache.fault(2)
        assert cache.fills == 2
        assert cache.evictions == 1

    @given(pages=st.lists(st.integers(0, 30), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_residency_bijection_invariant(self, pages):
        """page->frame and frame->page stay mutually consistent and bounded."""
        cache = PageCache(num_frames=4)
        for page in pages:
            if cache.is_resident(page):
                cache.touch(page)
            else:
                cache.fault(page)
            assert len(cache.resident_pages) <= 4
            for p in cache.resident_pages:
                assert cache.page_in(cache.frame_of(p)) == p


class TestDirtyTracker:
    def test_mark_and_views(self):
        tracker = DirtyTracker(chunks_per_page=16)
        assert tracker.mark(3, 5)
        assert not tracker.mark(3, 5)  # already set
        tracker.mark(3, 7)
        assert tracker.dirty_chunks(3) == (5, 7)
        assert tracker.is_page_dirty(3)
        assert tracker.dirty_count(3) == 2
        assert not tracker.is_page_dirty(4)

    def test_clear(self):
        tracker = DirtyTracker(chunks_per_page=16)
        tracker.mark(3, 5)
        old = tracker.clear(3)
        assert old == 1 << 5
        assert tracker.dirty_chunks(3) == ()

    def test_bounds(self):
        tracker = DirtyTracker(chunks_per_page=16)
        with pytest.raises(ValueError):
            tracker.mark(0, 16)
        with pytest.raises(ValueError):
            DirtyTracker(chunks_per_page=0)


class _Recorder:
    """Test double capturing the engine's callbacks."""

    def __init__(self, fill_latency=100, evict_drain=50):
        self.fill_latency = fill_latency
        self.evict_drain = evict_drain
        self.fills = []
        self.evicts = []

    def fill(self, now, page, frame):
        self.fills.append((now, page, frame))
        return now + self.fill_latency

    def evict(self, now, page, frame, dirty_chunks, page_dirty):
        self.evicts.append((now, page, frame, dirty_chunks, page_dirty))
        return now + self.evict_drain


def make_engine(frames=2, buffer_pages=8, **kwargs):
    recorder = _Recorder(**kwargs)
    engine = MigrationEngine(
        page_cache=PageCache(frames),
        mapping=MappingTable(num_pages=64),
        dirty=DirtyTracker(chunks_per_page=16),
        fill_cb=recorder.fill,
        evict_cb=recorder.evict,
        evict_buffer_pages=buffer_pages,
    )
    return engine, recorder


class TestMigrationEngine:
    def test_fault_fills_and_maps(self):
        engine, recorder = make_engine()
        frame, ready = engine.ensure_resident(10, page=3)
        assert ready == 110
        assert recorder.fills == [(10, 3, frame)]
        assert engine.mapping.is_resident(3)

    def test_inflight_fill_merging(self):
        engine, recorder = make_engine()
        _, ready1 = engine.ensure_resident(0, page=3)
        _, ready2 = engine.ensure_resident(20, page=3)
        assert ready2 == ready1  # merged, no second copy
        assert len(recorder.fills) == 1

    def test_resident_after_fill_completes(self):
        engine, _ = make_engine()
        engine.ensure_resident(0, page=3)
        frame, ready = engine.ensure_resident(500, page=3)
        assert ready == 500  # long done

    def test_eviction_passes_dirty_state(self):
        engine, recorder = make_engine(frames=1)
        engine.ensure_resident(0, page=1)
        engine.dirty.mark(1, 4)
        engine.ensure_resident(10, page=2)  # evicts page 1
        now, page, frame, chunks, page_dirty = recorder.evicts[0]
        assert page == 1
        assert chunks == (4,)
        assert page_dirty
        # Dirty state was consumed.
        assert not engine.dirty.is_page_dirty(1)

    def test_writeback_buffer_backpressure(self):
        """With slow eviction drains, fills eventually stall for buffer room."""
        engine, _ = make_engine(frames=1, buffer_pages=2, evict_drain=10_000)
        for i, page in enumerate(range(10)):
            engine.ensure_resident(i, page=page)
        assert engine.evict_stall_cycles > 0

    def test_no_backpressure_with_fast_drains(self):
        engine, _ = make_engine(frames=1, buffer_pages=2, evict_drain=0)
        for i, page in enumerate(range(10)):
            engine.ensure_resident(i * 100, page=page)
        assert engine.evict_stall_cycles == 0

    def test_evict_now(self):
        engine, recorder = make_engine()
        engine.ensure_resident(0, page=5)
        engine.evict_now(50, page=5)
        assert recorder.evicts[0][1] == 5
        assert not engine.page_cache.is_resident(5)
        with pytest.raises(SimulationError):
            engine.evict_now(60, page=5)

    def test_counts(self):
        engine, _ = make_engine(frames=1)
        engine.ensure_resident(0, page=1)
        engine.ensure_resident(1, page=2)
        engine.ensure_resident(2, page=3)
        assert engine.fill_count == 3
        assert engine.evict_count == 2

"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.harness.experiments import clear_cache


@pytest.fixture(autouse=True)
def _clean_cache(monkeypatch, tmp_path):
    # Keep the on-disk result cache out of the repository during tests.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "salus-cache"))
    clear_cache()
    yield
    clear_cache()


class TestParser:
    def test_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "nw"])
        assert args.benchmark == "nw"
        assert args.models == ["nosec", "baseline", "salus"]
        assert args.accesses == 20_000

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_run_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nw", "--models", "quantum"])

    def test_figure_all(self):
        args = build_parser().parse_args(["figure", "all"])
        assert args.name == "all"

    def test_figure_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_engine_flags(self):
        args = build_parser().parse_args(
            ["figure", "fig10", "--jobs", "4", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.no_cache is True

    def test_figures_command_is_figure_all(self):
        args = build_parser().parse_args(["figures", "--jobs", "2"])
        assert args.name == "all"
        assert args.jobs == 2

    def test_cache_dir_flag(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "nw", "--cache-dir", str(tmp_path / "c")]
        )
        assert args.cache_dir == str(tmp_path / "c")

    def test_knobs(self):
        args = build_parser().parse_args(
            [
                "run", "nw", "--accesses", "500", "--seed", "11",
                "--cxl-bw-ratio", "0.25", "--capacity-ratio", "0.2",
                "--fill-granularity", "chunk",
            ]
        )
        assert args.accesses == 500
        assert args.cxl_bw_ratio == pytest.approx(0.25)
        assert args.fill_granularity == "chunk"


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "nw" in out and "pannotia" in out
        assert "salus" in out and "fig10" in out

    def test_run_output(self, capsys):
        code = main(["run", "nw", "--accesses", "800", "--models", "nosec", "salus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ipc_norm" in out
        assert "salus" in out

    def test_run_with_chunk_fills(self, capsys):
        code = main(
            ["run", "nw", "--accesses", "600", "--models", "salus",
             "--fill-granularity", "chunk"]
        )
        assert code == 0

    def test_figure_output(self, capsys):
        code = main(
            ["figure", "fig10", "--accesses", "600", "--benchmarks", "nw"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 10" in out
        assert "geomean_improvement" in out

    def test_figure_warm_cache_identical_output(self, tmp_path, capsys):
        """A second invocation is served from the on-disk cache, byte-identical."""
        argv = [
            "figure", "fig11", "--accesses", "600", "--benchmarks", "nw",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        # Each CLI invocation builds a fresh engine, so the second run can
        # only be served by the persistent on-disk cache.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_figure_parallel_matches_serial(self, capsys):
        argv = ["figure", "fig03", "--accesses", "600",
                "--benchmarks", "nw", "--no-cache"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

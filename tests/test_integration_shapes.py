"""Integration tests for the paper's qualitative shapes at test scale.

Small, fast simulations asserting the *mechanism-level* relationships each
Salus optimization is supposed to produce (the full magnitudes are the
benchmarks' job; see EXPERIMENTS.md).
"""

import pytest

from repro.config import SystemConfig
from repro.harness.runner import run_model
from repro.sim.stats import Side, TrafficCategory
from repro.workloads.generators import WorkloadSpec, generate_trace

CFG = SystemConfig.small()


def make_trace(coverage=0.25, writes=0.3, pages=96, n=4000, concurrent=8, reuse=2):
    spec = WorkloadSpec(
        name="shape", footprint_pages=pages, chunk_coverage=coverage,
        concurrent_pages=concurrent, write_fraction=writes,
        sectors_per_chunk_touched=4, reuse=reuse, compute_per_mem=6,
    )
    return generate_trace(spec, n, num_sms=CFG.gpu.num_sms)


class TestFetchOnAccessShape:
    def test_sparse_coverage_cuts_link_mac_traffic(self):
        """Fetch-on-access skips MAC movement for untouched chunks; with
        20%-coverage pages, most MAC bytes never cross the link."""
        trace = make_trace(coverage=0.2)
        full = run_model(CFG, trace, "salus")
        nofoa = run_model(CFG, trace, "salus-nofoa")
        mac_full = full.stats.bytes_for(Side.CXL, TrafficCategory.MAC)
        mac_nofoa = nofoa.stats.bytes_for(Side.CXL, TrafficCategory.MAC)
        assert mac_full < 0.5 * mac_nofoa

    def test_dense_coverage_no_advantage(self):
        """With every chunk touched, laziness saves (almost) nothing."""
        trace = make_trace(coverage=1.0)
        full = run_model(CFG, trace, "salus")
        nofoa = run_model(CFG, trace, "salus-nofoa")
        mac_full = full.stats.bytes_for(Side.CXL, TrafficCategory.MAC)
        mac_nofoa = nofoa.stats.bytes_for(Side.CXL, TrafficCategory.MAC)
        assert mac_full >= 0.9 * mac_nofoa


class TestFineDirtyTrackingShape:
    def test_write_light_workload_writes_back_less(self):
        """A page with one dirty chunk writes 256 B back, not 4 KiB."""
        trace = make_trace(coverage=0.2, writes=0.15)
        fine = run_model(CFG, trace, "salus")
        coarse = run_model(CFG, trace, "salus-coarsedirty")
        tx_fine = fine.stats.bytes_for(Side.CXL, TrafficCategory.DATA)
        tx_coarse = coarse.stats.bytes_for(Side.CXL, TrafficCategory.DATA)
        assert tx_fine < tx_coarse


class TestCollapsedCountersShape:
    def test_collapse_removes_dedicated_counter_transfers(self):
        trace = make_trace()
        full = run_model(CFG, trace, "salus")
        nocollapse = run_model(CFG, trace, "salus-nocollapse")
        ctr_full = full.stats.bytes_for(Side.CXL, TrafficCategory.COUNTER)
        ctr_nocollapse = nocollapse.stats.bytes_for(Side.CXL, TrafficCategory.COUNTER)
        assert ctr_full < ctr_nocollapse


class TestMotivationShape:
    def test_migration_security_is_the_dominant_baseline_cost(self):
        """Fig. 3's point at test scale: making migration security free
        recovers most of the baseline's loss versus no security."""
        trace = make_trace(coverage=0.3, writes=0.3)
        nosec = run_model(CFG, trace, "nosec")
        baseline = run_model(CFG, trace, "baseline")
        freemove = run_model(CFG, trace, "baseline-freemove")
        loss_total = nosec.ipc - baseline.ipc
        loss_demand_only = nosec.ipc - freemove.ipc
        assert loss_total > 0
        assert loss_demand_only < 0.5 * loss_total


class TestCapacityShape:
    @pytest.mark.parametrize("ratio_pair", [(0.2, 1.0)])
    def test_more_capacity_less_migration(self, ratio_pair):
        tight, roomy = ratio_pair
        # Several passes over a small footprint so revisits dominate.
        trace = make_trace(pages=48, n=6000, coverage=0.4)
        tight_run = run_model(CFG.with_capacity_ratio(tight), trace, "salus")
        roomy_run = run_model(CFG.with_capacity_ratio(roomy), trace, "salus")
        assert roomy_run.fills == 48          # everything fits: cold fills only
        assert tight_run.fills > roomy_run.fills
        assert tight_run.evictions > roomy_run.evictions


class TestHeadlineCanary:
    """A moderate-scale canary pinning the headline result's direction.

    Runs the paper's biggest winner (nw) on the real bench configuration at
    one third of benchmark scale; if a model change flips who wins or erodes
    the traffic reduction, this fails long before anyone re-runs the full
    figure suite.
    """

    def test_nw_headline(self):
        from repro.workloads.suite import build_trace

        config = SystemConfig.bench()
        trace = build_trace("nw", n_accesses=20_000, num_sms=config.gpu.num_sms)
        nosec = run_model(config, trace, "nosec")
        baseline = run_model(config, trace, "baseline")
        salus = run_model(config, trace, "salus")
        # Salus clearly beats the baseline on the paper's best benchmark...
        assert salus.ipc > 1.3 * baseline.ipc
        # ...without beating the unprotected system...
        assert salus.ipc <= nosec.ipc
        # ...while cutting security traffic by more than half.
        assert salus.stats.security_bytes() < 0.5 * baseline.stats.security_bytes()


class TestTrafficConservation:
    def test_fill_bytes_match_fill_count(self):
        """Every fill moves exactly one page of data across the link RX."""
        trace = make_trace(writes=0.0)  # no writebacks to muddy TX/RX
        result = run_model(CFG, trace, "nosec")
        rx = result.stats.bytes_for(Side.CXL, TrafficCategory.DATA)
        assert rx == result.fills * CFG.geometry.page_bytes

    def test_identical_residency_across_all_models(self):
        trace = make_trace()
        fills = {
            m: run_model(CFG, trace, m).fills
            for m in ("nosec", "baseline", "salus", "salus-unified")
        }
        assert len(set(fills.values())) == 1

"""End-to-end tests of the trace-driven simulator (repro.gpu.gpusim)."""

import pytest

from repro.config import SystemConfig
from repro.errors import TraceError
from repro.harness.runner import model_factory, run_model
from repro.gpu.gpusim import GpuSim
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.interconnect import Interconnect
from repro.memsys.request import Access, MemoryRequest
from repro.sim.stats import Side, TrafficCategory
from repro.workloads.generators import WorkloadSpec, generate_trace
from repro.workloads.trace import Trace


CFG = SystemConfig.small()


def make_trace(addresses, footprint_pages=64, writes=(), cpm=2):
    reqs = [
        MemoryRequest(a, Access.WRITE if i in writes else Access.READ, sm=i % 4)
        for i, a in enumerate(addresses)
    ]
    return Trace(
        name="crafted", footprint_pages=footprint_pages,
        compute_per_mem=cpm, requests=reqs,
    )


def run(trace, model="nosec", config=CFG):
    sim = GpuSim(config, trace.footprint_pages, model_factory(model))
    return sim, sim.run(trace, compute_per_mem=trace.compute_per_mem,
                        workload_name=trace.name)


class TestSM:
    def test_issue_and_complete(self):
        sm = StreamingMultiprocessor(0, warps=2)
        t0 = sm.issue(0, block_instructions=3)
        assert t0 == 0
        assert sm.clock == 3
        sm.complete(0, 50)
        t1 = sm.issue(0, block_instructions=3)
        assert t1 == 50  # warp was blocked on memory
        t2 = sm.issue(1, block_instructions=3)
        assert t2 == 53  # other warp waits only for the issue slot

    def test_instruction_accounting(self):
        sm = StreamingMultiprocessor(0, warps=2)
        sm.issue(0, 5)
        sm.issue(1, 5)
        assert sm.instructions == 10

    def test_drain_cycle(self):
        sm = StreamingMultiprocessor(0, warps=2)
        sm.issue(0, 1)
        sm.complete(0, 99)
        assert sm.drain_cycle == 99


class TestInterconnect:
    def test_latency(self):
        ic = Interconnect(num_gpcs=2, latency_cycles=20)
        assert ic.traverse(0, 0) == 20

    def test_port_serialization(self):
        ic = Interconnect(num_gpcs=2, latency_cycles=20)
        a = ic.traverse(0, 0)
        b = ic.traverse(0, 0)
        c = ic.traverse(0, 1)
        assert b == a + 1    # same port: one per cycle
        assert c == a        # other port: parallel


class TestSimulation:
    def test_empty_trace(self):
        trace = Trace(name="empty", footprint_pages=4, compute_per_mem=0)
        _, result = run(trace)
        assert result.cycles == 0
        assert result.ipc == 0.0

    def test_single_access_triggers_fill(self):
        trace = make_trace([0])
        sim, result = run(trace)
        assert result.fills == 1
        assert result.evictions == 0
        assert result.stats.bytes_for(Side.CXL, TrafficCategory.DATA) == 4096

    def test_trace_addresses_validated(self):
        trace = make_trace([4096 * 64])  # beyond 64-page footprint
        with pytest.raises(TraceError):
            run(trace)

    def test_deterministic(self):
        spec = WorkloadSpec(name="d", footprint_pages=64)
        trace = generate_trace(spec, 1500, num_sms=CFG.gpu.num_sms)
        _, r1 = run(trace, "salus")
        _, r2 = run(trace, "salus")
        assert r1.cycles == r2.cycles
        assert r1.stats.breakdown() == r2.stats.breakdown()

    def test_repeated_access_hits_l2(self):
        trace = make_trace([0] * 50)
        sim, result = run(trace)
        assert result.fills == 1
        # The fill wrote the page into device memory; after that, only the
        # first access fetched its sector from DRAM - the rest hit L2.
        assert result.stats.bytes_for(Side.DEVICE, TrafficCategory.DATA) == 4096 + 32

    def test_capacity_pressure_causes_evictions(self):
        # 64-page footprint, 35% ratio -> 22 frames: touch 30 pages.
        trace = make_trace([p * 4096 for p in range(30)])
        _, result = run(trace)
        assert result.fills == 30
        assert result.evictions == 30 - 22

    def test_writes_do_not_block_warps(self):
        reads = make_trace([i * 4096 for i in range(8)])
        writes = make_trace([i * 4096 for i in range(8)], writes=set(range(8)))
        _, r_reads = run(reads)
        _, r_writes = run(writes)
        assert r_writes.cycles <= r_reads.cycles

    def test_dirty_page_writes_back(self):
        # Write page 0, then sweep 24 other pages to force its eviction.
        addresses = [0] + [p * 4096 for p in range(1, 25)]
        trace = make_trace(addresses, writes={0})
        _, result = run(trace)
        tx = result.stats.bytes_for(Side.CXL, TrafficCategory.DATA)
        fills = result.fills
        assert tx > fills * 4096  # fill RX plus at least one writeback TX

    def test_mapping_hit_rate_reported(self):
        trace = make_trace([0] * 20)
        _, result = run(trace)
        # One cold miss per GPC cache, hits thereafter.
        assert result.counters["mapping_hit_rate"] >= 0.9

    def test_instructions_include_compute(self):
        trace = make_trace([0, 32, 64], cpm=9)
        _, result = run(trace)
        assert result.stats.instructions == 3 * 10


class TestModelOrdering:
    """The paper's macro relationships on a small crafted workload."""

    @pytest.fixture(scope="class")
    def results(self):
        spec = WorkloadSpec(
            name="mini-nw", footprint_pages=96, chunk_coverage=0.2,
            concurrent_pages=8, write_fraction=0.3,
            sectors_per_chunk_touched=4, reuse=2, compute_per_mem=8,
        )
        trace = generate_trace(spec, 4000, num_sms=CFG.gpu.num_sms)
        return {
            m: run_model(CFG, trace, m)
            for m in ("nosec", "baseline", "salus", "baseline-freemove")
        }

    def test_nosec_is_fastest(self, results):
        assert results["nosec"].ipc >= results["baseline"].ipc
        assert results["nosec"].ipc >= results["salus"].ipc

    def test_salus_beats_baseline_on_sparse_workload(self, results):
        assert results["salus"].ipc > results["baseline"].ipc

    def test_salus_cuts_security_traffic(self, results):
        assert (
            results["salus"].stats.security_bytes()
            < 0.7 * results["baseline"].stats.security_bytes()
        )

    def test_free_migration_bounds_baseline(self, results):
        assert results["baseline-freemove"].ipc > results["baseline"].ipc

    def test_nosec_has_zero_security_traffic(self, results):
        assert results["nosec"].stats.security_bytes() == 0

    def test_same_migration_counts_across_models(self, results):
        fills = {m: r.fills for m, r in results.items()}
        assert len(set(fills.values())) == 1  # identical residency behaviour

    def test_salus_lower_cxl_security_share(self, results):
        salus = results["salus"].stats.security_bytes(Side.CXL)
        base = results["baseline"].stats.security_bytes(Side.CXL)
        assert salus < base

"""Tests for the job-based experiment engine (parallelism + result cache)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import SystemConfig
from repro.errors import EngineError
from repro.harness.engine import (
    SCHEMA_VERSION,
    ExperimentEngine,
    ResultCache,
    SimJob,
    TraceSpec,
)
from repro.harness.experiments import run_fig03_motivation, run_fig10_ipc
from repro.harness.runner import run_benchmark
from repro.workloads.suite import build_trace

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

CFG = SystemConfig.small()
N, SEED = 600, 3


def job(bench="nw", model="nosec", config=CFG, n=N, seed=SEED):
    return SimJob.of(config, bench, model, n, seed)


class TestFingerprints:
    def test_simjob_fingerprint_is_stable(self):
        assert job().fingerprint() == job().fingerprint()

    def test_fingerprint_distinguishes_every_axis(self):
        base = job().fingerprint()
        assert job(model="salus").fingerprint() != base
        assert job(bench="sgemm").fingerprint() != base
        assert job(n=800).fingerprint() != base
        assert job(seed=4).fingerprint() != base
        assert job(config=CFG.with_capacity_ratio(0.5)).fingerprint() != base

    def test_config_fingerprint_covers_nested_fields(self):
        assert CFG.fingerprint() == SystemConfig.small().fingerprint()
        assert CFG.fingerprint() != SystemConfig.bench().fingerprint()
        assert CFG.fingerprint() != CFG.with_cxl_bw_ratio(0.25).fingerprint()

    def test_schema_version_is_part_of_the_key(self, monkeypatch):
        before = job().fingerprint()
        monkeypatch.setattr("repro.harness.engine.SCHEMA_VERSION", SCHEMA_VERSION + 1)
        assert job().fingerprint() != before


class TestTraceDeterminism:
    """build_trace must be deterministic across processes - the cross-process
    cache key (bench, n_accesses, seed, geometry) depends on it."""

    def test_same_recipe_same_fingerprint_in_process(self):
        a = build_trace("nw", n_accesses=N, seed=SEED, num_sms=CFG.gpu.num_sms)
        b = build_trace("nw", n_accesses=N, seed=SEED, num_sms=CFG.gpu.num_sms)
        assert a.fingerprint() == b.fingerprint()
        assert build_trace("nw", n_accesses=N, seed=SEED + 1,
                           num_sms=CFG.gpu.num_sms).fingerprint() != a.fingerprint()

    def test_same_recipe_same_fingerprint_across_processes(self):
        local = build_trace("btree", n_accesses=500, seed=11, num_sms=4).fingerprint()
        code = (
            "from repro.workloads.suite import build_trace\n"
            "print(build_trace('btree', n_accesses=500, seed=11, num_sms=4)"
            ".fingerprint())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        # Randomized hashing in the child catches any hash()-order dependence.
        env["PYTHONHASHSEED"] = "random"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == local


class TestResultCache:
    def test_put_then_get_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        j = job()
        result = j.execute()
        cache.put(j.fingerprint(), j, result)
        back = cache.get(j.fingerprint())
        assert back is not None
        assert back.to_dict() == result.to_dict()
        assert len(cache) == 1

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = job().fingerprint()
        assert cache.get(fp) is None
        path = cache.path_for(fp)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(fp) is None
        path.write_text(json.dumps({"schema": SCHEMA_VERSION + 99,
                                    "fingerprint": fp, "result": {}}))
        assert cache.get(fp) is None

    def test_clear_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        j = job()
        cache.put(j.fingerprint(), j, j.execute())
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.get(j.fingerprint()) is None


class TestEngine:
    def test_duplicates_fold_into_one_simulation(self):
        engine = ExperimentEngine()
        outcomes = engine.run_jobs([job(), job(), job()])
        assert len(outcomes) == 3
        assert engine.stats.simulations == 1
        assert outcomes[0].result is outcomes[2].result

    def test_memoized_rerun_is_identical_object(self):
        engine = ExperimentEngine()
        r1 = engine.run_one(CFG, "nw", "nosec", N, SEED)
        r2 = engine.run_one(CFG, "nw", "nosec", N, SEED)
        assert r1 is r2
        assert engine.stats.simulations == 1
        assert engine.stats.memory_hits == 1

    def test_warm_disk_cache_runs_zero_simulations(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = ExperimentEngine(cache_dir=cache_dir)
        fig_cold = run_fig10_ipc(config=CFG, benchmarks=("nw",), n_accesses=N,
                                 seed=SEED, engine=cold)
        assert cold.stats.simulations == 3  # nosec, baseline, salus

        warm = ExperimentEngine(cache_dir=cache_dir)  # fresh process-equivalent
        fig_warm = run_fig10_ipc(config=CFG, benchmarks=("nw",), n_accesses=N,
                                 seed=SEED, engine=warm)
        assert warm.stats.simulations == 0
        assert warm.stats.disk_hits == 3
        assert fig_warm.to_text() == fig_cold.to_text()

    def test_parallel_output_matches_serial(self):
        serial = ExperimentEngine(jobs=1)
        parallel = ExperimentEngine(jobs=2)
        kwargs = dict(config=CFG, benchmarks=("nw", "sgemm"), n_accesses=N,
                      seed=SEED)
        assert (
            run_fig03_motivation(engine=parallel, **kwargs).to_text()
            == run_fig03_motivation(engine=serial, **kwargs).to_text()
        )

    def test_one_failed_job_does_not_kill_the_batch(self):
        engine = ExperimentEngine()
        good, bad = job(), job(model="quantum")
        outcomes = engine.run_jobs([good, bad])
        assert outcomes[0].ok and outcomes[0].result is not None
        assert not outcomes[1].ok
        assert "quantum" in outcomes[1].error
        assert engine.stats.errors == 1

    def test_failed_jobs_survive_in_parallel_mode_too(self):
        engine = ExperimentEngine(jobs=2)
        outcomes = engine.run_jobs([job(), job(model="quantum")])
        assert outcomes[0].ok
        assert not outcomes[1].ok

    def test_map_raises_engine_error_naming_the_job(self):
        engine = ExperimentEngine()
        with pytest.raises(EngineError, match="nw/quantum"):
            engine.map([job(model="quantum")])

    def test_errors_are_not_cached(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path / "cache")
        engine.run_jobs([job(model="quantum")])
        assert len(engine.cache) == 0

    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(EngineError):
            ExperimentEngine(jobs=0)


class TestRunBenchmarkViaEngine:
    def test_trace_spec_routes_through_engine(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path / "cache")
        spec = TraceSpec("nw", N, SEED)
        results = run_benchmark(CFG, spec, models=("nosec", "salus"),
                                engine=engine)
        assert set(results) == {"nosec", "salus"}
        assert engine.stats.simulations == 2

        warm = ExperimentEngine(cache_dir=tmp_path / "cache")
        again = run_benchmark(CFG, spec, models=("nosec", "salus"), engine=warm)
        assert warm.stats.simulations == 0
        assert {m: r.to_dict() for m, r in again.items()} == {
            m: r.to_dict() for m, r in results.items()
        }

    def test_materialized_trace_still_runs_directly(self):
        trace = build_trace("nw", n_accesses=400, num_sms=CFG.gpu.num_sms,
                            scale=0.1)
        results = run_benchmark(CFG, trace, models=("nosec",))
        assert results["nosec"].workload == "nw"

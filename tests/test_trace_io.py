"""Tests for trace persistence (repro.workloads.io) and JSON export."""

import json

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import TraceError
from repro.harness.runner import run_model
from repro.workloads.generators import WorkloadSpec, generate_trace
from repro.workloads.io import load_trace, save_trace
from repro.workloads.trace import Trace


@pytest.fixture
def trace():
    spec = WorkloadSpec(name="io-test", footprint_pages=32, write_fraction=0.3)
    return generate_trace(spec, 800, seed=5)


class TestSaveLoad:
    def test_roundtrip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.footprint_pages == trace.footprint_pages
        assert loaded.compute_per_mem == trace.compute_per_mem
        assert len(loaded) == len(trace)
        assert all(
            (a.cxl_addr, a.access, a.sm) == (b.cxl_addr, b.access, b.sm)
            for a, b in zip(loaded, trace)
        )

    def test_loaded_trace_simulates_identically(self, trace, tmp_path):
        config = SystemConfig.small()
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        r1 = run_model(config, trace, "salus")
        r2 = run_model(config, loaded, "salus")
        assert r1.cycles == r2.cycles
        assert r1.stats.breakdown() == r2.stats.breakdown()

    def test_empty_trace_rejected(self, tmp_path):
        empty = Trace(name="e", footprint_pages=1, compute_per_mem=0)
        with pytest.raises(TraceError):
            save_trace(empty, tmp_path / "e.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_non_trace_npz_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, junk=np.zeros(4))
        with pytest.raises(TraceError):
            load_trace(path)


class TestJsonExport:
    def test_run_result_to_dict(self, trace):
        result = run_model(SystemConfig.small(), trace, "salus")
        payload = result.to_dict()
        text = json.dumps(payload)  # must be serializable
        back = json.loads(text)
        assert back["model"] == "salus"
        assert back["workload"] == "io-test"
        assert back["cycles"] == result.cycles
        assert back["security_bytes"] == result.stats.security_bytes()

    def test_cli_json_and_trace_commands(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "nw.npz"
        assert main(["trace", "nw", str(out_path), "--accesses", "400"]) == 0
        captured = capsys.readouterr().out
        assert "wrote 400 requests" in captured
        assert main(
            ["run", "nw", "--trace-file", str(out_path),
             "--models", "salus", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["model"] == "salus"

"""Unit tests for metadata layouts (repro.metadata.layout)."""

from hypothesis import given, settings, strategies as st

from repro.address import DEFAULT_GEOMETRY
from repro.metadata.layout import (
    ConventionalLayout,
    SalusCXLLayout,
    SalusDeviceLayout,
)

GEOM = DEFAULT_GEOMETRY


class TestConventionalLayout:
    def setup_method(self):
        self.layout = ConventionalLayout(geometry=GEOM, data_sectors=4096)

    def test_counter_sector_covers_32_sectors(self):
        assert self.layout.counter_sector(0) == self.layout.counter_sector(31)
        assert self.layout.counter_sector(31) != self.layout.counter_sector(32)

    def test_counter_span_exceeds_interleaving_chunk(self):
        """The Section IV-A problem: one conventional major covers 1 KiB,
        i.e. four 256 B chunks that may belong to four different pages."""
        sectors_covered = 32
        chunks_covered = sectors_covered // GEOM.sectors_per_chunk
        assert chunks_covered == 4

    def test_mac_sector_per_block(self):
        assert self.layout.mac_sector(0) == self.layout.mac_sector(3)
        assert self.layout.mac_sector(3) != self.layout.mac_sector(4)

    def test_bmt_leaf_is_counter_sector(self):
        for s in (0, 31, 32, 4095):
            assert self.layout.bmt_leaf(s) == self.layout.counter_sector(s)

    def test_num_counter_sectors(self):
        assert self.layout.num_counter_sectors == 128
        assert ConventionalLayout(geometry=GEOM, data_sectors=33).num_counter_sectors == 2

    def test_bmt_geometry(self):
        assert self.layout.bmt_geometry().num_leaves == 128


class TestSalusDeviceLayout:
    def setup_method(self):
        self.layout = SalusDeviceLayout(geometry=GEOM, data_sectors=4096)

    def test_counter_sector_covers_two_chunks(self):
        """Figure 4: one 32 B counter sector = two tagged groups = 512 B."""
        assert self.layout.counter_sector(0) == self.layout.counter_sector(15)
        assert self.layout.counter_sector(15) != self.layout.counter_sector(16)

    def test_group_in_sector_alternates_per_chunk(self):
        assert self.layout.group_in_sector(0) == 0
        assert self.layout.group_in_sector(8) == 1
        assert self.layout.group_in_sector(16) == 0

    def test_twice_the_counter_sectors_of_conventional(self):
        conventional = ConventionalLayout(geometry=GEOM, data_sectors=4096)
        assert self.layout.num_counter_sectors == 2 * conventional.num_counter_sectors

    def test_mac_layout_unchanged(self):
        conventional = ConventionalLayout(geometry=GEOM, data_sectors=4096)
        for s in (0, 5, 100):
            assert self.layout.mac_sector(s) == conventional.mac_sector(s)


class TestSalusCXLLayout:
    def setup_method(self):
        # 32 pages of footprint.
        self.layout = SalusCXLLayout(geometry=GEOM, data_sectors=32 * 128)

    def test_one_counter_sector_per_page(self):
        assert self.layout.counter_sector(0) == self.layout.counter_sector(127)
        assert self.layout.counter_sector(127) != self.layout.counter_sector(128)
        assert self.layout.num_counter_sectors == 32

    def test_four_times_smaller_than_conventional(self):
        """Figure 6's point: the collapsed counter space is much smaller -
        one sector per 4 KiB page instead of one per 1 KiB span (4x)."""
        conventional = ConventionalLayout(geometry=GEOM, data_sectors=32 * 128)
        assert conventional.num_counter_sectors == 4 * self.layout.num_counter_sectors

    def test_bmt_shallower_or_equal(self):
        big = ConventionalLayout(geometry=GEOM, data_sectors=4096 * 128)
        small = SalusCXLLayout(geometry=GEOM, data_sectors=4096 * 128)
        assert small.bmt_geometry().depth <= big.bmt_geometry().depth


@given(sector=st.integers(0, 4095))
@settings(max_examples=100, deadline=None)
def test_layout_indices_in_range(sector):
    for layout in (
        ConventionalLayout(geometry=GEOM, data_sectors=4096),
        SalusDeviceLayout(geometry=GEOM, data_sectors=4096),
        SalusCXLLayout(geometry=GEOM, data_sectors=4096),
    ):
        assert 0 <= layout.counter_sector(sector) < layout.num_counter_sectors
        assert layout.mac_sector(sector) == sector // 4

"""Tests for the demand chunk-fill policy (fill_granularity="chunk").

Paper Section IV-A3: prior DRAM-cache work either moves the whole page on a
fault or only the parts expected to be accessed, and Salus works with
either. These tests check the chunk-fill machinery and the claim that
Salus's advantage carries over.
"""

from dataclasses import replace

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.harness.runner import run_model
from repro.sim.stats import Side, TrafficCategory
from repro.workloads.generators import WorkloadSpec, generate_trace

PAGE_CFG = SystemConfig.small()
CHUNK_CFG = SystemConfig.small(
    gpu=replace(PAGE_CFG.gpu, fill_granularity="chunk")
)


def sparse_trace(n=3000, pages=96):
    spec = WorkloadSpec(
        name="sparse", footprint_pages=pages, chunk_coverage=0.2,
        concurrent_pages=8, write_fraction=0.3,
        sectors_per_chunk_touched=4, reuse=2, compute_per_mem=6,
    )
    return generate_trace(spec, n, num_sms=PAGE_CFG.gpu.num_sms)


class TestConfig:
    def test_granularity_validated(self):
        with pytest.raises(ConfigError):
            replace(PAGE_CFG.gpu, fill_granularity="cacheline")

    def test_default_is_page(self):
        assert SystemConfig.bench().gpu.fill_granularity == "page"


class TestChunkFills:
    def test_only_touched_chunks_move(self):
        """With 20%-coverage pages, chunk mode moves far less data."""
        trace = sparse_trace()
        page_mode = run_model(PAGE_CFG, trace, "nosec")
        chunk_mode = run_model(CHUNK_CFG, trace, "nosec")
        rx_page = page_mode.stats.bytes_for(Side.CXL, TrafficCategory.DATA)
        rx_chunk = chunk_mode.stats.bytes_for(Side.CXL, TrafficCategory.DATA)
        # A residency can span several visits (each touching a different
        # 20% subset), so the union coverage is higher than 20% - but still
        # clearly below moving whole pages.
        assert rx_chunk < 0.75 * rx_page

    def test_chunk_fill_counter(self):
        trace = sparse_trace()
        result = run_model(CHUNK_CFG, trace, "nosec")
        assert result.counters["chunk_fills"] > 0
        # Far fewer chunk fills than a full-page policy would imply.
        geom = CHUNK_CFG.geometry
        assert result.counters["chunk_fills"] < result.fills * geom.chunks_per_page

    def test_chunk_fetched_once_per_residency(self):
        """Repeated accesses to one chunk trigger exactly one chunk fill."""
        from repro.gpu.gpusim import GpuSim
        from repro.harness.runner import model_factory
        from repro.memsys.request import Access, MemoryRequest
        from repro.workloads.trace import Trace

        trace = Trace(
            name="t", footprint_pages=16, compute_per_mem=0,
            requests=[MemoryRequest(s * 32, Access.READ) for s in range(8)] * 3,
        )
        sim = GpuSim(CHUNK_CFG, 16, model_factory("nosec"))
        result = sim.run(trace)
        assert result.counters["chunk_fills"] == 1

    def test_refetch_after_eviction(self):
        from repro.gpu.gpusim import GpuSim
        from repro.harness.runner import model_factory
        from repro.memsys.request import Access, MemoryRequest
        from repro.workloads.trace import Trace

        # 16 pages, 35% -> 5 frames: sweeping 8 pages twice re-faults page 0.
        addresses = [p * 4096 for p in range(8)] * 2
        trace = Trace(
            name="t", footprint_pages=16, compute_per_mem=0,
            requests=[MemoryRequest(a, Access.READ) for a in addresses],
        )
        sim = GpuSim(CHUNK_CFG, 16, model_factory("nosec"))
        result = sim.run(trace)
        assert result.counters["chunk_fills"] == len(addresses)


class TestSecurityModelsUnderChunkFills:
    def test_salus_chunk_fill_is_data_only(self):
        trace = sparse_trace(n=1500)
        result = run_model(CHUNK_CFG, trace, "salus")
        # Security traffic exists (demand path + first-touch) but chunk
        # fills themselves added no re-encryption traffic.
        assert result.stats.bytes_for(Side.CXL, TrafficCategory.REENC_DATA) == 0

    def test_baseline_pays_per_chunk_metadata(self):
        trace = sparse_trace(n=1500)
        result = run_model(CHUNK_CFG, trace, "baseline")
        assert result.counters.get("baseline.secure_chunk_fills", 0) > 0
        assert result.stats.bytes_for(Side.CXL, TrafficCategory.MAC) > 0

    def test_salus_still_beats_baseline(self):
        trace = sparse_trace()
        salus = run_model(CHUNK_CFG, trace, "salus")
        baseline = run_model(CHUNK_CFG, trace, "baseline")
        assert salus.ipc > baseline.ipc
        assert salus.stats.security_bytes() < baseline.stats.security_bytes()

    def test_roundtrip_results_deterministic(self):
        trace = sparse_trace(n=1000)
        r1 = run_model(CHUNK_CFG, trace, "salus")
        r2 = run_model(CHUNK_CFG, trace, "salus")
        assert r1.cycles == r2.cycles

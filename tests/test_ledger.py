"""Tests for the append-only run ledger (harness/ledger.py).

Covers the persistence contract (append/replay round-trip, corrupt and
foreign-schema lines degrade to skips), the engine integration (every
completed job is recorded with its source and wall time), and the key
isolation invariant: recording runs in the ledger never changes job
fingerprints or result-cache behaviour.
"""

import json

import pytest

from repro.config import SystemConfig
from repro.harness.engine import (
    SCHEMA_VERSION,
    ExperimentEngine,
    ResultCache,
    SimJob,
)
from repro.harness.ledger import (
    LEDGER_FILENAME,
    LEDGER_SCHEMA,
    LedgerEntry,
    RunLedger,
)

CFG = SystemConfig.small()
N, SEED = 500, 3


def job(bench="nw", model="nosec", n=N, seed=SEED):
    return SimJob.of(CFG, bench, model, n, seed)


def entry(**overrides):
    base = dict(
        bench="nw",
        model="salus",
        n_accesses=N,
        seed=SEED,
        config_fingerprint="c" * 64,
        job_fingerprint="j" * 64,
        result_fingerprint="r" * 64,
        source="run",
        wall_s=0.25,
        engine_schema=SCHEMA_VERSION,
        ipc=0.5,
        cycles=1000,
        instructions=500,
        fills=3,
        evictions=1,
        security_bytes=4096,
        total_bytes=65536,
        recorded="2026-01-01T00:00:00",
        metrics={"gpu.l2.hits": 10.0},
    )
    base.update(overrides)
    return LedgerEntry(**base)


class TestEntryRoundTrip:
    def test_json_line_round_trips_losslessly(self):
        original = entry()
        restored = LedgerEntry.from_json_line(original.to_json_line())
        assert restored == original

    def test_corrupt_line_is_skipped(self):
        assert LedgerEntry.from_json_line("{truncated") is None
        assert LedgerEntry.from_json_line('"a bare string"') is None

    def test_foreign_schema_is_skipped(self):
        line = entry().to_json_line().replace(
            f'"schema":{LEDGER_SCHEMA}', f'"schema":{LEDGER_SCHEMA + 1}'
        )
        assert LedgerEntry.from_json_line(line) is None

    def test_unknown_fields_are_skipped_not_crashed(self):
        data = json.loads(entry().to_json_line())
        data["from_the_future"] = True
        assert LedgerEntry.from_json_line(json.dumps(data)) is None


class TestReplay:
    def test_append_then_replay(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(entry(model="nosec"))
        ledger.append(entry(model="salus"))
        assert len(ledger) == 2
        assert [e.model for e in ledger.entries()] == ["nosec", "salus"]
        assert ledger.path == tmp_path / LEDGER_FILENAME

    def test_direct_jsonl_path(self, tmp_path):
        path = tmp_path / "custom.jsonl"
        ledger = RunLedger(path)
        ledger.append(entry())
        assert path.exists()
        assert len(RunLedger(path)) == 1

    def test_replay_skips_torn_and_foreign_lines(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(entry(model="nosec"))
        with ledger.path.open("a", encoding="utf-8") as fh:
            fh.write("{torn line\n")
            fh.write(json.dumps({"schema": LEDGER_SCHEMA + 7}) + "\n")
        ledger.append(entry(model="salus"))
        assert [e.model for e in ledger.entries()] == ["nosec", "salus"]

    def test_filters_and_limit(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for model in ("nosec", "salus", "nosec"):
            ledger.append(entry(model=model))
        ledger.append(entry(model="salus", source="disk"))
        assert len(ledger.entries(model="nosec")) == 2
        assert len(ledger.entries(source="disk")) == 1
        assert len(ledger.entries(bench="missing")) == 0
        # limit keeps the *latest* matches
        tail = ledger.entries(limit=2)
        assert [e.source for e in tail] == ["run", "disk"]

    def test_latest_by_job_keeps_last_entry(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(entry(source="run"))
        ledger.append(entry(source="disk"))
        latest = ledger.latest_by_job()
        assert len(latest) == 1
        assert next(iter(latest.values())).source == "disk"

    def test_missing_file_is_empty(self, tmp_path):
        assert len(RunLedger(tmp_path / "nowhere")) == 0
        assert RunLedger(tmp_path / "nowhere").entries() == []


class TestEngineIntegration:
    def test_completed_jobs_are_recorded_with_source(self, tmp_path):
        jobs = [job(model="nosec"), job(model="salus")]
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.map(jobs)
        ledger = RunLedger(tmp_path)
        first = {(e.label(), e.source) for e in ledger.entries()}
        assert first == {
            ("nw/nosec@500#3", "run"),
            ("nw/salus@500#3", "run"),
        }

        # A fresh engine replays from disk; the ledger records the hits too.
        warm = ExperimentEngine(cache_dir=tmp_path)
        warm.map(jobs)
        sources = [e.source for e in ledger.entries()]
        assert sources == ["run", "run", "disk", "disk"]

    def test_entry_matches_result(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        the_job = job(model="salus")
        result = engine.map([the_job])[the_job]
        (recorded,) = RunLedger(tmp_path).entries()
        assert recorded.job_fingerprint == the_job.fingerprint()
        assert recorded.result_fingerprint == result.fingerprint()
        assert recorded.config_fingerprint == CFG.fingerprint()
        assert recorded.ipc == pytest.approx(result.ipc)
        assert recorded.cycles == result.cycles
        assert recorded.metrics == dict(result.metrics)
        assert recorded.wall_s > 0.0
        assert recorded.engine_schema == SCHEMA_VERSION

    def test_ledger_disabled(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, ledger=False)
        engine.map([job()])
        assert not (tmp_path / LEDGER_FILENAME).exists()

    def test_no_cache_dir_means_no_ledger(self):
        engine = ExperimentEngine()
        engine.map([job()])
        assert engine.ledger is None

    def test_forcing_ledger_without_cache_dir_is_an_error(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            ExperimentEngine(ledger=True)


class TestKeyIsolation:
    """The ledger must be invisible to the content-addressed cache."""

    def test_ledger_file_is_not_a_cache_entry(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.map([job()])
        assert (tmp_path / LEDGER_FILENAME).exists()
        assert len(ResultCache(tmp_path)) == 1

    def test_recording_does_not_change_fingerprints_or_results(self, tmp_path):
        the_job = job(model="salus")
        bare = ExperimentEngine()  # memory-only, no ledger
        reference = bare.map([the_job])[the_job].fingerprint()

        with_ledger = ExperimentEngine(cache_dir=tmp_path)
        assert with_ledger.ledger is not None
        live = with_ledger.map([the_job])[the_job].fingerprint()
        assert live == reference
        assert the_job.fingerprint() == job(model="salus").fingerprint()

"""Tenancy layer: security-domain partition math, isolation, equivalence.

Three layers of guarantees, mirroring ``test_topology.py``:

* **Config validation** - :class:`~repro.config.PartitionConfig` and
  ``SystemConfig.with_tenants`` reject partitions that do not align with
  the GPC/channel geometry, and the partition fields survive a
  ``to_dict``/``from_dict`` roundtrip.
* **Partition-math properties** (Hypothesis) - for any valid tenant count
  the :class:`~repro.address.TenantMap` splits SMs, channels, pages and
  devices into *disjoint, covering* partitions, and the vectorized page
  ownership matches the scalar reference.
* **Isolation and behavior preservation** - multi-tenant runs use
  physically distinct metadata planes and key domains, cross-tenant
  requests raise the same :class:`~repro.errors.IsolationError` under both
  request-path kernels, and an explicit 1-tenant partition reproduces the
  recorded ``BENCH_perf.json`` fingerprints bit-identically under both
  kernels.
"""

import importlib.util
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.address import DEFAULT_GEOMETRY, TenantMap
from repro.config import PartitionConfig, SystemConfig
from repro.errors import ConfigError, IsolationError
from repro.harness.runner import run_model
from repro.memsys.request import Access, MemoryRequest
from repro.security.fabric import MemoryFabric
from repro.sim.stats import StatRegistry
from repro.workloads import build_trace
from repro.workloads.trace import Trace

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The bench() compute/memory geometry the partition divides.
BENCH_SMS, BENCH_GPCS, BENCH_CHANNELS = 16, 4, 16


# ---------------------------------------------------------------- validation
class TestPartitionConfig:
    def test_default_is_single_tenant(self):
        assert SystemConfig.bench().partition.num_tenants == 1

    def test_with_tenants(self):
        cfg = SystemConfig.bench().with_tenants(2)
        assert cfg.partition.num_tenants == 2
        # A partition change must change the config fingerprint (cache key).
        assert cfg.fingerprint() != SystemConfig.bench().fingerprint()

    def test_rejects_zero_tenants(self):
        with pytest.raises(ConfigError):
            PartitionConfig(num_tenants=0)

    def test_rejects_non_dividing_tenant_count(self):
        # 3 divides neither the 4 GPCs nor the 16 channels of bench().
        with pytest.raises(ConfigError):
            SystemConfig.bench().with_tenants(3)

    def test_rejects_more_tenants_than_gpcs(self):
        with pytest.raises(ConfigError):
            SystemConfig.bench().with_tenants(8)

    def test_partition_survives_dict_roundtrip(self):
        cfg = SystemConfig.bench().with_tenants(4)
        back = SystemConfig.from_dict(cfg.to_dict())
        assert back.partition.num_tenants == 4
        assert back.fingerprint() == cfg.fingerprint()

    def test_single_tenant_roundtrip_matches_default(self):
        base = SystemConfig.bench()
        back = SystemConfig.from_dict(base.to_dict())
        assert back.partition.num_tenants == 1
        assert back.fingerprint() == base.fingerprint()


# ---------------------------------------------------------- partition math
@st.composite
def tenant_maps(draw):
    num_tenants = draw(st.sampled_from([1, 2, 4]))
    num_devices = draw(st.integers(min_value=1, max_value=4))
    total_pages = draw(st.integers(min_value=num_tenants, max_value=2048))
    return TenantMap(
        geometry=DEFAULT_GEOMETRY,
        num_tenants=num_tenants,
        total_pages=total_pages,
        num_sms=BENCH_SMS,
        num_gpcs=BENCH_GPCS,
        num_channels=BENCH_CHANNELS,
        num_devices=num_devices,
    )


class TestTenantMapProperties:
    @given(tmap=tenant_maps())
    @settings(max_examples=60, deadline=None)
    def test_page_partition_total_and_exact(self, tmap):
        """Every page has exactly one owner, and pages_of counts agree."""
        counts = Counter(
            tmap.tenant_of_page(p) for p in range(tmap.total_pages)
        )
        for tenant, count in counts.items():
            assert 0 <= tenant < tmap.num_tenants
        assert sum(
            tmap.pages_of(t) for t in range(tmap.num_tenants)
        ) == tmap.total_pages
        for t in range(tmap.num_tenants):
            assert tmap.pages_of(t) == counts.get(t, 0)

    @given(tmap=tenant_maps())
    @settings(max_examples=40, deadline=None)
    def test_page_spans_are_contiguous(self, tmap):
        """A tenant's pages form one contiguous run starting at page_base."""
        for t in range(tmap.num_tenants):
            span = tmap.pages_of(t)
            base = tmap.page_base(t)
            for p in range(base, base + span):
                assert tmap.tenant_of_page(p) == t

    @given(tmap=tenant_maps())
    @settings(max_examples=40, deadline=None)
    def test_vectorized_ownership_matches_scalar(self, tmap):
        np = pytest.importorskip("numpy")
        pages = np.arange(tmap.total_pages, dtype=np.int64)
        vec = tmap.tenant_of_pages(pages)
        assert [int(v) for v in vec] == [
            tmap.tenant_of_page(p) for p in range(tmap.total_pages)
        ]

    @given(tmap=tenant_maps())
    @settings(max_examples=60, deadline=None)
    def test_sm_partition_disjoint_and_covering(self, tmap):
        """sm_slot confines each tenant to its own SM group; groups tile
        the whole SM array with no overlap."""
        groups = []
        for t in range(tmap.num_tenants):
            slots = {tmap.sm_slot(t, hint) for hint in range(2 * tmap.num_sms)}
            expected = set(
                range(tmap.sm_base(t), tmap.sm_base(t) + tmap.sms_per_tenant)
            )
            assert slots == expected
            groups.append(slots)
        union = set().union(*groups)
        assert union == set(range(tmap.num_sms))
        assert sum(len(g) for g in groups) == tmap.num_sms  # disjoint

    @given(tmap=tenant_maps())
    @settings(max_examples=60, deadline=None)
    def test_channel_partition_disjoint_and_covering(self, tmap):
        runs = [set(tmap.channels_of(t)) for t in range(tmap.num_tenants)]
        assert set().union(*runs) == set(range(tmap.num_channels))
        assert sum(len(r) for r in runs) == tmap.num_channels

    @given(tmap=tenant_maps())
    @settings(max_examples=60, deadline=None)
    def test_device_partition(self, tmap):
        subsets = [set(tmap.devices_of(t)) for t in range(tmap.num_tenants)]
        if tmap.devices_shared:
            # Indivisible device count: every tenant sees every device
            # (links shared; per-tenant metadata planes still isolated).
            for s in subsets:
                assert s == set(range(tmap.num_devices))
        else:
            assert set().union(*subsets) == set(range(tmap.num_devices))
            assert sum(len(s) for s in subsets) == tmap.num_devices


# ------------------------------------------------------------- isolation
def _cross_tenant_trace(tenant: int, footprint_pages: int = 64) -> Trace:
    """One request from ``tenant`` aimed at tenant 0's first page."""
    req = MemoryRequest(cxl_addr=0, access=Access.READ, sm=0, warp=0,
                       tenant=tenant)
    return Trace(name="cross", footprint_pages=footprint_pages,
                 compute_per_mem=0, requests=[req])


class TestIsolation:
    def test_planes_are_distinct_objects(self):
        """Each (tenant, device) security plane owns its own metadata
        caches; no cache structure is shared across planes."""
        cfg = SystemConfig.bench().with_tenants(2).with_cxl_devices(2)
        fabric = MemoryFabric(cfg, 256, StatRegistry())
        planes = fabric.cxl_meta_by_plane
        assert len(planes) == 2 * 2
        assert len({id(p) for p in planes}) == len(planes)

    def test_key_domains_differ_per_tenant(self):
        cfg = SystemConfig.bench().with_tenants(2)
        fabric = MemoryFabric(cfg, 256, StatRegistry())
        k0, k1 = fabric.keys_by_tenant
        assert k0.mac_key != k1.mac_key
        assert k0.encryption_key != k1.encryption_key

    def test_single_tenant_keys_unchanged(self):
        """At 1 tenant the key domain is the historical platform KeySet."""
        cfg = SystemConfig.bench()
        fabric = MemoryFabric(cfg, 256, StatRegistry())
        assert len(fabric.keys_by_tenant) == 1

    @pytest.mark.parametrize("kernel", ["scalar", "batched"])
    def test_cross_tenant_request_raises(self, kernel):
        cfg = SystemConfig.bench().with_tenants(2)
        trace = _cross_tenant_trace(tenant=1)
        with pytest.raises(IsolationError):
            run_model(cfg, trace, "salus", kernel=kernel)

    @pytest.mark.parametrize("kernel", ["scalar", "batched"])
    def test_invalid_tenant_id_raises(self, kernel):
        cfg = SystemConfig.bench().with_tenants(2)
        trace = _cross_tenant_trace(tenant=5)
        with pytest.raises(IsolationError):
            run_model(cfg, trace, "salus", kernel=kernel)

    def test_isolation_error_identical_across_kernels(self):
        """The dual-engine contract extends to the error path: both
        kernels reject the same request with the same message."""
        cfg = SystemConfig.bench().with_tenants(2)
        for tenant in (1, 5):
            messages = []
            for kernel in ("scalar", "batched"):
                with pytest.raises(IsolationError) as err:
                    run_model(cfg, _cross_tenant_trace(tenant), "salus",
                              kernel=kernel)
                messages.append(str(err.value))
            assert messages[0] == messages[1]

    def test_tenant_metrics_partition_the_totals(self):
        """tenant<t>.* namespaces appear, and per-tenant instruction and
        migration tallies sum to the machine-wide ones."""
        cfg = SystemConfig.bench().with_tenants(2)
        trace = build_trace("nw", n_accesses=1_200, seed=7,
                            num_sms=cfg.gpu.num_sms, tenants=2)
        result = run_model(cfg, trace, "salus")
        m = result.metrics
        for t in (0, 1):
            assert f"tenant{t}.instructions" in m
            assert f"tenant{t}.fills" in m
        assert (m["tenant0.instructions"] + m["tenant1.instructions"]
                == result.stats.instructions)
        assert (m["tenant0.fills"] + m["tenant1.fills"] == result.fills)
        assert (m["tenant0.evictions"] + m["tenant1.evictions"]
                == result.evictions)

    @pytest.mark.parametrize("mix", ["mirror", "noisy"])
    def test_multi_tenant_runs_are_kernel_identical(self, mix):
        cfg = SystemConfig.bench().with_tenants(2)
        trace = build_trace("kmeans", n_accesses=1_200, seed=7,
                            num_sms=cfg.gpu.num_sms, tenants=2,
                            tenant_mix=mix)
        for model in ("baseline", "salus"):
            a = run_model(cfg, trace, model, kernel="scalar")
            b = run_model(cfg, trace, model, kernel="batched")
            assert a.fingerprint() == b.fingerprint()


# ---------------------------------------------------- behavior preservation
def _load_bench_perf_module():
    spec = importlib.util.spec_from_file_location(
        "bench_perf", REPO_ROOT / "scripts" / "bench_perf.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSingleTenantPreservation:
    def test_explicit_one_tenant_is_bit_identical(self):
        """with_tenants(1) == the default whole-machine config, run for
        run, under both kernels."""
        base = SystemConfig.bench()
        explicit = base.with_tenants(1)
        trace = build_trace(
            "backprop", n_accesses=1_500, seed=7, num_sms=base.gpu.num_sms
        )
        for model in ("nosec", "baseline", "salus"):
            for kernel in ("scalar", "batched"):
                a = run_model(base, trace, model, kernel=kernel)
                b = run_model(explicit, trace, model, kernel=kernel)
                assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("kernel", ["scalar", "batched"])
    def test_quick_sweep_reproduces_recorded_fingerprints(self, kernel):
        """The tenancy refactor rides under the established fingerprint
        gate: the quick sweep (now built through an explicit 1-tenant
        partition) must still equal the fingerprints recorded in
        BENCH_perf.json before tenancy existed."""
        bench_perf = _load_bench_perf_module()
        store = bench_perf.load_store(REPO_ROOT / "BENCH_perf.json")
        spec = bench_perf.sweep_spec(quick=True)
        ref = bench_perf.find_entry(store, spec["name"], "baseline")
        assert ref is not None, "BENCH_perf.json lacks the quick/baseline entry"
        jobs, _results = bench_perf.run_sweep(spec, kernel=kernel)
        assert set(jobs) == set(ref["jobs"])
        for label, job in jobs.items():
            assert job["fingerprint"] == ref["jobs"][label]["fingerprint"], (
                f"{label}: fingerprint diverged from recorded baseline"
            )

"""Unit tests for L2 slices and MSHR merging (repro.memsys.l2cache)."""

import pytest

from repro.config import GPUConfig
from repro.errors import ConfigError
from repro.memsys.l2cache import L2Slice


def make_slice(mshrs=4):
    gpu = GPUConfig(
        num_sms=4, num_gpcs=2, warps_per_sm=4, num_channels=4,
        l2_total_bytes=16 * 1024, l2_mshrs_per_slice=mshrs,
        device_bandwidth_gbps=128.0,
    )
    return L2Slice(0, gpu, sector_bytes=32, line_bytes=128)


class TestL2Slice:
    def test_basic_access(self):
        slice_ = make_slice()
        assert not slice_.access(0, 0, write=False).sector_hit
        assert slice_.access(0, 0, write=False).sector_hit

    def test_write_dirty(self):
        slice_ = make_slice()
        slice_.access(0, 1, write=True)
        evicted = slice_.cache.invalidate_line(0)
        assert evicted.dirty_sectors == (1,)

    def test_too_small_slice_rejected(self):
        gpu = GPUConfig(
            num_sms=4, num_gpcs=2, warps_per_sm=4, num_channels=4,
            l2_total_bytes=4 * 1024,  # 1 KiB/slice < 16 ways x 128 B
            device_bandwidth_gbps=128.0,
        )
        with pytest.raises(ConfigError):
            L2Slice(0, gpu, 32, 128)


class TestMSHRs:
    def test_merge_inflight(self):
        slice_ = make_slice()
        slice_.register_fill(0, local_block=5, sector=2, completion=100)
        assert slice_.inflight_completion(10, 5, 2) == 100
        assert slice_.mshr_merges == 1

    def test_expired_entries_dropped(self):
        slice_ = make_slice()
        slice_.register_fill(0, 5, 2, completion=100)
        assert slice_.inflight_completion(150, 5, 2) is None

    def test_different_sector_not_merged(self):
        slice_ = make_slice()
        slice_.register_fill(0, 5, 2, completion=100)
        assert slice_.inflight_completion(10, 5, 3) is None

    def test_structural_limit(self):
        slice_ = make_slice(mshrs=2)
        slice_.register_fill(0, 1, 0, completion=1000)
        slice_.register_fill(0, 2, 0, completion=1000)
        slice_.register_fill(0, 3, 0, completion=1000)  # pushes out (1, 0)
        assert slice_.inflight_completion(0, 1, 0) is None
        assert slice_.inflight_completion(0, 3, 0) == 1000

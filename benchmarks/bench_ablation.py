"""Ablation - the contribution of each Salus optimization.

Not a paper figure, but the design-choice decomposition DESIGN.md Section 5
calls for: unified addressing alone, then full Salus minus each of
fetch-on-access, collapsed counters, and fine dirty tracking, against the
conventional baseline and full Salus.
"""

from repro.harness.experiments import run_ablation


def test_ablation_of_salus_optimizations(benchmark, config, engine, accesses, workloads):
    result = benchmark.pedantic(
        run_ablation,
        kwargs=dict(config=config, benchmarks=workloads, n_accesses=accesses, engine=engine),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_text())
    # Full Salus must beat the conventional baseline...
    assert result.summary["ipc_norm[salus]"] > result.summary["ipc_norm[baseline]"]
    # ...and unified addressing alone already recovers part of the gap.
    assert result.summary["ipc_norm[salus-unified]"] > result.summary["ipc_norm[baseline]"]

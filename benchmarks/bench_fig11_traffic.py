"""Figure 11 - security traffic under Salus, normalized to the baseline.

Paper: Salus reduces security traffic by 52.03% on average (i.e. to ~0.48x
of the conventional design; abstract: overhead as low as 17.71%), with the
sparse-coverage benchmarks reducing the most.
"""

from repro.harness.experiments import run_fig11_traffic


def test_fig11_security_traffic(benchmark, config, engine, accesses, workloads):
    result = benchmark.pedantic(
        run_fig11_traffic,
        kwargs=dict(config=config, benchmarks=workloads, n_accesses=accesses, engine=engine),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_text())
    print("paper reference: mean normalized traffic ~0.48, minimum ~0.18")
    assert result.summary["mean_normalized_traffic"] < 1.0

"""Figure 12 - security share of each memory's bandwidth, Salus vs baseline.

Paper: Salus uses 14.92% less of the CXL bandwidth and 2.05% less of the
GPU device-memory bandwidth for security than the conventional design.
"""

from repro.harness.experiments import run_fig12_bandwidth


def test_fig12_bandwidth_utilization(benchmark, config, engine, accesses, workloads, full_scale):
    result = benchmark.pedantic(
        run_fig12_bandwidth,
        kwargs=dict(config=config, benchmarks=workloads, n_accesses=accesses, engine=engine),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_text())
    print(
        "paper reference: CXL security-bandwidth usage -14.92%, "
        "device -2.05% (Salus vs conventional)"
    )
    if full_scale:
        assert result.summary["mean_cxl_usage_reduction"] > 0.0

"""Figure 10 - IPC normalized to the no-security system.

Paper: Salus improves GPU throughput over the conventional security model by
a geometric mean of +29.94% (up to +190.43%), with NW/B+tree/Lava the
biggest winners and Backprop/Sgemm flat or slightly negative.
"""

from repro.harness.experiments import run_fig10_ipc


def test_fig10_normalized_ipc(benchmark, config, engine, accesses, workloads, full_scale):
    result = benchmark.pedantic(
        run_fig10_ipc,
        kwargs=dict(config=config, benchmarks=workloads, n_accesses=accesses, engine=engine),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_text())
    print("paper reference: geomean improvement +29.94%, max +190.43%")
    # Shape assertions: Salus wins overall and the known winners lead.
    assert result.summary["geomean_improvement"] > 1.0
    by_bench = {row[0]: row[3] for row in result.rows}
    if full_scale and "nw" in by_bench and "sgemm" in by_bench:
        assert by_bench["nw"] > by_bench["sgemm"]

"""Figure 3 - motivation: the cost of location-tied security under migration.

Paper: conventional security with dynamic page migration runs 2.04x slower
(geomean) than the same security with free migration operations.
"""

from repro.harness.experiments import run_fig03_motivation


def test_fig03_motivation(benchmark, config, engine, accesses, workloads):
    result = benchmark.pedantic(
        run_fig03_motivation,
        kwargs=dict(config=config, benchmarks=workloads, n_accesses=accesses, engine=engine),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_text())
    print("paper reference: geomean slowdown 2.04x")
    assert result.summary["geomean_slowdown"] > 1.0

"""Fill-policy study - whole-page vs. on-demand chunk fills (Section IV-A3).

Not a paper figure: the paper states its proposal "works with any of these"
fill policies (move the whole page, or only the parts expected to be
accessed). This bench quantifies that claim on this simulator: for both the
conventional baseline and Salus, how do IPC and link traffic change when
faults move only the touched 256 B chunks instead of 4 KiB pages, across a
sparse-coverage winner (nw) and a dense-coverage non-winner (sgemm)?
"""

from dataclasses import replace

from repro.harness.engine import SimJob, default_engine
from repro.harness.report import format_table
from repro.sim.stats import Side, TrafficCategory


def run_fill_policy_study(config, accesses, benchmarks=("nw", "sgemm"), seed=7,
                          engine=None):
    """Returns table rows: one per (benchmark, fill policy, model)."""
    eng = engine if engine is not None else default_engine()
    policies = ("page", "chunk")
    models = ("nosec", "baseline", "salus")
    cfgs = {
        policy: replace(config, gpu=replace(config.gpu, fill_granularity=policy))
        for policy in policies
    }
    # The full (bench x policy x model) cross product as one batch.
    points = [
        (bench, policy, model)
        for bench in benchmarks
        for policy in policies
        for model in models
    ]
    runs = eng.map(
        [
            SimJob.of(cfgs[policy], bench, model, accesses, seed)
            for bench, policy, model in points
        ]
    )
    rows = []
    for bench, policy, model in points:
        result = runs[SimJob.of(cfgs[policy], bench, model, accesses, seed)]
        nosec = runs[SimJob.of(cfgs[policy], bench, "nosec", accesses, seed)]
        rows.append(
            (
                bench,
                policy,
                model,
                result.ipc / nosec.ipc,
                result.stats.bytes_for(Side.CXL, TrafficCategory.DATA) / 1e6,
                result.stats.security_bytes() / 1e6,
            )
        )
    return rows


def test_fill_policy_study(benchmark, config, engine, accesses):
    rows = benchmark.pedantic(
        run_fill_policy_study,
        kwargs=dict(config=config, accesses=min(accesses, 30_000), engine=engine),
        rounds=1,
        iterations=1,
    )
    print(
        "\n"
        + format_table(
            ("benchmark", "fill", "model", "ipc_norm", "link_data_MB", "security_MB"),
            rows,
            title="Fill policy study - page vs on-demand chunk fills",
        )
    )
    by_key = {(b, p, m): (ipc, data, sec) for b, p, m, ipc, data, sec in rows}

    # Chunk fills move less data than page fills on the sparse benchmark.
    assert by_key[("nw", "chunk", "nosec")][1] < by_key[("nw", "page", "nosec")][1]
    # Salus's advantage survives the policy change (the paper's claim).
    for bench in ("nw",):
        for policy in ("page", "chunk"):
            assert (
                by_key[(bench, policy, "salus")][0]
                > by_key[(bench, policy, "baseline")][0]
            )

"""Figure 13 - sensitivity to the CXL:device bandwidth ratio.

Paper improvements over the conventional model: +32.79% at 1/32, +29.94% at
1/16, +32.90% at 1/8, and +21.76% at 1/4 - the win persists across link
speeds and compresses at the fastest link, where migration stops dominating.
"""

from repro.harness.experiments import run_fig13_cxl_bw


def test_fig13_cxl_bandwidth_sensitivity(benchmark, config, engine, accesses, workloads, full_scale):
    result = benchmark.pedantic(
        run_fig13_cxl_bw,
        kwargs=dict(config=config, benchmarks=workloads, n_accesses=accesses, engine=engine),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_text())
    print(
        "paper reference: +32.79% (1/32), +29.94% (1/16), "
        "+32.90% (1/8), +21.76% (1/4)"
    )
    improvements = [row[3] for row in result.rows]
    assert all(i > 1.0 for i in improvements)
    if full_scale:
        # The fastest link shows a smaller win than the peak (the paper's
        # 1/4-ratio compression).
        assert improvements[-1] < max(improvements)

"""Shared configuration for the figure-regeneration benchmarks.

Each ``bench_figXX_*.py`` regenerates one table/figure of the paper's
evaluation (see DESIGN.md Section 4 for the index and EXPERIMENTS.md for the
paper-vs-measured record). The simulations are deterministic, so every
benchmark runs exactly once (``pedantic`` with one round) - the
pytest-benchmark timing then reports the cost of regenerating the figure,
and the figure's rows are printed to the terminal.

Environment knobs:

* ``REPRO_BENCH_ACCESSES`` - trace length per benchmark (default 60000;
  lower it for a quick pass, e.g. 10000).
* ``REPRO_BENCH_WORKLOADS`` - comma-separated subset of benchmark names
  (default: the full 12-benchmark suite).
* ``REPRO_BENCH_JOBS`` - worker processes for the experiment engine
  (default 1 = serial; the timing numbers then measure parallel
  regeneration, not single-simulation cost).
* ``REPRO_BENCH_CACHE_DIR`` - persistent result-cache directory; unset
  (the default) keeps benchmark runs memory-only so the reported times
  always reflect real simulations.
* ``REPRO_BENCH_TRACE`` - set to ``1`` to write one Chrome-trace JSON per
  simulation (forces fresh simulations; see docs/TRACING.md). The reported
  times then include trace serialization.
* ``REPRO_BENCH_TRACE_OUT`` - directory for those trace files
  (default ``traces/``; only with ``REPRO_BENCH_TRACE``).
"""

import os

import pytest

from repro.config import SystemConfig
from repro.harness.engine import ExperimentEngine
from repro.harness.experiments import clear_cache
from repro.workloads.suite import benchmark_names

DEFAULT_ACCESSES = 60_000


def bench_accesses() -> int:
    return int(os.environ.get("REPRO_BENCH_ACCESSES", DEFAULT_ACCESSES))


def bench_workloads():
    names = os.environ.get("REPRO_BENCH_WORKLOADS")
    if not names:
        return benchmark_names()
    return tuple(n.strip() for n in names.split(",") if n.strip())


@pytest.fixture(scope="session")
def config() -> SystemConfig:
    return SystemConfig.bench()


@pytest.fixture(scope="session")
def accesses() -> int:
    return bench_accesses()


@pytest.fixture(scope="session")
def workloads():
    return bench_workloads()


@pytest.fixture(scope="session")
def full_scale(accesses, workloads):
    """Shape assertions (who wins, where crossovers fall) only hold with
    enough migration churn; a quick REPRO_BENCH_ACCESSES pass skips them."""
    return accesses >= 30_000 and len(workloads) >= 8


@pytest.fixture(scope="session")
def engine():
    """One engine for the whole benchmark session.

    Figures 10-12 are three views of the same three simulations per
    benchmark; sharing the engine (and its in-process memo) across the
    bench files preserves that reuse exactly as the old run cache did.
    """
    tracing = os.environ.get("REPRO_BENCH_TRACE", "") not in ("", "0")
    return ExperimentEngine(
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1") or 1),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE_DIR") or None,
        trace_dir=(
            os.environ.get("REPRO_BENCH_TRACE_OUT", "traces") if tracing else None
        ),
    )


@pytest.fixture(scope="session", autouse=True)
def _shared_run_cache():
    """Anything routed through the default engine (library-style calls)
    stays shared for the session, then is dropped."""
    yield
    clear_cache()

"""Figure 14 - sensitivity to the device-capacity / footprint ratio.

Paper improvements over the conventional model: +51.64% when only 20% of the
footprint fits in device memory, +34.48% at 35%, +26.83% at 50% - the less
that fits, the more migration, the bigger the Salus win.
"""

from repro.harness.experiments import run_fig14_footprint


def test_fig14_footprint_sensitivity(benchmark, config, engine, accesses, workloads, full_scale):
    result = benchmark.pedantic(
        run_fig14_footprint,
        kwargs=dict(config=config, benchmarks=workloads, n_accesses=accesses, engine=engine),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_text())
    print("paper reference: +51.64% (20%), +34.48% (35%), +26.83% (50%)")
    improvements = [row[3] for row in result.rows]
    assert all(i > 1.0 for i in improvements)
    if full_scale:
        # Monotone: tighter capacity -> bigger win.
        assert improvements[0] >= improvements[-1]

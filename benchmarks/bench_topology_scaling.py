"""Topology scaling - multi-device CXL fabric, devices x link bandwidth.

Not a paper figure: a Figure-13-style sensitivity sweep over the topology
layer this reproduction adds. Because Salus keys all security metadata to
permanent CXL addresses, sharding the page space over more expansion
devices splits data *and* security traffic across independent links with
no re-keying - the Salus advantage should persist (and the absolute IPC
rise) as devices are added.
"""

from repro.harness.experiments import run_topology_scaling


def test_topology_scaling(benchmark, config, engine, accesses, workloads, full_scale):
    result = benchmark.pedantic(
        run_topology_scaling,
        kwargs=dict(config=config, benchmarks=workloads, n_accesses=accesses, engine=engine),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_text())
    improvements = [row[4] for row in result.rows]
    assert all(i > 1.0 for i in improvements)
    # Round-robin page sharding must reach every device's link (a balance
    # of inf means some link carried zero bytes).
    balances = [row[5] for row in result.rows]
    assert all(b != float("inf") for b in balances)
    if full_scale:
        # At full trace lengths the shard is statistically even: no device
        # carries more than 2x the least-loaded one.
        assert all(b <= 2.0 for b in balances)

#!/usr/bin/env python
"""Perf-benchmark harness: tracked throughput trajectory with a correctness gate.

Runs the Figure-10 sweep (every benchmark x {nosec, baseline, salus}) through
the simulator, measuring wall-clock seconds and simulated requests/sec per
(benchmark, model) job, and fingerprinting every :class:`RunResult`
(sha-256 over the canonical serialized result - see
``RunResult.fingerprint``).

The checked-in ``BENCH_perf.json`` records the trajectory: one entry per
recorded point (at minimum ``baseline`` = pre-optimization and ``post`` =
current). The harness **gates on bit-identical result fingerprints** between
the live run and the reference entry, so every speedup in the trajectory is
provably behavior-preserving. Timing numbers are reported but non-gating by
default (wall-clock varies across machines); pass ``--min-speedup`` to also
enforce a throughput ratio.

Usage:
    # CI / local check: rerun the sweep, verify fingerprints, report speedup
    python scripts/bench_perf.py --quick
    python scripts/bench_perf.py                     # full Figure-10 sweep

    # Record a trajectory point (overwrites an entry of the same label)
    python scripts/bench_perf.py --record baseline
    python scripts/bench_perf.py --record post

    # Optional hard throughput gate (used when validating the PR target)
    python scripts/bench_perf.py --min-speedup 1.5 --ref baseline

Exit status: 0 on success, 1 on fingerprint mismatch (or failed speedup gate),
2 on usage errors (e.g. missing reference entry).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import SystemConfig  # noqa: E402
from repro.harness.runner import run_model  # noqa: E402
from repro.workloads.suite import benchmark_names, build_trace  # noqa: E402

#: Bump when the sweep definition or the JSON layout changes; entries from a
#: different schema are never compared against.
BENCH_SCHEMA = 1

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_perf.json"
FIG10_MODELS = ("nosec", "baseline", "salus")

#: The full Figure-10 sweep (every benchmark) and the CI smoke subset.
FULL_ACCESSES = 8_000
QUICK_ACCESSES = 2_000
QUICK_BENCHES = ("nw", "backprop", "kmeans")
DEFAULT_SEED = 7


def sweep_spec(quick: bool, accesses: int = 0, seed: int = DEFAULT_SEED) -> dict:
    """The (name, benches, models, accesses, seed) tuple defining one sweep."""
    benches = QUICK_BENCHES if quick else benchmark_names()
    return {
        "name": "quick" if quick else "fig10",
        "benches": list(benches),
        "models": list(FIG10_MODELS),
        "accesses": accesses or (QUICK_ACCESSES if quick else FULL_ACCESSES),
        "seed": seed,
    }


def run_sweep(spec: dict, repeats: int = 1, kernel: str = None) -> tuple:
    """Execute the sweep serially; returns ({job_label: measurement},
    {job_label: RunResult}).

    Trace generation is excluded from the timed region; with ``repeats > 1``
    the minimum wall time per job is kept (the least-noise estimate) after
    checking that every repeat fingerprints identically. ``kernel``
    selects the request-path engine; fingerprints are kernel-independent
    by the dual-engine contract, so the gate applies unchanged. The config
    is always built through ``with_tenants`` - at the default 1 tenant this
    pins the equivalence the tenancy refactor promises: an explicit
    single-tenant partition reproduces the recorded fingerprints exactly.
    """
    tenants = spec.get("tenants", 1)
    config = SystemConfig.bench().with_tenants(tenants)
    jobs = {}
    results = {}
    for bench in spec["benches"]:
        trace = build_trace(
            bench,
            n_accesses=spec["accesses"],
            seed=spec["seed"],
            num_sms=config.gpu.num_sms,
            geometry=config.geometry,
            tenants=tenants,
        )
        for model in spec["models"]:
            label = f"{bench}/{model}"
            best_wall = None
            fingerprint = None
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                result = run_model(config, trace, model, kernel=kernel)
                wall = time.perf_counter() - t0
                fp = result.fingerprint()
                if fingerprint is None:
                    fingerprint = fp
                elif fp != fingerprint:
                    raise RuntimeError(
                        f"{label}: nondeterministic result across repeats "
                        f"({fingerprint[:12]} vs {fp[:12]})"
                    )
                best_wall = wall if best_wall is None else min(best_wall, wall)
            jobs[label] = {
                "wall_s": round(best_wall, 6),
                "requests_per_sec": round(spec["accesses"] / best_wall, 1),
                "cycles": result.cycles,
                "fingerprint": fingerprint,
            }
            results[label] = result
            print(
                f"  {label:<24} {best_wall:8.3f}s "
                f"{jobs[label]['requests_per_sec']:>12,.0f} req/s "
                f"{fingerprint[:12]}",
                flush=True,
            )
    return jobs, results


def result_filename(label: str) -> str:
    """``bench/model`` -> the per-job dump/snapshot file name."""
    return label.replace("/", "-") + ".json"


def dump_results(results: dict, out_dir: Path) -> None:
    """Write each RunResult as ``<dir>/<bench>-<model>.json``.

    The dumps are ``repro diff``-able artifacts: on a fingerprint-gate
    failure, diffing the live dump against the recorded snapshot of the
    same job names the exact metrics/counters that moved.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    for label, result in results.items():
        path = out_dir / result_filename(label)
        path.write_text(
            json.dumps(result.to_dict(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def record_ledger(spec: dict, jobs: dict, results: dict, ledger_dir) -> None:
    """Append the sweep's runs to the run ledger (``repro runs`` visibility)."""
    from repro.harness.engine import SCHEMA_VERSION, JobOutcome, SimJob
    from repro.harness.ledger import LedgerEntry, RunLedger

    tenants = spec.get("tenants", 1)
    config = SystemConfig.bench().with_tenants(tenants)
    ledger = RunLedger(ledger_dir)
    for label, result in results.items():
        bench, model = label.split("/", 1)
        job = SimJob.of(config, bench, model, spec["accesses"], spec["seed"],
                        tenants=tenants)
        outcome = JobOutcome(
            job, result=result, source="run", wall_s=jobs[label]["wall_s"]
        )
        ledger.append(LedgerEntry.from_outcome(outcome, SCHEMA_VERSION))


def summarize(spec: dict, jobs: dict) -> dict:
    total_wall = sum(j["wall_s"] for j in jobs.values())
    total_requests = spec["accesses"] * len(jobs)
    return {
        "total_wall_s": round(total_wall, 3),
        "total_requests": total_requests,
        "requests_per_sec": round(total_requests / total_wall, 1),
    }


def load_store(path: Path) -> dict:
    if path.exists():
        store = json.loads(path.read_text(encoding="utf-8"))
        if store.get("schema") == BENCH_SCHEMA:
            return store
    return {"schema": BENCH_SCHEMA, "sweeps": {}}


def find_entry(store: dict, sweep_name: str, label: str):
    for entry in store["sweeps"].get(sweep_name, {}).get("entries", []):
        if entry["label"] == label:
            return entry
    return None


def check_against(ref: dict, jobs: dict, summary: dict, min_speedup: float) -> int:
    """Fingerprint gate (hard) + throughput report (soft unless min_speedup)."""
    mismatches = []
    for label, job in jobs.items():
        ref_job = ref["jobs"].get(label)
        if ref_job is None:
            mismatches.append(f"{label}: missing from reference entry")
        elif ref_job["fingerprint"] != job["fingerprint"]:
            mismatches.append(
                f"{label}: fingerprint {job['fingerprint'][:12]} != "
                f"reference {ref_job['fingerprint'][:12]}"
            )
    extra = set(ref["jobs"]) - set(jobs)
    if extra:
        mismatches.append(f"reference has jobs the live sweep lacks: {sorted(extra)}")
    if mismatches:
        print("\nFINGERPRINT GATE FAILED (behaviour changed):")
        for line in mismatches:
            print(f"  {line}")
        return 1
    speedup = summary["requests_per_sec"] / ref["summary"]["requests_per_sec"]
    print(
        f"\nfingerprints: all {len(jobs)} jobs bit-identical to "
        f"'{ref['label']}' ({ref.get('recorded', '?')})"
    )
    print(
        f"throughput: {summary['requests_per_sec']:,.0f} req/s vs "
        f"{ref['summary']['requests_per_sec']:,.0f} req/s -> {speedup:.2f}x "
        f"({'gating' if min_speedup else 'non-gating'})"
    )
    if min_speedup and speedup < min_speedup:
        print(f"SPEEDUP GATE FAILED: {speedup:.2f}x < required {min_speedup:.2f}x")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke subset (3 benches, fewer accesses)")
    parser.add_argument("--accesses", type=int, default=0,
                        help="override per-job request count")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per job (min wall kept)")
    parser.add_argument("--record", metavar="LABEL",
                        help="record this run as a trajectory entry")
    parser.add_argument("--ref", default="baseline",
                        help="reference entry label to gate against")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="also fail unless throughput >= RATIO x reference")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"trajectory file (default {DEFAULT_OUTPUT.name})")
    parser.add_argument("--dump-results", type=Path, default=None,
                        metavar="DIR",
                        help="also write each live RunResult as "
                             "DIR/<bench>-<model>.json ('repro diff' food)")
    parser.add_argument("--snapshot-dir", type=Path,
                        default=REPO_ROOT / "BENCH_snapshots",
                        metavar="DIR",
                        help="recorded per-job result snapshots; --record on "
                             "the quick sweep refreshes DIR/quick/ "
                             "(default BENCH_snapshots)")
    parser.add_argument("--ledger-dir", default=None, metavar="DIR",
                        help="run-ledger location (default: the repro cache "
                             "dir, i.e. $REPRO_CACHE_DIR or .salus-cache)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not record the sweep in the run ledger")
    parser.add_argument("--kernel", choices=("scalar", "batched", "auto"),
                        default=None,
                        help="request-path engine (default: $REPRO_KERNEL, "
                             "then auto)")
    parser.add_argument("--tenants", type=int, default=1, metavar="T",
                        help="security domains (default 1; the CI gate runs "
                             "with an explicit 1-tenant partition). T != 1 "
                             "stores its trajectory under a separate "
                             "'<sweep>-xT' name so tenancy entries never "
                             "collide with the recorded single-tenant ones")
    args = parser.parse_args(argv)

    from repro.kernel import numpy_version, resolve_kernel

    resolved_kernel = resolve_kernel(args.kernel)
    spec = sweep_spec(args.quick, accesses=args.accesses, seed=args.seed)
    if args.tenants != 1:
        spec["tenants"] = args.tenants
        spec["name"] += f"-x{args.tenants}"
    print(
        f"sweep '{spec['name']}': {len(spec['benches'])} benches x "
        f"{len(spec['models'])} models @ {spec['accesses']} accesses "
        f"(seed {spec['seed']}, kernel {resolved_kernel}, "
        f"{args.tenants} tenant(s))"
    )
    jobs, results = run_sweep(spec, repeats=args.repeats, kernel=resolved_kernel)
    summary = summarize(spec, jobs)
    print(
        f"total: {summary['total_wall_s']:.2f}s for "
        f"{summary['total_requests']:,} requests -> "
        f"{summary['requests_per_sec']:,.0f} req/s"
    )

    if args.dump_results:
        dump_results(results, args.dump_results)
        print(f"dumped {len(results)} result JSONs to {args.dump_results}/")
    if not args.no_ledger:
        from repro.harness.engine import default_cache_dir

        ledger_dir = args.ledger_dir or default_cache_dir()
        record_ledger(spec, jobs, results, ledger_dir)

    store = load_store(args.output)
    sweep_store = store["sweeps"].setdefault(
        spec["name"],
        {"benches": spec["benches"], "models": spec["models"],
         "accesses": spec["accesses"], "seed": spec["seed"], "entries": [],
         **({"tenants": spec["tenants"]} if "tenants" in spec else {})},
    )

    if args.record:
        entry = {
            "label": args.record,
            "recorded": time.strftime("%Y-%m-%d"),
            "python": platform.python_version(),
            "kernel": resolved_kernel,
            "numpy": numpy_version(),
            "summary": summary,
            "jobs": jobs,
        }
        sweep_store["entries"] = [
            e for e in sweep_store["entries"] if e["label"] != args.record
        ] + [entry]
        args.output.write_text(
            json.dumps(store, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"recorded entry '{args.record}' in {args.output}")
        if spec["name"] == "quick":
            # Keep the diffable per-job snapshots in lockstep with the
            # recorded fingerprints (CI diffs failures against these).
            dump_results(results, args.snapshot_dir / "quick")
            print(f"refreshed snapshots in {args.snapshot_dir / 'quick'}/")
        ref = find_entry(store, spec["name"], args.ref)
        if ref is not None and ref["label"] != args.record:
            return check_against(ref, jobs, summary, args.min_speedup)
        return 0

    ref = find_entry(store, spec["name"], args.ref)
    if ref is None:
        print(
            f"no reference entry '{args.ref}' for sweep '{spec['name']}' in "
            f"{args.output}; record one with --record {args.ref}"
        )
        return 2
    rc = check_against(ref, jobs, summary, args.min_speedup)
    if rc == 1:
        snap_dir = args.snapshot_dir / spec["name"]
        if snap_dir.is_dir():
            live = args.dump_results or "<DIR from --dump-results>"
            print(
                f"\nlocalize the drift (first differing metrics, per job):\n"
                f"  repro diff {snap_dir}/<bench>-<model>.json "
                f"{live}/<bench>-<model>.json"
            )
    return rc


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Repo hygiene gate: no build artifacts or caches in the git index.

Scans ``git ls-files`` for paths that should never be tracked - compiled
bytecode (``__pycache__``, ``*.pyc``), packaging residue (``*.egg-info``,
``build/``, ``dist/``), tool caches (``.pytest_cache``, ``.hypothesis``),
and local simulation caches (``.salus-cache``, ``.ci-cache``). These are
all gitignored; this script catches the case where one slipped into the
index *before* the ignore rule existed (``.gitignore`` does not untrack).

Run from anywhere inside the repository:

    python scripts/check_repo_hygiene.py

Exit status: 0 when the index is clean, 1 listing every offender, 2 when
git is unavailable or the working directory is not a repository.
"""

from __future__ import annotations

import fnmatch
import subprocess
import sys

# Path patterns (fnmatch, matched against full repo-relative paths) that
# must never appear in the index. Keep in sync with .gitignore.
FORBIDDEN_PATTERNS = (
    "*__pycache__*",
    "*.pyc",
    "*.pyo",
    "*.pyd",
    "*.egg-info/*",
    "*.egg-info",
    ".pytest_cache/*",
    ".hypothesis/*",
    ".salus-cache/*",
    ".ci-cache/*",
    "build/*",
    "dist/*",
    "*.trace.json",
    "*.progress.jsonl",
)


def tracked_files() -> list:
    proc = subprocess.run(
        ["git", "ls-files", "-z"],
        capture_output=True,
        check=True,
    )
    return [p.decode() for p in proc.stdout.split(b"\0") if p]


def offenders(paths) -> list:
    bad = []
    for path in paths:
        for pattern in FORBIDDEN_PATTERNS:
            if fnmatch.fnmatch(path, pattern):
                bad.append((path, pattern))
                break
    return bad


def main() -> int:
    try:
        paths = tracked_files()
    except (OSError, subprocess.CalledProcessError) as exc:
        print(f"check_repo_hygiene: cannot list tracked files: {exc}",
              file=sys.stderr)
        return 2
    bad = offenders(paths)
    if bad:
        print(f"{len(bad)} tracked artifact(s) violate repo hygiene:")
        for path, pattern in bad:
            print(f"  {path}  (matches {pattern})")
        print("\nuntrack with: git rm -r --cached <path>")
        return 1
    print(f"repo hygiene ok: {len(paths)} tracked files, no artifacts")
    return 0


if __name__ == "__main__":
    sys.exit(main())

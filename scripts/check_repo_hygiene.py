#!/usr/bin/env python
"""Repo hygiene gate: no build artifacts or caches in the git index.

Scans ``git ls-files`` for paths that should never be tracked - compiled
bytecode (``__pycache__``, ``*.pyc``), packaging residue (``*.egg-info``,
``build/``, ``dist/``), tool caches (``.pytest_cache``, ``.hypothesis``),
and local simulation caches (``.salus-cache``, ``.ci-cache``). These are
all gitignored; this script catches the case where one slipped into the
index *before* the ignore rule existed (``.gitignore`` does not untrack).

It also walks the *working tree* under ``src/`` for ``__pycache__``
directories: untracked bytecode there is invisible to git but still
pollutes sdists built from the tree, shadows renamed modules, and breaks
``pip install -e`` cleanups. Pass ``--no-worktree`` to restrict the check
to the index (e.g. on a build box that legitimately imports in place).

Run from anywhere inside the repository:

    python scripts/check_repo_hygiene.py

Exit status: 0 when clean, 1 listing every offender, 2 when git is
unavailable or the working directory is not a repository.
"""

from __future__ import annotations

import fnmatch
import subprocess
import sys
from pathlib import Path

# Path patterns (fnmatch, matched against full repo-relative paths) that
# must never appear in the index. Keep in sync with .gitignore.
FORBIDDEN_PATTERNS = (
    "*__pycache__*",
    "*.pyc",
    "*.pyo",
    "*.pyd",
    "*.egg-info/*",
    "*.egg-info",
    ".pytest_cache/*",
    ".hypothesis/*",
    ".salus-cache/*",
    ".ci-cache/*",
    "build/*",
    "dist/*",
    "*.trace.json",
    "*.progress.jsonl",
)


def repo_root() -> Path:
    proc = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        check=True,
    )
    return Path(proc.stdout.decode().strip())


def tracked_files() -> list:
    proc = subprocess.run(
        ["git", "ls-files", "-z"],
        capture_output=True,
        check=True,
    )
    return [p.decode() for p in proc.stdout.split(b"\0") if p]


def offenders(paths) -> list:
    bad = []
    for path in paths:
        for pattern in FORBIDDEN_PATTERNS:
            if fnmatch.fnmatch(path, pattern):
                bad.append((path, pattern))
                break
    return bad


def worktree_pycache(root: Path) -> list:
    """``__pycache__`` directories on disk under ``src/``, tracked or not."""
    src = root / "src"
    if not src.is_dir():
        return []
    return sorted(
        str(path.relative_to(root)) for path in src.rglob("__pycache__")
        if path.is_dir()
    )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    check_worktree = "--no-worktree" not in argv
    try:
        paths = tracked_files()
        root = repo_root()
    except (OSError, subprocess.CalledProcessError) as exc:
        print(f"check_repo_hygiene: cannot inspect the repository: {exc}",
              file=sys.stderr)
        return 2
    failed = False
    bad = offenders(paths)
    if bad:
        failed = True
        print(f"{len(bad)} tracked artifact(s) violate repo hygiene:")
        for path, pattern in bad:
            print(f"  {path}  (matches {pattern})")
        print("\nuntrack with: git rm -r --cached <path>")
    if check_worktree:
        stray = worktree_pycache(root)
        if stray:
            failed = True
            print(f"{len(stray)} stray __pycache__ dir(s) under src/:")
            for path in stray:
                print(f"  {path}")
            print("\nremove with: find src -name __pycache__ -type d "
                  "-exec rm -rf {} +")
    if failed:
        return 1
    print(f"repo hygiene ok: {len(paths)} tracked files, no artifacts")
    return 0


if __name__ == "__main__":
    sys.exit(main())

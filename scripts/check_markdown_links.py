#!/usr/bin/env python3
"""Check that intra-repository markdown links resolve.

Scans every tracked-ish ``*.md`` file under the repo root for inline
``[text](target)`` links, and fails (exit 1, one line per break) if a
relative target does not exist on disk. External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are ignored; a
``path#fragment`` target is checked for the path part only. Stdlib only -
this is the CI docs job's whole dependency footprint.

Usage: python scripts/check_markdown_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", ".salus-cache", "__pycache__", ".pytest_cache", "node_modules"}

# Inline links only; reference-style links are not used in this repo.
# [text](target) with no nested parens in the target.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

EXTERNAL = ("http://", "https://", "mailto:")


def md_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(path: Path, root: Path):
    """Yield (line_number, target) for each broken link in ``path``."""
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("<"):
                continue
            target = target.split("#", 1)[0]
            if not target:  # pure in-page anchor
                continue
            if target.startswith("/"):
                resolved = root / target.lstrip("/")
            else:
                resolved = path.parent / target
            if not resolved.exists():
                yield lineno, match.group(1)


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    broken = 0
    checked = 0
    for path in md_files(root):
        checked += 1
        for lineno, target in check_file(path, root):
            broken += 1
            print(f"{path.relative_to(root)}:{lineno}: broken link -> {target}")
    print(f"checked {checked} markdown files, {broken} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

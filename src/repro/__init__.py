"""Salus: efficient security support for CXL-expanded GPU memory.

A full reproduction of the HPCA 2024 paper by Abdullah, Lee, Zhou and Awad:
a trace-driven GPU memory-system simulator with dynamic page migration
between CXL expansion memory and GPU device memory, three security models
(none / conventional baseline / Salus), a byte-accurate functional security
layer, the paper's benchmark suite as synthetic workloads, and a harness
that regenerates every evaluation figure.

Quickstart::

    from repro import SystemConfig, build_trace, run_model

    config = SystemConfig.bench()
    trace = build_trace("nw", n_accesses=10_000)
    salus = run_model(config, trace, "salus")
    baseline = run_model(config, trace, "baseline")
    print(f"Salus speedup: {salus.ipc / baseline.ipc:.2f}x")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from .address import DEFAULT_GEOMETRY, Geometry
from .config import GPUConfig, SalusConfig, SecurityConfig, SystemConfig
from .errors import (
    AddressError,
    ConfigError,
    CounterOverflowError,
    FreshnessError,
    IntegrityError,
    ReproError,
    SecurityError,
    SimulationError,
    TraceError,
)
from .gpu.gpusim import GpuSim, RunResult
from .harness.runner import MODEL_NAMES, run_benchmark, run_model
from .sim.stats import Side, StatRegistry, TrafficCategory
from .workloads.suite import BENCHMARKS, benchmark_names, build_trace
from .workloads.generators import WorkloadSpec, generate_trace
from .workloads.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "AddressError",
    "BENCHMARKS",
    "ConfigError",
    "CounterOverflowError",
    "DEFAULT_GEOMETRY",
    "FreshnessError",
    "GPUConfig",
    "Geometry",
    "GpuSim",
    "IntegrityError",
    "MODEL_NAMES",
    "ReproError",
    "RunResult",
    "SalusConfig",
    "SecurityConfig",
    "SecurityError",
    "Side",
    "SimulationError",
    "StatRegistry",
    "SystemConfig",
    "Trace",
    "TraceError",
    "TrafficCategory",
    "WorkloadSpec",
    "benchmark_names",
    "build_trace",
    "generate_trace",
    "run_benchmark",
    "run_model",
]

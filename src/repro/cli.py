"""Command-line interface: run simulations and regenerate paper figures.

Usage (also available as ``python -m repro``)::

    python -m repro run nw --models nosec baseline salus
    python -m repro figure fig10 --accesses 20000
    python -m repro figures --jobs 4           # all figures, 4 worker processes
    python -m repro figure all --benchmarks nw btree sgemm
    python -m repro run nw --cxl-devices 2     # two-device CXL fabric
    python -m repro topology nw --cxl-devices 4
    python -m repro figure topology            # devices x link-bw sweep
    python -m repro run nw --tenants 2         # two isolated security domains
    python -m repro figure tenancy             # isolation overhead sweep
    python -m repro trace nw                   # Chrome/Perfetto trace.json
    python -m repro run nw --json > r.json && python -m repro report r.json
    python -m repro list

Every command accepts ``--accesses`` (trace length), ``--seed``, and the
Figure-13/14 knobs ``--cxl-bw-ratio`` / ``--capacity-ratio``. ``run``,
``figure`` and ``figures`` additionally accept the engine knobs ``--jobs``
(parallel worker processes), ``--cache-dir`` and ``--no-cache``: finished
simulations are stored as content-addressed JSON under the cache directory
(default ``.salus-cache/``, or $REPRO_CACHE_DIR), so repeating a figure
sweep replays results instead of re-simulating. Their ``--trace`` flag
additionally writes one Chrome-trace JSON per simulation into ``--trace-out``
(tracing forces fresh simulations; see docs/TRACING.md).

``trace`` without a positional output runs one traced simulation and writes
a Chrome-trace ``trace.json``; with a positional output it keeps its
original meaning, exporting the generated workload to ``.npz``. ``report``
renders a ``repro run --json`` dump (or any list of serialized RunResults)
as a markdown or CSV observability report.

Observability commands (see docs/METRICS.md and docs/TRACING.md):

* ``--progress`` on ``run``/``figure``/``figures`` renders live engine
  telemetry (per-job heartbeats, done lines) to stderr when it is a TTY;
  ``--progress-jsonl PATH`` writes the raw event stream as JSON lines
  regardless of TTY. Both are observers - results are bit-identical with
  them on or off.
* Every completed job is recorded in the append-only run ledger
  (``<cache-dir>/ledger.jsonl``; ``--no-ledger`` disables). ``repro runs``
  lists/filters it; ``repro perf`` shows the recorded performance
  trajectory and checks the ledger against it.
* ``repro diff A B`` localizes the first divergence between two runs,
  given two ``run --json`` dumps or two Chrome traces.

Service mode (see docs/SERVICE.md): ``repro serve`` runs a long-lived job
service sharing one warm cache across clients; ``run``/``figure``/
``figures`` with ``--server URL`` (or $REPRO_SERVER) execute there
instead of in-process, with client-side fingerprint verification proving
the results bit-identical to local execution.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .config import SystemConfig
from .harness.engine import ExperimentEngine, TraceSpec, default_cache_dir
from .harness.experiments import (
    run_ablation,
    run_fig03_motivation,
    run_fig10_ipc,
    run_fig11_traffic,
    run_fig12_bandwidth,
    run_fig13_cxl_bw,
    run_fig14_footprint,
    run_tenancy_sweep,
    run_topology_scaling,
)
from .harness.report import format_table
from .harness.runner import MODEL_NAMES, run_benchmark, run_model
from .workloads.suite import BENCHMARKS, benchmark_names, build_trace

FIGURES = {
    "fig03": run_fig03_motivation,
    "fig10": run_fig10_ipc,
    "fig11": run_fig11_traffic,
    "fig12": run_fig12_bandwidth,
    "fig13": run_fig13_cxl_bw,
    "fig14": run_fig14_footprint,
    "ablation": run_ablation,
    "topology": run_topology_scaling,
    "tenancy": run_tenancy_sweep,
}


def _build_config(args: argparse.Namespace) -> SystemConfig:
    config = SystemConfig.bench()
    if args.cxl_bw_ratio is not None:
        config = config.with_cxl_bw_ratio(args.cxl_bw_ratio)
    if args.capacity_ratio is not None:
        config = config.with_capacity_ratio(args.capacity_ratio)
    if args.fill_granularity is not None:
        from dataclasses import replace

        config = replace(
            config, gpu=replace(config.gpu, fill_granularity=args.fill_granularity)
        )
    if getattr(args, "cxl_devices", None) is not None:
        config = config.with_cxl_devices(
            args.cxl_devices, sharding=getattr(args, "sharding", None) or "page"
        )
    if getattr(args, "tenants", None) is not None:
        config = config.with_tenants(args.tenants)
    return config


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--accesses", type=int, default=20_000,
                        help="trace length per benchmark (default 20000)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cxl-bw-ratio", type=float, default=None,
                        help="CXL:device bandwidth ratio (default 1/16)")
    parser.add_argument("--capacity-ratio", type=float, default=None,
                        help="device capacity / footprint ratio (default 0.35)")
    parser.add_argument("--fill-granularity", choices=("page", "chunk"),
                        default=None,
                        help="page-fault data movement: whole page (default) "
                             "or on-demand 256 B chunks")
    parser.add_argument("--cxl-devices", type=int, default=None, metavar="N",
                        help="expansion devices in the CXL fabric, each with "
                             "its own link and security plane (default 1)")
    parser.add_argument("--sharding", choices=("page", "range"), default=None,
                        help="CXL page -> home device policy for "
                             "--cxl-devices > 1 (default page round-robin)")
    parser.add_argument("--tenants", type=int, default=None, metavar="T",
                        help="security domains sharing the GPU: partitions "
                             "SMs, channels, pages and metadata planes into "
                             "T isolated slices and interleaves T per-tenant "
                             "trace streams (default 1 = whole machine)")
    parser.add_argument("--tenant-mix", choices=("mirror", "noisy"),
                        default=None,
                        help="co-tenant personalities for --tenants > 1: "
                             "every tenant runs the benchmark (mirror, "
                             "default), or tenants 1+ run a bandwidth-"
                             "hammering variant (noisy neighbor)")
    parser.add_argument("--kernel", choices=("scalar", "batched", "auto"),
                        default=None,
                        help="request-path engine: scalar reference loop or "
                             "epoch-batched numpy kernel; results are "
                             "bit-identical (default: $REPRO_KERNEL, then "
                             "auto = batched when numpy is available)")


def _add_engine(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent simulations "
                             "(default 1 = serial)")
    parser.add_argument("--cache-dir", default=default_cache_dir(),
                        help="persistent result-cache directory "
                             "(default .salus-cache, or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the on-disk result cache")
    parser.add_argument("--trace", action="store_true",
                        help="write one Chrome-trace JSON per simulation into "
                             "--trace-out (forces fresh simulations)")
    parser.add_argument("--trace-out", default="traces", metavar="DIR",
                        help="directory for per-simulation trace files "
                             "(default traces/; only with --trace)")
    parser.add_argument("--progress", action="store_true",
                        help="render live engine telemetry to stderr "
                             "(auto-disabled when stderr is not a TTY)")
    parser.add_argument("--progress-jsonl", default=None, metavar="PATH",
                        help="also write raw progress events as JSON lines "
                             "(works without a TTY; for tooling/tests)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not record completed jobs in the run "
                             "ledger (<cache-dir>/ledger.jsonl)")
    parser.add_argument("--server", default=os.environ.get("REPRO_SERVER"),
                        metavar="URL",
                        help="run jobs on a shared 'repro serve' instance "
                             "instead of in-process (default $REPRO_SERVER; "
                             "results are fingerprint-verified identical)")


def _progress_sink(args: argparse.Namespace, total: Optional[int] = None):
    """Resolve ``--progress``/``--progress-jsonl`` into one engine sink.

    The terminal renderer attaches only when stderr is a TTY (so piped and
    CI output stays clean); setting ``REPRO_FORCE_PROGRESS=1`` overrides
    the TTY check, which is how tests drive the renderer. The JSONL sink is
    TTY-independent.
    """
    from .harness.runner import (
        ProgressJsonlWriter,
        ProgressRenderer,
        combine_progress_sinks,
    )

    renderer = None
    if getattr(args, "progress", False):
        if sys.stderr.isatty() or os.environ.get("REPRO_FORCE_PROGRESS"):
            renderer = ProgressRenderer(total=total)
    writer = None
    if getattr(args, "progress_jsonl", None):
        writer = ProgressJsonlWriter(args.progress_jsonl)
    return combine_progress_sinks(renderer, writer)


def _build_engine(args: argparse.Namespace, total: Optional[int] = None):
    """Resolve the execution seam: in-process engine, or a remote service.

    With ``--server URL`` (or $REPRO_SERVER) jobs run on a shared
    ``repro serve`` instance through the fingerprint-verifying
    :class:`~repro.harness.client.RemoteEngine`; everything above this
    seam is identical either way. Tracing stays local-only: a Chrome
    trace is a property of one in-process execution.
    """
    server = getattr(args, "server", None)
    if server:
        if getattr(args, "trace", False):
            from .errors import ServiceError

            raise ServiceError(
                "--trace needs in-process execution; drop --server"
            )
        from .harness.client import RemoteEngine

        return RemoteEngine(server, progress=_progress_sink(args, total=total))
    cache_dir = None if args.no_cache else args.cache_dir
    trace_dir = args.trace_out if getattr(args, "trace", False) else None
    ledger = False if getattr(args, "no_ledger", False) else None
    return ExperimentEngine(
        jobs=max(1, args.jobs),
        cache_dir=cache_dir,
        trace_dir=trace_dir,
        progress=_progress_sink(args, total=total),
        ledger=ledger,
        kernel=getattr(args, "kernel", None),
    )


def cmd_list(_args: argparse.Namespace) -> int:
    """The ``list`` command: show benchmarks, models and figures."""
    rows = [
        (
            spec.name, spec.suite, spec.intensity,
            f"{spec.chunk_coverage:.0%}", spec.concurrent_pages,
            f"{spec.write_fraction:.0%}", spec.compute_per_mem,
        )
        for spec in BENCHMARKS.values()
    ]
    print(
        format_table(
            ("benchmark", "suite", "intensity", "coverage",
             "concurrency", "writes", "compute/mem"),
            rows,
            title="Benchmark suite (paper Section V-A stand-ins)",
        )
    )
    print("\nmodels:", ", ".join(MODEL_NAMES))
    print("figures:", ", ".join(FIGURES), "(or 'all')")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """The ``run`` command: simulate one benchmark under chosen models."""
    config = _build_config(args)
    engine = None
    if args.trace_file:
        from .workloads.io import load_trace

        # External traces have no generation recipe to key a cache on;
        # they run directly, in-process.
        trace = load_trace(args.trace_file)
        results = {
            m: run_model(config, trace, m, kernel=args.kernel)
            for m in args.models
        }
    else:
        tenants = getattr(args, "tenants", None) or 1
        tenant_mix = getattr(args, "tenant_mix", None) or "mirror"
        trace = build_trace(
            args.benchmark, n_accesses=args.accesses, seed=args.seed,
            num_sms=config.gpu.num_sms, tenants=tenants,
            tenant_mix=tenant_mix,
        )
        engine = _build_engine(args, total=len(args.models))
        results = run_benchmark(
            config,
            TraceSpec(args.benchmark, args.accesses, args.seed,
                      tenants=tenants, tenant_mix=tenant_mix),
            models=tuple(args.models),
            engine=engine,
        )
    if args.json:
        import json

        # Execution provenance rides along as an "engine" sidecar key,
        # outside the RunResult payload proper: from_dict ignores it, and
        # result fingerprints (hashes of to_dict) never see it.
        meta = {}
        if engine is not None:
            meta = {
                o.job.model: {"source": o.source, "wall_s": round(o.wall_s, 6)}
                for o in engine.last_outcomes
                if o.ok
            }
        payload = []
        for model, result in results.items():
            entry = result.to_dict()
            if model in meta:
                entry["engine"] = meta[model]
            payload.append(entry)
        print(json.dumps(payload, indent=2))
        return 0
    basis = results.get("nosec")
    rows = []
    for name, result in results.items():
        rows.append(
            (
                name,
                result.ipc,
                (result.ipc / basis.ipc) if basis else float("nan"),
                result.fills,
                result.evictions,
                result.stats.security_bytes() / 1e6,
            )
        )
    print(
        format_table(
            ("model", "ipc", "ipc_norm", "fills", "evicts", "security_MB"),
            rows,
            title=f"{args.benchmark}: {len(trace)} accesses, "
                  f"{trace.footprint_pages} pages",
        )
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """The ``trace`` command: traced simulation, or ``.npz`` workload export.

    With a positional ``output`` this keeps its original behavior and
    exports the generated workload to ``.npz``. Without one it runs a single
    traced simulation and writes the Chrome-trace timeline to
    ``--trace-out``. The traced run always executes in-process - ``--jobs``
    is accepted for command-line symmetry with ``run`` but has no effect
    here, which is what makes the emitted trace byte-identical regardless
    of parallelism settings.
    """
    config = _build_config(args)
    trace = build_trace(
        args.benchmark, n_accesses=args.accesses, seed=args.seed,
        num_sms=config.gpu.num_sms,
        tenants=getattr(args, "tenants", None) or 1,
        tenant_mix=getattr(args, "tenant_mix", None) or "mirror",
    )
    if args.output:
        from .workloads.io import save_trace

        path = save_trace(trace, args.output)
        print(
            f"wrote {len(trace)} requests ({trace.footprint_pages} pages, "
            f"{trace.write_fraction:.0%} writes) to {path}"
        )
        return 0

    from .sim.trace import Tracer

    tracer = Tracer(capacity=args.trace_events)
    result = run_model(config, trace, args.model, tracer=tracer,
                       kernel=args.kernel)
    path = tracer.write(args.trace_out)
    print(
        f"{args.benchmark}/{args.model}: ipc={result.ipc:.4f}, "
        f"{tracer.total_recorded} events recorded ({tracer.dropped} dropped)"
    )
    print(f"wrote {path} - open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """The ``report`` command: render serialized results as md/CSV."""
    import json
    from pathlib import Path

    from .gpu.gpusim import RunResult
    from .harness.report import render_csv, render_markdown_report

    try:
        with open(args.results, encoding="utf-8") as fh:
            payload = json.load(fh)
        if isinstance(payload, dict):
            payload = [payload]
        results = [RunResult.from_dict(entry) for entry in payload]
        engine_meta = [
            entry.get("engine") if isinstance(entry, dict) else None
            for entry in payload
        ]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(
            f"repro report: {args.results} is not a serialized RunResult "
            f"list (expected 'repro run --json' output): {exc!r}",
            file=sys.stderr,
        )
        return 2
    if args.format == "csv":
        text = render_csv(results)
    else:
        text = render_markdown_report(results, engine_meta=engine_meta)
    if args.output:
        out = Path(args.output)
        out.write_text(text, encoding="utf-8")
        print(f"wrote {args.format} report for {len(results)} run(s) to {out}")
    else:
        print(text, end="")
    return 0


def cmd_topology(args: argparse.Namespace) -> int:
    """The ``topology`` command: print the resolved CXL fabric layout,
    including which SM group, channel run, page span and device subset each
    security domain owns under the resolved partition."""
    from .address import ShardMap, TenantMap

    config = _build_config(args)
    topo = config.topology
    gpu = config.gpu
    base_bw = gpu.device_bandwidth_gbps / gpu.core_clock_ghz
    rows = []
    for d in range(topo.num_devices):
        ratio = topo.bw_ratio(d, gpu.cxl_bw_ratio)
        rows.append(
            (
                f"dev{d}",
                "cxl" if d == 0 else f"cxl{d}",
                ratio,
                base_bw * ratio,
                topo.latency(d, gpu.cxl_latency_cycles),
            )
        )
    print(
        format_table(
            ("device", "link", "bw_ratio", "bytes/cycle", "latency_cycles"),
            rows,
            title=f"CXL fabric: {topo.num_devices} device(s), "
                  f"{topo.sharding} sharding",
        )
    )
    trace = None
    if args.benchmark:
        trace = build_trace(
            args.benchmark, n_accesses=args.accesses, seed=args.seed,
            num_sms=config.gpu.num_sms,
            tenants=getattr(args, "tenants", None) or 1,
            tenant_mix=getattr(args, "tenant_mix", None) or "mirror",
        )
        shard = ShardMap(
            geometry=config.geometry,
            num_devices=topo.num_devices,
            policy=topo.sharding,
            total_pages=trace.footprint_pages,
        )
        rows = [
            (f"dev{d}", shard.pages_on(d),
             shard.pages_on(d) * config.geometry.page_bytes // 1024)
            for d in range(topo.num_devices)
        ]
        print()
        print(
            format_table(
                ("device", "homed_pages", "KiB"),
                rows,
                title=f"{args.benchmark}: {trace.footprint_pages} pages "
                      f"sharded by '{topo.sharding}'",
            )
        )
    part = config.partition
    tmap = TenantMap(
        geometry=config.geometry,
        num_tenants=part.num_tenants,
        total_pages=(
            trace.footprint_pages if trace is not None else part.num_tenants
        ),
        num_sms=gpu.num_sms,
        num_gpcs=gpu.num_gpcs,
        num_channels=gpu.num_channels,
        num_devices=topo.num_devices,
    )
    rows = []
    for t in range(part.num_tenants):
        devs = tmap.devices_of(t)
        rows.append(
            (
                part.tenant_name(t),
                f"{tmap.sm_base(t)}-"
                f"{tmap.sm_base(t) + tmap.sms_per_tenant - 1}",
                f"{tmap.channel_base(t)}-"
                f"{tmap.channel_base(t) + tmap.channels_per_tenant - 1}",
                (
                    "shared"
                    if tmap.devices_shared and part.num_tenants > 1
                    else f"{devs.start}-{devs.stop - 1}"
                ),
                tmap.pages_of(t) if trace is not None else "-",
            )
        )
    print()
    print(
        format_table(
            ("tenant", "sms", "channels", "devices", "homed_pages"),
            rows,
            title=f"security domains: {part.num_tenants} tenant(s)",
        )
    )
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """The ``figure``/``figures`` commands: regenerate paper figures.

    All figures of one invocation share one engine, so the simulations
    Figures 10-12 have in common run once, ``--jobs N`` fans each sweep out
    over worker processes, and (unless ``--no-cache``) every result lands in
    the persistent cache for the next invocation.
    """
    config = _build_config(args)
    engine = _build_engine(args)
    names = list(FIGURES) if args.name == "all" else [args.name]
    benchmarks = tuple(args.benchmarks) if args.benchmarks else None
    for name in names:
        result = FIGURES[name](
            config=config, benchmarks=benchmarks,
            n_accesses=args.accesses, seed=args.seed,
            engine=engine,
        )
        print(result.to_text())
        print()
    if args.verbose:
        s = engine.stats
        print(
            f"engine: {s.simulations} simulated, {s.disk_hits} from disk "
            f"cache, {s.memory_hits} from memory, {s.errors} errors",
            file=sys.stderr,
        )
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    """The ``runs`` command: list the run ledger (what ran, when, how fast)."""
    from .harness.ledger import RunLedger

    ledger = RunLedger(args.cache_dir)
    entries = ledger.entries(
        bench=args.bench, model=args.model, source=args.source,
        limit=args.limit,
    )
    if args.json:
        import json

        from dataclasses import asdict

        print(json.dumps([asdict(e) for e in entries], indent=2, sort_keys=True))
        return 0
    if not entries:
        where = ledger.path
        print(f"no matching ledger entries in {where}")
        print("(the ledger fills as 'repro run'/'repro figure' complete jobs"
              " with a cache directory attached)")
        return 0
    rows = [
        (
            e.recorded or "?",
            e.label(),
            e.source,
            f"{e.wall_s:.3f}",
            e.ipc,
            e.cycles,
            e.result_fingerprint[:12],
        )
        for e in entries
    ]
    print(
        format_table(
            ("recorded", "run", "source", "wall_s", "ipc", "cycles",
             "result_fp"),
            rows,
            title=f"run ledger: {ledger.path} "
                  f"({len(entries)} shown of {len(ledger)})",
        )
    )
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """The ``perf`` command: recorded trajectory + ledger regression check.

    Prints the performance trajectory recorded in ``BENCH_perf.json``
    (one row per ``bench_perf.py --record`` entry, per sweep), then checks
    the run ledger's latest simulated runs against the reference entry:
    a result-fingerprint mismatch is behaviour drift (exit 1); a per-job
    wall time beyond ``--threshold`` times the recorded one is flagged as a
    perf regression (exit 1 too - raise the threshold or re-record).

    ``--compare KERNEL KERNEL`` switches to the dual-kernel mode instead:
    the quick subset runs under both request-path kernels and every job's
    fingerprints must match (the live dual-engine contract check).
    """
    import json
    from pathlib import Path

    from .harness.ledger import RunLedger

    if args.compare:
        from .harness.compare import run_compare

        return run_compare(
            args.compare[0], args.compare[1],
            accesses=args.compare_accesses, seed=args.compare_seed,
        )

    path = Path(args.file)
    try:
        store = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"repro perf: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    sweeps = store.get("sweeps", {})
    if not sweeps:
        print(f"repro perf: no recorded sweeps in {path}", file=sys.stderr)
        return 2

    for sweep_name in sorted(sweeps):
        if args.sweep and sweep_name != args.sweep:
            continue
        sweep = sweeps[sweep_name]
        entries = sweep.get("entries", [])
        if not entries:
            continue
        base = entries[0]["summary"]["requests_per_sec"]
        rows = [
            (
                e["label"],
                e.get("recorded", "?"),
                e["summary"]["total_wall_s"],
                f"{e['summary']['requests_per_sec']:,.0f}",
                e["summary"]["requests_per_sec"] / base,
            )
            for e in entries
        ]
        print(
            format_table(
                ("entry", "recorded", "wall_s", "req/s", "vs_first"),
                rows,
                title=f"sweep '{sweep_name}': "
                      f"{len(sweep.get('benches', []))} benches @ "
                      f"{sweep.get('accesses')} accesses, "
                      f"seed {sweep.get('seed')}",
            )
        )
        print()

    # Ledger vs reference: latest simulated ("run") ledger entry per job.
    sweep_name = args.sweep or ("quick" if "quick" in sweeps else sorted(sweeps)[0])
    sweep = sweeps.get(sweep_name, {})
    ref = next(
        (e for e in sweep.get("entries", []) if e["label"] == args.ref), None
    )
    if ref is None:
        print(
            f"no reference entry '{args.ref}' recorded for sweep "
            f"'{sweep_name}'; skipping ledger check"
        )
        return 0
    ledger = RunLedger(args.cache_dir)
    latest = {}
    for entry in ledger.entries(source="run"):
        if entry.n_accesses == sweep.get("accesses") and entry.seed == sweep.get("seed"):
            latest[f"{entry.bench}/{entry.model}"] = entry
    if not latest:
        print(
            f"ledger {ledger.path} has no simulated runs matching sweep "
            f"'{sweep_name}' (@{sweep.get('accesses')} accesses, "
            f"seed {sweep.get('seed')}); run the sweep first"
        )
        return 0
    drift = []
    slow = []
    rows = []
    for label, entry in sorted(latest.items()):
        ref_job = ref["jobs"].get(label)
        if ref_job is None:
            continue
        fp_ok = ref_job["fingerprint"] == entry.result_fingerprint
        ratio = (entry.wall_s / ref_job["wall_s"]) if ref_job["wall_s"] else 0.0
        verdict = "ok"
        if not fp_ok:
            verdict = "FINGERPRINT DRIFT"
            drift.append(label)
        elif args.threshold and ratio > args.threshold:
            verdict = f"slow ({ratio:.2f}x)"
            slow.append(label)
        rows.append(
            (label, f"{ref_job['wall_s']:.3f}", f"{entry.wall_s:.3f}",
             ratio, verdict)
        )
    print(
        format_table(
            ("job", "ref_wall_s", "ledger_wall_s", "ratio", "verdict"),
            rows,
            title=f"ledger vs '{args.ref}' ({sweep_name} sweep)",
        )
    )
    if drift:
        print(
            f"\nBEHAVIOUR DRIFT: {len(drift)} job(s) no longer fingerprint-"
            f"identical to '{args.ref}': {', '.join(drift)}"
        )
        print("localize with: repro diff <recorded result> <live result>")
        return 1
    if slow:
        print(
            f"\nPERF REGRESSION: {len(slow)} job(s) beyond "
            f"{args.threshold:.2f}x the recorded wall time: {', '.join(slow)}"
        )
        return 1
    print(f"\nledger agrees with '{args.ref}': {len(rows)} job(s) checked")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: long-lived shared job service (docs/SERVICE.md).

    Serves the HTTP job API until SIGINT/SIGTERM (or a client's
    ``POST /admin/shutdown``), then drains in-flight jobs and exits.
    Any ``repro run``/``figure``/``figures`` invocation with
    ``--server URL`` executes against it.
    """
    import asyncio

    from .service import CacheEvictionPolicy, ServiceConfig, serve_forever

    cache_dir = None if args.no_cache else args.cache_dir
    ledger = False if getattr(args, "no_ledger", False) else None
    service_config = ServiceConfig(
        workers=max(1, args.workers),
        queue_depth=args.queue_depth,
        cache_dir=cache_dir,
        kernel=args.kernel,
        ledger=ledger,
        execution=args.execution,
        eviction=CacheEvictionPolicy(
            max_entries=args.cache_max_entries, ttl_s=args.cache_ttl
        ),
        retry_after_s=args.retry_after,
    )

    def ready(server) -> None:
        print(f"repro serve: listening on {server.url}", flush=True)
        print(
            f"  workers={service_config.workers} "
            f"queue_depth={service_config.queue_depth} "
            f"execution={service_config.execution} "
            f"cache={cache_dir or '(memory only)'}",
            flush=True,
        )
        print("  stop with Ctrl-C (drains in-flight jobs) or "
              "POST /admin/shutdown", flush=True)

    asyncio.run(
        serve_forever(service_config, host=args.host, port=args.port,
                      ready=ready)
    )
    print("repro serve: drained and stopped", flush=True)
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """The ``diff`` command: first divergence between two run artifacts."""
    from .harness.diff import DiffError, diff_paths

    try:
        outcome = diff_paths(
            args.a, args.b, pick=args.pick, context=args.context,
            max_leaves=args.max_leaves,
        )
    except DiffError as exc:
        print(f"repro diff: {exc}", file=sys.stderr)
        return 2
    print(outcome.text)
    return 0 if outcome.identical else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Salus (HPCA 2024) reproduction: simulations and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list benchmarks, models and figures")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run one benchmark under chosen models")
    p_run.add_argument("benchmark", choices=benchmark_names())
    p_run.add_argument(
        "--models", nargs="+", default=["nosec", "baseline", "salus"],
        choices=MODEL_NAMES,
    )
    p_run.add_argument("--trace-file", default=None,
                       help="run a saved .npz trace instead of generating one")
    p_run.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of a table")
    _add_common(p_run)
    _add_engine(p_run)
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="run one traced simulation (Chrome trace), "
             "or export a workload to .npz",
    )
    p_trace.add_argument("benchmark", choices=benchmark_names())
    p_trace.add_argument("output", nargs="?", default=None,
                         help="optional .npz path: export the generated "
                              "workload instead of running a traced simulation")
    p_trace.add_argument("--model", default="salus", choices=MODEL_NAMES,
                         help="security model for the traced run "
                              "(default salus)")
    p_trace.add_argument("--trace-out", default="trace.json", metavar="PATH",
                         help="Chrome-trace output path (default trace.json)")
    p_trace.add_argument("--trace-events", type=int, default=200_000,
                         metavar="N",
                         help="tracer ring capacity; older events are "
                              "dropped past this (default 200000)")
    p_trace.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="accepted for symmetry with 'run'; traced "
                              "simulations always execute in-process")
    _add_common(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_report = sub.add_parser(
        "report", help="render 'run --json' results as a markdown/CSV report"
    )
    p_report.add_argument("results", help="JSON file of serialized RunResults "
                                          "(e.g. from 'repro run --json')")
    p_report.add_argument("--format", choices=("md", "csv"), default="md",
                          help="report format (default md)")
    p_report.add_argument("-o", "--output", default=None,
                          help="write the report to a file instead of stdout")
    p_report.set_defaults(func=cmd_report)

    p_runs = sub.add_parser(
        "runs", help="list the run ledger (completed simulations, by recency)"
    )
    p_runs.add_argument("--cache-dir", default=default_cache_dir(),
                        help="cache directory holding ledger.jsonl, or a "
                             "direct *.jsonl path (default .salus-cache)")
    p_runs.add_argument("--bench", default=None, help="filter by benchmark")
    p_runs.add_argument("--model", default=None, help="filter by model")
    p_runs.add_argument("--source", default=None,
                        choices=("run", "disk", "memory", "coalesced"),
                        help="filter by how the result was obtained "
                             "('coalesced'/'memory' entries are service-"
                             "mode submissions answered by another's run)")
    p_runs.add_argument("--limit", type=int, default=20, metavar="N",
                        help="show the latest N matches (default 20)")
    p_runs.add_argument("--json", action="store_true",
                        help="emit the matching entries as JSON")
    p_runs.set_defaults(func=cmd_runs)

    p_perf = sub.add_parser(
        "perf", help="show the recorded perf trajectory and check the "
                     "ledger against it"
    )
    p_perf.add_argument("--file", default="BENCH_perf.json",
                        help="trajectory file (default BENCH_perf.json)")
    p_perf.add_argument("--sweep", default=None,
                        help="restrict to one sweep (default: all tables, "
                             "'quick' for the ledger check)")
    p_perf.add_argument("--ref", default="post",
                        help="reference entry label for the ledger check "
                             "(default post)")
    p_perf.add_argument("--threshold", type=float, default=0.0,
                        metavar="RATIO",
                        help="flag jobs whose ledger wall time exceeds "
                             "RATIO x the recorded one (default off)")
    p_perf.add_argument("--cache-dir", default=default_cache_dir(),
                        help="cache directory holding ledger.jsonl "
                             "(default .salus-cache)")
    p_perf.add_argument("--compare", nargs=2, default=None,
                        metavar=("KERNEL", "KERNEL"),
                        help="instead: run the quick subset under two "
                             "request-path kernels (scalar/batched/auto), "
                             "report per-job speedup, and exit 1 unless "
                             "every fingerprint matches")
    p_perf.add_argument("--compare-accesses", type=int, default=2_000,
                        metavar="N",
                        help="trace length per job in --compare mode "
                             "(default 2000, the quick-sweep size)")
    p_perf.add_argument("--compare-seed", type=int, default=7,
                        help="trace seed in --compare mode (default 7)")
    p_perf.set_defaults(func=cmd_perf)

    p_serve = sub.add_parser(
        "serve", help="run the shared simulation job service "
                      "(see docs/SERVICE.md)"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="TCP port; 0 picks an ephemeral one "
                              "(default 8765)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="concurrent simulation workers (default 2)")
    p_serve.add_argument("--queue-depth", type=int, default=32, metavar="N",
                         help="pending-job bound; submissions beyond it get "
                              "HTTP 429 + Retry-After (default 32)")
    p_serve.add_argument("--cache-dir", default=default_cache_dir(),
                         help="shared result cache + run ledger directory "
                              "(default .salus-cache, or $REPRO_CACHE_DIR)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve without a persistent cache or ledger")
    p_serve.add_argument("--no-ledger", action="store_true",
                         help="keep the cache but skip ledger recording")
    p_serve.add_argument("--kernel", choices=("scalar", "batched", "auto"),
                         default=None,
                         help="request-path engine for served simulations "
                              "(default: $REPRO_KERNEL, then auto)")
    p_serve.add_argument("--execution", choices=("thread", "process", "auto"),
                         default="thread",
                         help="worker execution mode: threads (default), "
                              "worker processes, or auto (processes with "
                              "thread fallback)")
    p_serve.add_argument("--cache-max-entries", type=int, default=None,
                         metavar="N",
                         help="LRU-evict the result cache beyond N entries "
                              "(default: unbounded)")
    p_serve.add_argument("--cache-ttl", type=float, default=None,
                         metavar="SECONDS",
                         help="evict cache entries unused for this long "
                              "(default: never)")
    p_serve.add_argument("--retry-after", type=float, default=1.0,
                         metavar="SECONDS",
                         help="Retry-After hint sent with HTTP 429 "
                              "(default 1.0)")
    p_serve.set_defaults(func=cmd_serve)

    p_diff = sub.add_parser(
        "diff", help="first divergence between two runs (result JSONs or "
                     "Chrome traces)"
    )
    p_diff.add_argument("a", help="first artifact: 'run --json' dump or "
                                  "Chrome trace")
    p_diff.add_argument("b", help="second artifact (same kind as the first)")
    p_diff.add_argument("--pick", default=None, metavar="WORKLOAD/MODEL",
                        help="diff only this run when files hold several")
    p_diff.add_argument("--context", type=int, default=5, metavar="N",
                        help="aligned events shown before a trace "
                             "divergence (default 5)")
    p_diff.add_argument("--max-leaves", type=int, default=40, metavar="N",
                        help="differing metric leaves listed per report "
                             "(default 40)")
    p_diff.set_defaults(func=cmd_diff)

    p_topo = sub.add_parser(
        "topology", help="print the resolved multi-device CXL fabric layout"
    )
    p_topo.add_argument("benchmark", nargs="?", default=None,
                        choices=benchmark_names(),
                        help="optional: also show how this benchmark's pages "
                             "shard over the devices")
    _add_common(p_topo)
    p_topo.set_defaults(func=cmd_topology)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("name", choices=list(FIGURES) + ["all"])
    p_fig.add_argument("--benchmarks", nargs="*", default=None)
    p_fig.add_argument("--verbose", action="store_true",
                       help="print engine cache/simulation counters to stderr")
    _add_common(p_fig)
    _add_engine(p_fig)
    p_fig.set_defaults(func=cmd_figure)

    p_figs = sub.add_parser(
        "figures", help="regenerate every paper figure (same as 'figure all')"
    )
    p_figs.add_argument("--benchmarks", nargs="*", default=None)
    p_figs.add_argument("--verbose", action="store_true",
                        help="print engine cache/simulation counters to stderr")
    _add_common(p_figs)
    _add_engine(p_figs)
    p_figs.set_defaults(func=cmd_figure, name="all")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from .errors import ServiceError

    try:
        return args.func(args)
    except ServiceError as exc:
        # Operational, not programming, errors: unreachable server,
        # saturation past the client's retry budget, draining service.
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: run simulations and regenerate paper figures.

Usage (also available as ``python -m repro``)::

    python -m repro run nw --models nosec baseline salus
    python -m repro figure fig10 --accesses 20000
    python -m repro figures --jobs 4           # all figures, 4 worker processes
    python -m repro figure all --benchmarks nw btree sgemm
    python -m repro run nw --cxl-devices 2     # two-device CXL fabric
    python -m repro topology nw --cxl-devices 4
    python -m repro figure topology            # devices x link-bw sweep
    python -m repro trace nw                   # Chrome/Perfetto trace.json
    python -m repro run nw --json > r.json && python -m repro report r.json
    python -m repro list

Every command accepts ``--accesses`` (trace length), ``--seed``, and the
Figure-13/14 knobs ``--cxl-bw-ratio`` / ``--capacity-ratio``. ``run``,
``figure`` and ``figures`` additionally accept the engine knobs ``--jobs``
(parallel worker processes), ``--cache-dir`` and ``--no-cache``: finished
simulations are stored as content-addressed JSON under the cache directory
(default ``.salus-cache/``, or $REPRO_CACHE_DIR), so repeating a figure
sweep replays results instead of re-simulating. Their ``--trace`` flag
additionally writes one Chrome-trace JSON per simulation into ``--trace-out``
(tracing forces fresh simulations; see docs/TRACING.md).

``trace`` without a positional output runs one traced simulation and writes
a Chrome-trace ``trace.json``; with a positional output it keeps its
original meaning, exporting the generated workload to ``.npz``. ``report``
renders a ``repro run --json`` dump (or any list of serialized RunResults)
as a markdown or CSV observability report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import SystemConfig
from .harness.engine import ExperimentEngine, TraceSpec, default_cache_dir
from .harness.experiments import (
    run_ablation,
    run_fig03_motivation,
    run_fig10_ipc,
    run_fig11_traffic,
    run_fig12_bandwidth,
    run_fig13_cxl_bw,
    run_fig14_footprint,
    run_topology_scaling,
)
from .harness.report import format_table
from .harness.runner import MODEL_NAMES, run_benchmark, run_model
from .workloads.suite import BENCHMARKS, benchmark_names, build_trace

FIGURES = {
    "fig03": run_fig03_motivation,
    "fig10": run_fig10_ipc,
    "fig11": run_fig11_traffic,
    "fig12": run_fig12_bandwidth,
    "fig13": run_fig13_cxl_bw,
    "fig14": run_fig14_footprint,
    "ablation": run_ablation,
    "topology": run_topology_scaling,
}


def _build_config(args: argparse.Namespace) -> SystemConfig:
    config = SystemConfig.bench()
    if args.cxl_bw_ratio is not None:
        config = config.with_cxl_bw_ratio(args.cxl_bw_ratio)
    if args.capacity_ratio is not None:
        config = config.with_capacity_ratio(args.capacity_ratio)
    if args.fill_granularity is not None:
        from dataclasses import replace

        config = replace(
            config, gpu=replace(config.gpu, fill_granularity=args.fill_granularity)
        )
    if getattr(args, "cxl_devices", None) is not None:
        config = config.with_cxl_devices(
            args.cxl_devices, sharding=getattr(args, "sharding", None) or "page"
        )
    return config


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--accesses", type=int, default=20_000,
                        help="trace length per benchmark (default 20000)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cxl-bw-ratio", type=float, default=None,
                        help="CXL:device bandwidth ratio (default 1/16)")
    parser.add_argument("--capacity-ratio", type=float, default=None,
                        help="device capacity / footprint ratio (default 0.35)")
    parser.add_argument("--fill-granularity", choices=("page", "chunk"),
                        default=None,
                        help="page-fault data movement: whole page (default) "
                             "or on-demand 256 B chunks")
    parser.add_argument("--cxl-devices", type=int, default=None, metavar="N",
                        help="expansion devices in the CXL fabric, each with "
                             "its own link and security plane (default 1)")
    parser.add_argument("--sharding", choices=("page", "range"), default=None,
                        help="CXL page -> home device policy for "
                             "--cxl-devices > 1 (default page round-robin)")


def _add_engine(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent simulations "
                             "(default 1 = serial)")
    parser.add_argument("--cache-dir", default=default_cache_dir(),
                        help="persistent result-cache directory "
                             "(default .salus-cache, or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the on-disk result cache")
    parser.add_argument("--trace", action="store_true",
                        help="write one Chrome-trace JSON per simulation into "
                             "--trace-out (forces fresh simulations)")
    parser.add_argument("--trace-out", default="traces", metavar="DIR",
                        help="directory for per-simulation trace files "
                             "(default traces/; only with --trace)")


def _build_engine(args: argparse.Namespace) -> ExperimentEngine:
    cache_dir = None if args.no_cache else args.cache_dir
    trace_dir = args.trace_out if getattr(args, "trace", False) else None
    return ExperimentEngine(
        jobs=max(1, args.jobs), cache_dir=cache_dir, trace_dir=trace_dir
    )


def cmd_list(_args: argparse.Namespace) -> int:
    """The ``list`` command: show benchmarks, models and figures."""
    rows = [
        (
            spec.name, spec.suite, spec.intensity,
            f"{spec.chunk_coverage:.0%}", spec.concurrent_pages,
            f"{spec.write_fraction:.0%}", spec.compute_per_mem,
        )
        for spec in BENCHMARKS.values()
    ]
    print(
        format_table(
            ("benchmark", "suite", "intensity", "coverage",
             "concurrency", "writes", "compute/mem"),
            rows,
            title="Benchmark suite (paper Section V-A stand-ins)",
        )
    )
    print("\nmodels:", ", ".join(MODEL_NAMES))
    print("figures:", ", ".join(FIGURES), "(or 'all')")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """The ``run`` command: simulate one benchmark under chosen models."""
    config = _build_config(args)
    if args.trace_file:
        from .workloads.io import load_trace

        # External traces have no generation recipe to key a cache on;
        # they run directly, in-process.
        trace = load_trace(args.trace_file)
        results = {m: run_model(config, trace, m) for m in args.models}
    else:
        trace = build_trace(
            args.benchmark, n_accesses=args.accesses, seed=args.seed,
            num_sms=config.gpu.num_sms,
        )
        results = run_benchmark(
            config,
            TraceSpec(args.benchmark, args.accesses, args.seed),
            models=tuple(args.models),
            engine=_build_engine(args),
        )
    if args.json:
        import json

        print(json.dumps([r.to_dict() for r in results.values()], indent=2))
        return 0
    basis = results.get("nosec")
    rows = []
    for name, result in results.items():
        rows.append(
            (
                name,
                result.ipc,
                (result.ipc / basis.ipc) if basis else float("nan"),
                result.fills,
                result.evictions,
                result.stats.security_bytes() / 1e6,
            )
        )
    print(
        format_table(
            ("model", "ipc", "ipc_norm", "fills", "evicts", "security_MB"),
            rows,
            title=f"{args.benchmark}: {len(trace)} accesses, "
                  f"{trace.footprint_pages} pages",
        )
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """The ``trace`` command: traced simulation, or ``.npz`` workload export.

    With a positional ``output`` this keeps its original behavior and
    exports the generated workload to ``.npz``. Without one it runs a single
    traced simulation and writes the Chrome-trace timeline to
    ``--trace-out``. The traced run always executes in-process - ``--jobs``
    is accepted for command-line symmetry with ``run`` but has no effect
    here, which is what makes the emitted trace byte-identical regardless
    of parallelism settings.
    """
    config = _build_config(args)
    trace = build_trace(
        args.benchmark, n_accesses=args.accesses, seed=args.seed,
        num_sms=config.gpu.num_sms,
    )
    if args.output:
        from .workloads.io import save_trace

        path = save_trace(trace, args.output)
        print(
            f"wrote {len(trace)} requests ({trace.footprint_pages} pages, "
            f"{trace.write_fraction:.0%} writes) to {path}"
        )
        return 0

    from .sim.trace import Tracer

    tracer = Tracer(capacity=args.trace_events)
    result = run_model(config, trace, args.model, tracer=tracer)
    path = tracer.write(args.trace_out)
    print(
        f"{args.benchmark}/{args.model}: ipc={result.ipc:.4f}, "
        f"{tracer.total_recorded} events recorded ({tracer.dropped} dropped)"
    )
    print(f"wrote {path} - open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """The ``report`` command: render serialized results as md/CSV."""
    import json
    from pathlib import Path

    from .gpu.gpusim import RunResult
    from .harness.report import render_csv, render_markdown_report

    try:
        with open(args.results, encoding="utf-8") as fh:
            payload = json.load(fh)
        if isinstance(payload, dict):
            payload = [payload]
        results = [RunResult.from_dict(entry) for entry in payload]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(
            f"repro report: {args.results} is not a serialized RunResult "
            f"list (expected 'repro run --json' output): {exc!r}",
            file=sys.stderr,
        )
        return 2
    if args.format == "csv":
        text = render_csv(results)
    else:
        text = render_markdown_report(results)
    if args.output:
        out = Path(args.output)
        out.write_text(text, encoding="utf-8")
        print(f"wrote {args.format} report for {len(results)} run(s) to {out}")
    else:
        print(text, end="")
    return 0


def cmd_topology(args: argparse.Namespace) -> int:
    """The ``topology`` command: print the resolved CXL fabric layout."""
    from .address import ShardMap

    config = _build_config(args)
    topo = config.topology
    gpu = config.gpu
    base_bw = gpu.device_bandwidth_gbps / gpu.core_clock_ghz
    rows = []
    for d in range(topo.num_devices):
        ratio = topo.bw_ratio(d, gpu.cxl_bw_ratio)
        rows.append(
            (
                f"dev{d}",
                "cxl" if d == 0 else f"cxl{d}",
                ratio,
                base_bw * ratio,
                topo.latency(d, gpu.cxl_latency_cycles),
            )
        )
    print(
        format_table(
            ("device", "link", "bw_ratio", "bytes/cycle", "latency_cycles"),
            rows,
            title=f"CXL fabric: {topo.num_devices} device(s), "
                  f"{topo.sharding} sharding",
        )
    )
    if args.benchmark:
        trace = build_trace(
            args.benchmark, n_accesses=args.accesses, seed=args.seed,
            num_sms=config.gpu.num_sms,
        )
        shard = ShardMap(
            geometry=config.geometry,
            num_devices=topo.num_devices,
            policy=topo.sharding,
            total_pages=trace.footprint_pages,
        )
        rows = [
            (f"dev{d}", shard.pages_on(d),
             shard.pages_on(d) * config.geometry.page_bytes // 1024)
            for d in range(topo.num_devices)
        ]
        print()
        print(
            format_table(
                ("device", "homed_pages", "KiB"),
                rows,
                title=f"{args.benchmark}: {trace.footprint_pages} pages "
                      f"sharded by '{topo.sharding}'",
            )
        )
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """The ``figure``/``figures`` commands: regenerate paper figures.

    All figures of one invocation share one engine, so the simulations
    Figures 10-12 have in common run once, ``--jobs N`` fans each sweep out
    over worker processes, and (unless ``--no-cache``) every result lands in
    the persistent cache for the next invocation.
    """
    config = _build_config(args)
    engine = _build_engine(args)
    names = list(FIGURES) if args.name == "all" else [args.name]
    benchmarks = tuple(args.benchmarks) if args.benchmarks else None
    for name in names:
        result = FIGURES[name](
            config=config, benchmarks=benchmarks,
            n_accesses=args.accesses, seed=args.seed,
            engine=engine,
        )
        print(result.to_text())
        print()
    if args.verbose:
        s = engine.stats
        print(
            f"engine: {s.simulations} simulated, {s.disk_hits} from disk "
            f"cache, {s.memory_hits} from memory, {s.errors} errors",
            file=sys.stderr,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Salus (HPCA 2024) reproduction: simulations and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list benchmarks, models and figures")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run one benchmark under chosen models")
    p_run.add_argument("benchmark", choices=benchmark_names())
    p_run.add_argument(
        "--models", nargs="+", default=["nosec", "baseline", "salus"],
        choices=MODEL_NAMES,
    )
    p_run.add_argument("--trace-file", default=None,
                       help="run a saved .npz trace instead of generating one")
    p_run.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of a table")
    _add_common(p_run)
    _add_engine(p_run)
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="run one traced simulation (Chrome trace), "
             "or export a workload to .npz",
    )
    p_trace.add_argument("benchmark", choices=benchmark_names())
    p_trace.add_argument("output", nargs="?", default=None,
                         help="optional .npz path: export the generated "
                              "workload instead of running a traced simulation")
    p_trace.add_argument("--model", default="salus", choices=MODEL_NAMES,
                         help="security model for the traced run "
                              "(default salus)")
    p_trace.add_argument("--trace-out", default="trace.json", metavar="PATH",
                         help="Chrome-trace output path (default trace.json)")
    p_trace.add_argument("--trace-events", type=int, default=200_000,
                         metavar="N",
                         help="tracer ring capacity; older events are "
                              "dropped past this (default 200000)")
    p_trace.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="accepted for symmetry with 'run'; traced "
                              "simulations always execute in-process")
    _add_common(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_report = sub.add_parser(
        "report", help="render 'run --json' results as a markdown/CSV report"
    )
    p_report.add_argument("results", help="JSON file of serialized RunResults "
                                          "(e.g. from 'repro run --json')")
    p_report.add_argument("--format", choices=("md", "csv"), default="md",
                          help="report format (default md)")
    p_report.add_argument("-o", "--output", default=None,
                          help="write the report to a file instead of stdout")
    p_report.set_defaults(func=cmd_report)

    p_topo = sub.add_parser(
        "topology", help="print the resolved multi-device CXL fabric layout"
    )
    p_topo.add_argument("benchmark", nargs="?", default=None,
                        choices=benchmark_names(),
                        help="optional: also show how this benchmark's pages "
                             "shard over the devices")
    _add_common(p_topo)
    p_topo.set_defaults(func=cmd_topology)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("name", choices=list(FIGURES) + ["all"])
    p_fig.add_argument("--benchmarks", nargs="*", default=None)
    p_fig.add_argument("--verbose", action="store_true",
                       help="print engine cache/simulation counters to stderr")
    _add_common(p_fig)
    _add_engine(p_fig)
    p_fig.set_defaults(func=cmd_figure)

    p_figs = sub.add_parser(
        "figures", help="regenerate every paper figure (same as 'figure all')"
    )
    p_figs.add_argument("--benchmarks", nargs="*", default=None)
    p_figs.add_argument("--verbose", action="store_true",
                        help="print engine cache/simulation counters to stderr")
    _add_common(p_figs)
    _add_engine(p_figs)
    p_figs.set_defaults(func=cmd_figure, name="all")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Stdlib HTTP front end for :class:`~repro.service.service.SimService`.

A deliberately small HTTP/1.1 server on raw ``asyncio`` streams - no new
dependencies, same pattern as the numpy-optional kernel: the service runs
anywhere the simulator runs. One connection per request (``Connection:
close``), JSON bodies, and one streaming endpoint (``/jobs/<fp>/events``)
that emits NDJSON until the job reaches a terminal state.

The API surface (documented operator-first in docs/SERVICE.md):

====== ============================ ===========================================
Method Path                         Meaning
====== ============================ ===========================================
GET    /healthz                     liveness + load (status/queue/in-flight)
GET    /stats                       lifetime counters, eviction report, config
POST   /jobs                        submit a job (coalesces; 429 on saturation)
GET    /jobs/<fp>                   status snapshot of one job
GET    /jobs/<fp>/result[?timeout=] long-poll for the result envelope
GET    /jobs/<fp>/events            NDJSON progress stream (replay + live)
POST   /admin/pause                 stop dispatching queued jobs
POST   /admin/resume                resume dispatching
POST   /admin/evict                 run a cache eviction sweep now
POST   /admin/shutdown              graceful shutdown ({"drain": false} cancels)
====== ============================ ===========================================

Every job response carries the job **fingerprint** - the same content hash
``SimJob.fingerprint()`` the engine keys its cache on - which is what makes
service-mode results provably interchangeable with local runs.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..config import SystemConfig
from ..errors import (
    ConfigError,
    ReproError,
    ServiceClosedError,
    ServiceSaturatedError,
)
from ..harness.engine import SimJob, TraceSpec
from ..harness.runner import MODEL_NAMES
from ..workloads.suite import benchmark_names
from .service import SimService

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_JOB_PATH = re.compile(r"^/jobs/([0-9a-f]{8,64})(/result|/events)?$")

#: Submission bodies larger than this are rejected outright (a full
#: SystemConfig dict is ~2 KiB; 1 MiB leaves room without inviting abuse).
MAX_BODY_BYTES = 1 << 20

#: Default long-poll window for ``/jobs/<fp>/result`` (seconds). Clients
#: loop on 408s, so this only bounds one round trip, not one job.
DEFAULT_RESULT_TIMEOUT_S = 30.0


def parse_job_payload(payload: dict) -> SimJob:
    """Validate a ``POST /jobs`` body and build the :class:`SimJob`.

    Raises :class:`~repro.errors.ConfigError` with a client-actionable
    message on anything malformed - surfaced as a 400, never a stack trace.
    """
    if not isinstance(payload, dict):
        raise ConfigError("job payload must be a JSON object")
    bench = payload.get("bench")
    if bench not in benchmark_names():
        raise ConfigError(
            f"unknown bench {bench!r}; choose from {benchmark_names()}"
        )
    model = payload.get("model")
    if model not in MODEL_NAMES:
        raise ConfigError(f"unknown model {model!r}; choose from {MODEL_NAMES}")
    try:
        n_accesses = int(payload.get("n_accesses"))
        seed = int(payload.get("seed", 7))
    except (TypeError, ValueError):
        raise ConfigError("n_accesses and seed must be integers")
    if n_accesses <= 0:
        raise ConfigError(f"n_accesses must be positive, got {n_accesses}")
    config_dict = payload.get("config")
    config = (
        SystemConfig.from_dict(config_dict)
        if config_dict is not None
        else SystemConfig.bench()
    )
    return SimJob(
        config=config, trace=TraceSpec(bench, n_accesses, seed), model=model
    )


class SimServiceServer:
    """Binds a :class:`SimService` to a host:port and speaks the API above."""

    def __init__(self, service: SimService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown_requested = asyncio.Event()

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_until_shutdown(self) -> None:
        """Run until ``POST /admin/shutdown`` (or :meth:`request_shutdown`),
        then drain the service and close the listener."""
        await self._shutdown_requested.wait()
        await self.service.shutdown(drain=self._drain_on_shutdown)
        await self.close()

    def request_shutdown(self, drain: bool = True) -> None:
        self._drain_on_shutdown = drain
        self._shutdown_requested.set()

    _drain_on_shutdown = True

    # -- connection handling -------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, query, body = await self._read_request(reader)
        except _BadRequest as exc:
            await self._respond(writer, exc.status, {"error": str(exc)})
            return
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            writer.close()
            return
        try:
            await self._route(writer, method, path, query, body)
        except ConnectionError:
            pass
        except Exception as exc:  # no stack traces on the wire
            try:
                await self._respond(writer, 500, {"error": repr(exc)})
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], Optional[dict]]:
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("empty request")
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise _BadRequest("malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if b":" in line:
                key, _, value = line.decode("latin-1").partition(":")
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise _BadRequest("request body too large", status=413)
        body: Optional[dict] = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                raise _BadRequest("request body is not valid JSON")
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return method.upper(), split.path, query, body

    # -- routing -------------------------------------------------------------
    async def _route(self, writer, method: str, path: str,
                     query: Dict[str, str], body: Optional[dict]) -> None:
        service = self.service
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, service.health())
            return
        if path == "/stats" and method == "GET":
            payload = {
                "stats": service.stats.as_dict(),
                "health": service.health(),
                "eviction": service.last_eviction.as_dict()
                if service.last_eviction is not None
                else None,
                "eviction_policy": service.config.eviction.describe(),
            }
            await self._respond(writer, 200, payload)
            return
        if path == "/jobs" and method == "POST":
            await self._submit(writer, body)
            return
        match = _JOB_PATH.match(path)
        if match is not None:
            fingerprint, sub = match.group(1), match.group(2)
            record = service.get_record(fingerprint)
            if record is None:
                await self._respond(
                    writer, 404,
                    {"error": f"unknown job {fingerprint[:12]}… (records are "
                              f"retained for the last "
                              f"{service.config.keep_records} jobs)"},
                )
                return
            if sub is None and method == "GET":
                await self._respond(writer, 200, record.snapshot())
                return
            if sub == "/result" and method == "GET":
                await self._result(writer, record, query)
                return
            if sub == "/events" and method == "GET":
                await self._events(writer, record)
                return
        if path == "/admin/pause" and method == "POST":
            await service.pause()
            await self._respond(writer, 200, service.health())
            return
        if path == "/admin/resume" and method == "POST":
            await service.resume()
            await self._respond(writer, 200, service.health())
            return
        if path == "/admin/evict" and method == "POST":
            report = service.evict_now()
            await self._respond(writer, 200, report.as_dict())
            return
        if path == "/admin/shutdown" and method == "POST":
            drain = True
            if isinstance(body, dict):
                drain = bool(body.get("drain", True))
            self.request_shutdown(drain=drain)
            await self._respond(
                writer, 200,
                {"status": "draining" if drain else "stopping",
                 "queue_depth": service.queue_depth,
                 "in_flight": service.in_flight},
            )
            return
        await self._respond(
            writer, 404 if method == "GET" else 405,
            {"error": f"no route {method} {path}"},
        )

    # -- endpoints -----------------------------------------------------------
    async def _submit(self, writer, body: Optional[dict]) -> None:
        try:
            job = parse_job_payload(body if body is not None else {})
        except ConfigError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        except ReproError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        try:
            record, coalesced = self.service.submit(job)
        except ServiceSaturatedError as exc:
            await self._respond(
                writer, 429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                extra_headers={"Retry-After": f"{exc.retry_after_s:g}"},
            )
            return
        except ServiceClosedError as exc:
            await self._respond(writer, 503, {"error": str(exc)})
            return
        payload = record.snapshot()
        payload["coalesced"] = coalesced
        payload["queue_depth"] = self.service.queue_depth
        await self._respond(writer, 200 if coalesced else 202, payload)

    async def _result(self, writer, record, query: Dict[str, str]) -> None:
        try:
            timeout = float(query.get("timeout", DEFAULT_RESULT_TIMEOUT_S))
        except ValueError:
            await self._respond(writer, 400, {"error": "timeout must be a number"})
            return
        try:
            await asyncio.wait_for(record.done.wait(), timeout=max(0.0, timeout))
        except asyncio.TimeoutError:
            await self._respond(
                writer, 408,
                {"error": f"job {record.fingerprint[:12]}… still "
                          f"{record.state} after {timeout:g}s; poll again",
                 "state": record.state},
            )
            return
        envelope = record.snapshot()
        if record.result is not None:
            envelope["result"] = record.result.to_dict()
            envelope["result_fingerprint"] = record.result.fingerprint()
        await self._respond(writer, 200, envelope)

    async def _events(self, writer, record) -> None:
        history, live = record.subscribe()
        headers = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(headers.encode("latin-1"))
        try:
            for event in history:
                writer.write((json.dumps(event, sort_keys=True) + "\n").encode("utf-8"))
            await writer.drain()
            if live is not None:
                while True:
                    event = await live.get()
                    writer.write(
                        (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                    )
                    await writer.drain()
                    if event.get("kind") in ("result", "cancelled"):
                        break
        finally:
            if live is not None:
                record.unsubscribe(live)
            writer.close()

    # -- response plumbing ---------------------------------------------------
    async def _respond(self, writer, status: int, payload: dict,
                       extra_headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for key, value in (extra_headers or {}).items():
            lines.append(f"{key}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
        writer.close()


class _BadRequest(Exception):
    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


async def serve_forever(service_config, host: str = "127.0.0.1",
                        port: int = 8765, ready=None) -> None:
    """Run a service + HTTP server until shutdown (``repro serve``'s core).

    ``ready(server)`` is called once the listener is bound (the CLI prints
    the URL; tests grab the ephemeral port). SIGINT/SIGTERM trigger the
    same graceful drain as ``POST /admin/shutdown``, where the platform
    allows installing handlers.
    """
    import signal

    service = SimService(service_config)
    await service.start()
    server = SimServiceServer(service, host, port)
    await server.start()
    loop = asyncio.get_running_loop()
    installed = []
    for signame in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        try:
            loop.add_signal_handler(signum, server.request_shutdown, True)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    if ready is not None:
        ready(server)
    try:
        await server.serve_until_shutdown()
    except asyncio.CancelledError:
        await service.shutdown(drain=True)
        await server.close()
        raise
    finally:
        for signum in installed:
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

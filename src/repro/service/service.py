"""SimService: a long-lived asyncio job service over the experiment engine.

The engine (:mod:`repro.harness.engine`) already dedups, caches and
parallelizes one *batch*; this module turns it into a *service* so many
concurrent clients share one warm cache instead of each forking their own
sweep. The pieces, in request order (docs/SERVICE.md has the operator view):

* **Submit** - a :class:`~repro.harness.engine.SimJob` arrives; its content
  fingerprint is the job id. The service is content-addressed end to end:
  identical ``SystemConfig + trace recipe + model`` payloads *are* the same
  job, wherever they come from.
* **Coalesce** - if that fingerprint is already queued or running, the new
  submission attaches to the in-flight :class:`JobRecord` (no new work); if
  it already completed, the retained record answers immediately (a service
  memo hit). Only genuinely new fingerprints consume queue capacity.
* **Backpressure** - the pending queue is bounded (``queue_depth``). A
  submission that finds it full raises
  :class:`~repro.errors.ServiceSaturatedError` carrying a retry hint -
  surfaced over HTTP as ``429`` + ``Retry-After`` - instead of accepting
  unbounded work and fork-bombing the host.
* **Run** - worker slots execute jobs through a fresh per-call
  :class:`~repro.harness.engine.ExperimentEngine` (same cache dir, same
  ledger), so the on-disk result cache, the run ledger and the dual-kernel
  seam behave exactly as they do for in-process runs. Results are therefore
  provably bit-identical to local execution: same ``SimJob.execute`` path,
  same fingerprints.
* **Stream** - every engine progress event (``start``/``heartbeat``/
  ``done``) is multiplexed to per-record subscribers; the HTTP layer renders
  a subscription as NDJSON. A record keeps a bounded event history so late
  subscribers replay the full story.
* **Evict** - after simulations complete, the configured
  :class:`~repro.service.store.CacheEvictionPolicy` (TTL/LRU) sweeps the
  result store. The ledger is never evicted.
* **Drain** - graceful shutdown stops accepting, finishes (or cancels) the
  pending queue, waits out in-flight jobs and leaves the ledger flushed
  (every append is an atomic open-write-close; the final entries are on
  disk before :meth:`SimService.shutdown` returns).

Execution modes: ``thread`` (default; workers run the engine in a thread
pool - simple, sandbox-proof) and ``process`` (workers run it in a
``ProcessPoolExecutor`` with progress events pumped back over a manager
queue - real multi-core for CPU-bound sweeps). ``auto`` tries ``process``
and falls back to ``thread``, mirroring the engine's own pool fallback.
"""

from __future__ import annotations

import asyncio
import collections
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ServiceClosedError, ServiceError, ServiceSaturatedError
from ..gpu.gpusim import DEFAULT_PROGRESS_EPOCH
from ..harness.engine import (
    SCHEMA_VERSION,
    EngineStats,
    ExperimentEngine,
    JobOutcome,
    SimJob,
    _QueueDrainer,
)
from ..harness.ledger import LedgerEntry, RunLedger
from .store import CacheEvictionPolicy, EvictionReport, evict_result_cache

EXECUTION_MODES = ("thread", "process", "auto")

#: Terminal event kinds a subscriber stream ends on.
TERMINAL_KINDS = ("result", "cancelled")


@dataclass(frozen=True)
class ServiceConfig:
    """Operator knobs of one :class:`SimService` (see docs/SERVICE.md)."""

    workers: int = 2
    queue_depth: int = 32
    cache_dir: Optional[str] = None
    use_cache: bool = True
    kernel: Optional[str] = None
    ledger: Optional[bool] = None
    progress_epoch: int = DEFAULT_PROGRESS_EPOCH
    execution: str = "thread"
    eviction: CacheEvictionPolicy = field(default_factory=CacheEvictionPolicy)
    #: Backpressure hint returned with a saturated rejection.
    retry_after_s: float = 1.0
    #: Completed records retained in memory for memo/coalesce answers.
    keep_records: int = 256
    #: Progress events retained per record for late stream subscribers.
    event_history: int = 1024

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 1:
            raise ServiceError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.execution not in EXECUTION_MODES:
            raise ServiceError(
                f"execution must be one of {EXECUTION_MODES}, got {self.execution!r}"
            )
        if self.retry_after_s <= 0:
            raise ServiceError("retry_after_s must be positive")
        if self.keep_records < 1:
            raise ServiceError("keep_records must be >= 1")


@dataclass
class ServiceStats:
    """Service-lifetime counters (``GET /stats``)."""

    submitted: int = 0          # fresh fingerprints accepted into the queue
    coalesced: int = 0          # submissions attached to an in-flight record
    memo_hits: int = 0          # submissions answered by a completed record
    rejected: int = 0           # submissions bounced by backpressure
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    simulations: int = 0        # engine-level: actually simulated
    disk_hits: int = 0          # engine-level: served from the result store
    evicted_entries: int = 0
    eviction_sweeps: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "memo_hits": self.memo_hits,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "simulations": self.simulations,
            "disk_hits": self.disk_hits,
            "evicted_entries": self.evicted_entries,
            "eviction_sweeps": self.eviction_sweeps,
        }


class JobRecord:
    """One content-addressed job the service knows about.

    The record is the coalescing point: every identical submission shares
    it, every progress subscriber hangs off it, and its terminal state
    (``done``/``error``/``cancelled``) plus ``source`` say how the result
    was obtained (``run``/``disk``/``memory``).
    """

    def __init__(self, job: SimJob, fingerprint: str, history_limit: int) -> None:
        self.job = job
        self.fingerprint = fingerprint
        self.state = "queued"  # queued | running | done | error | cancelled
        self.result = None  # RunResult on success
        self.error: Optional[str] = None
        self.source: Optional[str] = None
        self.wall_s = 0.0
        self.submitted_at = time.time()
        self.completed_at: Optional[float] = None
        self.attached = 0  # coalesced submissions riding this record
        self.done = asyncio.Event()
        self._history: Deque[dict] = collections.deque(maxlen=max(1, history_limit))
        self._subscribers: List[asyncio.Queue] = []

    # -- progress fan-out ----------------------------------------------------
    def publish(self, event: dict) -> None:
        """Record one progress event and fan it out to live subscribers."""
        self._history.append(event)
        for sub in self._subscribers:
            try:
                sub.put_nowait(event)
            except asyncio.QueueFull:
                pass  # slow consumer: it still gets the terminal event below

    def subscribe(self) -> Tuple[List[dict], Optional["asyncio.Queue"]]:
        """History so far, plus a live queue (None when already terminal)."""
        history = list(self._history)
        if self.is_terminal:
            return history, None
        sub: asyncio.Queue = asyncio.Queue(maxsize=4096)
        self._subscribers.append(sub)
        return history, sub

    def unsubscribe(self, sub: "asyncio.Queue") -> None:
        try:
            self._subscribers.remove(sub)
        except ValueError:
            pass

    # -- terminal transitions ------------------------------------------------
    @property
    def is_terminal(self) -> bool:
        return self.state in ("done", "error", "cancelled")

    def finish(self, state: str, source: Optional[str], wall_s: float,
               result=None, error: Optional[str] = None) -> None:
        self.state = state
        self.result = result
        self.error = error
        self.source = source
        self.wall_s = wall_s
        self.completed_at = time.time()
        self.publish(self.terminal_event())
        self.done.set()
        self._subscribers.clear()

    def terminal_event(self) -> dict:
        kind = "cancelled" if self.state == "cancelled" else "result"
        event = {
            "kind": kind,
            "job": self.job.label(),
            "fingerprint": self.fingerprint,
            "state": self.state,
            "source": self.source,
            "wall_s": round(self.wall_s, 6),
        }
        if self.error is not None:
            event["error"] = self.error.strip().splitlines()[-1]
        return event

    def snapshot(self) -> dict:
        """JSON-safe status view (``GET /jobs/<fp>``)."""
        snap = {
            "fingerprint": self.fingerprint,
            "job": self.job.label(),
            "bench": self.job.trace.bench,
            "model": self.job.model,
            "n_accesses": self.job.trace.n_accesses,
            "seed": self.job.trace.seed,
            "state": self.state,
            "source": self.source,
            "wall_s": round(self.wall_s, 6),
            "attached": self.attached,
            "submitted_at": self.submitted_at,
            "completed_at": self.completed_at,
        }
        if self.error is not None:
            snap["error"] = self.error
        return snap


class _QueueProgress:
    """Picklable progress callable for process-mode workers.

    The engine's serial path calls ``progress(event)`` inside the worker
    process; this forwards each event - tagged with the job fingerprint so
    the parent can route it - over a manager-queue proxy.
    """

    def __init__(self, events, fingerprint: str) -> None:
        self._events = events
        self._fingerprint = fingerprint

    def __call__(self, event: dict) -> None:
        tagged = dict(event)
        tagged["fingerprint"] = self._fingerprint
        try:
            self._events.put(tagged)
        except Exception:
            pass


def _run_job(job: SimJob, cache_dir: Optional[str], use_cache: bool,
             kernel: Optional[str], progress_epoch: int,
             ledger: Optional[bool], progress):
    """Execute one job through a fresh engine (thread- and process-safe).

    Returns ``(JobOutcome, EngineStats)``. A fresh engine per call keeps
    worker state disjoint (no shared memo dict across threads); the on-disk
    cache and the ledger are the shared substrate, and both are safe for
    concurrent appenders (atomic-rename publishes, O_APPEND line writes).
    """
    engine = ExperimentEngine(
        jobs=1,
        cache_dir=cache_dir,
        use_cache=use_cache,
        kernel=kernel,
        progress=progress,
        progress_epoch=progress_epoch,
        ledger=ledger,
    )
    outcome = engine.run_jobs([job])[0]
    return outcome, engine.stats


class SimService:
    """The asyncio job service. One instance per host; see module docstring.

    Lifecycle: construct, ``await start()``, ``submit()`` jobs (from the
    event loop thread), ``await shutdown()``. The HTTP layer in
    :mod:`repro.service.http` is a thin adapter over exactly this API, so
    tests can drive the service object directly.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.stats = ServiceStats()
        self.started_at: Optional[float] = None
        self.records: "collections.OrderedDict[str, JobRecord]" = collections.OrderedDict()
        self._pending: Deque[JobRecord] = collections.deque()
        self._cond: Optional[asyncio.Condition] = None
        self._workers: List[asyncio.Task] = []
        self._executor = None
        self._execution = self.config.execution
        self._manager = None
        self._drainer = None
        self._events_proxy = None
        self._in_flight = 0
        self._paused = False
        self._closing = False
        self._stopped = asyncio.Event()
        self.last_eviction: Optional[EvictionReport] = None
        self._ledger: Optional[RunLedger] = None
        want_ledger = (
            self.config.cache_dir is not None
            if self.config.ledger is None
            else bool(self.config.ledger)
        )
        if want_ledger and self.config.cache_dir is not None:
            self._ledger = RunLedger(self.config.cache_dir)

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._cond is not None:
            raise ServiceError("service already started")
        self._cond = asyncio.Condition()
        loop = asyncio.get_running_loop()
        self._setup_executor(loop)
        self._workers = [
            loop.create_task(self._worker(i)) for i in range(self.config.workers)
        ]
        self.started_at = time.time()

    def _setup_executor(self, loop) -> None:
        """Pick the execution substrate; ``auto``/``process`` fall back."""
        mode = self.config.execution
        if mode in ("process", "auto"):
            try:
                import multiprocessing

                self._manager = multiprocessing.Manager()
                self._events_proxy = self._manager.Queue()
                self._drainer = _QueueDrainer(
                    self._events_proxy,
                    lambda event: loop.call_soon_threadsafe(self._route_event, event),
                )
                self._executor = ProcessPoolExecutor(max_workers=self.config.workers)
                self._execution = "process"
                return
            except Exception:
                self._teardown_process_plumbing()
                if mode == "process":
                    raise ServiceError(
                        "execution='process' requested but no process pool is "
                        "available on this host (try 'thread' or 'auto')"
                    )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="simservice-worker",
        )
        self._execution = "thread"

    def _teardown_process_plumbing(self) -> None:
        if self._drainer is not None:
            self._drainer.finish()
            self._drainer = None
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except Exception:
                pass
            self._manager = None
        self._events_proxy = None

    @property
    def execution(self) -> str:
        """The execution mode actually in effect (after ``auto`` resolution)."""
        return self._execution

    @property
    def closing(self) -> bool:
        return self._closing

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def paused(self) -> bool:
        return self._paused

    def health(self) -> dict:
        """The ``GET /healthz`` payload: liveness plus load at a glance."""
        status = "ok"
        if self._closing:
            status = "draining"
        elif self._paused:
            status = "paused"
        return {
            "status": status,
            "queue_depth": self.queue_depth,
            "queue_capacity": self.config.queue_depth,
            "in_flight": self._in_flight,
            "workers": self.config.workers,
            "execution": self._execution,
            "paused": self._paused,
            "records": len(self.records),
            "cache_dir": self.config.cache_dir,
            "kernel": self.config.kernel,
            "engine_schema": SCHEMA_VERSION,
            "uptime_s": round(time.time() - self.started_at, 3)
            if self.started_at
            else None,
        }

    # -- submission (event-loop thread only) ---------------------------------
    def submit(self, job: SimJob) -> Tuple[JobRecord, bool]:
        """Submit one job; returns ``(record, coalesced)``.

        ``coalesced`` is True when no new work was enqueued - the job
        attached to an in-flight record or was answered by a completed one.
        Raises :class:`ServiceClosedError` while draining and
        :class:`ServiceSaturatedError` when the queue is full.
        """
        if self._cond is None:
            raise ServiceError("service not started")
        if self._closing:
            raise ServiceClosedError("service is draining; not accepting jobs")
        fingerprint = job.fingerprint()
        record = self.records.get(fingerprint)
        if record is not None and record.state != "error":
            # One sim, many subscribers: the whole point of the service.
            record.attached += 1
            if record.is_terminal:
                self.stats.memo_hits += 1
                self._append_attach_ledger(record, "memory")
            else:
                self.stats.coalesced += 1
            return record, True
        if len(self._pending) >= self.config.queue_depth:
            self.stats.rejected += 1
            raise ServiceSaturatedError(
                f"job queue full ({self.config.queue_depth} pending); "
                f"retry in {self.config.retry_after_s:g}s",
                retry_after_s=self.config.retry_after_s,
            )
        record = JobRecord(job, fingerprint, self.config.event_history)
        self.records[fingerprint] = record
        self.records.move_to_end(fingerprint)
        self._trim_records()
        self._pending.append(record)
        self.stats.submitted += 1
        self._notify()
        return record, False

    def get_record(self, fingerprint: str) -> Optional[JobRecord]:
        return self.records.get(fingerprint)

    def _trim_records(self) -> None:
        """Bound the in-memory record map: drop oldest *terminal* records."""
        limit = self.config.keep_records
        if len(self.records) <= limit:
            return
        for fp in list(self.records):
            if len(self.records) <= limit:
                break
            record = self.records[fp]
            if record.is_terminal:
                del self.records[fp]

    def _notify(self) -> None:
        cond = self._cond

        async def _wake() -> None:
            async with cond:
                cond.notify_all()

        asyncio.ensure_future(_wake())

    # -- pause / resume (operator surface) -----------------------------------
    async def pause(self) -> None:
        """Stop dispatching queued jobs (in-flight ones finish normally)."""
        self._paused = True

    async def resume(self) -> None:
        self._paused = False
        async with self._cond:
            self._cond.notify_all()

    # -- workers -------------------------------------------------------------
    async def _next_record(self) -> Optional[JobRecord]:
        """Block until a dispatchable record exists (None = exit)."""
        async with self._cond:
            while True:
                if self._pending and (not self._paused or self._closing):
                    return self._pending.popleft()
                if self._closing and not self._pending:
                    return None
                await self._cond.wait()

    async def _worker(self, index: int) -> None:
        while True:
            record = await self._next_record()
            if record is None:
                return
            await self._run_record(record)

    async def _run_record(self, record: JobRecord) -> None:
        record.state = "running"
        self._in_flight += 1
        loop = asyncio.get_running_loop()
        cfg = self.config
        if self._execution == "process":
            progress = _QueueProgress(self._events_proxy, record.fingerprint)
        else:
            progress = _ThreadProgress(loop, record)
        try:
            outcome, engine_stats = await self._execute(
                loop, record.job, progress
            )
        except Exception as exc:  # pool broke mid-job: degrade, don't die
            outcome, engine_stats = await self._execute_fallback(
                loop, record, progress, exc
            )
        self._in_flight -= 1
        self.stats.simulations += engine_stats.simulations
        self.stats.disk_hits += engine_stats.disk_hits
        if outcome.ok:
            self.stats.completed += 1
            record.finish(
                "done", outcome.source, outcome.wall_s, result=outcome.result
            )
            self._settle_attachments(record)
            if outcome.source == "run":
                await self._maybe_evict(loop)
        else:
            self.stats.failed += 1
            record.finish(
                "error", outcome.source, outcome.wall_s, error=outcome.error
            )
        async with self._cond:
            self._cond.notify_all()

    async def _execute(self, loop, job: SimJob, progress):
        return await loop.run_in_executor(
            self._executor,
            _run_job,
            job,
            self.config.cache_dir,
            self.config.use_cache,
            self.config.kernel,
            self.config.progress_epoch,
            self.config.ledger,
            progress,
        )

    async def _execute_fallback(self, loop, record: JobRecord, progress, exc):
        """Process pool died: demote to thread execution for good."""
        if self._execution != "process":
            outcome = JobOutcome(record.job, error=repr(exc), source="run")
            return outcome, EngineStats()
        self._teardown_process_plumbing()
        try:
            self._executor.shutdown(wait=False)
        except Exception:
            pass
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="simservice-worker",
        )
        self._execution = "thread"
        progress = _ThreadProgress(loop, record)
        try:
            return await self._execute(loop, record.job, progress)
        except Exception as exc2:
            outcome = JobOutcome(record.job, error=repr(exc2), source="run")
            return outcome, EngineStats()

    def _route_event(self, event: dict) -> None:
        """Process-mode path: deliver a tagged worker event to its record."""
        fingerprint = event.get("fingerprint")
        if not fingerprint:
            return
        record = self.records.get(fingerprint)
        if record is not None and not record.is_terminal:
            record.publish(event)

    # -- ledger / eviction ---------------------------------------------------
    def _settle_attachments(self, record: JobRecord) -> None:
        """Ledger the coalesced riders of a finished record.

        The engine already appended the ``run``/``disk`` entry for the one
        execution; each submission that attached while it was in flight gets
        its own entry with ``source="coalesced"`` - that is the observable
        proof (``repro runs --source coalesced``) that N requests cost one
        simulation.
        """
        if record.attached <= 0:
            return
        for _ in range(record.attached):
            self._append_attach_ledger(record, "coalesced")
        record.attached = 0

    def _append_attach_ledger(self, record: JobRecord, source: str) -> None:
        if self._ledger is None or record.result is None:
            return
        outcome = JobOutcome(
            record.job, result=record.result, source=source, wall_s=0.0
        )
        try:
            self._ledger.append(LedgerEntry.from_outcome(outcome, SCHEMA_VERSION))
        except Exception:
            pass  # history is best-effort; never fail a request over it

    async def _maybe_evict(self, loop) -> None:
        if not self.config.eviction.enabled or self.config.cache_dir is None:
            return
        report = await loop.run_in_executor(
            self._executor,
            evict_result_cache,
            self.config.cache_dir,
            self.config.eviction,
        )
        self.last_eviction = report
        self.stats.eviction_sweeps += 1
        self.stats.evicted_entries += report.evicted

    def evict_now(self) -> EvictionReport:
        """Synchronous manual sweep (``POST /admin/evict``)."""
        if self.config.cache_dir is None:
            return EvictionReport(policy=self.config.eviction.describe())
        report = evict_result_cache(self.config.cache_dir, self.config.eviction)
        self.last_eviction = report
        self.stats.eviction_sweeps += 1
        self.stats.evicted_entries += report.evicted
        return report

    # -- shutdown ------------------------------------------------------------
    async def shutdown(self, drain: bool = True) -> None:
        """Stop the service. ``drain=True`` finishes queued + in-flight jobs
        first; ``drain=False`` cancels the queue (in-flight jobs still run to
        completion - a simulation cannot be preempted mid-epoch). Idempotent.
        By return, every ledger entry for completed work is on disk.
        """
        if self._cond is None or self._stopped.is_set():
            self._stopped.set()
            return
        self._closing = True
        async with self._cond:
            if not drain:
                while self._pending:
                    record = self._pending.popleft()
                    self.stats.cancelled += 1
                    record.finish(
                        "cancelled", None, 0.0,
                        error="cancelled: service shutting down",
                    )
            self._cond.notify_all()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self._executor.shutdown(wait=True)
            )
        self._teardown_process_plumbing()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()


class _ThreadProgress:
    """Thread-mode progress bridge: worker thread -> event-loop publish."""

    def __init__(self, loop, record: JobRecord) -> None:
        self._loop = loop
        self._record = record

    def __call__(self, event: dict) -> None:
        tagged = dict(event)
        tagged["fingerprint"] = self._record.fingerprint
        try:
            self._loop.call_soon_threadsafe(self._record.publish, tagged)
        except RuntimeError:
            pass  # loop already closed during shutdown

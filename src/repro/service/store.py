"""TTL/LRU eviction for the content-addressed result store.

The experiment engine's :class:`~repro.harness.engine.ResultCache` grows
without bound: every simulated job leaves one ``<fp[:2]>/<fp>.json`` entry
under the cache root forever. That is fine for a workstation sweep; a
long-lived job service serving many tenants needs a policy. This module
implements one, as plain filesystem maintenance so it composes with every
existing cache consumer:

* **TTL** - entries whose mtime is older than ``ttl_s`` are dropped.
* **LRU** - if more than ``max_entries`` remain, the least recently *used*
  are dropped (``ResultCache.get`` touches an entry's mtime on every hit,
  so mtime ranks by use, not by write).

Eviction never touches ``ledger.jsonl`` (the run history is append-only and
deliberately outside the eviction domain - see docs/SERVICE.md), and an
evicted entry is never an error anywhere else: the cache contract already
treats a missing file as a miss, so the worst case is one re-simulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class CacheEvictionPolicy:
    """What to keep in the result store.

    ``max_entries``/``ttl_s`` of ``None`` disable that dimension; the
    all-``None`` default is the historical keep-everything behaviour.
    """

    max_entries: Optional[int] = None
    ttl_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        if self.ttl_s is not None and self.ttl_s < 0:
            raise ValueError("ttl_s must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.max_entries is not None or self.ttl_s is not None

    def describe(self) -> dict:
        return {"max_entries": self.max_entries, "ttl_s": self.ttl_s}


@dataclass
class EvictionReport:
    """What one eviction sweep did (shown by ``GET /stats`` and tests)."""

    scanned: int = 0
    evicted_ttl: int = 0
    evicted_lru: int = 0
    bytes_freed: int = 0
    errors: int = 0
    kept: int = 0
    policy: dict = field(default_factory=dict)

    @property
    def evicted(self) -> int:
        return self.evicted_ttl + self.evicted_lru

    def as_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "evicted": self.evicted,
            "evicted_ttl": self.evicted_ttl,
            "evicted_lru": self.evicted_lru,
            "kept": self.kept,
            "bytes_freed": self.bytes_freed,
            "errors": self.errors,
            "policy": dict(self.policy),
        }


def _scan(root: Path) -> List[Tuple[float, int, Path]]:
    """(mtime, size, path) for every cache entry; unreadable ones skipped."""
    entries = []
    for path in root.glob("*/*.json"):
        try:
            st = path.stat()
        except OSError:
            continue
        entries.append((st.st_mtime, st.st_size, path))
    return entries


def evict_result_cache(
    root: Union[str, Path],
    policy: CacheEvictionPolicy,
    now: Optional[float] = None,
) -> EvictionReport:
    """Apply ``policy`` to the result store under ``root``; returns a report.

    TTL first (age is absolute), then LRU over the survivors. Removal is
    best-effort: an entry that vanishes or resists deletion mid-sweep is
    counted under ``errors`` and otherwise ignored - the next sweep sees
    whatever is left. Empty shard subdirectories are pruned afterwards so
    the tree does not accumulate husks.
    """
    root = Path(root)
    report = EvictionReport(policy=policy.describe())
    if not policy.enabled or not root.exists():
        return report
    now = time.time() if now is None else now
    entries = _scan(root)
    report.scanned = len(entries)

    survivors: List[Tuple[float, int, Path]] = []
    if policy.ttl_s is not None:
        for mtime, size, path in entries:
            if now - mtime > policy.ttl_s:
                if _remove(path):
                    report.evicted_ttl += 1
                    report.bytes_freed += size
                else:
                    report.errors += 1
            else:
                survivors.append((mtime, size, path))
    else:
        survivors = entries

    if policy.max_entries is not None and len(survivors) > policy.max_entries:
        # Oldest mtime = least recently used (reads touch mtime).
        survivors.sort(key=lambda e: e[0])
        excess = len(survivors) - policy.max_entries
        for mtime, size, path in survivors[:excess]:
            if _remove(path):
                report.evicted_lru += 1
                report.bytes_freed += size
            else:
                report.errors += 1
        survivors = survivors[excess:]

    report.kept = len(survivors)
    if report.evicted:
        _prune_empty_shards(root)
    return report


def _remove(path: Path) -> bool:
    try:
        path.unlink()
        return True
    except OSError:
        return False


def _prune_empty_shards(root: Path) -> None:
    for sub in root.iterdir() if root.exists() else ():
        if not sub.is_dir():
            continue
        try:
            next(sub.iterdir())
        except StopIteration:
            try:
                sub.rmdir()
            except OSError:
                pass
        except OSError:
            pass

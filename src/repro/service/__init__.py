"""Simulation-as-a-service: a long-lived async job server over the engine.

Many concurrent sweep clients, one warm content-addressed cache,
backpressure instead of fork-bombs. :class:`SimService` is the asyncio
core (queue, coalescing, workers, eviction, drain);
:class:`SimServiceServer` is its stdlib HTTP front end; the matching
client lives in :mod:`repro.harness.client`. Operator documentation:
docs/SERVICE.md.
"""

from .http import SimServiceServer, parse_job_payload, serve_forever
from .service import (
    EXECUTION_MODES,
    JobRecord,
    ServiceConfig,
    ServiceStats,
    SimService,
)
from .store import CacheEvictionPolicy, EvictionReport, evict_result_cache

__all__ = [
    "CacheEvictionPolicy",
    "EvictionReport",
    "EXECUTION_MODES",
    "JobRecord",
    "ServiceConfig",
    "ServiceStats",
    "SimService",
    "SimServiceServer",
    "evict_result_cache",
    "parse_job_payload",
    "serve_forever",
]

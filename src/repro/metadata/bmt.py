"""Bonsai Merkle Trees (paper Section II-A3, Figure 2).

Two views of the same structure:

* :class:`BonsaiMerkleTree` - the functional tree. Real SHA-256 hashing over
  leaf payloads (counter sectors), sparse node storage with per-level
  defaults so untouched memory verifies cheaply, and an on-chip root. Used
  by the functional security layer to actually detect replay.
* :class:`BMTGeometry` - the arithmetic-only view the timing simulator
  needs: depth, per-level node counts, and the leaf-to-root path of node
  coordinates, which the BMT cache is keyed on.

Both are arity-``k`` (default 8: a 64 B node holds eight 64-bit child MACs).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ConfigError, FreshnessError


@dataclass(frozen=True)
class BMTGeometry:
    """Shape of a Bonsai Merkle tree over ``num_leaves`` counter units.

    Level 0 is the leaves' parents are at level 1, and so on up to
    ``depth``, where a single root node lives (kept on-chip, so it is never
    fetched from memory).
    """

    num_leaves: int
    arity: int = 8
    #: Number of levels above the leaves (root level index). Derived in
    #: ``__post_init__`` (excluded from eq/hash/repr), as are the per-level
    #: node counts and ordinal offsets - the verification walk consults all
    #: three for every fetched node, so they are computed once.
    depth: int = field(init=False, repr=False, compare=False, default=0)
    _nodes_at: Tuple[int, ...] = field(
        init=False, repr=False, compare=False, default=()
    )
    _ordinal_offsets: Tuple[int, ...] = field(
        init=False, repr=False, compare=False, default=()
    )
    _path_cache: dict = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _step_cache: dict = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _table_cache: dict = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.num_leaves <= 0:
            raise ConfigError("num_leaves must be positive")
        if self.arity < 2:
            raise ConfigError("arity must be at least 2")
        if self.num_leaves == 1:
            depth = 1
        else:
            depth = max(1, math.ceil(math.log(self.num_leaves, self.arity)))
        fill = object.__setattr__
        fill(self, "depth", depth)
        nodes_at = tuple(
            max(1, math.ceil(self.num_leaves / (self.arity ** lv)))
            for lv in range(depth + 1)
        )
        fill(self, "_nodes_at", nodes_at)
        offsets = [0, 0]  # levels 0 (leaves, unused) and 1 start at 0
        for lv in range(1, depth):
            offsets.append(offsets[-1] + nodes_at[lv])
        fill(self, "_ordinal_offsets", tuple(offsets))

    def nodes_at_level(self, level: int) -> int:
        """How many nodes exist at ``level`` (level 0 = leaves)."""
        if not 0 <= level <= self.depth:
            raise ConfigError(f"level {level} outside tree of depth {self.depth}")
        return self._nodes_at[level]

    def parent(self, level: int, index: int) -> Tuple[int, int]:
        """Coordinates of the parent of node (level, index)."""
        return level + 1, index // self.arity

    def path(self, leaf_index: int) -> List[Tuple[int, int]]:
        """Internal nodes from the leaf's parent up to (excl.) the root.

        These are the nodes a verification walk reads from memory; the walk
        stops early at the first node found in the BMT cache. The root is
        excluded - it lives in an on-chip register and never generates
        memory traffic. Paths are memoized per leaf (callers only iterate
        the result).
        """
        cached = self._path_cache.get(leaf_index)
        if cached is not None:
            return cached
        if not 0 <= leaf_index < self.num_leaves:
            raise ConfigError(
                f"leaf {leaf_index} outside tree of {self.num_leaves} leaves"
            )
        nodes: List[Tuple[int, int]] = []
        level, index = 0, leaf_index
        while level < self.depth - 1:
            level, index = self.parent(level, index)
            nodes.append((level, index))
        self._path_cache[leaf_index] = nodes
        return nodes

    @property
    def total_internal_nodes(self) -> int:
        return sum(self.nodes_at_level(lv) for lv in range(1, self.depth + 1))

    def node_ordinal(self, level: int, index: int) -> int:
        """Flatten (level, index) into a single node number.

        Internal nodes of all levels share one linear address space (level 1
        first), which is how the timing layer addresses Merkle nodes in the
        metadata region and keys the BMT cache.
        """
        if not 1 <= level <= self.depth:
            raise ConfigError(f"level {level} outside internal levels 1..{self.depth}")
        if not 0 <= index < self._nodes_at[level]:
            raise ConfigError(f"index {index} outside level {level}")
        return self._ordinal_offsets[level] + index

    def path_steps(self, leaf_index: int) -> Tuple[Tuple[int, int], ...]:
        """The walk of :meth:`path` as precomputed BMT-cache coordinates.

        Each step is ``(line, slot)`` for one internal node: a 64 B node
        occupies half a 128 B cache line, so node ``n`` lives in line
        ``n // 2`` at sector slot ``(n % 2) * 2``. Memoized per leaf - the
        verification walk does zero ordinal arithmetic on a warm path.
        """
        cached = self._step_cache.get(leaf_index)
        if cached is not None:
            return cached
        steps = tuple(
            (node // 2, (node % 2) * 2)
            for node in (
                self.node_ordinal(level, index)
                for level, index in self.path(leaf_index)
            )
        )
        self._step_cache[leaf_index] = steps
        return steps

    def node_ordinals(self, levels, indices):
        """Vectorized :meth:`node_ordinal` over parallel int arrays."""
        from ..kernel import require_numpy

        np = require_numpy()
        levels = np.asarray(levels, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if levels.size:
            if int(levels.min()) < 1 or int(levels.max()) > self.depth:
                raise ConfigError(
                    f"levels outside internal levels 1..{self.depth}"
                )
            nodes_at = np.asarray(self._nodes_at, dtype=np.int64)[levels]
            if int(indices.min()) < 0 or bool((indices >= nodes_at).any()):
                raise ConfigError("index outside its level")
        offsets = np.asarray(self._ordinal_offsets, dtype=np.int64)
        return offsets[levels] + indices

    def path_table(self):
        """All leaves' walk ordinals as one ``(num_leaves, depth-1)`` table.

        Row ``L`` holds the node ordinals :meth:`path` visits for leaf
        ``L``, bottom level first - every walk has exactly ``depth - 1``
        internal nodes, so the table is dense. Built once per geometry with
        pure shift/divide array ops; requires numpy.
        """
        table = self._table_cache.get("path")
        if table is None:
            from ..kernel import require_numpy

            np = require_numpy()
            width = max(0, self.depth - 1)
            table = np.empty((self.num_leaves, width), dtype=np.int64)
            index = np.arange(self.num_leaves, dtype=np.int64)
            for lv in range(1, self.depth):
                index = index // self.arity
                table[:, lv - 1] = self._ordinal_offsets[lv] + index
            self._table_cache["path"] = table
        return table


class BonsaiMerkleTree:
    """Functional hash tree over counter-sector payloads.

    The tree is sparse: absent leaves take a default payload (all-zero
    counters) and absent internal nodes take per-level default hashes, so a
    terabyte-scale protected region costs memory only where it was touched.
    The root lives in this object - the model's trusted on-chip register.
    """

    HASH_BYTES = 16  # truncated SHA-256; 128-bit nodes as in BMT-style trees

    def __init__(
        self,
        geometry: BMTGeometry,
        default_leaf: bytes = b"\x00" * 32,
        tracer=None,
    ) -> None:
        from ..sim.trace import resolve_tracer

        self.geometry = geometry
        self.tracer = resolve_tracer(tracer)
        self.verifies = 0
        self.updates = 0
        self._default_leaf_hash = self._hash(default_leaf)
        self._levels: List[Dict[int, bytes]] = [
            {} for _ in range(geometry.depth + 1)
        ]
        self._level_defaults = self._compute_level_defaults()
        self._root = self._compute_node(self.geometry.depth, 0)

    # -- hashing ----------------------------------------------------------------
    @classmethod
    def _hash(cls, payload: bytes) -> bytes:
        return hashlib.sha256(payload).digest()[: cls.HASH_BYTES]

    def _compute_level_defaults(self) -> List[bytes]:
        """Default node hash for each level, assuming all-default children."""
        defaults = [self._default_leaf_hash]
        for _ in range(self.geometry.depth):
            children = defaults[-1] * self.geometry.arity
            defaults.append(self._hash(children))
        return defaults

    def _node_hash(self, level: int, index: int) -> bytes:
        stored = self._levels[level].get(index)
        if stored is not None:
            return stored
        return self._level_defaults[level]

    def _compute_node(self, level: int, index: int) -> bytes:
        children = b"".join(
            self._node_hash(level - 1, index * self.geometry.arity + c)
            for c in range(self.geometry.arity)
        )
        return self._hash(children)

    # -- public interface ---------------------------------------------------------
    @property
    def root(self) -> bytes:
        """The on-chip root hash."""
        return self._root

    def update(self, leaf_index: int, leaf_payload: bytes) -> None:
        """Install a new leaf payload and rehash its path to the root.

        The update is read-verify-modify-write, as in real BMT controllers:
        before any stored sibling is *used* to recompute an ancestor, the
        stored state along the updated path must still be internally
        consistent and anchored to the on-chip root. Without this, an
        attacker could plant a stale sibling and have a legitimate update
        launder it into the new root.
        """
        level, index = 0, leaf_index
        while level < self.geometry.depth:
            level, index = self.geometry.parent(level, index)
            if self._compute_node(level, index) != self._node_hash(level, index):
                raise FreshnessError(
                    f"stored Merkle node ({level}, {index}) inconsistent with "
                    "its children; refusing to fold tampered state into an "
                    "update"
                )
        if self._node_hash(self.geometry.depth, 0) != self._root:
            raise FreshnessError(
                "stored Merkle root no longer matches the on-chip root; "
                "refusing to fold tampered nodes into an update"
            )
        self._levels[0][leaf_index] = self._hash(leaf_payload)
        level, index = 0, leaf_index
        while level < self.geometry.depth:
            level, index = self.geometry.parent(level, index)
            self._levels[level][index] = self._compute_node(level, index)
        self._root = self._levels[self.geometry.depth][0]
        self.updates += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "bmt-functional", "update", self.updates, cat="functional",
                args={"leaf": leaf_index},
            )

    def verify(self, leaf_index: int, leaf_payload: bytes) -> bool:
        """Check a leaf against the on-chip root.

        Walks the stored tree (the attacker-writable memory image) and
        compares the recomputed root with the trusted register; any replayed
        leaf or interior node makes the comparison fail.
        """
        self.verifies += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "bmt-functional", "verify", self.verifies, cat="functional",
                args={"leaf": leaf_index},
            )
        if self._hash(leaf_payload) != self._node_hash(0, leaf_index):
            return False
        level, index = 0, leaf_index
        while level < self.geometry.depth:
            level, index = self.geometry.parent(level, index)
            if self._compute_node(level, index) != self._node_hash(level, index):
                return False
        return self._node_hash(self.geometry.depth, 0) == self._root

    def verify_or_raise(self, leaf_index: int, leaf_payload: bytes) -> None:
        if not self.verify(leaf_index, leaf_payload):
            raise FreshnessError(
                f"Merkle verification failed for leaf {leaf_index}: stale or "
                "tampered counters"
            )

    # -- attack surface for tests --------------------------------------------------
    def tamper_node(self, level: int, index: int, payload: bytes) -> None:
        """Overwrite a stored node as a physical attacker could (test hook)."""
        self._levels[level][index] = self._hash(payload)

    def raw_leaf_hash(self, leaf_index: int) -> bytes:
        return self._node_hash(0, leaf_index)

    def restore_leaf_hash(self, leaf_index: int, old_hash: bytes) -> None:
        """Replay an old leaf hash (test hook for replay attacks)."""
        self._levels[0][leaf_index] = old_hash

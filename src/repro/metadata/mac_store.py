"""MAC sectors with the embedded-major slot (paper Figure 5).

A MAC sector is 32 bytes and holds the MACs of one 128 B data block: four
56-bit sector MACs (4 x 56 = 224 bits), leaving exactly 32 spare bits. Salus
uses that slack to embed the collapsed major counter of the owning chunk at
transfer time, which is what removes all counter traffic from the link.

:class:`MacSector` does exact bit-level packing (so the layout claim is
checked by construction, not by comment), and :class:`MacStore` is a simple
keyed container for a memory side's MAC region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError

MAC_SECTOR_BYTES = 32
MACS_PER_SECTOR = 4
MAC_BITS = 56
EMBED_BITS = 32


@dataclass
class MacSector:
    """Four 56-bit sector MACs plus the 32-bit embedded-major slot."""

    macs: List[int] = field(default_factory=lambda: [0] * MACS_PER_SECTOR)
    embedded_major: int = 0

    def __post_init__(self) -> None:
        if len(self.macs) != MACS_PER_SECTOR:
            raise ConfigError(f"MAC sector holds exactly {MACS_PER_SECTOR} MACs")
        for mac in self.macs:
            if not 0 <= mac < (1 << MAC_BITS):
                raise ConfigError(f"MAC value {mac:#x} exceeds {MAC_BITS} bits")
        if not 0 <= self.embedded_major < (1 << EMBED_BITS):
            raise ConfigError("embedded major exceeds its 32-bit slot")

    def pack(self) -> bytes:
        """Serialize to exactly 32 bytes: 4 x 56-bit MACs then 32-bit major."""
        value = 0
        for mac in self.macs:
            value = (value << MAC_BITS) | mac
        value = (value << EMBED_BITS) | self.embedded_major
        return value.to_bytes(MAC_SECTOR_BYTES, "big")

    @classmethod
    def unpack(cls, raw: bytes) -> "MacSector":
        if len(raw) != MAC_SECTOR_BYTES:
            raise ConfigError(f"MAC sector must be {MAC_SECTOR_BYTES} bytes")
        value = int.from_bytes(raw, "big")
        embedded = value & ((1 << EMBED_BITS) - 1)
        value >>= EMBED_BITS
        macs = []
        for _ in range(MACS_PER_SECTOR):
            macs.append(value & ((1 << MAC_BITS) - 1))
            value >>= MAC_BITS
        macs.reverse()
        return cls(macs=macs, embedded_major=embedded)


class MacStore:
    """MAC region of one memory side, keyed by data-block index."""

    def __init__(self) -> None:
        self._sectors: Dict[int, MacSector] = {}

    def get(self, block_index: int) -> MacSector:
        sector = self._sectors.get(block_index)
        if sector is None:
            sector = MacSector()
            self._sectors[block_index] = sector
        return sector

    def peek(self, block_index: int) -> Optional[MacSector]:
        return self._sectors.get(block_index)

    def put(self, block_index: int, sector: MacSector) -> None:
        self._sectors[block_index] = sector

    def set_mac(self, block_index: int, sector_in_block: int, mac: int) -> None:
        self.get(block_index).macs[sector_in_block] = mac

    def get_mac(self, block_index: int, sector_in_block: int) -> int:
        return self.get(block_index).macs[sector_in_block]

    def items(self) -> Tuple[Tuple[int, MacSector], ...]:
        return tuple(self._sectors.items())

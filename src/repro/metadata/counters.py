"""Encryption-counter organizations (paper Sections II-A1, IV-A1, IV-A2).

Four organizations are implemented, each with real integer values, exact
field widths and exact overflow semantics, because both the functional layer
(actual encryption) and the timing layer (re-encryption traffic on minor
overflows and major unification) depend on them:

* :class:`MonolithicCounterStore` - SGX-style 56-bit counter per sector.
* :class:`ConventionalSplitCounterStore` - the baseline/PSSM organization:
  one 32-bit major shared by 32 seven-bit minors, covering 8 consecutive
  data blocks (1 KiB). The 1 KiB span exceeds the 256 B interleaving chunk,
  which is exactly the unification problem Section IV-A motivates.
* :class:`InterleavingFriendlySplitCounters` via
  :class:`InterleavingFriendlyCounterStore` - the Salus device-side design:
  one major per 256 B chunk (8 minors), two tagged groups per 32 B counter
  sector (Figure 4).
* :class:`CollapsedCounterStore` - the Salus CXL-side design (Figures 5/6):
  per-chunk counters collapsed to a single value, stored split as a page
  major plus doubled-width (14-bit) per-chunk minors, one 32 B sector per
  4 KiB page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CounterOverflowError


@dataclass(frozen=True)
class CounterPair:
    """The (major, minor) pair that forms the temporal half of an IV."""

    major: int
    minor: int


@dataclass(frozen=True)
class IncrementResult:
    """Outcome of a counter increment.

    When a minor overflows, the covering major is bumped, every minor under
    it resets, and every sibling data unit in ``reencrypt_units`` must be
    re-encrypted under the new major - the traffic the timing layer charges.
    """

    pair: CounterPair
    overflowed: bool = False
    reencrypt_units: Tuple[int, ...] = ()


def _check_width(value: int, bits: int, what: str) -> None:
    if value >= (1 << bits):
        raise CounterOverflowError(
            f"{what} exceeded its {bits}-bit field ({value}); "
            "re-keying would be required"
        )


class MonolithicCounterStore:
    """One wide counter per sector (Intel-SGX style, 56 bits)."""

    def __init__(self, counter_bits: int = 56) -> None:
        self.counter_bits = counter_bits
        self._counters: Dict[int, int] = {}

    def read(self, sector: int) -> CounterPair:
        return CounterPair(major=self._counters.get(sector, 0), minor=0)

    def increment(self, sector: int) -> IncrementResult:
        value = self._counters.get(sector, 0) + 1
        _check_width(value, self.counter_bits, f"monolithic counter[{sector}]")
        self._counters[sector] = value
        return IncrementResult(pair=CounterPair(major=value, minor=0))


@dataclass
class _SplitGroup:
    major: int = 0
    minors: List[int] = field(default_factory=list)


class ConventionalSplitCounterStore:
    """Baseline split counters: 32-bit major + 32 x 7-bit minors per sector.

    One counter sector covers ``minors_per_major`` consecutive data sectors
    of a single memory's local address space; indices are local sector
    numbers. This is the organization whose majors end up shared by chunks
    of *different* CXL pages once pages interleave into device memory.
    """

    def __init__(
        self,
        minors_per_major: int = 32,
        minor_bits: int = 7,
        major_bits: int = 32,
    ) -> None:
        self.minors_per_major = minors_per_major
        self.minor_bits = minor_bits
        self.major_bits = major_bits
        self._groups: Dict[int, _SplitGroup] = {}

    def _group(self, sector: int) -> Tuple[_SplitGroup, int]:
        gidx, within = divmod(sector, self.minors_per_major)
        group = self._groups.get(gidx)
        if group is None:
            group = _SplitGroup(minors=[0] * self.minors_per_major)
            self._groups[gidx] = group
        return group, within

    def group_index(self, sector: int) -> int:
        """Which counter sector (group) covers a local data sector."""
        return sector // self.minors_per_major

    def group_indices(self, sectors):
        """Vectorized :meth:`group_index` over an int array of sectors.

        Pure address arithmetic - the batch face of the counter-unit lookup
        the baseline model issues per access. Requires numpy.
        """
        from ..kernel import require_numpy

        np = require_numpy()
        return np.asarray(sectors, dtype=np.int64) // self.minors_per_major

    def read(self, sector: int) -> CounterPair:
        group, within = self._group(sector)
        return CounterPair(major=group.major, minor=group.minors[within])

    def read_major(self, sector: int) -> int:
        group, _ = self._group(sector)
        return group.major

    def increment(self, sector: int) -> IncrementResult:
        group, within = self._group(sector)
        new_minor = group.minors[within] + 1
        if new_minor < (1 << self.minor_bits):
            group.minors[within] = new_minor
            return IncrementResult(pair=CounterPair(group.major, new_minor))
        # Minor overflow: bump the shared major, reset all minors, and force
        # re-encryption of every sector this major covers. The written
        # sector lands at minor 1 (its siblings re-encrypt at minor 0), so
        # the write is still distinguishable from the reset state and no
        # one-time pad repeats.
        group.major += 1
        _check_width(group.major, self.major_bits, "conventional major")
        group.minors = [0] * self.minors_per_major
        group.minors[within] = 1
        base = self.group_index(sector) * self.minors_per_major
        siblings = tuple(range(base, base + self.minors_per_major))
        return IncrementResult(
            pair=CounterPair(group.major, 1),
            overflowed=True,
            reencrypt_units=siblings,
        )

    def increment_span(self, base: int, count: int) -> List[IncrementResult]:
        """Increment ``count`` consecutive sectors starting at ``base``.

        Semantically identical to calling :meth:`increment` once per sector
        in ascending order, but the common no-overflow case skips the
        per-sector group lookup and result-object allocation - this is the
        bulk path page fills and evictions hammer. Only the overflow results
        are returned (in sector order); non-overflow pairs are not
        materialized because bulk callers never read them.
        """
        overflows: List[IncrementResult] = []
        limit = 1 << self.minor_bits
        end = base + count
        sector = base
        while sector < end:
            group, within = self._group(sector)
            run = min(end - sector, self.minors_per_major - within)
            for i in range(run):
                # Re-read minors each iteration: an overflow replaces the list.
                minors = group.minors
                slot = within + i
                new_minor = minors[slot] + 1
                if new_minor < limit:
                    minors[slot] = new_minor
                else:
                    overflows.append(self.increment(sector + i))
            sector += run
        return overflows

    def set_major(self, sector: int, major: int) -> Tuple[int, ...]:
        """Force the covering major to ``major`` (migration install path).

        Returns the sibling sectors that must be re-encrypted if the major
        actually changed and any of them held live data - the caller decides
        which are live. Minors reset either way, matching hardware.

        Installs are monotonic: moving a major *backwards* would make the
        store re-issue (major, minor) pairs it already consumed, i.e. reuse
        one-time pads - a hard security violation, so it raises instead.
        """
        group, _ = self._group(sector)
        if major < group.major:
            raise CounterOverflowError(
                f"conventional major for sector {sector} cannot move backwards "
                f"({group.major} -> {major}): a smaller major would reuse "
                "one-time pads"
            )
        if group.major == major:
            return ()
        group.major = major
        _check_width(group.major, self.major_bits, "conventional major")
        group.minors = [0] * self.minors_per_major
        base = self.group_index(sector) * self.minors_per_major
        return tuple(range(base, base + self.minors_per_major))


@dataclass
class _ChunkGroup:
    """One Figure-4 counter group: a chunk's major, minors and CXL tag."""

    major: int = 0
    minors: List[int] = field(default_factory=list)
    cxl_page: Optional[int] = None


class InterleavingFriendlyCounterStore:
    """Salus device-side counters: one tagged group per 256 B chunk.

    Keyed by *device chunk id* (channel-local or global - the store does not
    care, the caller picks one consistently). Each group is installed when
    its chunk's metadata first lands in device memory, carrying the chunk
    epoch fetched from the CXL side as its major.
    """

    def __init__(self, sectors_per_chunk: int = 8, minor_bits: int = 7,
                 major_bits: int = 32) -> None:
        self.sectors_per_chunk = sectors_per_chunk
        self.minor_bits = minor_bits
        self.major_bits = major_bits
        self._groups: Dict[int, _ChunkGroup] = {}

    def install(self, device_chunk: int, epoch: int, cxl_page: int) -> None:
        """Fill a group from CXL metadata: major=epoch, minors reset."""
        _check_width(epoch, self.major_bits, "installed chunk epoch")
        self._groups[device_chunk] = _ChunkGroup(
            major=epoch, minors=[0] * self.sectors_per_chunk, cxl_page=cxl_page
        )

    def is_installed_for(self, device_chunk: int, cxl_page: int) -> bool:
        """The Figure-7 tag check: does this group belong to ``cxl_page``?"""
        group = self._groups.get(device_chunk)
        return group is not None and group.cxl_page == cxl_page

    def evict(self, device_chunk: int) -> None:
        """Drop a group when its page leaves device memory."""
        self._groups.pop(device_chunk, None)

    def read(self, device_chunk: int, sector_in_chunk: int) -> CounterPair:
        group = self._require(device_chunk)
        return CounterPair(group.major, group.minors[sector_in_chunk])

    def increment(self, device_chunk: int, sector_in_chunk: int) -> IncrementResult:
        group = self._require(device_chunk)
        new_minor = group.minors[sector_in_chunk] + 1
        if new_minor < (1 << self.minor_bits):
            group.minors[sector_in_chunk] = new_minor
            return IncrementResult(pair=CounterPair(group.major, new_minor))
        # Overflow stays chunk-local: only this chunk's 8 sectors re-encrypt,
        # never neighbours from other pages - the point of Figure 4. The
        # written sector lands at minor 1 so the chunk still registers as
        # written (collapse predicate) and its pad differs from the reset
        # siblings' (major, 0).
        group.major += 1
        _check_width(group.major, self.major_bits, "chunk major")
        group.minors = [0] * self.sectors_per_chunk
        group.minors[sector_in_chunk] = 1
        return IncrementResult(
            pair=CounterPair(group.major, 1),
            overflowed=True,
            reencrypt_units=tuple(range(self.sectors_per_chunk)),
        )

    def any_minor_nonzero(self, device_chunk: int) -> bool:
        """Collapse predicate (Section IV-A2): was the chunk written?"""
        group = self._groups.get(device_chunk)
        return group is not None and any(group.minors)

    def _require(self, device_chunk: int) -> _ChunkGroup:
        group = self._groups.get(device_chunk)
        if group is None:
            raise KeyError(
                f"counter group for device chunk {device_chunk} not installed"
            )
        return group


@dataclass
class _PageCounters:
    major: int = 0
    minors: List[int] = field(default_factory=list)


class CollapsedCounterStore:
    """Salus CXL-side collapsed counters (Figures 5 and 6).

    Per page: a 32-bit major plus one doubled-width (14-bit) minor per chunk.
    A chunk's *epoch* - the single value embedded in MAC sectors at transfer
    and used as the device-side group major - is ``(major << minor_bits) |
    minor``, a strictly increasing integer.
    """

    def __init__(
        self,
        chunks_per_page: int = 16,
        minor_bits: int = 14,
        major_bits: int = 32,
    ) -> None:
        self.chunks_per_page = chunks_per_page
        self.minor_bits = minor_bits
        self.major_bits = major_bits
        self._pages: Dict[int, _PageCounters] = {}

    def _page(self, page: int) -> _PageCounters:
        state = self._pages.get(page)
        if state is None:
            state = _PageCounters(minors=[0] * self.chunks_per_page)
            self._pages[page] = state
        return state

    def chunk_epoch(self, page: int, chunk_in_page: int) -> int:
        state = self._page(page)
        return (state.major << self.minor_bits) | state.minors[chunk_in_page]

    def chunk_epochs(self, pages, chunks_in_page):
        """Batch :meth:`chunk_epoch` over parallel page/chunk arrays.

        Returns an int64 numpy array of epochs; untouched pages read as
        epoch 0 without materializing state (the sparse store stays
        sparse). Requires numpy.
        """
        from ..kernel import require_numpy

        np = require_numpy()
        pages = np.asarray(pages, dtype=np.int64)
        chunks = np.asarray(chunks_in_page, dtype=np.int64)
        out = np.zeros(pages.shape, dtype=np.int64)
        stored = self._pages
        shift = self.minor_bits
        for i, (page, chunk) in enumerate(zip(pages.tolist(), chunks.tolist())):
            state = stored.get(page)
            if state is not None:
                out[i] = (state.major << shift) | state.minors[chunk]
        return out

    def read(self, page: int, chunk_in_page: int) -> CounterPair:
        """The pair used for CXL-resident ciphertext: (epoch, 0)."""
        return CounterPair(major=self.chunk_epoch(page, chunk_in_page), minor=0)

    def collapse(self, page: int, chunk_in_page: int) -> IncrementResult:
        """Advance a chunk's epoch on dirty writeback (major++/minors-reset
        seen from the device side; minor++ in the split CXL encoding)."""
        state = self._page(page)
        new_minor = state.minors[chunk_in_page] + 1
        if new_minor < (1 << self.minor_bits):
            state.minors[chunk_in_page] = new_minor
            return IncrementResult(
                pair=CounterPair((state.major << self.minor_bits) | new_minor, 0)
            )
        # Page-major overflow: every chunk of the page re-encrypts. The
        # doubled minors exist precisely to make this rare.
        state.major += 1
        _check_width(state.major, self.major_bits, "CXL page major")
        state.minors = [0] * self.chunks_per_page
        return IncrementResult(
            pair=CounterPair(state.major << self.minor_bits, 0),
            overflowed=True,
            reencrypt_units=tuple(range(self.chunks_per_page)),
        )

"""Metadata address layout (paper Section II-C, PSSM-style).

Security metadata lives in a reserved region of each protected memory, and
its addresses are pure functions of the data's channel-local address. The
timing simulator needs exactly three functions per organization: which
counter sector, which MAC sector, and which Merkle leaf cover a given data
unit. Those index spaces also key the metadata caches.

Three layouts exist:

* :class:`ConventionalLayout` - baseline on both memory sides: a counter
  sector covers 32 data sectors (1 KiB), a MAC sector covers one 128 B data
  block, the BMT's leaves are the counter sectors.
* :class:`SalusDeviceLayout` - Figure 4: a counter sector holds two chunk
  groups (covers 512 B), MAC sectors unchanged, BMT leaves are the
  device-side counter sectors.
* :class:`SalusCXLLayout` - Figure 6: one collapsed counter sector per page
  (covers 4 KiB), BMT leaves are pages. The 8x coarser leaf space is what
  shrinks the CXL-side tree and its traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..address import Geometry
from .bmt import BMTGeometry


@dataclass(frozen=True)
class ConventionalLayout:
    """Baseline metadata index math over one memory's local sector space."""

    geometry: Geometry
    data_sectors: int  # local data sectors this memory side protects
    sectors_per_counter: int = 32

    def counter_sector(self, local_sector: int) -> int:
        return local_sector // self.sectors_per_counter

    def mac_sector(self, local_sector: int) -> int:
        return local_sector // self.geometry.sectors_per_block

    def bmt_leaf(self, local_sector: int) -> int:
        return self.counter_sector(local_sector)

    @property
    def num_counter_sectors(self) -> int:
        return max(1, -(-self.data_sectors // self.sectors_per_counter))

    def bmt_geometry(self, arity: int = 8) -> BMTGeometry:
        return BMTGeometry(num_leaves=self.num_counter_sectors, arity=arity)


@dataclass(frozen=True)
class SalusDeviceLayout:
    """Salus device-side index math (interleaving-friendly groups)."""

    geometry: Geometry
    data_sectors: int
    chunks_per_counter_sector: int = 2  # two Figure-4 groups per 32 B sector

    def counter_sector(self, local_sector: int) -> int:
        local_chunk = local_sector // self.geometry.sectors_per_chunk
        return local_chunk // self.chunks_per_counter_sector

    def group_in_sector(self, local_sector: int) -> int:
        local_chunk = local_sector // self.geometry.sectors_per_chunk
        return local_chunk % self.chunks_per_counter_sector

    def mac_sector(self, local_sector: int) -> int:
        return local_sector // self.geometry.sectors_per_block

    def bmt_leaf(self, local_sector: int) -> int:
        return self.counter_sector(local_sector)

    @property
    def num_counter_sectors(self) -> int:
        sectors_covered = (
            self.chunks_per_counter_sector * self.geometry.sectors_per_chunk
        )
        return max(1, -(-self.data_sectors // sectors_covered))

    def bmt_geometry(self, arity: int = 8) -> BMTGeometry:
        return BMTGeometry(num_leaves=self.num_counter_sectors, arity=arity)


@dataclass(frozen=True)
class SalusCXLLayout:
    """Salus CXL-side index math (collapsed counters, one sector per page)."""

    geometry: Geometry
    data_sectors: int

    def counter_sector(self, cxl_sector: int) -> int:
        return cxl_sector // self.geometry.sectors_per_page

    def mac_sector(self, cxl_sector: int) -> int:
        return cxl_sector // self.geometry.sectors_per_block

    def bmt_leaf(self, cxl_sector: int) -> int:
        return self.counter_sector(cxl_sector)

    @property
    def num_counter_sectors(self) -> int:
        return max(1, -(-self.data_sectors // self.geometry.sectors_per_page))

    def bmt_geometry(self, arity: int = 8) -> BMTGeometry:
        return BMTGeometry(num_leaves=self.num_counter_sectors, arity=arity)

"""Per-partition metadata caches (paper Table II).

Each memory-partition controller holds three small sectored caches - one for
encryption counters, one for MACs, one for Merkle-tree nodes - plus the MSHR
merge tracking shared with L2. :class:`MetadataCaches` bundles the triple
for one partition so the security models can treat "the partition's
metadata cache state" as a single object.

Cache keys are abstract unit indices (counter-sector number, MAC-sector
number, BMT node coordinates); the caches never see byte addresses, which
keeps one implementation valid for both the device-local and CXL-side
metadata spaces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SecurityConfig
from ..memsys.sectored_cache import SectoredCache


@dataclass
class MetadataCaches:
    """Counter, MAC and BMT caches for one memory partition."""

    counter: SectoredCache
    mac: SectoredCache
    bmt: SectoredCache

    @classmethod
    def build(cls, partition: int, security: SecurityConfig, sector_bytes: int = 32) -> "MetadataCaches":
        line = security.metadata_cache_block_bytes
        ways = security.metadata_cache_ways
        return cls(
            counter=SectoredCache(
                name=f"ctr[{partition}]",
                total_bytes=security.counter_cache_bytes,
                ways=ways,
                line_bytes=line,
                sector_bytes=sector_bytes,
            ),
            mac=SectoredCache(
                name=f"mac[{partition}]",
                total_bytes=security.mac_cache_bytes,
                ways=ways,
                line_bytes=line,
                sector_bytes=sector_bytes,
            ),
            bmt=SectoredCache(
                name=f"bmt[{partition}]",
                total_bytes=security.bmt_cache_bytes,
                ways=ways,
                line_bytes=line,
                sector_bytes=sector_bytes,
            ),
        )

    def probe_units(self, kind: str, units):
        """Batch tag probe: which 32 B metadata units are resident.

        ``kind`` selects the counter/mac/bmt cache; ``units`` is any int
        sequence of abstract unit indices (the same ``unit // 4`` line /
        ``unit % 4`` slot carving ``metadata_access`` uses). Read-only - no
        LRU movement, no tallies - so tooling and the batched kernel can
        inspect cache state mid-run without perturbing it. Returns a numpy
        bool array; requires numpy.
        """
        from ..kernel import require_numpy

        np = require_numpy()
        cache = getattr(self, kind, None)
        if not isinstance(cache, SectoredCache):
            raise KeyError(f"unknown metadata cache kind {kind!r}")
        units = np.asarray(units, dtype=np.int64)
        return cache.probe_batch((units // 4).tolist(), (units % 4).tolist())

    def hit_rates(self) -> dict:
        return {
            "counter": self.counter.hit_rate,
            "mac": self.mac.hit_rate,
            "bmt": self.bmt.hit_rate,
        }

    def as_metrics(self, prefix: str) -> dict:
        """Flat metric-taxonomy leaves for this partition's caches.

        ``{f"{prefix}.{kind}.hits": n, ...}`` for kind in counter/mac/bmt -
        the shape :mod:`repro.sim.metrics` stores on ``RunResult.metrics``.
        The cache *names* (``ctr[3]``, ``mac[3]``, ``bmt[3]``; partition -1
        is the expander-side controller) double as the trace components that
        miss events are tagged with, so a metric line and its timeline track
        are cross-referencable.
        """
        out = {}
        for kind, cache in (
            ("counter", self.counter), ("mac", self.mac), ("bmt", self.bmt)
        ):
            out[f"{prefix}.{kind}.hits"] = cache.hits
            out[f"{prefix}.{kind}.misses"] = cache.misses
        return out

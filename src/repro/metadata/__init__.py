"""Security-metadata substrate.

Implements every counter organization the paper discusses, the MAC-sector
layout with the embedded-major slot, Bonsai Merkle trees (functional hashing
plus a geometric model for the timing layer), the PSSM-style per-partition
metadata address layout, and the sectored metadata caches of Table II.
"""

from .bmt import BMTGeometry, BonsaiMerkleTree
from .counters import (
    CollapsedCounterStore,
    ConventionalSplitCounterStore,
    CounterPair,
    IncrementResult,
    InterleavingFriendlyCounterStore,
    MonolithicCounterStore,
)
from .layout import ConventionalLayout, SalusCXLLayout, SalusDeviceLayout
from .mac_store import MacSector, MacStore
from .cache import MetadataCaches

__all__ = [
    "BMTGeometry",
    "BonsaiMerkleTree",
    "CollapsedCounterStore",
    "ConventionalLayout",
    "ConventionalSplitCounterStore",
    "CounterPair",
    "IncrementResult",
    "InterleavingFriendlyCounterStore",
    "MacSector",
    "MacStore",
    "MetadataCaches",
    "MonolithicCounterStore",
    "SalusCXLLayout",
    "SalusDeviceLayout",
]

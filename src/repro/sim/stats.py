"""Statistics collection for the timing simulator.

Every byte that crosses a memory interface is recorded with a
:class:`TrafficCategory` (what kind of information it is) and a :class:`Side`
(which memory it touched). The paper's figures are all derived from these
tallies:

* Figure 10 (IPC) - cycles and instruction counts;
* Figure 11 (security traffic) - the sum of all non-``DATA`` categories plus
  re-encryption-induced data movement (``REENC_DATA``);
* Figure 12 (bandwidth utilization) - per-side busy-byte ratios.

The registry is deliberately dumb - plain counters - so that the simulator's
hot path stays cheap and the harness can post-process freely.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple


class TrafficCategory(enum.Enum):
    """What a memory transaction carried."""

    DATA = "data"              # demand data (reads, writebacks, migration copies)
    COUNTER = "counter"        # encryption-counter sectors/blocks
    MAC = "mac"                # MAC sectors
    BMT = "bmt"                # Bonsai-Merkle-tree nodes
    MAPPING = "mapping"        # CXL-to-GPU mapping sectors (incl. dirty bitmasks)
    REENC_DATA = "reenc_data"  # data moved only to be re-encrypted

    # Enum's default __hash__ is a Python-level call on the member name;
    # every traffic tally hashes two enums, which shows up in profiles.
    # Identity hashing is safe here: members are singletons compared by
    # identity, dicts iterate in insertion order regardless of hash, and no
    # hash-ordered iteration over these enums exists (the only enum set,
    # _SECURITY_CATEGORIES, is membership-tested only). All serialized /
    # reported orderings sort by .value explicitly.
    __hash__ = object.__hash__

    @property
    def is_security(self) -> bool:
        """True for traffic that exists only because of the security model."""
        return self in _SECURITY_CATEGORIES


_SECURITY_CATEGORIES = frozenset(
    {
        TrafficCategory.COUNTER,
        TrafficCategory.MAC,
        TrafficCategory.BMT,
        TrafficCategory.REENC_DATA,
    }
)


class Side(enum.Enum):
    """Which memory a transaction touched."""

    DEVICE = "device"   # GPU device memory (HBM/GDDR) channels
    CXL = "cxl"         # CXL-attached expansion memory, through the link

    __hash__ = object.__hash__  # identity hash; see TrafficCategory


@dataclass
class StatRegistry:
    """Accumulates traffic bytes, event counters and timing totals."""

    traffic_bytes: Dict[Tuple[Side, TrafficCategory], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    instructions: int = 0
    final_cycle: int = 0

    # -- recording -----------------------------------------------------------
    def add_traffic(self, side: Side, category: TrafficCategory, nbytes: int) -> None:
        """Record ``nbytes`` of ``category`` traffic on ``side``."""
        self.traffic_bytes[(side, category)] += nbytes

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment the named event counter."""
        self.counters[name] += amount

    # -- queries ---------------------------------------------------------------
    def bytes_for(
        self,
        side: Optional[Side] = None,
        category: Optional[TrafficCategory] = None,
    ) -> int:
        """Total bytes, filtered by side and/or category (None = all)."""
        total = 0
        for (s, c), n in self.traffic_bytes.items():
            if side is not None and s is not side:
                continue
            if category is not None and c is not category:
                continue
            total += n
        return total

    def security_bytes(self, side: Optional[Side] = None) -> int:
        """Bytes of traffic that only exist because of the security model."""
        total = 0
        for (s, c), n in self.traffic_bytes.items():
            if side is not None and s is not side:
                continue
            if c.is_security:
                total += n
        return total

    def data_bytes(self, side: Optional[Side] = None) -> int:
        """Bytes of demand/migration data traffic."""
        return self.bytes_for(side=side, category=TrafficCategory.DATA)

    def total_bytes(self, side: Optional[Side] = None) -> int:
        return self.bytes_for(side=side)

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the whole run (0.0 for an empty run)."""
        if self.final_cycle <= 0:
            return 0.0
        return self.instructions / self.final_cycle

    # -- reporting ---------------------------------------------------------------
    def breakdown(self) -> Dict[str, int]:
        """Human-readable {"side.category": bytes} mapping, sorted by key."""
        return {
            f"{s.value}.{c.value}": n
            for (s, c), n in sorted(
                self.traffic_bytes.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
            )
        }

    def merge(self, others: Iterable["StatRegistry"]) -> "StatRegistry":
        """Fold other registries into this one (used by sharded runs)."""
        for other in others:
            for key, n in other.traffic_bytes.items():
                self.traffic_bytes[key] += n
            for name, n in other.counters.items():
                self.counters[name] += n
            self.instructions += other.instructions
            self.final_cycle = max(self.final_cycle, other.final_cycle)
        return self

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-safe dump of every tally (inverse of :meth:`from_dict`).

        Contract: only raw tallies are dumped - derived quantities (IPC,
        shares, hit rates) are recomputed from them at read time, never
        stored. This dict nests inside ``RunResult.to_dict`` and thus
        inside result-cache entries; a shape change here must bump
        ``repro.harness.engine.SCHEMA_VERSION``.
        """
        return {
            "traffic_bytes": self.breakdown(),
            "counters": dict(self.counters),
            "instructions": self.instructions,
            "final_cycle": self.final_cycle,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StatRegistry":
        """Rebuild a registry from :meth:`to_dict` output.

        Raises ``ValueError``/``KeyError`` on malformed input so callers
        (the result cache) can treat corruption as a cache miss.
        """
        registry = cls()
        for key, nbytes in dict(data.get("traffic_bytes", {})).items():
            side_value, category_value = key.split(".", 1)
            registry.traffic_bytes[(Side(side_value), TrafficCategory(category_value))] = int(nbytes)
        for name, count in dict(data.get("counters", {})).items():
            registry.counters[str(name)] = count
        registry.instructions = int(data.get("instructions", 0))
        registry.final_cycle = int(data.get("final_cycle", 0))
        return registry

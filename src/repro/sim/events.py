"""A minimal discrete-event simulation kernel.

The main request path of the timing simulator uses *resource booking* (each
resource keeps a ``next_free`` timestamp and requests are walked in issue
order), which is faster than a full event queue and exactly equivalent for
FCFS resources. The event kernel here backs the pieces that genuinely need
out-of-order wakeups - background page eviction and periodic samplers - and
is exercised directly by tests as a substrate in its own right.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError


@dataclass(frozen=True)
class Event:
    """A scheduled callback. Compare by (time, sequence) for determinism."""

    time: int
    seq: int
    action: Callable[[], None]

    def fire(self) -> None:
        self.action()


class EventQueue:
    """Deterministic min-heap event queue with cancellation support."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = itertools.count()
        self._cancelled: set = set()
        self._pending: set = set()
        self.now: int = 0

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def schedule(self, delay: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` cycles from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = next(self._seq)
        event = Event(self.now + delay, seq, action)
        heapq.heappush(self._heap, (event.time, seq, event))
        self._pending.add((event.time, seq))
        return event

    def schedule_at(self, time: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        seq = next(self._seq)
        event = Event(time, seq, action)
        heapq.heappush(self._heap, (time, seq, event))
        self._pending.add((time, seq))
        return event

    def cancel(self, event: Event) -> None:
        """Mark an event so it will be skipped when its time comes.

        Cancelling an event that already fired (or was itself cancelled and
        skipped) is a no-op: only genuinely pending events are marked, so
        ``__len__`` never undercounts or goes negative.
        """
        key = (event.time, event.seq)
        if key in self._pending:
            self._cancelled.add(key)

    def step(self) -> Optional[Event]:
        """Pop and fire the next event; returns it, or None if queue is empty."""
        while self._heap:
            time, seq, event = heapq.heappop(self._heap)
            self._pending.discard((time, seq))
            if (time, seq) in self._cancelled:
                self._cancelled.discard((time, seq))
                continue
            self.now = time
            event.fire()
            return event
        return None

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events fired.

        ``until`` bounds simulated time (events at later times stay queued);
        ``max_events`` bounds work (guards against runaway self-scheduling).
        """
        fired = 0
        while self._heap:
            time, seq, event = self._heap[0]
            if (time, seq) in self._cancelled:
                heapq.heappop(self._heap)
                self._pending.discard((time, seq))
                self._cancelled.discard((time, seq))
                continue
            if until is not None and time > until:
                break
            if max_events is not None and fired >= max_events:
                break
            heapq.heappop(self._heap)
            self._pending.discard((time, seq))
            self.now = time
            event.fire()
            fired += 1
        if until is not None and self.now < until and not self._heap:
            self.now = until
        return fired


class PeriodicSampler:
    """A self-rescheduling periodic callback on an :class:`EventQueue`.

    Backs the observability layer's per-epoch metric snapshots: every
    ``epoch`` cycles the queue fires ``callback(now)``, which typically
    records a counter event on a :class:`~repro.sim.trace.Tracer`. The
    simulator drives the queue alongside its booking walk (``run(until=t)``
    whenever simulated time advances), so samples land deterministically on
    epoch boundaries regardless of request interleaving.
    """

    def __init__(self, queue: EventQueue, epoch: int, callback: Callable[[int], None]) -> None:
        if epoch <= 0:
            raise SimulationError(f"sampler epoch must be positive, got {epoch}")
        self.queue = queue
        self.epoch = epoch
        self.callback = callback
        self.samples = 0
        self._running = True
        self._pending_event: Optional[Event] = queue.schedule(epoch, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self.callback(self.queue.now)
        self.samples += 1
        self._pending_event = self.queue.schedule(self.epoch, self._fire)

    def stop(self) -> None:
        """Stop the sampler and cancel its pending event.

        A stopped sampler leaves nothing behind in the queue: the in-flight
        self-reschedule is cancelled, so ``len(queue)`` drops to whatever
        other work remains (zero for a sampler-only queue).
        """
        self._running = False
        if self._pending_event is not None:
            self.queue.cancel(self._pending_event)
            self._pending_event = None

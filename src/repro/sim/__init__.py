"""Simulation kernel: discrete-event scheduling and statistics collection."""

from .events import Event, EventQueue
from .stats import Side, StatRegistry, TrafficCategory

__all__ = ["Event", "EventQueue", "Side", "StatRegistry", "TrafficCategory"]

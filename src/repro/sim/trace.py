"""Structured event tracing for the timing simulator.

The simulator's end-of-run aggregates (:mod:`repro.sim.stats`) answer *how
much* traffic each category produced; they cannot answer *where in time* a
run's cycles or link bandwidth went. This module adds the missing timeline
view: a low-overhead, ring-buffered tracer that the hot paths (channels,
crypto engines, L2, metadata caches, the migration engine, the security
models) feed with tagged span/instant/counter events, exported as a
Chrome-trace ``trace.json`` that Perfetto or ``chrome://tracing`` can open
(see ``docs/TRACING.md`` for a worked example).

Design constraints, in priority order:

1. **Zero cost when disabled.** Every instrumentation site guards with
   ``if tracer.enabled:`` - a single attribute load on the shared
   :data:`NULL_TRACER` singleton - and records nothing. Tracing never
   changes simulated timing either way: the tracer only observes bookings,
   it never books anything itself.
2. **Bounded memory.** Events land in a fixed-capacity ring; once full, the
   oldest events are overwritten deterministically (``dropped`` says how
   many). A trace of a long run is the *tail* of the run.
3. **Deterministic bytes.** Event order is insertion order, thread ids are
   assigned by sorted component name at export time, and the JSON encoder
   uses sorted keys and fixed separators, so the same simulation always
   produces a byte-identical ``trace.json`` - the golden-file test relies
   on this.

Timestamps are **simulated cycles**, written into the Chrome ``ts``/``dur``
microsecond fields verbatim (1 cycle renders as 1 us; only relative scale
matters for a simulator timeline).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Default ring capacity (events). At roughly five events per simulated
#: memory access this holds the tail ~40k accesses of a run.
DEFAULT_CAPACITY = 200_000

#: Default sampling epoch (cycles) for periodic counter snapshots.
DEFAULT_SAMPLE_EPOCH = 2_000

# Internal event tuple layout: (phase, component, name, category, ts, dur, args)
_PH_SPAN = "X"
_PH_BEGIN = "B"
_PH_END = "E"
_PH_INSTANT = "i"
_PH_COUNTER = "C"


class Tracer:
    """Ring-buffered structured event recorder.

    One instance traces one simulation. Components record through the
    typed helpers (:meth:`span`, :meth:`instant`, :meth:`counter`,
    :meth:`begin`/:meth:`end`); :meth:`to_chrome` / :meth:`write` export
    the Chrome-trace JSON object.
    """

    __slots__ = ("enabled", "capacity", "sample_epoch", "_ring", "_total", "_stacks")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        enabled: bool = True,
        sample_epoch: int = DEFAULT_SAMPLE_EPOCH,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.enabled = enabled and capacity > 0
        self.capacity = capacity
        self.sample_epoch = max(1, int(sample_epoch))
        self._ring: List[Optional[tuple]] = [None] * capacity if capacity else []
        self._total = 0
        # Per-component stack of open begin() spans, for nesting bookkeeping.
        self._stacks: Dict[str, List[str]] = {}

    # -- recording ----------------------------------------------------------
    def _record(self, event: tuple) -> None:
        if not self.enabled:
            return
        self._ring[self._total % self.capacity] = event
        self._total += 1

    def span(
        self,
        component: str,
        name: str,
        ts: int,
        dur: int,
        cat: str = "",
        args: Optional[dict] = None,
    ) -> None:
        """A complete span: ``component`` did ``name`` from ``ts`` for ``dur``."""
        self._record((_PH_SPAN, component, name, cat, ts, max(0, dur), args))

    def begin(
        self,
        component: str,
        name: str,
        ts: int,
        cat: str = "",
        args: Optional[dict] = None,
    ) -> None:
        """Open a nested span on ``component`` (close with :meth:`end`)."""
        if not self.enabled:
            return
        self._stacks.setdefault(component, []).append(name)
        self._record((_PH_BEGIN, component, name, cat, ts, 0, args))

    def end(self, component: str, ts: int) -> None:
        """Close the innermost open span on ``component``."""
        if not self.enabled:
            return
        stack = self._stacks.get(component)
        if not stack:
            # Unbalanced end: record nothing rather than corrupt pairing.
            return
        name = stack.pop()
        self._record((_PH_END, component, name, "", ts, 0, None))

    def instant(
        self,
        component: str,
        name: str,
        ts: int,
        cat: str = "",
        args: Optional[dict] = None,
    ) -> None:
        """A point-in-time marker (cache miss, overflow, stall...)."""
        self._record((_PH_INSTANT, component, name, cat, ts, 0, args))

    def counter(self, name: str, ts: int, values: Dict[str, Union[int, float]]) -> None:
        """A sampled counter series (rendered as stacked area tracks)."""
        self._record((_PH_COUNTER, "", name, "", ts, 0, dict(values)))

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return min(self._total, self.capacity)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including those the ring has evicted."""
        return self._total

    @property
    def dropped(self) -> int:
        """Events lost to ring eviction (oldest-first, deterministic)."""
        return max(0, self._total - self.capacity)

    def open_span_depth(self, component: str) -> int:
        """Open (begun, not ended) span count on ``component``."""
        return len(self._stacks.get(component, ()))

    def events(self) -> List[tuple]:
        """Retained events in recording order (oldest first)."""
        if self._total <= self.capacity:
            return [e for e in self._ring[: self._total]]
        head = self._total % self.capacity
        return [e for e in self._ring[head:] + self._ring[:head]]

    # -- export -------------------------------------------------------------
    def to_chrome(self) -> dict:
        """Chrome-trace (JSON object format) view of the retained events.

        Components become threads of a single ``salus-sim`` process; thread
        ids are assigned by sorted component name, so the export is stable
        across runs of the same simulation.
        """
        events = self.events()
        components = sorted({e[1] for e in events if e[1]})
        tids = {name: i + 1 for i, name in enumerate(components)}

        out: List[dict] = [
            {
                "args": {"name": "salus-sim"},
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
            }
        ]
        for name in components:
            out.append(
                {
                    "args": {"name": name},
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tids[name],
                }
            )
        for ph, component, name, cat, ts, dur, args in events:
            record: Dict[str, object] = {
                "name": name,
                "ph": ph,
                "pid": 1,
                "tid": tids.get(component, 0),
                "ts": ts,
            }
            if cat:
                record["cat"] = cat
            if ph == _PH_SPAN:
                record["dur"] = dur
            if ph == _PH_INSTANT:
                record["s"] = "t"
            if args:
                record["args"] = args
            out.append(record)
        return {
            "displayTimeUnit": "ms",
            "otherData": {
                "dropped_events": self.dropped,
                "total_events": self._total,
            },
            "traceEvents": out,
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Serialize :meth:`to_chrome` to ``path`` with deterministic bytes."""
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_chrome(), sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        return path


# -- stable event iteration / alignment (divergence diffing) ----------------
#
# ``repro diff`` compares two exported Chrome traces of the "same"
# simulation to localize where their deterministic event streams first
# disagree. The helpers below give it a stable, export-independent view:
# metadata records are dropped, thread ids are resolved back to component
# names through each trace's own metadata (so tid renumbering can never
# read as a divergence), and events keep their recorded stream order -
# which, per this module's determinism contract, is identical between two
# runs of the same simulation up to the first behavioural difference.

def chrome_component_names(payload: dict) -> Dict[int, str]:
    """``{tid: component_name}`` from a Chrome-trace object's metadata."""
    names: Dict[int, str] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[event.get("tid", 0)] = event.get("args", {}).get("name", "")
    return names


def normalized_events(payload: dict) -> List[Tuple]:
    """Comparable event tuples from an exported Chrome-trace object.

    Returns ``(ph, component, name, cat, ts, dur, args_json)`` per
    non-metadata event, in stream (= recording) order. ``args_json`` is the
    canonical JSON of the event args so tuples compare by value.
    """
    names = chrome_component_names(payload)
    out: List[Tuple] = []
    for event in payload.get("traceEvents", []):
        if event.get("ph") == "M":
            continue
        args = event.get("args")
        out.append(
            (
                event.get("ph", ""),
                names.get(event.get("tid", 0), ""),
                event.get("name", ""),
                event.get("cat", ""),
                event.get("ts", 0),
                event.get("dur", 0),
                json.dumps(args, sort_keys=True) if args is not None else "",
            )
        )
    return out


def first_event_divergence(
    a: List[Tuple], b: List[Tuple]
) -> Optional[int]:
    """Index of the first position where two normalized streams disagree.

    ``None`` means identical; a stream that is a strict prefix of the other
    diverges at ``len(shorter)``.
    """
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def render_normalized_event(event: Optional[Tuple]) -> str:
    """One-line human-readable form of a :func:`normalized_events` tuple."""
    if event is None:
        return "<end of stream>"
    ph, component, name, cat, ts, dur, args = event
    parts = [f"ts={ts}", f"ph={ph}", f"{component or '-'}:{name}"]
    if dur:
        parts.append(f"dur={dur}")
    if cat:
        parts.append(f"cat={cat}")
    if args:
        parts.append(f"args={args}")
    return " ".join(parts)


#: Process-wide disabled tracer; share it, never mutate it. Instrumentation
#: sites hold a reference to this when no tracer was requested, so the
#: hot-path guard is a single ``.enabled`` attribute load and no event is
#: ever allocated.
NULL_TRACER = Tracer(capacity=0, enabled=False)


def resolve_tracer(tracer: Optional[Tracer]) -> Tracer:
    """``tracer`` if given, else the shared :data:`NULL_TRACER`."""
    return tracer if tracer is not None else NULL_TRACER

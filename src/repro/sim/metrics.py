"""Per-component metric taxonomy on top of :class:`~repro.sim.stats.StatRegistry`.

The stat registry tallies traffic by ``(side, category)`` - enough for the
paper's aggregate figures, but not for attributing security overhead to the
structure that caused it. This module defines the hierarchical metric
namespace the observability layer exports (documented exhaustively in
``docs/METRICS.md``):

* ``gpu.channel<i>.*`` - per-device-channel bytes/ops per traffic category
  and busy cycles;
* ``cxl.rx.*`` / ``cxl.tx.*`` - per-link-direction equivalents (device 0's
  link; multi-device topologies add ``cxl.dev<i>.rx/tx.*`` and
  ``cxl.dev<i>.link_bytes`` per expansion device, plus
  ``meta.cxl.dev<i>.*`` and ``migration.dev<i>.*``);
* ``gpu.aes<i>.sectors`` / ``gpu.macengine<i>.sectors`` - crypto pipeline load;
* ``gpu.l2.slice<i>.*`` - L2 hits/misses/MSHR merges;
* ``meta.device<i>.{counter,mac,bmt}.*`` and ``meta.cxl.{counter,mac,bmt}.*``
  - metadata-cache hits/misses;
* ``gpu.mapping.gpc<i>.*`` - mapping-cache hits/misses;
* ``migration.*`` - fills, evictions, writeback-buffer stall cycles;
* ``tenant<t>.*`` - per-security-domain rollups (instructions, device/
  security bytes, fills, evictions), emitted only on partitioned fabrics
  (``num_tenants > 1``); partitioned fabrics also replace
  ``meta.cxl.dev<i>.*`` with per-plane ``meta.cxl.plane<p>.*`` namespaces;
* ``sim.*`` - instructions and final cycle.

:func:`collect_metrics` harvests the flat ``{dotted_name: number}`` tree
from a live simulator at end of run; it is stored on
:class:`~repro.gpu.gpusim.RunResult` and serialized with it, so cached runs
still carry full per-component attribution. :func:`derived_metrics` computes
the report-time ratios (security-traffic share, cache hit rates, IPC) from a
metric tree plus the registry - derivations are never stored, only raw
tallies are.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from .stats import Side, StatRegistry

Number = Union[int, float]
MetricTree = Dict[str, Number]


def _channel_metrics(tree: MetricTree, prefix: str, channel) -> None:
    tree[f"{prefix}.busy_cycles"] = channel.busy_cycles
    security = 0
    for category, (nbytes, ops) in sorted(
        channel.category_tallies.items(), key=lambda kv: kv[0].value
    ):
        tree[f"{prefix}.{category.value}_bytes"] = nbytes
        tree[f"{prefix}.{category.value}_ops"] = ops
        if category.is_security:
            security += nbytes
    tree[f"{prefix}.security_bytes"] = security


def collect_metrics(sim) -> MetricTree:
    """Harvest the full metric tree from a finished :class:`GpuSim`.

    Flat ``{dotted_name: int|float}`` mapping; hierarchy is encoded in the
    names so the tree serializes as plain JSON and diffs line-by-line.
    """
    tree: MetricTree = {}
    fabric = sim.fabric

    for i, channel in enumerate(fabric.channels):
        _channel_metrics(tree, f"gpu.channel{i}", channel)
    _channel_metrics(tree, "cxl.rx", fabric.link.to_device)
    _channel_metrics(tree, "cxl.tx", fabric.link.to_cxl)
    if len(fabric.links) > 1:
        # Multi-device topologies additionally publish per-device link
        # namespaces (device 0 repeats under its dev-indexed name so the
        # sweep code can iterate uniformly). Single-device trees are kept
        # byte-identical to the historical layout.
        for d, link in enumerate(fabric.links):
            _channel_metrics(tree, f"cxl.dev{d}.rx", link.to_device)
            _channel_metrics(tree, f"cxl.dev{d}.tx", link.to_cxl)
            tree[f"cxl.dev{d}.link_bytes"] = sum(
                nbytes for nbytes, _ in link.to_device.category_tallies.values()
            ) + sum(
                nbytes for nbytes, _ in link.to_cxl.category_tallies.values()
            )

    for i, engine in enumerate(fabric.aes_engines):
        tree[f"gpu.aes{i}.sectors"] = engine.sectors_processed
    for i, engine in enumerate(fabric.mac_engines):
        tree[f"gpu.macengine{i}.sectors"] = engine.sectors_processed

    for i, slice_ in enumerate(sim.l2):
        tree[f"gpu.l2.slice{i}.hits"] = slice_.cache.hits
        tree[f"gpu.l2.slice{i}.misses"] = slice_.cache.misses
        tree[f"gpu.l2.slice{i}.mshr_merges"] = slice_.mshr_merges

    for i, caches in enumerate(fabric.device_meta):
        tree.update(caches.as_metrics(f"meta.device{i}"))
    tree.update(fabric.cxl_meta.as_metrics("meta.cxl"))
    if fabric.tenant_map is None:
        if len(fabric.cxl_meta_by_device) > 1:
            for d, caches in enumerate(fabric.cxl_meta_by_device):
                tree.update(caches.as_metrics(f"meta.cxl.dev{d}"))
    else:
        # Partitioned fabrics key expander metadata by security plane
        # (tenant x home device), not by device: the ``dev<i>`` alias would
        # mislabel plane-private caches as device-shared ones.
        for p, caches in enumerate(fabric.cxl_meta_by_plane):
            tree.update(caches.as_metrics(f"meta.cxl.plane{p}"))

    for i, cache in enumerate(sim.miss_handler.caches):
        tree[f"gpu.mapping.gpc{i}.hits"] = cache.hits
        tree[f"gpu.mapping.gpc{i}.misses"] = cache.misses

    tree["migration.fills"] = sim.engine.fill_count
    tree["migration.evictions"] = sim.engine.evict_count
    tree["migration.evict_stall_cycles"] = sim.engine.evict_stall_cycles
    if sim.engine.num_devices > 1:
        for d in range(sim.engine.num_devices):
            tree[f"migration.dev{d}.fills"] = sim.engine.fills_by_device[d]
            tree[f"migration.dev{d}.evictions"] = sim.engine.evicts_by_device[d]

    tmap = fabric.tenant_map
    if tmap is not None:
        # Per-security-domain rollups, extending the ``dev<i>`` taxonomy:
        # each tenant owns a disjoint SM group and channel run, so its
        # instruction and device-traffic tallies are exact attributions.
        for t in range(tmap.num_tenants):
            sm_lo = tmap.sm_base(t)
            tree[f"tenant{t}.instructions"] = sum(
                sm.instructions
                for sm in sim.sms[sm_lo : sm_lo + tmap.sms_per_tenant]
            )
            device_bytes = 0
            security_bytes = 0
            for c in tmap.channels_of(t):
                for category, (nbytes, _) in fabric.channels[
                    c
                ].category_tallies.items():
                    device_bytes += nbytes
                    if category.is_security:
                        security_bytes += nbytes
            tree[f"tenant{t}.device_bytes"] = device_bytes
            tree[f"tenant{t}.security_bytes"] = security_bytes
            tree[f"tenant{t}.fills"] = sim._tenant_fills[t]
            tree[f"tenant{t}.evictions"] = sim._tenant_evicts[t]

    tree["sim.instructions"] = sim.stats.instructions
    tree["sim.final_cycle"] = sim.stats.final_cycle
    return tree


def subtree(tree: Mapping[str, Number], prefix: str) -> MetricTree:
    """All metrics under ``prefix.`` (names keep their full dotted form)."""
    dotted = prefix if prefix.endswith(".") else prefix + "."
    return {k: v for k, v in tree.items() if k.startswith(dotted)}


def _rate(hits: Number, misses: Number) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def _sum(tree: Mapping[str, Number], suffix: str) -> Number:
    return sum(v for k, v in tree.items() if k.endswith(suffix))


def derived_metrics(tree: Mapping[str, Number], stats: StatRegistry) -> Dict[str, float]:
    """Report-time ratios derived from a metric tree + its registry.

    Never serialized: always recomputed from the raw tallies, so a report
    rendered from a cached result and one rendered from a fresh run agree
    by construction.
    """
    out: Dict[str, float] = {}
    out["derived.ipc"] = stats.ipc
    total = stats.total_bytes()
    out["derived.security_share.total"] = (
        stats.security_bytes() / total if total else 0.0
    )
    for side in ("device", "cxl"):
        s = Side(side)
        side_total = stats.total_bytes(side=s)
        out[f"derived.security_share.{side}"] = (
            stats.security_bytes(side=s) / side_total if side_total else 0.0
        )

    for kind in ("counter", "mac", "bmt"):
        device = subtree(tree, "meta")
        dev_hits = sum(
            v for k, v in device.items()
            if k.startswith("meta.device") and k.endswith(f".{kind}.hits")
        )
        dev_misses = sum(
            v for k, v in device.items()
            if k.startswith("meta.device") and k.endswith(f".{kind}.misses")
        )
        out[f"derived.{kind}_cache_hit_rate.device"] = _rate(dev_hits, dev_misses)
        out[f"derived.{kind}_cache_hit_rate.cxl"] = _rate(
            tree.get(f"meta.cxl.{kind}.hits", 0), tree.get(f"meta.cxl.{kind}.misses", 0)
        )

    l2 = subtree(tree, "gpu.l2")
    out["derived.l2_hit_rate"] = _rate(_sum(l2, ".hits"), _sum(l2, ".misses"))
    mapping = subtree(tree, "gpu.mapping")
    out["derived.mapping_hit_rate"] = _rate(_sum(mapping, ".hits"), _sum(mapping, ".misses"))
    return out


def diff_trees(
    a: Mapping[str, Number], b: Mapping[str, Number]
) -> Dict[str, Tuple[Optional[Number], Optional[Number]]]:
    """First-divergence substrate: every leaf where two metric trees differ.

    Returns ``{dotted_name: (a_value, b_value)}`` for names whose values
    differ, with ``None`` standing for "absent on this side" (trees from
    different models legitimately differ in which keys exist - see
    docs/METRICS.md). Keys are emitted in sorted order so reports are
    deterministic; an empty dict means the trees are identical.
    """
    out: Dict[str, Tuple[Optional[Number], Optional[Number]]] = {}
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out[key] = (va, vb)
    return out


def group_diffs_by_subtree(
    diffs: Mapping[str, Tuple[Optional[Number], Optional[Number]]],
    depth: int = 2,
) -> "Dict[str, Dict[str, Tuple[Optional[Number], Optional[Number]]]]":
    """Group a :func:`diff_trees` result by its leading dotted components.

    ``depth=2`` turns ``gpu.channel3.mac_bytes`` into the ``gpu.channel3``
    subtree - the granularity at which "which structure moved" is usually
    answered. Groups and members keep sorted order.
    """
    grouped: Dict[str, Dict[str, Tuple[Optional[Number], Optional[Number]]]] = {}
    for key in sorted(diffs):
        parts = key.split(".")
        prefix = ".".join(parts[: min(depth, len(parts) - 1)] or parts[:1])
        grouped.setdefault(prefix, {})[key] = diffs[key]
    return grouped


def channel_security_shares(tree: Mapping[str, Number]) -> Dict[str, float]:
    """Per-component security-byte share of each channel/link direction.

    ``{component: security_bytes / component_total_bytes}`` for every
    ``gpu.channel<i>``, ``cxl.rx`` and ``cxl.tx`` in the tree - the
    "where did the security traffic go" view of ``repro report``.
    """
    shares: Dict[str, float] = {}
    components = sorted(
        {k.rsplit(".security_bytes", 1)[0] for k in tree if k.endswith(".security_bytes")}
    )
    for component in components:
        total = sum(
            v for k, v in tree.items()
            if k.startswith(component + ".") and k.endswith("_bytes")
            and not k.endswith("security_bytes")
        )
        security = tree.get(f"{component}.security_bytes", 0)
        shares[component] = security / total if total else 0.0
    return shares

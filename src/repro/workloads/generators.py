"""Parameterized synthetic trace generation.

A :class:`WorkloadSpec` captures the five knobs that drive the Salus-vs-
baseline comparison (see DESIGN.md Section 2 for the substitution argument):

* ``chunk_coverage`` - fraction of a page's 256 B chunks touched during one
  device-memory residency. The paper attributes the largest Salus wins (NW,
  B+tree, Lava) to pages whose residency touches under half their channels;
  fetch-on-access skips the metadata of everything untouched.
* ``concurrent_pages`` - how many page-visits interleave in time. High
  spread (Backprop, Sgemm) thrashes the small metadata caches and stretches
  Merkle walks across the run, which is exactly why those benchmarks do not
  improve under Salus.
* ``write_fraction`` - drives counter increments, collapse re-encryptions
  and dirty-chunk writeback volume.
* ``reuse`` / ``sectors_per_chunk_touched`` - temporal and spatial density,
  controlling L2 and metadata-cache hit rates.
* ``compute_per_mem`` - arithmetic intensity; low values make the workload
  memory-bound so security traffic shows up in IPC.

``page_order`` selects the page-visit sequence: ``stream`` (sequential
passes), ``tiled`` (block-revisit), or ``zipf`` (skewed random, graph-like).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

from ..address import DEFAULT_GEOMETRY, Geometry
from ..errors import TraceError
from ..memsys.request import Access, MemoryRequest
from .trace import Trace

PAGE_ORDERS = ("stream", "tiled", "zipf")


@dataclass(frozen=True)
class WorkloadSpec:
    """Generator parameters for one synthetic benchmark."""

    name: str
    suite: str = "synthetic"
    intensity: str = "medium"          # low | medium | high (paper's grouping)
    footprint_pages: int = 1024
    chunk_coverage: float = 0.75
    concurrent_pages: int = 4
    write_fraction: float = 0.25
    sectors_per_chunk_touched: int = 6
    reuse: int = 2
    compute_per_mem: int = 4
    page_order: str = "stream"
    zipf_skew: float = 1.2
    tile_pages: int = 32

    def __post_init__(self) -> None:
        if self.footprint_pages <= 0:
            raise TraceError(f"{self.name}: footprint_pages must be positive")
        if not 0.0 < self.chunk_coverage <= 1.0:
            raise TraceError(f"{self.name}: chunk_coverage must be in (0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise TraceError(f"{self.name}: write_fraction must be in [0, 1]")
        if self.concurrent_pages <= 0 or self.reuse <= 0:
            raise TraceError(f"{self.name}: concurrent_pages/reuse must be positive")
        if self.page_order not in PAGE_ORDERS:
            raise TraceError(
                f"{self.name}: page_order must be one of {PAGE_ORDERS}"
            )
        if self.sectors_per_chunk_touched <= 0:
            raise TraceError(f"{self.name}: sectors_per_chunk_touched must be positive")


def _page_sequence(spec: WorkloadSpec, rng: random.Random) -> Iterator[int]:
    """Endless page-visit sequence in the spec's order."""
    n = spec.footprint_pages
    if spec.page_order == "stream":
        while True:
            for page in range(n):
                yield page
    elif spec.page_order == "tiled":
        tile = max(1, min(spec.tile_pages, n))
        while True:
            for base in range(0, n, tile):
                pages = list(range(base, min(base + tile, n)))
                # Revisit the tile a few times before moving on, like a
                # blocked GEMM or molecular-dynamics cell loop.
                for _ in range(2):
                    for page in pages:
                        yield page
    else:  # zipf
        # Rank-weighted skew: page popularity ~ 1 / rank^skew, with ranks
        # shuffled once so hot pages are scattered through the footprint.
        ranks = list(range(1, n + 1))
        rng.shuffle(ranks)
        weights = [1.0 / (ranks[p] ** spec.zipf_skew) for p in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            cumulative.append(acc / total)
        while True:
            x = rng.random()
            lo, hi = 0, n - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if cumulative[mid] < x:
                    lo = mid + 1
                else:
                    hi = mid
            yield lo


def _visit_accesses(
    spec: WorkloadSpec, page: int, geom: Geometry, rng: random.Random
) -> List[Tuple[int, bool]]:
    """The (address, is_write) list of one page visit."""
    cpp = geom.chunks_per_page
    n_chunks = max(1, round(spec.chunk_coverage * cpp))
    chunks = rng.sample(range(cpp), n_chunks)
    accesses: List[Tuple[int, bool]] = []
    spc = geom.sectors_per_chunk
    n_sectors = min(spec.sectors_per_chunk_touched, spc)
    for chunk in chunks:
        sectors = rng.sample(range(spc), n_sectors)
        for sector in sectors:
            addr = (
                page * geom.page_bytes
                + chunk * geom.chunk_bytes
                + sector * geom.sector_bytes
            )
            for _ in range(spec.reuse):
                accesses.append((addr, rng.random() < spec.write_fraction))
    rng.shuffle(accesses)
    return accesses


def generate_trace(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int = 7,
    num_sms: int = 16,
    geometry: Geometry = DEFAULT_GEOMETRY,
) -> Trace:
    """Generate a trace of ``n_accesses`` requests for ``spec``.

    ``concurrent_pages`` page-visits run in lockstep round-robin, so a high
    value interleaves many pages' accesses in time (temporal spread) while a
    low value keeps each page's accesses bursty.
    """
    if n_accesses <= 0:
        raise TraceError("n_accesses must be positive")
    # zlib.crc32 keeps the per-benchmark stream deterministic across Python
    # processes (str hash() is salted by PYTHONHASHSEED).
    rng = random.Random((seed << 32) ^ zlib.crc32(spec.name.encode()))
    pages = _page_sequence(spec, rng)

    slots: List[List[Tuple[int, bool]]] = []
    for _ in range(spec.concurrent_pages):
        slots.append(_visit_accesses(spec, next(pages), geometry, rng))

    requests: List[MemoryRequest] = []
    slot = 0
    sm = 0
    while len(requests) < n_accesses:
        if not slots[slot]:
            slots[slot] = _visit_accesses(spec, next(pages), geometry, rng)
        addr, is_write = slots[slot].pop()
        requests.append(
            MemoryRequest(
                cxl_addr=addr,
                access=Access.WRITE if is_write else Access.READ,
                sm=sm,
            )
        )
        slot = (slot + 1) % spec.concurrent_pages
        sm = (sm + 1) % num_sms
    return Trace(
        name=spec.name,
        footprint_pages=spec.footprint_pages,
        compute_per_mem=spec.compute_per_mem,
        requests=requests,
    )


#: Multi-tenant interleave shapes. ``mirror`` runs the same spec in every
#: tenant's page span; ``noisy`` keeps tenant 0 on the real spec and turns
#: every other tenant into a streaming low-reuse hammer that constantly
#: migrates pages, saturating whatever fabric resources are shared.
TENANT_MIXES = ("mirror", "noisy")


def _hammer_spec(spec: WorkloadSpec) -> WorkloadSpec:
    """The noisy-neighbor personality: full-coverage streaming, no reuse.

    Every page visit touches all chunks once and moves on, so the page
    cache churns at maximum rate - each visit is a fill plus a dirty
    eviction crossing the CXL link. This is the adversarial co-tenant the
    isolation sweep measures against.
    """
    return replace(
        spec,
        name=f"{spec.name}-hammer",
        chunk_coverage=1.0,
        concurrent_pages=32,
        write_fraction=0.5,
        sectors_per_chunk_touched=16,
        reuse=1,
        compute_per_mem=0,
        page_order="stream",
    )


def generate_multi_tenant_trace(
    spec: WorkloadSpec,
    n_accesses: int,
    num_tenants: int,
    seed: int = 7,
    num_sms: int = 16,
    geometry: Geometry = DEFAULT_GEOMETRY,
    mix: str = "mirror",
) -> Trace:
    """Interleave ``num_tenants`` independent request streams round-robin.

    Tenant ``t`` owns pages ``[t * spec.footprint_pages, (t + 1) *
    spec.footprint_pages)`` - exactly the page span a
    :class:`~repro.address.TenantMap` over the combined footprint assigns
    it - so the trace passes kernel isolation enforcement by construction.
    Each tenant's stream is generated with its own derived seed; ``mix``
    selects the co-tenant personalities (see :data:`TENANT_MIXES`).
    """
    if num_tenants <= 0:
        raise TraceError("num_tenants must be positive")
    if mix not in TENANT_MIXES:
        raise TraceError(f"mix must be one of {TENANT_MIXES}")
    if n_accesses < num_tenants:
        raise TraceError("n_accesses must be at least num_tenants")
    base_pages = spec.footprint_pages
    base_bytes = base_pages * geometry.page_bytes
    share = n_accesses // num_tenants
    remainder = n_accesses % num_tenants
    streams: List[List[MemoryRequest]] = []
    for t in range(num_tenants):
        tenant_spec = spec if (mix == "mirror" or t == 0) else _hammer_spec(spec)
        count = share + (1 if t < remainder else 0)
        sub = generate_trace(
            tenant_spec, count, seed=seed + 1_000_003 * t,
            num_sms=num_sms, geometry=geometry,
        )
        streams.append(sub.requests)

    requests: List[MemoryRequest] = []
    cursors = [0] * num_tenants
    t = 0
    while len(requests) < n_accesses:
        if cursors[t] < len(streams[t]):
            r = streams[t][cursors[t]]
            cursors[t] += 1
            requests.append(
                MemoryRequest(
                    cxl_addr=r.cxl_addr + t * base_bytes,
                    access=r.access,
                    sm=r.sm,
                    warp=r.warp,
                    tenant=t,
                )
            )
        t = (t + 1) % num_tenants
    suffix = f"x{num_tenants}" + ("-noisy" if mix == "noisy" else "")
    return Trace(
        name=spec.name + suffix,
        footprint_pages=base_pages * num_tenants,
        compute_per_mem=spec.compute_per_mem,
        requests=requests,
    )

"""The evaluation benchmark suite (paper Section V-A).

Twelve benchmarks drawn from the suites the paper uses - Rodinia-3.1,
Parboil, LonestarGPU-2.0 and Pannotia - each represented by a
:class:`~repro.workloads.generators.WorkloadSpec` tuned to the
characteristics the paper reports:

* **NW, B+tree, Lava** (low memory intensity, high compute-per-access):
  most pages have *fewer than half* their channels touched before eviction,
  so fetch-on-access skips most metadata movement - these see the largest
  Salus gains (paper: up to +190.43%).
* **Stencil** (low intensity but dense page coverage): modest gains, mainly
  from eliminated migration re-encryption.
* **Backprop, Sgemm** (dense coverage *and* temporally spread accesses):
  the paper reports "no change or slowdown" - every channel's metadata is
  needed anyway, and spreading the fetches loses the baseline's bulk
  verification locality. Our specs give them full coverage and the highest
  concurrency.
* **BFS, SSSP, Pagerank** (graph workloads, high intensity, sparse
  irregular pages): mid-to-large gains from partial coverage.
* **Hotspot, Pathfinder, Kmeans**: medium points in between.

The absolute footprints are scaled to laptop-class simulation (DESIGN.md
Section 2); the *relative* structure between benchmarks is what carries the
figures.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..address import DEFAULT_GEOMETRY, Geometry
from ..errors import TraceError
from .generators import WorkloadSpec, generate_multi_tenant_trace, generate_trace
from .trace import Trace

BENCHMARKS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        # -- low memory intensity, few channels touched per residency --------
        WorkloadSpec(
            name="nw", suite="rodinia", intensity="low",
            footprint_pages=1024, chunk_coverage=0.19, concurrent_pages=16,
            write_fraction=0.35, sectors_per_chunk_touched=4, reuse=2,
            compute_per_mem=10, page_order="stream",
        ),
        WorkloadSpec(
            name="btree", suite="rodinia", intensity="low",
            footprint_pages=1280, chunk_coverage=0.25, concurrent_pages=12,
            write_fraction=0.06, sectors_per_chunk_touched=4, reuse=1,
            compute_per_mem=9, page_order="zipf", zipf_skew=0.9,
        ),
        WorkloadSpec(
            name="lava", suite="rodinia", intensity="low",
            footprint_pages=768, chunk_coverage=0.30, concurrent_pages=12,
            write_fraction=0.40, sectors_per_chunk_touched=5, reuse=2,
            compute_per_mem=12, page_order="tiled", tile_pages=16,
        ),
        WorkloadSpec(
            name="stencil", suite="parboil", intensity="low",
            footprint_pages=512, chunk_coverage=0.90, concurrent_pages=8,
            write_fraction=0.33, sectors_per_chunk_touched=6, reuse=1,
            compute_per_mem=8, page_order="stream",
        ),
        # -- dense coverage + high temporal spread: the paper's non-winners --
        WorkloadSpec(
            name="backprop", suite="rodinia", intensity="medium",
            footprint_pages=512, chunk_coverage=0.96, concurrent_pages=48,
            write_fraction=0.45, sectors_per_chunk_touched=5, reuse=1,
            compute_per_mem=4, page_order="stream",
        ),
        WorkloadSpec(
            name="sgemm", suite="parboil", intensity="medium",
            footprint_pages=512, chunk_coverage=1.00, concurrent_pages=64,
            write_fraction=0.12, sectors_per_chunk_touched=5, reuse=1,
            compute_per_mem=5, page_order="tiled", tile_pages=64,
        ),
        # -- medium points ----------------------------------------------------
        WorkloadSpec(
            name="hotspot", suite="rodinia", intensity="medium",
            footprint_pages=512, chunk_coverage=0.80, concurrent_pages=6,
            write_fraction=0.30, sectors_per_chunk_touched=5, reuse=1,
            compute_per_mem=5, page_order="stream",
        ),
        WorkloadSpec(
            name="pathfinder", suite="rodinia", intensity="medium",
            footprint_pages=768, chunk_coverage=0.70, concurrent_pages=6,
            write_fraction=0.25, sectors_per_chunk_touched=4, reuse=1,
            compute_per_mem=4, page_order="stream",
        ),
        WorkloadSpec(
            name="kmeans", suite="rodinia", intensity="high",
            footprint_pages=768, chunk_coverage=0.60, concurrent_pages=8,
            write_fraction=0.15, sectors_per_chunk_touched=4, reuse=1,
            compute_per_mem=3, page_order="stream",
        ),
        # -- graph workloads: sparse irregular pages --------------------------
        WorkloadSpec(
            name="bfs", suite="lonestar", intensity="high",
            footprint_pages=1280, chunk_coverage=0.35, concurrent_pages=10,
            write_fraction=0.20, sectors_per_chunk_touched=3, reuse=1,
            compute_per_mem=2, page_order="zipf", zipf_skew=1.1,
        ),
        WorkloadSpec(
            name="sssp", suite="lonestar", intensity="high",
            footprint_pages=1280, chunk_coverage=0.40, concurrent_pages=10,
            write_fraction=0.25, sectors_per_chunk_touched=3, reuse=1,
            compute_per_mem=2, page_order="zipf", zipf_skew=1.1,
        ),
        WorkloadSpec(
            name="pagerank", suite="pannotia", intensity="high",
            footprint_pages=1280, chunk_coverage=0.45, concurrent_pages=12,
            write_fraction=0.30, sectors_per_chunk_touched=3, reuse=1,
            compute_per_mem=2, page_order="zipf", zipf_skew=1.0,
        ),
    )
}

# The paper's grouping, used by reports.
LOW_INTENSITY = ("stencil", "btree", "lava", "nw")


def benchmark_names() -> Tuple[str, ...]:
    return tuple(BENCHMARKS)


def spec_for(name: str) -> WorkloadSpec:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise TraceError(
            f"unknown benchmark {name!r}; choose from {benchmark_names()}"
        ) from None


def build_trace(
    name: str,
    n_accesses: int = 40_000,
    seed: int = 7,
    num_sms: int = 16,
    geometry: Geometry = DEFAULT_GEOMETRY,
    scale: float = 1.0,
    tenants: int = 1,
    tenant_mix: str = "mirror",
) -> Trace:
    """Build the named benchmark's trace.

    ``scale`` proportionally shrinks/grows both the footprint and the access
    count - tests use ``scale=0.1`` for sub-second runs. ``tenants > 1``
    interleaves that many per-tenant streams (one per security domain, each
    confined to its own page span; ``tenant_mix`` picks the co-tenant
    personalities - see :data:`~repro.workloads.generators.TENANT_MIXES`).
    """
    spec = spec_for(name)
    if scale != 1.0:
        if scale <= 0:
            raise TraceError("scale must be positive")
        spec = WorkloadSpec(
            **{
                **spec.__dict__,
                "footprint_pages": max(64, int(spec.footprint_pages * scale)),
            }
        )
        n_accesses = max(500, int(n_accesses * scale))
    if tenants > 1:
        return generate_multi_tenant_trace(
            spec, n_accesses=n_accesses, num_tenants=tenants, seed=seed,
            num_sms=num_sms, geometry=geometry, mix=tenant_mix,
        )
    return generate_trace(
        spec, n_accesses=n_accesses, seed=seed, num_sms=num_sms, geometry=geometry
    )

"""Trace container: a workload as the simulator consumes it.

Two faces of the same request stream:

* :class:`Trace` - the list-of-:class:`MemoryRequest` iterator every
  scalar consumer walks;
* :class:`DenseTrace` - a column-oriented view (``addrs`` / ``is_write``
  / ``sm_id`` / ``warp`` / ``ts`` as int64 numpy arrays) that the batched
  kernel slices per epoch. Epoch slices are numpy views, so after the
  one-time columnarization the per-epoch cost is zero-copy.

``ts`` is the request ordinal (issue order); it doubles as the timestamp
component of the batched kernel's deterministic (timestamp, device, seq)
merge key.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..errors import TraceError
from ..kernel import numpy_or_none, require_numpy
from ..memsys.request import MemoryRequest

#: Packed little-endian record layout matching the per-request
#: ``struct.pack("<QBII", addr, is_write, sm, warp)`` fingerprint stream
#: byte for byte (itemsize 17, no padding).
_FINGERPRINT_DTYPE = [("addr", "<u8"), ("w", "u1"), ("sm", "<u4"), ("warp", "<u4")]


class DenseTrace:
    """Column-oriented int64 view of a request stream.

    Immutable by convention: the arrays are built once from the request
    list and shared by every consumer; epoch slices are views, never
    copies.
    """

    __slots__ = ("name", "footprint_pages", "compute_per_mem",
                 "addrs", "is_write", "sm_id", "warp", "ts", "tenant")

    def __init__(self, name, footprint_pages, compute_per_mem,
                 addrs, is_write, sm_id, warp, ts, tenant=None) -> None:
        self.name = name
        self.footprint_pages = footprint_pages
        self.compute_per_mem = compute_per_mem
        self.addrs = addrs
        self.is_write = is_write
        self.sm_id = sm_id
        self.warp = warp
        self.ts = ts
        if tenant is None:
            tenant = require_numpy().zeros_like(addrs)
        self.tenant = tenant

    def __len__(self) -> int:
        return int(self.addrs.shape[0])

    @classmethod
    def from_requests(
        cls,
        requests: List[MemoryRequest],
        name: str = "trace",
        footprint_pages: int = 0,
        compute_per_mem: int = 0,
    ) -> "DenseTrace":
        np = require_numpy()
        n = len(requests)
        addrs = np.fromiter((r.cxl_addr for r in requests), dtype=np.int64, count=n)
        is_write = np.fromiter(
            (1 if r.is_write else 0 for r in requests), dtype=np.int64, count=n
        )
        sm_id = np.fromiter((r.sm for r in requests), dtype=np.int64, count=n)
        warp = np.fromiter((r.warp for r in requests), dtype=np.int64, count=n)
        ts = np.arange(n, dtype=np.int64)
        tenant = np.fromiter((r.tenant for r in requests), dtype=np.int64, count=n)
        return cls(name, footprint_pages, compute_per_mem,
                   addrs, is_write, sm_id, warp, ts, tenant)

    def epoch_bounds(self, epoch_size: int):
        """Yield ``(start, stop)`` index pairs covering the stream."""
        n = len(self)
        step = max(1, int(epoch_size))
        for start in range(0, n, step):
            yield start, min(start + step, n)


@dataclass
class Trace:
    """A named sequence of post-L1 memory requests plus workload metadata.

    ``compute_per_mem`` is the arithmetic intensity the SM front end
    interleaves between memory instructions; ``footprint_pages`` sizes the
    protected CXL address space (and, through the capacity ratio, the device
    page cache).
    """

    name: str
    footprint_pages: int
    compute_per_mem: int
    requests: List[MemoryRequest] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.footprint_pages <= 0:
            raise TraceError("footprint_pages must be positive")
        if self.compute_per_mem < 0:
            raise TraceError("compute_per_mem must be non-negative")
        self._dense: Optional[DenseTrace] = None

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[MemoryRequest]:
        return iter(self.requests)

    def __getstate__(self):
        # The columnar cache is derived data; keep pickles (process-pool
        # hand-off, result cache) lean and let receivers rebuild it.
        state = dict(self.__dict__)
        state["_dense"] = None
        return state

    @property
    def write_fraction(self) -> float:
        if not self.requests:
            return 0.0
        writes = sum(1 for r in self.requests if r.is_write)
        return writes / len(self.requests)

    def distinct_pages(self, page_bytes: int) -> int:
        return len({r.cxl_addr // page_bytes for r in self.requests})

    def dense(self) -> DenseTrace:
        """The columnar view, built lazily and cached.

        The cache is keyed on the request count, so the common mutation
        (``head``-style truncation builds a new Trace; generators only
        append before first use) never serves a stale view. Requires
        numpy.
        """
        cached = self._dense
        if cached is not None and len(cached) == len(self.requests):
            return cached
        dense = DenseTrace.from_requests(
            self.requests, name=self.name,
            footprint_pages=self.footprint_pages,
            compute_per_mem=self.compute_per_mem,
        )
        self._dense = dense
        return dense

    def fingerprint(self) -> str:
        """Stable content hash of the trace.

        Covers the metadata and the full ordered request stream (address,
        direction, SM, warp). Deterministic across processes and platforms -
        no reliance on ``hash()`` - so it can anchor cross-process cache
        keys: generating the same (bench, n_accesses, seed, geometry) in two
        different interpreters must yield the same fingerprint. With numpy
        present the packed byte stream is produced in one vectorized shot
        from the dense view; the bytes (and hash) are identical either way.
        """
        digest = hashlib.sha256()
        header = f"{self.name}|{self.footprint_pages}|{self.compute_per_mem}|{len(self.requests)}"
        digest.update(header.encode("utf-8"))
        np = numpy_or_none()
        if np is not None and self.requests:
            d = self.dense()
            rec = np.empty(len(d), dtype=_FINGERPRINT_DTYPE)
            rec["addr"] = d.addrs.astype("<u8")
            rec["w"] = np.minimum(d.is_write, 1).astype("u1")
            rec["sm"] = d.sm_id.astype("<u4")
            rec["warp"] = d.warp.astype("<u4")
            digest.update(rec.tobytes())
            # Tenant ids join the hash only when the trace actually uses
            # them, so every pre-tenancy trace keeps its recorded
            # fingerprint byte for byte.
            if d.tenant.any():
                digest.update(d.tenant.astype("<u4").tobytes())
            return digest.hexdigest()
        for req in self.requests:
            digest.update(
                struct.pack("<QBII", req.cxl_addr, 1 if req.is_write else 0, req.sm, req.warp)
            )
        if any(req.tenant for req in self.requests):
            for req in self.requests:
                digest.update(struct.pack("<I", req.tenant))
        return digest.hexdigest()

    def head(self, n: int) -> "Trace":
        """A truncated copy (used by fast tests)."""
        return Trace(
            name=self.name,
            footprint_pages=self.footprint_pages,
            compute_per_mem=self.compute_per_mem,
            requests=self.requests[:n],
        )

"""Trace container: a workload as the simulator consumes it."""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Iterator, List

from ..errors import TraceError
from ..memsys.request import MemoryRequest


@dataclass
class Trace:
    """A named sequence of post-L1 memory requests plus workload metadata.

    ``compute_per_mem`` is the arithmetic intensity the SM front end
    interleaves between memory instructions; ``footprint_pages`` sizes the
    protected CXL address space (and, through the capacity ratio, the device
    page cache).
    """

    name: str
    footprint_pages: int
    compute_per_mem: int
    requests: List[MemoryRequest] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.footprint_pages <= 0:
            raise TraceError("footprint_pages must be positive")
        if self.compute_per_mem < 0:
            raise TraceError("compute_per_mem must be non-negative")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[MemoryRequest]:
        return iter(self.requests)

    @property
    def write_fraction(self) -> float:
        if not self.requests:
            return 0.0
        writes = sum(1 for r in self.requests if r.is_write)
        return writes / len(self.requests)

    def distinct_pages(self, page_bytes: int) -> int:
        return len({r.cxl_addr // page_bytes for r in self.requests})

    def fingerprint(self) -> str:
        """Stable content hash of the trace.

        Covers the metadata and the full ordered request stream (address,
        direction, SM, warp). Deterministic across processes and platforms -
        no reliance on ``hash()`` - so it can anchor cross-process cache
        keys: generating the same (bench, n_accesses, seed, geometry) in two
        different interpreters must yield the same fingerprint.
        """
        digest = hashlib.sha256()
        header = f"{self.name}|{self.footprint_pages}|{self.compute_per_mem}|{len(self.requests)}"
        digest.update(header.encode("utf-8"))
        for req in self.requests:
            digest.update(
                struct.pack("<QBII", req.cxl_addr, 1 if req.is_write else 0, req.sm, req.warp)
            )
        return digest.hexdigest()

    def head(self, n: int) -> "Trace":
        """A truncated copy (used by fast tests)."""
        return Trace(
            name=self.name,
            footprint_pages=self.footprint_pages,
            compute_per_mem=self.compute_per_mem,
            requests=self.requests[:n],
        )

"""Trace persistence: save/load workload traces as compact ``.npz`` files.

Synthetic traces are cheap to regenerate, but persisting them matters for
two workflows: pinning the *exact* trace a result came from (artifact
style), and importing externally captured address streams (e.g. converted
GPGPU-Sim or binary-instrumentation traces) into the simulator.

Format: a NumPy ``.npz`` archive with three aligned arrays - ``addrs``
(uint64 CXL byte addresses), ``writes`` (uint8 flags), ``sms`` (uint16
issuing-SM ids) - plus a metadata record (name, footprint, compute/mem,
format version).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import TraceError
from ..memsys.request import Access, MemoryRequest
from .trace import Trace

FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace to ``path`` (``.npz``); returns the resolved path."""
    path = Path(path)
    if not trace.requests:
        raise TraceError("refusing to save an empty trace")
    addrs = np.fromiter(
        (r.cxl_addr for r in trace.requests), dtype=np.uint64, count=len(trace)
    )
    writes = np.fromiter(
        (1 if r.is_write else 0 for r in trace.requests),
        dtype=np.uint8, count=len(trace),
    )
    sms = np.fromiter(
        (r.sm for r in trace.requests), dtype=np.uint16, count=len(trace)
    )
    meta = json.dumps(
        {
            "version": FORMAT_VERSION,
            "name": trace.name,
            "footprint_pages": trace.footprint_pages,
            "compute_per_mem": trace.compute_per_mem,
        }
    )
    np.savez_compressed(
        path, addrs=addrs, writes=writes, sms=sms,
        meta=np.frombuffer(meta.encode(), dtype=np.uint8),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    try:
        meta = json.loads(bytes(archive["meta"]).decode())
        addrs = archive["addrs"]
        writes = archive["writes"]
        sms = archive["sms"]
    except KeyError as exc:
        raise TraceError(f"{path} is not a repro trace file (missing {exc})") from exc
    if meta.get("version") != FORMAT_VERSION:
        raise TraceError(
            f"{path}: unsupported trace format version {meta.get('version')}"
        )
    if not (len(addrs) == len(writes) == len(sms)):
        raise TraceError(f"{path}: corrupt trace (array lengths differ)")
    requests = [
        MemoryRequest(
            cxl_addr=int(addr),
            access=Access.WRITE if flag else Access.READ,
            sm=int(sm),
        )
        for addr, flag, sm in zip(addrs, writes, sms)
    ]
    return Trace(
        name=meta["name"],
        footprint_pages=meta["footprint_pages"],
        compute_per_mem=meta["compute_per_mem"],
        requests=requests,
    )

"""Workload generation: synthetic stand-ins for the paper's benchmarks.

The paper evaluates CUDA benchmarks from Rodinia-3.1, Parboil, LonestarGPU
and Pannotia inside GPGPU-Sim. Without CUDA or the simulator, we synthesize
post-L1 memory traces whose *page-migration-relevant* characteristics match
what the paper reports for each benchmark: how much of a page's channels are
touched per device-memory residency, how temporally spread the accesses are,
write intensity, reuse, and arithmetic intensity. Section 2 of DESIGN.md
documents the substitution argument.
"""

from .trace import Trace
from .generators import WorkloadSpec, generate_trace
from .io import load_trace, save_trace
from .suite import BENCHMARKS, benchmark_names, build_trace, spec_for

__all__ = [
    "BENCHMARKS",
    "Trace",
    "WorkloadSpec",
    "benchmark_names",
    "build_trace",
    "generate_trace",
    "load_trace",
    "save_trace",
    "spec_for",
]

"""Append-only run ledger: a persistent registry of completed simulations.

The result cache (:class:`~repro.harness.engine.ResultCache`) answers "have
I simulated this exact job before?" - it is content-addressed and silent
about history. The ledger answers the *longitudinal* questions the cache
cannot: what ran on this machine, when, how long each job took, whether it
was served from cache, and - crucially for the fingerprint gate - what every
run's :meth:`~repro.gpu.gpusim.RunResult.fingerprint` and flat metric tree
were, so two runs of the same job can be compared *across invocations*
without keeping every result JSON around.

Storage is one JSONL file (``ledger.jsonl``) under the engine's cache
directory, one self-describing entry per completed job, appended by
:meth:`~repro.harness.engine.ExperimentEngine.run_jobs` on job completion.
Append-only by design: entries are never rewritten, a torn or corrupt line
degrades to "skipped" on replay, and a schema bump (``LEDGER_SCHEMA``)
makes old entries invisible rather than misread. The ledger lives *next to*
the content-addressed entries but is never part of any cache key: a job's
fingerprint hashes configuration, trace recipe, model and engine schema
only (see ``SimJob.fingerprint``), so recording a run can never change
where that run's result is cached - the regression test pins this.

Queried by ``repro runs`` (list/filter) and ``repro perf`` (throughput and
fingerprint trajectory vs the recorded ``BENCH_perf.json`` entries).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

#: Version of the ledger-entry layout. Bump on any incompatible change to
#: the fields below; entries from other schema versions are skipped on
#: replay (never errors, never misread).
LEDGER_SCHEMA = 1

#: File name of the ledger inside a cache directory. Deliberately not a
#: ``<fp[:2]>/<fp>.json`` path: the result cache globs ``*/*.json`` for its
#: entries, so the ledger is invisible to it.
LEDGER_FILENAME = "ledger.jsonl"


@dataclass
class LedgerEntry:
    """One completed simulation, as recorded in the ledger.

    ``source`` says how the result was obtained (``run`` = simulated,
    ``disk``/``memory`` = cache hit); ``wall_s`` is the wall-clock cost of
    obtaining it (near zero for hits). ``metrics`` is the flat
    ``{dotted_name: number}`` snapshot from ``RunResult.metrics`` - enough
    to localize *which* subsystem moved when two entries' fingerprints
    disagree, without re-running anything.
    """

    bench: str
    model: str
    n_accesses: int
    seed: int
    config_fingerprint: str
    job_fingerprint: str
    result_fingerprint: str
    source: str
    wall_s: float
    engine_schema: int
    ipc: float
    cycles: int
    instructions: int
    fills: int
    evictions: int
    security_bytes: int
    total_bytes: int
    recorded: str = ""
    schema: int = LEDGER_SCHEMA
    metrics: Dict[str, float] = field(default_factory=dict)
    tenants: int = 1

    def label(self) -> str:
        tenancy = f"x{self.tenants}" if self.tenants != 1 else ""
        return f"{self.bench}{tenancy}/{self.model}@{self.n_accesses}#{self.seed}"

    def to_json_line(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json_line(cls, line: str) -> Optional["LedgerEntry"]:
        """Parse one ledger line; ``None`` for corrupt or foreign-schema data."""
        try:
            data = json.loads(line)
        except ValueError:
            return None
        if not isinstance(data, dict) or data.get("schema") != LEDGER_SCHEMA:
            return None
        try:
            return cls(**data)
        except TypeError:
            return None

    @classmethod
    def from_outcome(cls, outcome, engine_schema: int) -> "LedgerEntry":
        """Build an entry from a successful :class:`JobOutcome`."""
        job = outcome.job
        result = outcome.result
        stats = result.stats
        return cls(
            bench=job.trace.bench,
            model=job.model,
            n_accesses=job.trace.n_accesses,
            seed=job.trace.seed,
            config_fingerprint=job.config.fingerprint(),
            job_fingerprint=job.fingerprint(),
            result_fingerprint=result.fingerprint(),
            source=outcome.source,
            wall_s=round(outcome.wall_s, 6),
            engine_schema=engine_schema,
            ipc=stats.ipc,
            cycles=stats.final_cycle,
            instructions=stats.instructions,
            fills=result.fills,
            evictions=result.evictions,
            security_bytes=stats.security_bytes(),
            total_bytes=stats.total_bytes(),
            recorded=time.strftime("%Y-%m-%dT%H:%M:%S"),
            metrics=dict(result.metrics),
            tenants=getattr(job.trace, "tenants", 1),
        )


class RunLedger:
    """Append-only JSONL registry of completed runs.

    ``root`` may be a cache directory (the ledger lives at
    ``<root>/ledger.jsonl``) or a direct ``*.jsonl`` path.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        root = Path(root)
        self.path = root if root.suffix == ".jsonl" else root / LEDGER_FILENAME

    # -- writing -------------------------------------------------------------
    def append(self, entry: LedgerEntry) -> None:
        """Append one entry; creates the file (and parents) on first write."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(entry.to_json_line() + "\n")

    # -- replay --------------------------------------------------------------
    def _iter_entries(self) -> Iterator[LedgerEntry]:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            entry = LedgerEntry.from_json_line(line)
            if entry is not None:
                yield entry

    def entries(
        self,
        bench: Optional[str] = None,
        model: Optional[str] = None,
        source: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[LedgerEntry]:
        """Replay the ledger, oldest first, with optional filters.

        ``limit`` keeps the *latest* N matching entries (the tail is what
        ``repro runs`` shows by default).
        """
        out = [
            e
            for e in self._iter_entries()
            if (bench is None or e.bench == bench)
            and (model is None or e.model == model)
            and (source is None or e.source == source)
        ]
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    def latest_by_job(self) -> Dict[str, LedgerEntry]:
        """Latest entry per job fingerprint (replay order = append order)."""
        out: Dict[str, LedgerEntry] = {}
        for entry in self._iter_entries():
            out[entry.job_fingerprint] = entry
        return out

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_entries())

"""Job-based experiment engine: parallel execution + persistent result cache.

The paper's evaluation is a large cross-product of (configuration, workload,
security model) simulations, every one of them independent - an
embarrassingly parallel sweep. This module turns the harness's execution
path into explicit *jobs* so that sweeps can be batched, deduplicated,
parallelized and cached:

* :class:`TraceSpec` names a generated workload trace (benchmark name,
  length, seed) without materializing it; the trace is rebuilt inside
  whichever process executes the job (generation is deterministic by
  contract - see ``Trace.fingerprint`` and its regression test).
* :class:`SimJob` is one simulation: a :class:`~repro.config.SystemConfig`,
  a :class:`TraceSpec`, and a security-model name. Jobs are hashable values
  with a stable content :meth:`~SimJob.fingerprint`.
* :class:`ResultCache` persists finished :class:`~repro.gpu.gpusim.RunResult`
  objects as content-addressed JSON files under a cache directory (default
  ``.salus-cache/``), keyed by the job fingerprint. Corrupt or
  schema-mismatched entries degrade to cache misses.
* :class:`ExperimentEngine` executes batches: it folds duplicates, serves
  hits from an in-process memo and then the on-disk cache, runs the misses
  via :class:`concurrent.futures.ProcessPoolExecutor` (``jobs`` workers)
  with graceful fallback to serial execution, and captures per-job errors so
  one failed simulation cannot kill a batch.

Cache-key schema: a job fingerprint hashes the full config dict, the trace
parameters, the model name **and** :data:`SCHEMA_VERSION`. Bump
``SCHEMA_VERSION`` whenever simulator semantics or the serialized result
format change, so stale caches are invalidated automatically rather than
replayed.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue as queue_module
import shutil
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..config import SystemConfig
from ..errors import EngineError
from ..gpu.gpusim import DEFAULT_PROGRESS_EPOCH, RunResult
from ..workloads.suite import build_trace
from ..workloads.trace import Trace
from .ledger import LedgerEntry, RunLedger
from .runner import run_model

#: Version of the (simulator semantics, result JSON) contract baked into
#: every cache key. Bump it whenever a change makes previously cached
#: results wrong or unreadable; old entries then miss instead of lying.
#: v2: RunResult gained the per-component ``metrics`` tree (observability
#: layer); v1 entries lack it and would render empty reports.
SCHEMA_VERSION = 2

#: Default on-disk cache location (overridable via $REPRO_CACHE_DIR and the
#: CLI ``--cache-dir`` flag).
DEFAULT_CACHE_DIR = ".salus-cache"


def default_cache_dir() -> str:
    """The cache directory the CLI uses unless told otherwise."""
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


@dataclass(frozen=True)
class TraceSpec:
    """A generated workload trace, by recipe rather than by content.

    ``tenants``/``tenant_mix`` describe multi-tenant interleaving (see
    :func:`~repro.workloads.generators.generate_multi_tenant_trace`); the
    defaults reproduce the historical single-tenant recipe exactly.
    """

    bench: str
    n_accesses: int
    seed: int
    tenants: int = 1
    tenant_mix: str = "mirror"

    def build(self, config: SystemConfig) -> Trace:
        """Materialize the trace for ``config``'s SM count and geometry."""
        return build_trace(
            self.bench,
            n_accesses=self.n_accesses,
            seed=self.seed,
            num_sms=config.gpu.num_sms,
            geometry=config.geometry,
            tenants=self.tenants,
            tenant_mix=self.tenant_mix,
        )


@dataclass(frozen=True)
class SimJob:
    """One simulation: (configuration, trace spec, security model)."""

    config: SystemConfig
    trace: TraceSpec
    model: str

    @classmethod
    def of(
        cls,
        config: SystemConfig,
        bench: str,
        model: str,
        n_accesses: int,
        seed: int,
        tenants: int = 1,
        tenant_mix: str = "mirror",
    ) -> "SimJob":
        return cls(
            config=config,
            trace=TraceSpec(bench, n_accesses, seed, tenants, tenant_mix),
            model=model,
        )

    def fingerprint(self) -> str:
        """Stable content hash identifying this job's result.

        Keyed on the *full* configuration (not just the preset name), the
        trace recipe, the model, and :data:`SCHEMA_VERSION`, so any change
        to any simulated parameter - or to the code contract - lands in a
        different cache slot. Tenancy keys join the payload only when
        non-default, so every pre-tenancy job keeps its cache slot.
        """
        payload = {
            "schema": SCHEMA_VERSION,
            "config": self.config.to_dict(),
            "bench": self.trace.bench,
            "n_accesses": self.trace.n_accesses,
            "seed": self.trace.seed,
            "model": self.model,
        }
        if self.trace.tenants != 1:
            payload["tenants"] = self.trace.tenants
            payload["tenant_mix"] = self.trace.tenant_mix
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable identity for logs and error messages."""
        tenancy = f"x{self.trace.tenants}" if self.trace.tenants != 1 else ""
        return (
            f"{self.trace.bench}{tenancy}/{self.model}"
            f"@{self.trace.n_accesses}#{self.trace.seed}"
        )

    def describe(self) -> Dict:
        """Cache-entry provenance record (what produced this result)."""
        record = {
            "bench": self.trace.bench,
            "model": self.model,
            "n_accesses": self.trace.n_accesses,
            "seed": self.trace.seed,
            "config_fingerprint": self.config.fingerprint(),
        }
        if self.trace.tenants != 1:
            record["tenants"] = self.trace.tenants
            record["tenant_mix"] = self.trace.tenant_mix
        return record

    def execute(
        self,
        tracer=None,
        progress=None,
        progress_epoch: int = DEFAULT_PROGRESS_EPOCH,
        kernel: Optional[str] = None,
    ) -> RunResult:
        """Run the simulation (in whatever process this is called from).

        ``kernel`` picks the request-path engine. It is deliberately NOT
        part of :meth:`fingerprint`: the dual-engine contract makes both
        kernels produce bit-identical results, so they share one cache
        slot (a batched run can be served by a scalar-produced entry and
        vice versa).
        """
        return run_model(
            self.config, self.trace.build(self.config), self.model,
            tracer=tracer, progress=progress, progress_epoch=progress_epoch,
            kernel=kernel,
        )

    def trace_filename(self) -> str:
        """Deterministic per-job Chrome-trace filename (``--trace`` runs)."""
        tenancy = f"-t{self.trace.tenants}" if self.trace.tenants != 1 else ""
        return (
            f"{self.trace.bench}-{self.model}"
            f"-a{self.trace.n_accesses}-s{self.trace.seed}{tenancy}"
            f"-{self.config.fingerprint()[:8]}.trace.json"
        )


@dataclass
class JobOutcome:
    """What happened to one job of a batch.

    ``wall_s`` is the wall-clock cost of obtaining the result: the timed
    simulation for ``source="run"`` (measured inside the worker, so pool
    scheduling overhead is excluded), ~0 for cache hits.
    """

    job: SimJob
    result: Optional[RunResult] = None
    error: Optional[str] = None
    source: str = "run"  # "memory" | "disk" | "run"
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class EngineStats:
    """Per-engine counters; tests assert warm runs simulate nothing."""

    memory_hits: int = 0
    disk_hits: int = 0
    simulations: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "simulations": self.simulations,
            "errors": self.errors,
        }


class ResultCache:
    """Content-addressed on-disk store of serialized run results.

    Layout: ``<root>/<fp[:2]>/<fp>.json`` where ``fp`` is the job
    fingerprint. Every entry is a self-describing JSON envelope carrying the
    schema version, the fingerprint, the job provenance and the full
    :meth:`RunResult.to_dict` payload. Unreadable, corrupt or
    schema-mismatched entries are treated as misses, never as errors.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[RunResult]:
        path = self.path_for(fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        if payload.get("fingerprint") != fingerprint:
            return None
        try:
            result = RunResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None
        # Refresh the entry's mtime so LRU eviction (the job service's
        # cache policy, see repro.service.store) ranks by last *use*, not
        # last write. Best-effort: a read-only cache still serves hits.
        try:
            os.utime(path, None)
        except OSError:
            pass
        return result

    def put(self, fingerprint: str, job: SimJob, result: RunResult) -> Path:
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "job": job.describe(),
            "result": result.to_dict(),
        }
        # Atomic publish: a reader never observes a half-written entry.
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(envelope, sort_keys=True), encoding="utf-8")
        tmp.replace(path)
        return path

    def clear(self) -> None:
        """Drop every cached entry (how users invalidate the cache)."""
        if self.root.exists():
            shutil.rmtree(self.root, ignore_errors=True)

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


class _CallbackSink:
    """Duck-typed stand-in for a multiprocessing queue on the serial path.

    The worker code only calls ``.put(event)``; in-process execution (the
    default, and the fallback when no pool is available) delivers events
    straight to the engine's progress callback with no queue, no thread and
    no pickling.
    """

    def __init__(self, callback: Callable[[Dict], None]) -> None:
        self._callback = callback

    def put(self, event: Dict) -> None:
        try:
            self._callback(event)
        except Exception:
            # A broken sink must never kill a simulation.
            pass


class _QueueDrainer:
    """Parent-side pump: multiprocessing progress queue -> callback.

    Runs on a daemon thread for the lifetime of one parallel batch (the
    ``pool.map`` call blocks the engine thread, so delivery has to happen
    off-thread). ``finish()`` posts a sentinel and joins, draining whatever
    the workers sent before the pool closed.
    """

    _SENTINEL = None

    def __init__(self, events, callback: Callable[[Dict], None]) -> None:
        self._events = events
        self._callback = callback
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            try:
                event = self._events.get(timeout=0.2)
            except queue_module.Empty:
                continue
            except (EOFError, OSError):
                return
            if event is self._SENTINEL:
                return
            try:
                self._callback(event)
            except Exception:
                pass

    def finish(self) -> None:
        try:
            self._events.put(self._SENTINEL)
        except Exception:
            pass
        self._thread.join(timeout=5.0)


def _progress_sink_callback(events, label: str, pid: int):
    """The per-job heartbeat closure handed to :func:`run_model`."""

    def emit(snapshot: Dict) -> None:
        event = {"kind": "heartbeat", "job": label, "pid": pid}
        event.update(snapshot)
        try:
            events.put(event)
        except Exception:
            pass

    return emit


def _execute_job(
    job: SimJob,
    trace_path: Optional[str] = None,
    progress_events=None,
    progress_epoch: int = DEFAULT_PROGRESS_EPOCH,
    kernel: Optional[str] = None,
) -> Tuple[bool, object, float]:
    """Worker entry point: run one job, never raise.

    Returns ``(True, RunResult, wall_s)`` on success or ``(False,
    traceback_text, wall_s)`` on failure, so a crashed simulation surfaces
    as data instead of killing the pool or the batch. With ``trace_path``
    set, the job runs under a :class:`~repro.sim.trace.Tracer` and its
    Chrome trace is written there (from whichever process executed it)
    before the result returns.

    ``progress_events`` (anything with ``.put(dict)`` - a multiprocessing
    queue proxy from the parallel path, a :class:`_CallbackSink` from the
    serial one) receives a ``start`` event and per-epoch ``heartbeat``
    events while the simulation runs; the parent emits the terminal
    ``done``/``error`` event once the outcome is known.
    """
    label = job.label()
    progress = None
    if progress_events is not None:
        try:
            progress_events.put({"kind": "start", "job": label, "pid": os.getpid()})
        except Exception:
            progress_events = None
        else:
            progress = _progress_sink_callback(progress_events, label, os.getpid())
    started = time.perf_counter()
    try:
        if trace_path is not None:
            from ..sim.trace import Tracer

            tracer = Tracer()
            result = job.execute(tracer=tracer, progress=progress,
                                 progress_epoch=progress_epoch, kernel=kernel)
            tracer.write(trace_path)
            return True, result, time.perf_counter() - started
        result = job.execute(progress=progress, progress_epoch=progress_epoch,
                             kernel=kernel)
        return True, result, time.perf_counter() - started
    except Exception:
        return False, traceback.format_exc(), time.perf_counter() - started


def _execute_job_entry(
    item: Tuple[SimJob, Optional[str], object, int, Optional[str]]
) -> Tuple[bool, object, float]:
    """Picklable star-apply wrapper for :func:`_execute_job` (pool.map)."""
    return _execute_job(*item)


class ExperimentEngine:
    """Executes batches of :class:`SimJob`, with caching and parallelism.

    ``jobs`` is the worker-process count; 1 (the default) runs serially
    in-process. ``cache_dir=None`` keeps the engine memory-only (results
    are still memoized for the lifetime of the engine, which is what the
    per-figure sharing of Figures 10-12 needs); a path enables the
    persistent cross-process cache.

    ``trace_dir`` enables per-simulation Chrome traces: every executed job
    writes ``<trace_dir>/<job.trace_filename()>`` from whichever process ran
    it. Tracing forces fresh simulations (cache and memo lookups are
    skipped - a cache hit would have no timeline to export), but finished
    results are still written to the cache as usual.

    ``progress`` attaches a live-telemetry sink: a callable receiving event
    dicts (``start``/``heartbeat`` from whichever process runs each job,
    ``done``/``error`` from the engine once the outcome is known; see
    ``harness/runner.py`` for the shipped sinks). On the parallel path the
    events cross process boundaries over a multiprocessing queue drained by
    a parent-side thread; the serial path delivers them directly. Progress
    never touches simulated state - fingerprints are bit-identical with it
    on or off.

    ``ledger`` controls the append-only run registry
    (:class:`~repro.harness.ledger.RunLedger`): by default every completed
    job is recorded in ``<cache_dir>/ledger.jsonl`` whenever a cache
    directory is attached; pass ``False`` to disable, or ``True`` to force
    (requires a cache dir). Ledger entries are derived *from* results and
    never feed back into cache keys or fingerprints.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        trace_dir: Optional[Union[str, Path]] = None,
        progress: Optional[Callable[[Dict], None]] = None,
        progress_epoch: int = DEFAULT_PROGRESS_EPOCH,
        ledger: Optional[bool] = None,
        kernel: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise EngineError(f"worker count must be >= 1, got {jobs}")
        self.workers = int(jobs)
        # Request-path engine for executed jobs. Not part of cache keys:
        # both kernels are fingerprint-identical by contract, so results
        # are interchangeable across kernels.
        self.kernel = kernel
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if (use_cache and cache_dir is not None) else None
        )
        self.trace_dir: Optional[Path] = Path(trace_dir) if trace_dir is not None else None
        self.progress = progress
        self.progress_epoch = max(1, int(progress_epoch))
        if ledger is True and cache_dir is None:
            raise EngineError("ledger=True requires a cache directory")
        want_ledger = cache_dir is not None if ledger is None else ledger
        self.ledger: Optional[RunLedger] = (
            RunLedger(cache_dir) if (want_ledger and cache_dir is not None) else None
        )
        self.stats = EngineStats()
        self.last_outcomes: List[JobOutcome] = []
        self._memo: Dict[SimJob, RunResult] = {}

    # -- execution ---------------------------------------------------------
    def run_jobs(self, jobs: Sequence[SimJob]) -> List[JobOutcome]:
        """Execute a batch; one outcome per input job, in input order.

        Duplicate jobs are folded into a single execution. A job that fails
        yields an outcome with ``error`` set; the rest of the batch still
        completes (and successful results are still cached).
        """
        unique: Dict[SimJob, str] = {}
        for job in jobs:
            if job not in unique:
                unique[job] = job.fingerprint()

        outcomes: Dict[SimJob, JobOutcome] = {}
        pending: List[SimJob] = []
        tracing = self.trace_dir is not None
        for job, fingerprint in unique.items():
            if tracing:
                # A cached result has no timeline to export; simulate fresh.
                pending.append(job)
                continue
            memoized = self._memo.get(job)
            if memoized is not None:
                self.stats.memory_hits += 1
                outcomes[job] = JobOutcome(job, result=memoized, source="memory")
                self._emit_done(job.label(), True, "memory", 0.0)
                continue
            cached = self.cache.get(fingerprint) if self.cache is not None else None
            if cached is not None:
                self.stats.disk_hits += 1
                self._memo[job] = cached
                outcomes[job] = JobOutcome(job, result=cached, source="disk")
                self._emit_done(job.label(), True, "disk", 0.0)
                continue
            pending.append(job)

        if pending:
            for job, (ok, payload, wall) in zip(pending, self._execute_batch(pending)):
                self.stats.simulations += 1
                if ok:
                    result = payload
                    self._memo[job] = result
                    if self.cache is not None:
                        self.cache.put(unique[job], job, result)
                    outcomes[job] = JobOutcome(
                        job, result=result, source="run", wall_s=wall
                    )
                else:
                    self.stats.errors += 1
                    outcomes[job] = JobOutcome(
                        job, error=str(payload), source="run", wall_s=wall
                    )

        if self.ledger is not None:
            for outcome in outcomes.values():
                if outcome.ok:
                    self.ledger.append(LedgerEntry.from_outcome(outcome, SCHEMA_VERSION))

        self.last_outcomes = [outcomes[job] for job in jobs]
        return list(self.last_outcomes)

    def _emit_done(self, label: str, ok: bool, source: str, wall_s: float) -> None:
        """Terminal progress event for one unique job of the current batch."""
        if self.progress is None:
            return
        try:
            self.progress(
                {
                    "kind": "done" if ok else "error",
                    "job": label,
                    "source": source,
                    "wall_s": round(wall_s, 6),
                }
            )
        except Exception:
            pass

    def map(self, jobs: Sequence[SimJob]) -> Dict[SimJob, RunResult]:
        """Like :meth:`run_jobs` but demand total success.

        Raises :class:`~repro.errors.EngineError` summarizing every failed
        job; otherwise returns {job: result} covering the whole batch.
        """
        outcomes = self.run_jobs(jobs)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            lines = [f"{len(failures)} of {len(outcomes)} jobs failed:"]
            for outcome in failures:
                reason = (outcome.error or "").strip().splitlines()
                lines.append(f"  {outcome.job.label()}: {reason[-1] if reason else 'unknown error'}")
            raise EngineError("\n".join(lines))
        return {o.job: o.result for o in outcomes}

    def matrix(
        self,
        config: SystemConfig,
        benches: Sequence[str],
        models: Sequence[str],
        n_accesses: int,
        seed: int,
    ) -> Dict[Tuple[str, str], RunResult]:
        """Run the (bench x model) cross product; {(bench, model): result}."""
        jobs = [
            SimJob.of(config, bench, model, n_accesses, seed)
            for bench in benches
            for model in models
        ]
        results = self.map(jobs)
        return {(job.trace.bench, job.model): results[job] for job in jobs}

    def run_one(
        self,
        config: SystemConfig,
        bench: str,
        model: str,
        n_accesses: int,
        seed: int,
    ) -> RunResult:
        """Run (or reuse) a single simulation."""
        job = SimJob.of(config, bench, model, n_accesses, seed)
        return self.map([job])[job]

    def _execute_batch(
        self, pending: Sequence[SimJob]
    ) -> List[Tuple[bool, object, float]]:
        """Run misses, in parallel when configured and possible.

        Emits the terminal ``done``/``error`` progress event for each job as
        its result arrives - incrementally, not after the whole batch.
        """
        if self.workers > 1 and len(pending) > 1:
            results = self._execute_parallel(pending)
            if results is not None:
                return results
            # Pool unavailable (restricted sandbox, broken pickling,
            # resource limits): fall back to the serial path below. If the
            # pool died mid-batch, a handful of done events may repeat -
            # cosmetic only; outcomes come solely from the serial rerun.
        sink = _CallbackSink(self.progress) if self.progress is not None else None
        results = []
        for job in pending:
            outcome = _execute_job(
                job, self._trace_path_for(job), sink, self.progress_epoch,
                self.kernel,
            )
            self._emit_done(job.label(), outcome[0], "run", outcome[2])
            results.append(outcome)
        return results

    def _execute_parallel(
        self, pending: Sequence[SimJob]
    ) -> Optional[List[Tuple[bool, object, float]]]:
        """Pool execution; None when no pool could run the batch."""
        import multiprocessing

        manager = None
        drainer = None
        events = None
        try:
            if self.progress is not None:
                # Manager queue: its proxy pickles into pool workers, unlike
                # a raw multiprocessing.Queue handed through pool.map args.
                manager = multiprocessing.Manager()
                events = manager.Queue()
                drainer = _QueueDrainer(events, self.progress)
            items = [
                (job, self._trace_path_for(job), events, self.progress_epoch,
                 self.kernel)
                for job in pending
            ]
            workers = min(self.workers, len(pending))
            results: List[Tuple[bool, object, float]] = []
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for job, outcome in zip(pending, pool.map(_execute_job_entry, items)):
                    self._emit_done(job.label(), outcome[0], "run", outcome[2])
                    results.append(outcome)
            return results
        except Exception:
            return None
        finally:
            if drainer is not None:
                drainer.finish()
            if manager is not None:
                try:
                    manager.shutdown()
                except Exception:
                    pass

    def _trace_path_for(self, job: SimJob) -> Optional[str]:
        if self.trace_dir is None:
            return None
        return str(self.trace_dir / job.trace_filename())

    # -- cache management --------------------------------------------------
    def clear_memory(self) -> None:
        """Forget in-process memoized results (disk entries survive)."""
        self._memo.clear()

    def clear_disk(self) -> None:
        """Invalidate the persistent cache, if one is attached."""
        if self.cache is not None:
            self.cache.clear()


# One process-wide serial, memory-only engine backs the plain function API
# (`cached_run` and the `run_figXX_*` defaults), mirroring the old
# `_run_cache` behaviour: figures 10-12 share simulations within a process,
# and nothing touches the filesystem unless a cache dir is requested.
_default_engine: Optional[ExperimentEngine] = None


def default_engine() -> ExperimentEngine:
    global _default_engine
    if _default_engine is None:
        _default_engine = ExperimentEngine()
    return _default_engine

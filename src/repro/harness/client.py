"""HTTP client for the simulation job service (``repro serve``).

Two layers, both stdlib-only:

* :class:`ServiceClient` - a thin wrapper over the service's HTTP API
  (docs/SERVICE.md): submit jobs, long-poll results, stream NDJSON
  progress events, hit the admin endpoints. Saturation (HTTP 429) is
  retried with the server-suggested ``Retry-After`` backoff before
  surfacing as :class:`~repro.errors.ServiceSaturatedError` - clients
  are the retry loop the backpressure design assumes.

* :class:`RemoteEngine` - an :class:`~repro.harness.engine.ExperimentEngine`
  drop-in (``run_jobs``/``map``/``matrix``/``run_one``/``stats``/
  ``last_outcomes``) that executes every job on a shared server instead of
  in-process. ``repro run --server URL`` and friends route through it;
  nothing above the engine seam can tell the difference, because the
  client *proves* it: every returned result is deserialized locally and
  its fingerprint is checked against both the submitted job and the
  server's claim. A mismatch is an error, never a silent wrong answer.

Results obtained remotely carry outcome sources ``"run"``/``"disk"`` (how
the server got them) or ``"coalesced"``/``"memory"`` (this submission
attached to another client's in-flight or completed record) - the same
taxonomy the run ledger records server-side.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..errors import ServiceClosedError, ServiceError, ServiceSaturatedError
from ..gpu.gpusim import RunResult
from .engine import EngineStats, JobOutcome, SimJob

DEFAULT_TIMEOUT_S = 120.0
#: Submission attempts before a saturated server's 429 is surfaced.
DEFAULT_SUBMIT_ATTEMPTS = 8


class RemoteStats(EngineStats):
    """Engine counters plus the service-only ``coalesced`` source."""

    def __init__(self) -> None:
        super().__init__()
        self.coalesced = 0

    def as_dict(self) -> Dict[str, int]:
        data = super().as_dict()
        data["coalesced"] = self.coalesced
        return data


class ServiceClient:
    """Synchronous HTTP client for one job-service instance.

    ``base_url`` is the server root (e.g. ``http://127.0.0.1:8765``);
    a trailing slash is tolerated. ``timeout_s`` bounds each HTTP request;
    result waits pass their own long-poll budget through to the server and
    keep a margin on top for transport.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        submit_attempts: int = DEFAULT_SUBMIT_ATTEMPTS,
    ) -> None:
        if "://" not in base_url:
            base_url = "http://" + base_url
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.submit_attempts = max(1, int(submit_attempts))

    # -- transport -----------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        timeout_s: Optional[float] = None,
    ) -> Tuple[int, dict]:
        """One JSON request/response; HTTP error bodies are returned, not
        raised (the caller maps status codes to the error taxonomy)."""
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers
        )
        timeout = self.timeout_s if timeout_s is None else timeout_s
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, self._decode(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, self._decode(exc.read())
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach job service at {self.base_url}: {exc}"
            ) from exc

    @staticmethod
    def _decode(raw: bytes) -> dict:
        try:
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {"error": raw.decode("utf-8", "replace")[:200]}
        return body if isinstance(body, dict) else {"value": body}

    # -- job API -------------------------------------------------------------
    def submit(self, job: SimJob) -> dict:
        """Submit one job; returns the server's record snapshot.

        The snapshot carries ``coalesced`` (True when no new work was
        enqueued). A saturated server (HTTP 429) is retried with the
        advertised ``Retry-After`` backoff; a draining one (503) and
        persistent saturation raise immediately/after retries.
        """
        return self.submit_payload(job_payload(job))

    def submit_payload(self, payload: dict) -> dict:
        last_retry_after = 1.0
        for attempt in range(self.submit_attempts):
            status, body = self.request("POST", "/jobs", payload)
            if status in (200, 202):
                return body
            if status == 429:
                last_retry_after = float(body.get("retry_after_s", 1.0))
                if attempt + 1 < self.submit_attempts:
                    time.sleep(last_retry_after)
                    continue
                raise ServiceSaturatedError(
                    body.get("error", "job service saturated"),
                    retry_after_s=last_retry_after,
                )
            if status == 503:
                raise ServiceClosedError(
                    body.get("error", "job service is draining")
                )
            raise ServiceError(
                f"submit failed (HTTP {status}): {body.get('error', body)}"
            )
        raise ServiceSaturatedError(  # pragma: no cover - loop always returns
            "job service saturated", retry_after_s=last_retry_after
        )

    def status(self, fingerprint: str) -> dict:
        status, body = self.request("GET", f"/jobs/{fingerprint}")
        if status != 200:
            raise ServiceError(
                f"no such job {fingerprint[:12]} (HTTP {status})"
            )
        return body

    def result(self, fingerprint: str, timeout_s: float = 300.0) -> dict:
        """Block until the job completes; returns the result envelope.

        The server long-polls in bounded slices; this loops until the job
        reaches a terminal state or ``timeout_s`` expires.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"timed out after {timeout_s:g}s waiting for "
                    f"{fingerprint[:12]}"
                )
            slice_s = min(30.0, max(1.0, remaining))
            status, body = self.request(
                "GET",
                f"/jobs/{fingerprint}/result?timeout={slice_s:g}",
                timeout_s=slice_s + 15.0,
            )
            if status == 200:
                return body
            if status == 408:
                continue
            raise ServiceError(
                f"result fetch failed (HTTP {status}): "
                f"{body.get('error', body)}"
            )

    def events(self, fingerprint: str, timeout_s: float = 300.0) -> Iterator[dict]:
        """Stream the job's NDJSON progress events until its terminal one."""
        req = urllib.request.Request(
            f"{self.base_url}/jobs/{fingerprint}/events",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout_s) as resp:
                if resp.status != 200:
                    raise ServiceError(
                        f"event stream failed (HTTP {resp.status})"
                    )
                for line in resp:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line.decode("utf-8"))
                    except ValueError:
                        continue
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(f"event stream interrupted: {exc}") from exc

    # -- service/admin API ---------------------------------------------------
    def health(self) -> dict:
        status, body = self.request("GET", "/healthz")
        if status != 200:
            raise ServiceError(f"health check failed (HTTP {status})")
        return body

    def stats(self) -> dict:
        status, body = self.request("GET", "/stats")
        if status != 200:
            raise ServiceError(f"stats fetch failed (HTTP {status})")
        return body

    def pause(self) -> dict:
        return self._admin("pause")

    def resume(self) -> dict:
        return self._admin("resume")

    def evict(self) -> dict:
        return self._admin("evict")

    def shutdown(self, drain: bool = True) -> dict:
        return self._admin("shutdown", {"drain": drain})

    def _admin(self, action: str, payload: Optional[dict] = None) -> dict:
        status, body = self.request("POST", f"/admin/{action}", payload or {})
        if status != 200:
            raise ServiceError(
                f"admin {action} failed (HTTP {status}): "
                f"{body.get('error', body)}"
            )
        return body


def job_payload(job: SimJob) -> dict:
    """Serialize a :class:`SimJob` for ``POST /jobs``."""
    return {
        "bench": job.trace.bench,
        "model": job.model,
        "n_accesses": job.trace.n_accesses,
        "seed": job.trace.seed,
        "config": job.config.to_dict(),
    }


class RemoteEngine:
    """Run simulation jobs on a shared job service; engine-API compatible.

    The contract with in-process execution is *bit-identity*, enforced
    client-side on every job:

    1. the server's job fingerprint must equal the locally computed
       ``job.fingerprint()`` (same content-addressing on both ends), and
    2. the returned result, deserialized locally, must hash to the
       ``result_fingerprint`` the server claims.

    Tracing is not supported remotely (a Chrome trace is a property of one
    in-process execution); callers wanting ``--trace`` run locally.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        result_timeout_s: float = 600.0,
        progress: Optional[Callable[[Dict], None]] = None,
        client: Optional[ServiceClient] = None,
    ) -> None:
        self.client = client or ServiceClient(base_url, timeout_s=timeout_s)
        self.result_timeout_s = result_timeout_s
        self.progress = progress
        self.stats = RemoteStats()
        self.last_outcomes: List[JobOutcome] = []
        self.workers = 0  # execution happens server-side

    # -- engine surface ------------------------------------------------------
    def run_jobs(self, jobs: Sequence[SimJob]) -> List[JobOutcome]:
        """Submit a batch, then collect outcomes; input order preserved.

        Duplicate jobs fold into one submission (and identical jobs from
        *other* clients fold server-side - that is the service's whole
        point). All unique jobs are submitted before any result is
        awaited, so the server runs them concurrently.
        """
        unique: Dict[SimJob, dict] = {}
        submit_errors: Dict[SimJob, str] = {}
        for job in jobs:
            if job in unique or job in submit_errors:
                continue
            try:
                unique[job] = self.client.submit(job)
            except ServiceError as exc:
                submit_errors[job] = str(exc)

        outcomes: Dict[SimJob, JobOutcome] = {}
        for job, error in submit_errors.items():
            self.stats.errors += 1
            outcomes[job] = JobOutcome(job, error=error, source="run")
        for job, snapshot in unique.items():
            outcomes[job] = self._collect(job, snapshot)

        self.last_outcomes = [outcomes[job] for job in jobs]
        return list(self.last_outcomes)

    def _collect(self, job: SimJob, snapshot: dict) -> JobOutcome:
        fingerprint = job.fingerprint()
        if snapshot.get("fingerprint") != fingerprint:
            self.stats.errors += 1
            return JobOutcome(
                job,
                error=(
                    "server/client fingerprint mismatch for "
                    f"{job.label()}: sent {fingerprint[:12]}, server "
                    f"keyed {str(snapshot.get('fingerprint'))[:12]} "
                    "(config serialization drift?)"
                ),
            )
        if self.progress is not None:
            self._forward_events(fingerprint)
        try:
            envelope = self.client.result(
                fingerprint, timeout_s=self.result_timeout_s
            )
        except ServiceError as exc:
            self.stats.errors += 1
            return JobOutcome(job, error=str(exc), source="run")
        if envelope.get("state") != "done":
            self.stats.errors += 1
            return JobOutcome(
                job,
                error=envelope.get("error", f"job state {envelope.get('state')}"),
                source=str(envelope.get("source", "run")),
                wall_s=float(envelope.get("wall_s", 0.0)),
            )
        try:
            result = RunResult.from_dict(envelope["result"])
        except (KeyError, TypeError, ValueError) as exc:
            self.stats.errors += 1
            return JobOutcome(
                job, error=f"undecodable result payload: {exc!r}"
            )
        local_fp = result.fingerprint()
        claimed = envelope.get("result_fingerprint")
        if claimed != local_fp:
            # The one error that must never pass silently: the service
            # returned something that does not hash to what it claims.
            self.stats.errors += 1
            return JobOutcome(
                job,
                error=(
                    f"result fingerprint mismatch for {job.label()}: "
                    f"server claims {str(claimed)[:12]}, local hash is "
                    f"{local_fp[:12]}"
                ),
            )
        source = self._source(snapshot, envelope)
        self._count(source)
        return JobOutcome(
            job,
            result=result,
            source=source,
            wall_s=float(envelope.get("wall_s", 0.0)),
        )

    @staticmethod
    def _source(snapshot: dict, envelope: dict) -> str:
        """Client-visible outcome source.

        A coalesced submission is reported as such (it attached to another
        record in flight, or ``"memory"`` if that record had already
        completed); a fresh one reports how the server obtained the result
        (``"run"`` or ``"disk"``).
        """
        if snapshot.get("coalesced"):
            if snapshot.get("state") in ("done", "error", "cancelled"):
                return "memory"
            return "coalesced"
        return str(envelope.get("source", "run"))

    def _count(self, source: str) -> None:
        if source == "run":
            self.stats.simulations += 1
        elif source == "disk":
            self.stats.disk_hits += 1
        elif source == "coalesced":
            self.stats.coalesced += 1
        else:
            self.stats.memory_hits += 1

    def _forward_events(self, fingerprint: str) -> None:
        try:
            for event in self.client.events(
                fingerprint, timeout_s=self.result_timeout_s
            ):
                try:
                    self.progress(event)
                except Exception:
                    pass
        except ServiceError:
            pass  # progress is an observer; the result fetch decides fate

    def map(self, jobs: Sequence[SimJob]) -> Dict[SimJob, RunResult]:
        """Like :meth:`run_jobs` but demand total success (engine contract)."""
        from ..errors import EngineError

        outcomes = self.run_jobs(jobs)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            lines = [
                f"{len(failures)} of {len(outcomes)} remote jobs failed:"
            ]
            for outcome in failures:
                reason = (outcome.error or "").strip().splitlines()
                lines.append(
                    f"  {outcome.job.label()}: "
                    f"{reason[-1] if reason else 'unknown error'}"
                )
            raise EngineError("\n".join(lines))
        return {o.job: o.result for o in outcomes}

    def matrix(
        self,
        config: SystemConfig,
        benches: Sequence[str],
        models: Sequence[str],
        n_accesses: int,
        seed: int,
    ) -> Dict[Tuple[str, str], RunResult]:
        jobs = [
            SimJob.of(config, bench, model, n_accesses, seed)
            for bench in benches
            for model in models
        ]
        results = self.map(jobs)
        return {(job.trace.bench, job.model): results[job] for job in jobs}

    def run_one(
        self,
        config: SystemConfig,
        bench: str,
        model: str,
        n_accesses: int,
        seed: int,
    ) -> RunResult:
        job = SimJob.of(config, bench, model, n_accesses, seed)
        return self.map([job])[job]

"""Experiment harness: everything needed to regenerate the paper's figures.

:mod:`repro.harness.runner` runs one (config, model, workload) triple;
:mod:`repro.harness.engine` turns sweeps into jobs (parallel workers +
persistent result cache); :mod:`repro.harness.experiments` defines each
figure's sweep and returns the rows the paper plots;
:mod:`repro.harness.report` renders them as aligned text tables for the
benchmark output; :mod:`repro.harness.ledger` keeps the append-only
registry of completed runs; :mod:`repro.harness.diff` localizes the first
divergence between two runs.
"""

from .runner import MODEL_NAMES, model_factory, run_benchmark, run_model
from .engine import (
    SCHEMA_VERSION,
    ExperimentEngine,
    JobOutcome,
    ResultCache,
    SimJob,
    TraceSpec,
    default_engine,
)
from .experiments import (
    AblationResult,
    FigureResult,
    run_ablation,
    run_fig03_motivation,
    run_fig10_ipc,
    run_fig11_traffic,
    run_fig12_bandwidth,
    run_fig13_cxl_bw,
    run_fig14_footprint,
)
from .report import format_table, geomean
from .ledger import LedgerEntry, RunLedger
from .diff import DiffOutcome, diff_paths

__all__ = [
    "AblationResult",
    "DiffOutcome",
    "ExperimentEngine",
    "FigureResult",
    "JobOutcome",
    "LedgerEntry",
    "MODEL_NAMES",
    "ResultCache",
    "RunLedger",
    "SCHEMA_VERSION",
    "SimJob",
    "TraceSpec",
    "default_engine",
    "diff_paths",
    "format_table",
    "geomean",
    "model_factory",
    "run_ablation",
    "run_benchmark",
    "run_fig03_motivation",
    "run_fig10_ipc",
    "run_fig11_traffic",
    "run_fig12_bandwidth",
    "run_fig13_cxl_bw",
    "run_fig14_footprint",
    "run_model",
]

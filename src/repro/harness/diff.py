"""First-divergence diffing between two runs (``repro diff A B``).

The determinism contract makes "the fingerprints differ" a strong signal -
and a useless lead: sha-256 says *that* two runs diverged, never *where*.
This module turns a failed fingerprint gate into a pointed one by comparing
the two runs' deterministic artifacts directly:

* **Result diffs** - two serialized :class:`~repro.gpu.gpusim.RunResult`
  payloads (``repro run --json`` dumps, result-cache entries, or
  ``bench_perf.py --dump-results`` files). The report lists the differing
  summary fields, then the *subtree of differing metric leaves* (via
  :func:`repro.sim.metrics.diff_trees`), the model/event counters and the
  side.category traffic tallies that moved - sorted, grouped, and truncated
  to stay readable.
* **Trace diffs** - two Chrome-trace exports from
  :mod:`repro.sim.trace`. Event streams are insertion-ordered and
  byte-deterministic, so the two streams of an identical simulation match
  element-wise; the first position where they disagree *is* the first
  behavioural divergence. The report names that exact event on both sides
  with a window of surrounding context.

Inputs are auto-detected by shape (``traceEvents`` key = Chrome trace;
otherwise one RunResult dict or a list of them, paired by
``workload/model``). Everything here is read-only and deterministic: the
same two files always render the same report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..sim.metrics import diff_trees, group_diffs_by_subtree
from ..sim.trace import (
    first_event_divergence,
    normalized_events,
    render_normalized_event,
)


class DiffError(ReproError):
    """Unusable diff input (unreadable file, unrecognized payload shape)."""


#: Scalar fields of a serialized RunResult compared in the summary table.
SUMMARY_FIELDS = (
    "workload",
    "model",
    "ipc",
    "cycles",
    "instructions",
    "fills",
    "evictions",
    "security_bytes",
)

#: Leading context events shown on each side of a trace divergence.
DEFAULT_CONTEXT = 5

#: Differing metric leaves rendered per report before truncation.
DEFAULT_MAX_LEAVES = 40


def load_payload(path: Union[str, Path]) -> Tuple[str, object]:
    """Read and classify one diff input.

    Returns ``("trace", payload_dict)`` for a Chrome-trace export or
    ``("results", [result_dict, ...])`` for serialized RunResults (a single
    dict is wrapped). Raises :class:`DiffError` otherwise.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise DiffError(f"{path}: not readable JSON: {exc}") from exc
    if isinstance(data, dict) and "traceEvents" in data:
        return "trace", data
    if isinstance(data, dict):
        data = [data]
    if isinstance(data, list) and data and all(
        isinstance(e, dict) and "model" in e and "workload" in e for e in data
    ):
        return "results", data
    raise DiffError(
        f"{path}: neither a Chrome trace (traceEvents) nor serialized "
        f"RunResults ('repro run --json' output)"
    )


# -- result diffing ----------------------------------------------------------

@dataclass
class ResultDiff:
    """Everything that differs between two serialized RunResults."""

    label_a: str
    label_b: str
    summary: List[Tuple[str, object, object]] = field(default_factory=list)
    metrics: Dict[str, Tuple] = field(default_factory=dict)
    counters: Dict[str, Tuple] = field(default_factory=dict)
    traffic: Dict[str, Tuple] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return not (self.summary or self.metrics or self.counters or self.traffic)

    def first_metric(self) -> Optional[str]:
        """The first (sorted) differing metric leaf - the headline lead."""
        return next(iter(self.metrics), None)

    def render(self, max_leaves: int = DEFAULT_MAX_LEAVES) -> str:
        head = f"results: {self.label_a}  vs  {self.label_b}"
        if self.identical:
            return f"{head}\n  identical (all summary fields, metrics, counters and traffic tallies agree)"
        lines = [head]
        if self.summary:
            lines.append("  summary fields:")
            for name, va, vb in self.summary:
                lines.append(f"    {name:<18} {_fmt(va):>16}  ->  {_fmt(vb)}")
        if self.traffic:
            lines.append("  traffic tallies (side.category bytes):")
            for name, (va, vb) in self.traffic.items():
                lines.append(f"    {name:<24} {_fmt(va):>16}  ->  {_fmt(vb)}")
        if self.metrics:
            lines.append(
                f"  differing metric leaves ({len(self.metrics)} total), "
                f"grouped by subtree:"
            )
            shown = 0
            for prefix, members in group_diffs_by_subtree(self.metrics).items():
                lines.append(f"    [{prefix}]")
                for name, (va, vb) in members.items():
                    if shown >= max_leaves:
                        break
                    lines.append(f"      {name:<38} {_fmt(va):>16}  ->  {_fmt(vb)}")
                    shown += 1
                if shown >= max_leaves:
                    lines.append(
                        f"    ... {len(self.metrics) - shown} more leaves "
                        f"(rerun with --max-leaves to widen)"
                    )
                    break
        if self.counters:
            lines.append("  counters:")
            for name, (va, vb) in list(self.counters.items())[:max_leaves]:
                lines.append(f"    {name:<38} {_fmt(va):>16}  ->  {_fmt(vb)}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "<absent>"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _numeric_view(mapping: object) -> Dict[str, object]:
    return dict(mapping) if isinstance(mapping, dict) else {}


def diff_result_dicts(
    a: Dict, b: Dict, label_a: str = "A", label_b: str = "B"
) -> ResultDiff:
    """Compare two serialized RunResult payloads field by field."""
    diff = ResultDiff(label_a=label_a, label_b=label_b)
    for name in SUMMARY_FIELDS:
        va, vb = a.get(name), b.get(name)
        if va != vb:
            diff.summary.append((name, va, vb))
    diff.metrics = diff_trees(_numeric_view(a.get("metrics")), _numeric_view(b.get("metrics")))
    diff.counters = diff_trees(_numeric_view(a.get("counters")), _numeric_view(b.get("counters")))
    stats_a, stats_b = a.get("stats", {}), b.get("stats", {})
    diff.traffic = diff_trees(
        _numeric_view(stats_a.get("traffic_bytes", a.get("traffic_bytes"))),
        _numeric_view(stats_b.get("traffic_bytes", b.get("traffic_bytes"))),
    )
    # Event counters tallied on the registry (chunk fills etc.) that are not
    # part of the merged RunResult.counters namespace.
    stat_counters = diff_trees(
        _numeric_view(stats_a.get("counters")), _numeric_view(stats_b.get("counters"))
    )
    for key, pair in stat_counters.items():
        diff.counters.setdefault(key, pair)
    return diff


def pair_results(
    a: Sequence[Dict], b: Sequence[Dict], pick: Optional[str] = None
) -> List[Tuple[Dict, Dict, str]]:
    """Match two RunResult lists into ``(a, b, label)`` diff pairs.

    Results are keyed by ``workload/model``; keys present on both sides are
    paired (singletons pair directly even under different keys, which is
    what comparing e.g. two models of one workload means). ``pick``
    restricts to one ``workload/model`` key.
    """
    if len(a) == 1 and len(b) == 1 and pick is None:
        return [(a[0], b[0], _result_key(a[0]))]
    index_a = {_result_key(r): r for r in a}
    index_b = {_result_key(r): r for r in b}
    keys = [k for k in index_a if k in index_b]
    if pick is not None:
        keys = [k for k in keys if k == pick]
        if not keys:
            raise DiffError(
                f"no common run named {pick!r}; common runs: "
                f"{sorted(set(index_a) & set(index_b)) or 'none'}"
            )
    if not keys:
        raise DiffError(
            f"no common workload/model pairs to diff "
            f"(A has {sorted(index_a)}, B has {sorted(index_b)})"
        )
    return [(index_a[k], index_b[k], k) for k in keys]


def _result_key(result: Dict) -> str:
    return f"{result.get('workload')}/{result.get('model')}"


# -- trace diffing -----------------------------------------------------------

@dataclass
class TraceDiff:
    """First divergence between two Chrome-trace event streams."""

    label_a: str
    label_b: str
    index: Optional[int]
    event_a: Optional[tuple]
    event_b: Optional[tuple]
    context: List[tuple] = field(default_factory=list)
    total_a: int = 0
    total_b: int = 0

    @property
    def identical(self) -> bool:
        return self.index is None

    def render(self) -> str:
        head = f"traces: {self.label_a}  vs  {self.label_b}"
        if self.identical:
            return (
                f"{head}\n  identical ({self.total_a} events align "
                f"element-wise)"
            )
        lines = [
            head,
            f"  streams diverge at event index {self.index} "
            f"(A has {self.total_a} events, B has {self.total_b}):",
        ]
        if self.context:
            lines.append(f"  shared context (last {len(self.context)} aligned events):")
            for offset, event in enumerate(self.context):
                idx = self.index - len(self.context) + offset
                lines.append(f"    [{idx}] {render_normalized_event(event)}")
        lines.append(f"  first divergence:")
        lines.append(f"    A[{self.index}]: {render_normalized_event(self.event_a)}")
        lines.append(f"    B[{self.index}]: {render_normalized_event(self.event_b)}")
        return "\n".join(lines)


def diff_chrome_traces(
    a: Dict,
    b: Dict,
    label_a: str = "A",
    label_b: str = "B",
    context: int = DEFAULT_CONTEXT,
) -> TraceDiff:
    """Align two Chrome-trace exports; report the first differing event."""
    events_a = normalized_events(a)
    events_b = normalized_events(b)
    index = first_event_divergence(events_a, events_b)
    if index is None:
        return TraceDiff(label_a, label_b, None, None, None,
                         total_a=len(events_a), total_b=len(events_b))
    lo = max(0, index - max(0, context))
    return TraceDiff(
        label_a=label_a,
        label_b=label_b,
        index=index,
        event_a=events_a[index] if index < len(events_a) else None,
        event_b=events_b[index] if index < len(events_b) else None,
        context=events_a[lo:index],
        total_a=len(events_a),
        total_b=len(events_b),
    )


# -- top level ---------------------------------------------------------------

@dataclass
class DiffOutcome:
    """What ``repro diff`` prints, plus the one bit gates care about."""

    identical: bool
    text: str


def diff_paths(
    path_a: Union[str, Path],
    path_b: Union[str, Path],
    pick: Optional[str] = None,
    context: int = DEFAULT_CONTEXT,
    max_leaves: int = DEFAULT_MAX_LEAVES,
) -> DiffOutcome:
    """Diff two run artifacts (result JSONs or Chrome traces) by path."""
    kind_a, payload_a = load_payload(path_a)
    kind_b, payload_b = load_payload(path_b)
    if kind_a != kind_b:
        raise DiffError(
            f"cannot diff a {kind_a} file against a {kind_b} file "
            f"({path_a} vs {path_b})"
        )
    label_a, label_b = str(path_a), str(path_b)
    if kind_a == "trace":
        trace_diff = diff_chrome_traces(
            payload_a, payload_b, label_a, label_b, context=context
        )
        return DiffOutcome(trace_diff.identical, trace_diff.render())

    pairs = pair_results(payload_a, payload_b, pick=pick)
    blocks: List[str] = []
    identical = True
    for entry_a, entry_b, key in pairs:
        result_diff = diff_result_dicts(
            entry_a, entry_b, f"{label_a}:{key}", f"{label_b}:{key}"
        )
        identical = identical and result_diff.identical
        blocks.append(result_diff.render(max_leaves=max_leaves))
    return DiffOutcome(identical, "\n\n".join(blocks))

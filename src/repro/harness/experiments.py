"""Per-figure experiment definitions (paper Section V).

Each ``run_figXX_*`` function sweeps exactly what the corresponding paper
figure sweeps and returns a :class:`FigureResult` whose rows mirror the
figure's bars/series. Paper-vs-measured numbers for each figure are recorded
in EXPERIMENTS.md.

Every figure expresses its sweep as a batch of
:class:`~repro.harness.engine.SimJob` and submits it to an
:class:`~repro.harness.engine.ExperimentEngine` up front, so the whole
cross product can run in parallel workers and/or be served from the
persistent result cache. With no engine argument the process-wide default
engine is used (serial, memory-only), which preserves the old behaviour:
Figures 10, 11 and 12 are three views of the same three simulations per
benchmark and share them within the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..gpu.gpusim import RunResult
from ..sim.stats import Side
from ..workloads.suite import benchmark_names
from .engine import ExperimentEngine, SimJob, default_engine
from .report import format_table, geomean

DEFAULT_ACCESSES = 40_000
DEFAULT_SEED = 7

EVAL_MODELS = ("nosec", "baseline", "salus")


def cached_run(
    config: SystemConfig,
    bench: str,
    model: str,
    n_accesses: int,
    seed: int,
) -> RunResult:
    """Run (or reuse) one simulation on the process-wide default engine."""
    return default_engine().run_one(config, bench, model, n_accesses, seed)


def clear_cache() -> None:
    """Forget the default engine's in-process results (not the disk cache)."""
    default_engine().clear_memory()


@dataclass
class FigureResult:
    """Rows and summary statistics of one regenerated figure."""

    figure: str
    title: str
    headers: Tuple[str, ...]
    rows: List[Tuple] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        body = format_table(self.headers, self.rows, title=self.title)
        if self.summary:
            lines = [body, ""]
            for k, v in self.summary.items():
                lines.append(f"{k}: {v:.4f}")
            return "\n".join(lines)
        return body


@dataclass
class AblationResult(FigureResult):
    pass


def _benches(benchmarks: Optional[Sequence[str]]) -> Tuple[str, ...]:
    return tuple(benchmarks) if benchmarks else benchmark_names()


def _engine(engine: Optional[ExperimentEngine]) -> ExperimentEngine:
    return engine if engine is not None else default_engine()


# --------------------------------------------------------------------------- Fig 3
def run_fig03_motivation(
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    n_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    engine: Optional[ExperimentEngine] = None,
) -> FigureResult:
    """Motivation: slowdown of location-tied security under migration.

    Compares conventional security against the same model with *free*
    migration security (paper: 2.04x geometric-mean slowdown).
    """
    config = config if config is not None else SystemConfig.bench()
    benches = _benches(benchmarks)
    runs = _engine(engine).matrix(
        config, benches, ("baseline", "baseline-freemove"), n_accesses, seed
    )
    result = FigureResult(
        figure="fig03",
        title="Fig. 3 - slowdown from location-tied security under migration",
        headers=("benchmark", "ipc_baseline", "ipc_free_migration", "slowdown"),
    )
    slowdowns = []
    for bench in benches:
        base = runs[(bench, "baseline")]
        free = runs[(bench, "baseline-freemove")]
        slowdown = free.ipc / base.ipc if base.ipc else float("nan")
        slowdowns.append(slowdown)
        result.rows.append((bench, base.ipc, free.ipc, slowdown))
    result.summary["geomean_slowdown"] = geomean(slowdowns)
    return result


# --------------------------------------------------------------------------- Fig 10
def run_fig10_ipc(
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    n_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    engine: Optional[ExperimentEngine] = None,
) -> FigureResult:
    """IPC normalized to the no-security system (paper: +29.94% geomean)."""
    config = config if config is not None else SystemConfig.bench()
    benches = _benches(benchmarks)
    runs = _engine(engine).matrix(config, benches, EVAL_MODELS, n_accesses, seed)
    result = FigureResult(
        figure="fig10",
        title="Fig. 10 - normalized IPC (baseline vs Salus, basis = no security)",
        headers=("benchmark", "baseline", "salus", "improvement"),
    )
    improvements = []
    for bench in benches:
        nosec = runs[(bench, "nosec")]
        base = runs[(bench, "baseline")]
        salus = runs[(bench, "salus")]
        base_norm = base.ipc / nosec.ipc
        salus_norm = salus.ipc / nosec.ipc
        improvement = salus_norm / base_norm
        improvements.append(improvement)
        result.rows.append((bench, base_norm, salus_norm, improvement))
    result.summary["geomean_improvement"] = geomean(improvements)
    result.summary["max_improvement"] = max(improvements)
    return result


# --------------------------------------------------------------------------- Fig 11
def run_fig11_traffic(
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    n_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    engine: Optional[ExperimentEngine] = None,
) -> FigureResult:
    """Security traffic under Salus, normalized to baseline.

    Paper: reduced by 52.03% on average (i.e. Salus at ~0.48x baseline).
    """
    config = config if config is not None else SystemConfig.bench()
    benches = _benches(benchmarks)
    runs = _engine(engine).matrix(
        config, benches, ("baseline", "salus"), n_accesses, seed
    )
    result = FigureResult(
        figure="fig11",
        title="Fig. 11 - security traffic (Salus / baseline)",
        headers=("benchmark", "baseline_MB", "salus_MB", "normalized"),
    )
    ratios = []
    for bench in benches:
        b = runs[(bench, "baseline")].stats.security_bytes()
        s = runs[(bench, "salus")].stats.security_bytes()
        ratio = s / b if b else float("nan")
        ratios.append(ratio)
        result.rows.append((bench, b / 1e6, s / 1e6, ratio))
    result.summary["mean_normalized_traffic"] = sum(ratios) / len(ratios)
    result.summary["min_normalized_traffic"] = min(ratios)
    return result


# --------------------------------------------------------------------------- Fig 12
def run_fig12_bandwidth(
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    n_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    engine: Optional[ExperimentEngine] = None,
) -> FigureResult:
    """Security share of each memory's bandwidth, Salus vs baseline.

    Paper: Salus uses 14.92% less of the CXL bandwidth and 2.05% less of the
    device bandwidth than the conventional design.
    """
    config = config if config is not None else SystemConfig.bench()
    benches = _benches(benchmarks)
    runs = _engine(engine).matrix(
        config, benches, ("baseline", "salus"), n_accesses, seed
    )
    result = FigureResult(
        figure="fig12",
        title="Fig. 12 - security bandwidth usage (fraction of run, per side)",
        headers=(
            "benchmark",
            "cxl_baseline", "cxl_salus",
            "dev_baseline", "dev_salus",
        ),
    )
    cxl_deltas = []
    dev_deltas = []
    link_bpc = config.gpu.cxl_bytes_per_cycle
    dev_bpc = (
        config.gpu.device_bytes_per_cycle_per_channel * config.gpu.num_channels
    )
    for bench in benches:
        base = runs[(bench, "baseline")]
        salus = runs[(bench, "salus")]

        def usage(res: RunResult, side: Side, capacity: float) -> float:
            if res.cycles <= 0:
                return 0.0
            return res.stats.security_bytes(side) / (capacity * res.cycles)

        row = (
            bench,
            usage(base, Side.CXL, link_bpc),
            usage(salus, Side.CXL, link_bpc),
            usage(base, Side.DEVICE, dev_bpc),
            usage(salus, Side.DEVICE, dev_bpc),
        )
        result.rows.append(row)
        cxl_deltas.append(row[1] - row[2])
        dev_deltas.append(row[3] - row[4])
    result.summary["mean_cxl_usage_reduction"] = sum(cxl_deltas) / len(cxl_deltas)
    result.summary["mean_device_usage_reduction"] = sum(dev_deltas) / len(dev_deltas)
    return result


# --------------------------------------------------------------------------- Fig 13
def run_fig13_cxl_bw(
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    ratios: Sequence[float] = (1 / 32, 1 / 16, 1 / 8, 1 / 4),
    n_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    engine: Optional[ExperimentEngine] = None,
) -> FigureResult:
    """Sensitivity to the CXL:device bandwidth ratio.

    Paper improvements: +32.79% (1/32), +29.94% (1/16), +32.90% (1/8),
    +21.76% (1/4).
    """
    config = config if config is not None else SystemConfig.bench()
    benches = _benches(benchmarks)
    configs = [(ratio, config.with_cxl_bw_ratio(ratio)) for ratio in ratios]
    # One batch for the whole sweep: every (ratio, bench, model) point is
    # independent, so workers can chew the entire figure at once.
    runs = _engine(engine).map(
        [
            SimJob.of(cfg, bench, model, n_accesses, seed)
            for _, cfg in configs
            for bench in benches
            for model in EVAL_MODELS
        ]
    )
    result = FigureResult(
        figure="fig13",
        title="Fig. 13 - sensitivity to CXL bandwidth (geomean over suite)",
        headers=("cxl_bw_ratio", "baseline_norm", "salus_norm", "improvement"),
    )
    for ratio, cfg in configs:
        base_norms, salus_norms = [], []
        for bench in benches:
            nosec = runs[SimJob.of(cfg, bench, "nosec", n_accesses, seed)]
            base = runs[SimJob.of(cfg, bench, "baseline", n_accesses, seed)]
            salus = runs[SimJob.of(cfg, bench, "salus", n_accesses, seed)]
            base_norms.append(base.ipc / nosec.ipc)
            salus_norms.append(salus.ipc / nosec.ipc)
        g_base = geomean(base_norms)
        g_salus = geomean(salus_norms)
        result.rows.append((f"1/{round(1/ratio)}", g_base, g_salus, g_salus / g_base))
        result.summary[f"improvement@1/{round(1/ratio)}"] = g_salus / g_base
    return result


# --------------------------------------------------------------------------- Fig 14
def run_fig14_footprint(
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    capacity_ratios: Sequence[float] = (0.20, 0.35, 0.50),
    n_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    engine: Optional[ExperimentEngine] = None,
) -> FigureResult:
    """Sensitivity to how much of the footprint fits in device memory.

    Paper improvements: +51.64% (20%), +34.48% (35%), +26.83% (50%).
    """
    config = config if config is not None else SystemConfig.bench()
    benches = _benches(benchmarks)
    configs = [(ratio, config.with_capacity_ratio(ratio)) for ratio in capacity_ratios]
    runs = _engine(engine).map(
        [
            SimJob.of(cfg, bench, model, n_accesses, seed)
            for _, cfg in configs
            for bench in benches
            for model in EVAL_MODELS
        ]
    )
    result = FigureResult(
        figure="fig14",
        title="Fig. 14 - sensitivity to device-capacity / footprint ratio",
        headers=("capacity_ratio", "baseline_norm", "salus_norm", "improvement"),
    )
    for ratio, cfg in configs:
        base_norms, salus_norms = [], []
        for bench in benches:
            nosec = runs[SimJob.of(cfg, bench, "nosec", n_accesses, seed)]
            base = runs[SimJob.of(cfg, bench, "baseline", n_accesses, seed)]
            salus = runs[SimJob.of(cfg, bench, "salus", n_accesses, seed)]
            base_norms.append(base.ipc / nosec.ipc)
            salus_norms.append(salus.ipc / nosec.ipc)
        g_base = geomean(base_norms)
        g_salus = geomean(salus_norms)
        result.rows.append((f"{ratio:.0%}", g_base, g_salus, g_salus / g_base))
        result.summary[f"improvement@{ratio:.0%}"] = g_salus / g_base
    return result


# --------------------------------------------------------------------------- topology
def run_topology_scaling(
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    device_counts: Sequence[int] = (1, 2, 4),
    ratios: Sequence[float] = (1 / 32, 1 / 16),
    sharding: str = "page",
    n_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    engine: Optional[ExperimentEngine] = None,
) -> FigureResult:
    """Multi-device CXL fabric scaling (Figure-13-style sensitivity sweep).

    Sweeps expansion-device count x per-link bandwidth ratio. Because
    Salus keys metadata to permanent CXL addresses, sharding the page
    space over more devices splits both data and security traffic over
    independent links with no re-keying; the ``salus_balance`` column
    (max/min per-device link bytes across the suite's Salus runs) shows
    how evenly the shard policy spreads the load.
    """
    config = config if config is not None else SystemConfig.bench()
    benches = _benches(benchmarks)
    points = [
        (devices, ratio, config.with_cxl_bw_ratio(ratio).with_cxl_devices(devices, sharding=sharding))
        for devices in device_counts
        for ratio in ratios
    ]
    runs = _engine(engine).map(
        [
            SimJob.of(cfg, bench, model, n_accesses, seed)
            for _, _, cfg in points
            for bench in benches
            for model in EVAL_MODELS
        ]
    )
    result = FigureResult(
        figure="topology",
        title=f"Topology scaling - devices x per-link bandwidth ({sharding} sharding)",
        headers=(
            "devices", "link_bw_ratio", "baseline_norm", "salus_norm",
            "improvement", "salus_balance",
        ),
    )
    for devices, ratio, cfg in points:
        base_norms, salus_norms = [], []
        balance = 1.0
        for bench in benches:
            nosec = runs[SimJob.of(cfg, bench, "nosec", n_accesses, seed)]
            base = runs[SimJob.of(cfg, bench, "baseline", n_accesses, seed)]
            salus = runs[SimJob.of(cfg, bench, "salus", n_accesses, seed)]
            base_norms.append(base.ipc / nosec.ipc)
            salus_norms.append(salus.ipc / nosec.ipc)
            if devices > 1:
                per_dev = [
                    salus.metrics.get(f"cxl.dev{d}.link_bytes", 0)
                    for d in range(devices)
                ]
                if min(per_dev) > 0:
                    balance = max(balance, max(per_dev) / min(per_dev))
                else:
                    balance = float("inf")
        g_base = geomean(base_norms)
        g_salus = geomean(salus_norms)
        result.rows.append(
            (devices, f"1/{round(1/ratio)}", g_base, g_salus,
             g_salus / g_base, balance)
        )
        result.summary[f"improvement@{devices}dev/1_{round(1/ratio)}"] = (
            g_salus / g_base
        )
    return result


# --------------------------------------------------------------------------- tenancy
def run_tenancy_sweep(
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    tenant_counts: Sequence[int] = (1, 2, 4),
    n_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    engine: Optional[ExperimentEngine] = None,
) -> FigureResult:
    """Isolation overhead vs security-domain count.

    For each tenant count ``T`` the compute/memory fabric is partitioned
    into ``T`` security domains (:meth:`SystemConfig.with_tenants`) and the
    suite runs as ``T`` mirrored per-tenant streams over disjoint page
    spans. The ``*_norm`` columns are the geomean IPC relative to the first
    tenant count in the sweep - the cost of carving the same hardware into
    more isolated planes. The ``*_victim`` columns re-run each point with
    the noisy-neighbor mix (tenant 0 keeps the real workload, every other
    tenant becomes a streaming migration hammer) and report tenant 0's
    per-tenant IPC relative to its mirrored-mix value: 1.0 means the
    partitioning fully shields the victim from its neighbors.
    """
    config = config if config is not None else SystemConfig.bench()
    benches = _benches(benchmarks)
    models = ("baseline", "salus")
    points = [(t, config.with_tenants(t)) for t in tenant_counts]
    jobs = []
    for t, cfg in points:
        for bench in benches:
            for model in models:
                jobs.append(
                    SimJob.of(cfg, bench, model, n_accesses, seed, tenants=t)
                )
                if t > 1:
                    jobs.append(
                        SimJob.of(
                            cfg, bench, model, n_accesses, seed,
                            tenants=t, tenant_mix="noisy",
                        )
                    )
    runs = _engine(engine).map(jobs)

    def victim_ipc(res: RunResult) -> Optional[float]:
        instructions = res.metrics.get("tenant0.instructions")
        if instructions is None or res.cycles <= 0:
            return None
        return instructions / res.cycles

    result = FigureResult(
        figure="tenancy",
        title="Tenancy - isolation overhead vs security-domain count",
        headers=(
            "tenants", "baseline_norm", "salus_norm",
            "baseline_victim", "salus_victim",
        ),
    )
    ref_t, ref_cfg = points[0]
    for t, cfg in points:
        row: List[object] = [t]
        victims: Dict[str, float] = {}
        for model in models:
            norms = []
            victim_ratios = []
            for bench in benches:
                ref = runs[
                    SimJob.of(ref_cfg, bench, model, n_accesses, seed, tenants=ref_t)
                ]
                run = runs[SimJob.of(cfg, bench, model, n_accesses, seed, tenants=t)]
                norms.append(run.ipc / ref.ipc if ref.ipc else float("nan"))
                if t > 1:
                    noisy = runs[
                        SimJob.of(
                            cfg, bench, model, n_accesses, seed,
                            tenants=t, tenant_mix="noisy",
                        )
                    ]
                    mirror_v = victim_ipc(run)
                    noisy_v = victim_ipc(noisy)
                    if mirror_v and noisy_v:
                        victim_ratios.append(noisy_v / mirror_v)
            g = geomean(norms)
            row.append(g)
            victims[model] = geomean(victim_ratios) if victim_ratios else 1.0
            result.summary[f"{model}_ipc@{t}t"] = g
        for model in models:
            row.append(victims[model])
        result.rows.append(tuple(row))
    return result


# --------------------------------------------------------------------------- ablation
def run_ablation(
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    n_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """Contribution of each Salus optimization (DESIGN.md Section 5)."""
    config = config if config is not None else SystemConfig.bench()
    variants = (
        ("baseline", "conventional"),
        ("salus-unified", "unified metadata only"),
        ("salus-nofoa", "full Salus minus fetch-on-access"),
        ("salus-nocollapse", "full Salus minus collapsed counters"),
        ("salus-coarsedirty", "full Salus minus fine dirty tracking"),
        ("salus", "full Salus"),
    )
    benches = _benches(benchmarks)
    models = ("nosec",) + tuple(model for model, _ in variants)
    runs = _engine(engine).matrix(config, benches, models, n_accesses, seed)
    result = AblationResult(
        figure="ablation",
        title="Ablation - normalized IPC and security traffic per variant",
        headers=("variant", "description", "ipc_norm", "sec_traffic_MB"),
    )
    for model, desc in variants:
        norms, traffic = [], 0.0
        for bench in benches:
            nosec = runs[(bench, "nosec")]
            run = runs[(bench, model)]
            norms.append(run.ipc / nosec.ipc)
            traffic += run.stats.security_bytes() / 1e6
        g = geomean(norms)
        result.rows.append((model, desc, g, traffic))
        result.summary[f"ipc_norm[{model}]"] = g
    return result

"""Run one simulation: a (configuration, security model, workload) triple.

The runner is the only place that knows how to build each security model, so
benchmarks, tests and examples all say ``run_model(config, trace, "salus")``
and get a :class:`~repro.gpu.gpusim.RunResult` back.

It also owns the *presentation* side of the live-telemetry channel: the
engine emits progress event dicts (see ``harness/engine.py``); the sinks
here render them - :class:`ProgressRenderer` for terminals,
:class:`ProgressJsonlWriter` for machine-readable ``--progress-jsonl``
files - and :func:`combine_progress_sinks` fans one event stream out to
several sinks. Sinks only ever *observe* events; enabling them is
fingerprint-inert by test.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict, Optional

from ..config import SalusConfig, SystemConfig
from ..core.salus import SalusSecurityModel
from ..errors import ConfigError
from ..gpu.gpusim import DEFAULT_PROGRESS_EPOCH, GpuSim, RunResult
from ..security.baseline import BaselineSecurityModel
from ..security.fabric import MemoryFabric
from ..security.none import NoSecurityModel
from ..workloads.trace import Trace

ModelFactory = Callable[[MemoryFabric], object]

MODEL_NAMES = (
    "nosec",
    "baseline",
    "baseline-freemove",
    "salus",
    "salus-unified",
    "salus-nofoa",
    "salus-nocollapse",
    "salus-coarsedirty",
)


def model_factory(name: str) -> ModelFactory:
    """Resolve a model name to its factory.

    The ``salus-*`` variants are the ablations of DESIGN.md Section 5;
    ``baseline-freemove`` is the Figure-3 comparison point (conventional
    security whose *migration* operations are free).
    """
    if name == "nosec":
        return NoSecurityModel
    if name == "baseline":
        return BaselineSecurityModel
    if name == "baseline-freemove":
        return lambda fabric: BaselineSecurityModel(fabric, free_migration_security=True)
    if name == "salus":
        return lambda fabric: SalusSecurityModel(fabric, SalusConfig.full())
    if name == "salus-unified":
        return lambda fabric: SalusSecurityModel(fabric, SalusConfig.unified_only())
    if name == "salus-nofoa":
        return lambda fabric: SalusSecurityModel(
            fabric, SalusConfig(fetch_on_access=False)
        )
    if name == "salus-nocollapse":
        return lambda fabric: SalusSecurityModel(
            fabric, SalusConfig(collapsed_counters=False)
        )
    if name == "salus-coarsedirty":
        return lambda fabric: SalusSecurityModel(
            fabric, SalusConfig(fine_dirty_tracking=False)
        )
    raise ConfigError(f"unknown model {name!r}; choose from {MODEL_NAMES}")


def run_model(
    config: SystemConfig,
    trace: Trace,
    model: str,
    tracer=None,
    progress: Optional[Callable[[Dict], None]] = None,
    progress_epoch: int = DEFAULT_PROGRESS_EPOCH,
    kernel: Optional[str] = None,
) -> RunResult:
    """Simulate ``trace`` on ``config`` under the named security model.

    ``tracer`` (a :class:`~repro.sim.trace.Tracer`, optional) records the
    structured event timeline; it never alters simulated timing.
    ``progress`` (optional) receives a snapshot dict every
    ``progress_epoch`` simulated cycles - the live-telemetry heartbeat;
    like the tracer it observes and never books. ``kernel`` selects the
    request-path engine (``scalar``/``batched``/``auto``); by the
    dual-engine contract the result is bit-identical either way.
    """
    sim = GpuSim(
        config=config,
        footprint_pages=trace.footprint_pages,
        model_factory=model_factory(model),
        tracer=tracer,
        progress=progress,
        progress_epoch=progress_epoch,
    )
    result = sim.run(
        trace,
        compute_per_mem=trace.compute_per_mem,
        workload_name=trace.name,
        kernel=kernel,
    )
    # Preserve the model *name* as requested (variants share class names).
    result.model = model
    return result


def run_benchmark(
    config: SystemConfig,
    trace,
    models: Optional[tuple] = None,
    engine=None,
) -> Dict[str, RunResult]:
    """Run a workload under several models; returns {model: result}.

    ``trace`` may be a materialized :class:`~repro.workloads.trace.Trace`
    (simulated directly, in-process) or a
    :class:`~repro.harness.engine.TraceSpec` recipe - the latter routes
    through the experiment engine, gaining parallel execution across models
    and the persistent result cache. ``engine=None`` uses the process-wide
    default engine.
    """
    # Imported here: the engine module itself depends on run_model above.
    from .engine import SimJob, TraceSpec, default_engine

    models = models if models is not None else ("nosec", "baseline", "salus")
    if isinstance(trace, TraceSpec):
        eng = engine if engine is not None else default_engine()
        jobs = [SimJob(config=config, trace=trace, model=m) for m in models]
        results = eng.map(jobs)
        return {job.model: results[job] for job in jobs}
    return {m: run_model(config, trace, m) for m in models}


# -- live-telemetry sinks ----------------------------------------------------
#
# The experiment engine delivers progress events as plain dicts with at
# least a ``kind`` ("start" | "heartbeat" | "done" | "error") and a ``job``
# label; heartbeats add the GpuSim snapshot fields (epoch, cycles,
# instructions, fills, evictions), "done" adds ``source`` and ``wall_s``.
# Events from parallel workers arrive interleaved; sinks must not assume
# one job finishes before another starts.

class ProgressRenderer:
    """Terminal renderer for engine progress events (``--progress``).

    Writes single-line updates to ``stream`` (stderr by default): carriage-
    return-overwritten heartbeats on a TTY, plain lines otherwise, and one
    persistent line per finished job. Purely cosmetic - the CLI decides
    whether to attach it (auto-off when stderr is not a TTY).
    """

    def __init__(self, stream=None, total: Optional[int] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.total = total
        self.done = 0
        self._line_open = False

    def _emit(self, text: str, transient: bool) -> None:
        isatty = getattr(self.stream, "isatty", lambda: False)()
        if transient and isatty:
            self.stream.write(f"\r\x1b[2K{text}")
            self._line_open = True
        else:
            if self._line_open and isatty:
                self.stream.write("\r\x1b[2K")
                self._line_open = False
            self.stream.write(text + "\n")
        self.stream.flush()

    def __call__(self, event: Dict) -> None:
        kind = event.get("kind")
        job = event.get("job", "?")
        if kind == "heartbeat":
            self._emit(
                f"  ~ {job}: cycle {event.get('cycles', 0):,} "
                f"({event.get('instructions', 0):,} instr, "
                f"{event.get('fills', 0)} fills, "
                f"{event.get('evictions', 0)} evicts)",
                transient=True,
            )
        elif kind == "done":
            self.done += 1
            of = f"/{self.total}" if self.total else ""
            self._emit(
                f"[{self.done}{of}] {job}: {event.get('source', 'run')} "
                f"in {event.get('wall_s', 0.0):.3f}s",
                transient=False,
            )
        elif kind == "error":
            self.done += 1
            of = f"/{self.total}" if self.total else ""
            self._emit(f"[{self.done}{of}] {job}: FAILED", transient=False)


class ProgressJsonlWriter:
    """Machine-readable progress sink (``--progress-jsonl PATH``).

    Appends one JSON object per event, in delivery order - the streaming-
    progress substrate a job server can tail. The file handle stays open
    for the writer's lifetime; each line is flushed so a tail-follower sees
    events as they happen.
    """

    def __init__(self, path) -> None:
        from pathlib import Path

        self.path = Path(path)
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")

    def __call__(self, event: Dict) -> None:
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def combine_progress_sinks(*sinks) -> Optional[Callable[[Dict], None]]:
    """One callback fanning events out to every non-None sink (None if none)."""
    active = [s for s in sinks if s is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def fan_out(event: Dict) -> None:
        for sink in active:
            sink(event)

    return fan_out

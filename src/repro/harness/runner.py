"""Run one simulation: a (configuration, security model, workload) triple.

The runner is the only place that knows how to build each security model, so
benchmarks, tests and examples all say ``run_model(config, trace, "salus")``
and get a :class:`~repro.gpu.gpusim.RunResult` back.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import SalusConfig, SystemConfig
from ..core.salus import SalusSecurityModel
from ..errors import ConfigError
from ..gpu.gpusim import GpuSim, RunResult
from ..security.baseline import BaselineSecurityModel
from ..security.fabric import MemoryFabric
from ..security.none import NoSecurityModel
from ..workloads.trace import Trace

ModelFactory = Callable[[MemoryFabric], object]

MODEL_NAMES = (
    "nosec",
    "baseline",
    "baseline-freemove",
    "salus",
    "salus-unified",
    "salus-nofoa",
    "salus-nocollapse",
    "salus-coarsedirty",
)


def model_factory(name: str) -> ModelFactory:
    """Resolve a model name to its factory.

    The ``salus-*`` variants are the ablations of DESIGN.md Section 5;
    ``baseline-freemove`` is the Figure-3 comparison point (conventional
    security whose *migration* operations are free).
    """
    if name == "nosec":
        return NoSecurityModel
    if name == "baseline":
        return BaselineSecurityModel
    if name == "baseline-freemove":
        return lambda fabric: BaselineSecurityModel(fabric, free_migration_security=True)
    if name == "salus":
        return lambda fabric: SalusSecurityModel(fabric, SalusConfig.full())
    if name == "salus-unified":
        return lambda fabric: SalusSecurityModel(fabric, SalusConfig.unified_only())
    if name == "salus-nofoa":
        return lambda fabric: SalusSecurityModel(
            fabric, SalusConfig(fetch_on_access=False)
        )
    if name == "salus-nocollapse":
        return lambda fabric: SalusSecurityModel(
            fabric, SalusConfig(collapsed_counters=False)
        )
    if name == "salus-coarsedirty":
        return lambda fabric: SalusSecurityModel(
            fabric, SalusConfig(fine_dirty_tracking=False)
        )
    raise ConfigError(f"unknown model {name!r}; choose from {MODEL_NAMES}")


def run_model(
    config: SystemConfig, trace: Trace, model: str, tracer=None
) -> RunResult:
    """Simulate ``trace`` on ``config`` under the named security model.

    ``tracer`` (a :class:`~repro.sim.trace.Tracer`, optional) records the
    structured event timeline; it never alters simulated timing.
    """
    sim = GpuSim(
        config=config,
        footprint_pages=trace.footprint_pages,
        model_factory=model_factory(model),
        tracer=tracer,
    )
    result = sim.run(
        trace, compute_per_mem=trace.compute_per_mem, workload_name=trace.name
    )
    # Preserve the model *name* as requested (variants share class names).
    result.model = model
    return result


def run_benchmark(
    config: SystemConfig,
    trace,
    models: Optional[tuple] = None,
    engine=None,
) -> Dict[str, RunResult]:
    """Run a workload under several models; returns {model: result}.

    ``trace`` may be a materialized :class:`~repro.workloads.trace.Trace`
    (simulated directly, in-process) or a
    :class:`~repro.harness.engine.TraceSpec` recipe - the latter routes
    through the experiment engine, gaining parallel execution across models
    and the persistent result cache. ``engine=None`` uses the process-wide
    default engine.
    """
    # Imported here: the engine module itself depends on run_model above.
    from .engine import SimJob, TraceSpec, default_engine

    models = models if models is not None else ("nosec", "baseline", "salus")
    if isinstance(trace, TraceSpec):
        eng = engine if engine is not None else default_engine()
        jobs = [SimJob(config=config, trace=trace, model=m) for m in models]
        results = eng.map(jobs)
        return {job.model: results[job] for job in jobs}
    return {m: run_model(config, trace, m) for m in models}

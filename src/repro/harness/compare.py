"""Dual-kernel comparison harness (``repro perf --compare A B``).

Runs the quick benchmark subset under two request-path kernels and checks
the dual-engine contract live: every (bench, model) job must produce
bit-identical result fingerprints under both, and the per-job speedup is
reported alongside. A fingerprint mismatch is a contract violation and
exits nonzero - this is the fastest local probe for "did my kernel change
break equivalence" before the full ``scripts/bench_perf.py`` gate.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..errors import ConfigError

# The quick-subset sweep, kept in sync with scripts/bench_perf.py (the
# script cannot be imported from the installed package, so the constants
# are duplicated here; change both together).
QUICK_BENCHES: Tuple[str, ...] = ("nw", "backprop", "kmeans")
QUICK_ACCESSES = 2_000
COMPARE_MODELS: Tuple[str, ...] = ("nosec", "baseline", "salus")
DEFAULT_SEED = 7


def compare_kernels(
    kernel_a: str,
    kernel_b: str,
    accesses: int = QUICK_ACCESSES,
    seed: int = DEFAULT_SEED,
    benches: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """Run every (bench, model) job under both kernels; one row per job.

    Each row carries the two wall times, the two fingerprints, ``match``
    (fingerprints equal) and ``speedup`` (wall_a / wall_b - how much
    faster ``kernel_b`` is). Kernels are resolved up front so ``auto``
    and env-var spellings behave exactly as in a normal run.
    """
    from ..kernel import resolve_kernel
    from ..workloads.suite import build_trace
    from .runner import run_model

    resolved_a = resolve_kernel(kernel_a)
    resolved_b = resolve_kernel(kernel_b)
    config = SystemConfig.bench()
    rows: List[Dict] = []
    for bench in benches if benches is not None else QUICK_BENCHES:
        trace = build_trace(
            bench, n_accesses=accesses, seed=seed,
            num_sms=config.gpu.num_sms, geometry=config.geometry,
        )
        for model in models if models is not None else COMPARE_MODELS:
            t0 = time.perf_counter()
            result_a = run_model(config, trace, model, kernel=resolved_a)
            wall_a = time.perf_counter() - t0
            t0 = time.perf_counter()
            result_b = run_model(config, trace, model, kernel=resolved_b)
            wall_b = time.perf_counter() - t0
            fp_a = result_a.fingerprint()
            fp_b = result_b.fingerprint()
            rows.append({
                "job": f"{bench}/{model}",
                "wall_a": wall_a,
                "wall_b": wall_b,
                "fingerprint_a": fp_a,
                "fingerprint_b": fp_b,
                "match": fp_a == fp_b,
                "speedup": (wall_a / wall_b) if wall_b else 0.0,
            })
    return rows


def run_compare(
    kernel_a: str,
    kernel_b: str,
    accesses: int = QUICK_ACCESSES,
    seed: int = DEFAULT_SEED,
) -> int:
    """CLI face of :func:`compare_kernels`: table + exit code.

    Exit 0 when every job fingerprints identically under both kernels,
    1 on any mismatch, 2 on usage errors (unknown kernel names).
    """
    from .report import format_table

    try:
        rows = compare_kernels(kernel_a, kernel_b, accesses=accesses, seed=seed)
    except ConfigError as exc:
        import sys

        print(f"repro perf --compare: {exc}", file=sys.stderr)
        return 2
    table_rows = [
        (
            row["job"],
            f"{row['wall_a']:.3f}",
            f"{row['wall_b']:.3f}",
            row["speedup"],
            "ok" if row["match"] else "MISMATCH",
        )
        for row in rows
    ]
    print(
        format_table(
            ("job", f"{kernel_a}_s", f"{kernel_b}_s", "speedup", "fingerprint"),
            table_rows,
            title=f"kernel compare: {kernel_a} vs {kernel_b} "
                  f"@ {accesses} accesses (seed {seed})",
        )
    )
    mismatched = [row["job"] for row in rows if not row["match"]]
    total_a = sum(row["wall_a"] for row in rows)
    total_b = sum(row["wall_b"] for row in rows)
    if mismatched:
        print(
            f"\nDUAL-ENGINE CONTRACT VIOLATED: {len(mismatched)} job(s) "
            f"diverge between kernels: {', '.join(mismatched)}"
        )
        return 1
    print(
        f"\nall {len(rows)} jobs bit-identical across kernels; "
        f"total {total_a:.2f}s ({kernel_a}) vs {total_b:.2f}s ({kernel_b}) "
        f"-> {total_a / total_b if total_b else 0.0:.2f}x"
    )
    return 0

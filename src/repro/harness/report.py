"""Reporting helpers: geometric means and aligned text tables."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper's summary statistic for IPC ratios."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.4f}",
) -> str:
    """Render an aligned monospace table (what the benches print)."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    rendered: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in rendered:
        out.append(line(row))
    return "\n".join(out)


def normalized(values: Dict[str, float], basis: str) -> Dict[str, float]:
    """Normalize a {name: value} mapping to one of its entries."""
    base = values[basis]
    if base == 0:
        raise ValueError(f"normalization basis {basis!r} is zero")
    return {k: v / base for k, v in values.items()}

"""Report rendering: tables, geomeans, and per-run observability reports.

Two layers live here:

* **Primitives** used by every benchmark and figure: :func:`geomean` (the
  paper's summary statistic), :func:`format_table` (aligned monospace
  tables), :func:`normalized`.
* **Run reports** for the observability layer (``repro report``):
  :func:`render_markdown_report` and :func:`render_csv` turn serialized
  :class:`~repro.gpu.gpusim.RunResult` objects back into human-readable
  per-component breakdowns - traffic by category and side, per-channel
  security-traffic shares, metadata/L2/mapping cache hit rates, migration
  activity.

Serialization contract the report path relies on: ``RunResult.to_dict``
stores the **raw tallies only** - the full
:class:`~repro.sim.stats.StatRegistry` dump (under ``"stats"``), the model
counter namespace (``"counters"``), and the flat per-component metric tree
of :mod:`repro.sim.metrics` (``"metrics"``). Every ratio shown in a report
(IPC, security share, hit rates) is *derived here at render time* via
:func:`repro.sim.metrics.derived_metrics`, so a report rendered from a
result-cache entry, a ``repro run --json`` dump, or a fresh in-process run
is identical by construction. ``RunResult.from_dict`` inverts ``to_dict``
loss-free; any change to that shape must bump
``repro.harness.engine.SCHEMA_VERSION`` so stale cache entries miss instead
of rendering wrong reports.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, Iterable, List, Optional, Sequence

from ..gpu.gpusim import RunResult
from ..sim.metrics import channel_security_shares, derived_metrics


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper's summary statistic for IPC ratios."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.4f}",
) -> str:
    """Render an aligned monospace table (what the benches print)."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    rendered: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in rendered:
        out.append(line(row))
    return "\n".join(out)


def normalized(values: Dict[str, float], basis: str) -> Dict[str, float]:
    """Normalize a {name: value} mapping to one of its entries."""
    base = values[basis]
    if base == 0:
        raise ValueError(f"normalization basis {basis!r} is zero")
    return {k: v / base for k, v in values.items()}


# -- run reports (observability layer) --------------------------------------

def _per_device_rows(metrics: Dict[str, float]) -> List[Sequence[object]]:
    """Per-CXL-device traffic rows from ``cxl.dev<i>.*`` metric namespaces.

    Empty for single-device runs, which do not publish the dev-indexed
    namespaces (their metric trees are kept bit-identical to the
    pre-topology layout).
    """
    devices = sorted(
        int(k.split(".")[1][3:])
        for k in metrics
        if k.startswith("cxl.dev") and k.endswith(".link_bytes")
    )
    rows: List[Sequence[object]] = []
    for d in devices:
        security = metrics.get(f"cxl.dev{d}.rx.security_bytes", 0) + metrics.get(
            f"cxl.dev{d}.tx.security_bytes", 0
        )
        rows.append(
            (
                f"dev{d}",
                metrics.get(f"cxl.dev{d}.link_bytes", 0),
                security,
                metrics.get(f"migration.dev{d}.fills", 0),
                metrics.get(f"migration.dev{d}.evictions", 0),
            )
        )
    return rows

def _per_tenant_rows(metrics: Dict[str, float]) -> List[Sequence[object]]:
    """Per-security-domain rows from ``tenant<t>.*`` metric namespaces.

    Empty for single-tenant runs, which do not publish the tenant-indexed
    namespaces (their metric trees are kept bit-identical to the
    pre-tenancy layout).
    """
    tenants = sorted(
        int(k.split(".")[0][6:])
        for k in metrics
        if k.startswith("tenant") and k.endswith(".instructions")
    )
    rows: List[Sequence[object]] = []
    for t in tenants:
        rows.append(
            (
                f"tenant{t}",
                metrics.get(f"tenant{t}.instructions", 0),
                metrics.get(f"tenant{t}.device_bytes", 0),
                metrics.get(f"tenant{t}.security_bytes", 0),
                metrics.get(f"tenant{t}.fills", 0),
                metrics.get(f"tenant{t}.evictions", 0),
            )
        )
    return rows


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    def cell(c: object) -> str:
        if isinstance(c, float):
            return f"{c:.4f}"
        return str(c)

    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return lines


def render_markdown_report(
    results: Sequence[RunResult],
    engine_meta: Optional[Sequence[Optional[Dict]]] = None,
) -> str:
    """Per-run observability report as GitHub-flavoured markdown.

    One section per result: run summary, traffic breakdown by
    ``side.category``, derived ratios, and the per-component
    security-traffic shares that answer "which channel carried the security
    overhead".

    ``engine_meta`` (optional, aligned with ``results``) carries the
    execution-provenance sidecar the engine attaches to each run -
    ``{"source": "memory"|"disk"|"run", "wall_s": float}`` - rendered as
    extra summary rows. It lives *outside* the RunResult payload on purpose:
    provenance changes run to run, results must not.
    """
    lines: List[str] = ["# Salus run report", ""]
    for position, result in enumerate(results):
        stats = result.stats
        lines.append(f"## {result.workload} / {result.model}")
        lines.append("")
        summary_rows: List[Sequence[object]] = [
            ("instructions", stats.instructions),
            ("cycles", stats.final_cycle),
            ("IPC", stats.ipc),
            ("page fills", result.fills),
            ("page evictions", result.evictions),
            ("total traffic (MB)", stats.total_bytes() / 1e6),
            ("security traffic (MB)", stats.security_bytes() / 1e6),
        ]
        meta = engine_meta[position] if engine_meta and position < len(engine_meta) else None
        if meta:
            source = meta.get("source")
            if source:
                label = {
                    "memory": "memory cache hit",
                    "disk": "disk cache hit",
                    "run": "simulated fresh",
                }.get(source, source)
                summary_rows.append(("result source", label))
            if "wall_s" in meta:
                summary_rows.append(("engine wall time (s)", float(meta["wall_s"])))
        lines.extend(_md_table(("metric", "value"), summary_rows))
        lines.append("")

        lines.append("### Traffic by side and category")
        lines.append("")
        total = stats.total_bytes()
        rows = [
            (key, nbytes, (nbytes / total) if total else 0.0)
            for key, nbytes in stats.breakdown().items()
        ]
        lines.extend(_md_table(("side.category", "bytes", "share"), rows))
        lines.append("")

        derived = derived_metrics(result.metrics, stats)
        lines.append("### Derived metrics")
        lines.append("")
        lines.extend(
            _md_table(
                ("name", "value"),
                [(k, v) for k, v in sorted(derived.items())],
            )
        )
        lines.append("")

        tenant_rows = _per_tenant_rows(result.metrics)
        if tenant_rows:
            lines.append("### Per-tenant activity")
            lines.append("")
            lines.extend(
                _md_table(
                    (
                        "tenant", "instructions", "device bytes",
                        "security bytes", "fills", "evictions",
                    ),
                    tenant_rows,
                )
            )
            lines.append("")

        device_rows = _per_device_rows(result.metrics)
        if device_rows:
            lines.append("### Per-CXL-device link traffic")
            lines.append("")
            lines.extend(
                _md_table(
                    ("device", "link bytes", "security bytes", "fills", "evictions"),
                    device_rows,
                )
            )
            lines.append("")

        shares = channel_security_shares(result.metrics)
        if shares:
            lines.append("### Per-component security-traffic share")
            lines.append("")
            rows = [
                (
                    component,
                    result.metrics.get(f"{component}.security_bytes", 0),
                    share,
                )
                for component, share in shares.items()
            ]
            lines.extend(
                _md_table(("component", "security bytes", "share of component"), rows)
            )
            lines.append("")

        if result.counters:
            model_counters = sorted(
                (k, v) for k, v in result.counters.items() if "." in k
            )
            if model_counters:
                lines.append("### Model counters")
                lines.append("")
                lines.extend(_md_table(("counter", "value"), model_counters))
                lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_csv(results: Sequence[RunResult]) -> str:
    """Flat machine-readable dump: one ``workload,model,metric,value`` row
    per metric-tree leaf and derived ratio, for spreadsheet/pandas digestion.

    Emitted through the :mod:`csv` module so fields containing commas or
    quotes are escaped per RFC 4180 instead of silently corrupting columns
    (the old string-join emitter shifted every row with a comma in the
    workload name).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(("workload", "model", "metric", "value"))
    for result in results:
        tagged: List = []
        tagged.extend(sorted(result.metrics.items()))
        tagged.extend(sorted(derived_metrics(result.metrics, result.stats).items()))
        for key, nbytes in result.stats.breakdown().items():
            tagged.append((f"traffic.{key}", nbytes))
        for name, value in tagged:
            writer.writerow((result.workload, result.model, name, value))
    return buffer.getvalue()

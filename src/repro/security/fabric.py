"""The memory fabric: every bookable resource, shared by all security models.

One :class:`MemoryFabric` instance owns the device channels, the CXL fabric
topology (one full-duplex link pair and one expander-side metadata-cache set
per expansion device, per :class:`~repro.config.TopologyConfig`), the
per-partition crypto engines, the per-partition (device-side) metadata
caches, and the interleaver. Security models never touch channels directly;
they go through the fabric's booking helpers so traffic categorization and
cache-writeback accounting are uniform.

The fabric also precomputes the :class:`SectorLoc` for each request - the
full coordinate set (CXL page/chunk/sector, home expansion device, device
frame/channel/local slot) that the models key their metadata state on. The
CXL-address -> home-device sharding itself is pure arithmetic in
:class:`~repro.address.ShardMap`; the fabric instantiates one per run and
exposes it as :attr:`MemoryFabric.shard`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..address import ShardMap, TenantMap
from ..config import SystemConfig
from ..crypto.keys import KeySet
from ..errors import SimulationError
from ..memsys.channel import Channel, CryptoEngine, LinkPair
from ..memsys.interleave import Interleaver
from ..metadata.bmt import BMTGeometry
from ..metadata.cache import MetadataCaches
from ..sim.stats import Side, StatRegistry, TrafficCategory
from ..sim.trace import Tracer, resolve_tracer

BMT_NODE_BYTES = 64
METADATA_UNIT_BYTES = 32


@dataclass(frozen=True)
class SectorLoc:
    """Full coordinates of one data sector in both address spaces."""

    cxl_addr: int          # byte address in the CXL (home) space
    page: int              # CXL page number
    sector_in_page: int
    chunk_in_page: int
    sector_in_chunk: int
    frame: int             # device frame holding the page
    channel: int           # device channel owning the sector's chunk
    local_sector: int      # channel-local sector slot
    local_chunk: int       # channel-local chunk slot
    device_chunk: int      # global device chunk id (frame-based)
    home_device: int = 0   # CXL expansion device homing this page

    @property
    def local_block(self) -> int:
        return self.local_sector // 4

    @property
    def cxl_sector(self) -> int:
        return self.cxl_addr // 32


class MemoryFabric:
    """All shared timing resources of one simulated system."""

    def __init__(
        self,
        config: SystemConfig,
        footprint_pages: int,
        stats: StatRegistry,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if footprint_pages <= 0:
            raise SimulationError("footprint_pages must be positive")
        self.config = config
        self.geometry = config.geometry
        self.stats = stats
        self.tracer = resolve_tracer(tracer)
        self.footprint_pages = footprint_pages

        gpu = config.gpu
        per_channel_bw = gpu.device_bytes_per_cycle_per_channel
        self.channels: List[Channel] = [
            Channel(
                name=f"hbm[{c}]",
                bytes_per_cycle=per_channel_bw,
                latency_cycles=gpu.dram_latency_cycles,
                side=Side.DEVICE,
                stats=stats,
                overhead_cycles=gpu.device_access_overhead_cycles,
                tracer=self.tracer,
            )
            for c in range(gpu.num_channels)
        ]
        topology = config.topology
        self.topology = topology
        self.num_devices = topology.num_devices
        self.shard = ShardMap(
            geometry=self.geometry,
            num_devices=topology.num_devices,
            policy=topology.sharding,
            total_pages=footprint_pages,
        )
        # One full-duplex link pair per expansion device. Device 0 keeps the
        # bare "cxl" name so single-device traces and metrics are unchanged.
        base_bw = gpu.device_bandwidth_gbps / gpu.core_clock_ghz
        self.links: List[LinkPair] = [
            LinkPair(
                bytes_per_cycle=base_bw * topology.bw_ratio(d, gpu.cxl_bw_ratio),
                latency_cycles=topology.latency(d, gpu.cxl_latency_cycles),
                stats=stats,
                overhead_cycles=gpu.cxl_access_overhead_cycles,
                tracer=self.tracer,
                name="cxl" if d == 0 else f"cxl{d}",
            )
            for d in range(topology.num_devices)
        ]
        sec = config.security
        self.aes_engines = [
            CryptoEngine(
                f"aes[{c}]", sec.aes_latency_cycles, sec.aes_pipe_interval_cycles,
                tracer=self.tracer,
            )
            for c in range(gpu.num_channels)
        ]
        self.mac_engines = [
            CryptoEngine(
                f"mac[{c}]", sec.mac_latency_cycles, sec.aes_pipe_interval_cycles,
                tracer=self.tracer,
            )
            for c in range(gpu.num_channels)
        ]
        self.device_meta = [
            MetadataCaches.build(c, sec) for c in range(gpu.num_channels)
        ]
        # Each expansion device's controller owns its own metadata caches -
        # an independent security plane per device. Negative partition ids
        # mark expander-side controllers (device d is partition -(d+1), so
        # the single-device fabric keeps its historical "ctr[-1]" names).
        self.cxl_meta_by_device: List[MetadataCaches] = [
            MetadataCaches.build(-(d + 1), sec) for d in range(topology.num_devices)
        ]
        self.interleaver = Interleaver(self.geometry, gpu.num_channels)

        # Device frame count from the Figure-14 capacity ratio.
        self.num_frames = max(
            1, int(footprint_pages * config.device_capacity_ratio)
        )
        # Tenant partitioning (None = the classic single-owner fabric; every
        # structure above is then byte-identical to the pre-tenancy code).
        # With multiple tenants, each security domain owns a contiguous SM
        # group, channel run, and page span (see TenantMap); metadata state
        # is keyed per *plane* - one (tenant, device) security plane with
        # its own controller caches, counter space, and Merkle root.
        partition = config.partition
        self.num_tenants = partition.num_tenants
        self.tenant_map: Optional[TenantMap] = None
        self._tenant_interleavers: List[Interleaver] = []
        self._plane_by_page: Optional[List[int]] = None
        self._plane_counts: Optional[List[int]] = None
        self.num_planes = topology.num_devices
        if partition.num_tenants > 1:
            tm = TenantMap(
                geometry=self.geometry,
                num_tenants=partition.num_tenants,
                total_pages=footprint_pages,
                num_sms=gpu.num_sms,
                num_gpcs=gpu.num_gpcs,
                num_channels=gpu.num_channels,
                num_devices=topology.num_devices,
            )
            self.tenant_map = tm
            # Each tenant interleaves its frames' chunks over its own
            # channel run; chunk_location() offsets by the run base.
            self._tenant_interleavers = [
                Interleaver(self.geometry, tm.channels_per_tenant)
                for _ in range(tm.num_tenants)
            ]
            # Per-tenant shard maps over the tenant's device subset, feeding
            # the page -> (home device, plane, plane-local page) tables.
            tenant_shards = [
                ShardMap(
                    geometry=self.geometry,
                    num_devices=tm.devices_per_tenant,
                    policy=topology.sharding,
                    total_pages=max(1, tm.pages_of(t)),
                )
                for t in range(tm.num_tenants)
            ]
            self.num_planes = tm.num_tenants * topology.num_devices
            plane_counts = [0] * self.num_planes
            home_by_page = [0] * footprint_pages
            plane_by_page = [0] * footprint_pages
            local_by_page = [0] * footprint_pages
            for page in range(footprint_pages):
                t = tm.tenant_of_page(page)
                tpage = page - tm.page_base(t)
                dev = tenant_shards[t].home_of_page(tpage) + tm.devices_of(t).start
                plane = t * topology.num_devices + dev
                home_by_page[page] = dev
                plane_by_page[page] = plane
                local_by_page[page] = tenant_shards[t].local_page(tpage)
                plane_counts[plane] += 1
            self._home_by_page = home_by_page
            self._local_by_page = local_by_page
            self._plane_by_page = plane_by_page
            self._plane_counts = plane_counts
            # Isolated controller metadata caches per security plane: a
            # device shared by several tenants carries one full cache set
            # per resident domain, so no cache line is ever shared across
            # tenants. The by-device alias keeps any residual home-device
            # indexing in bounds (planes >= devices).
            self.cxl_meta_by_plane: List[MetadataCaches] = [
                MetadataCaches.build(-(p + 1), sec) for p in range(self.num_planes)
            ]
            self.cxl_meta_by_device = self.cxl_meta_by_plane
        else:
            # Single tenant: planes are exactly the per-device cache sets.
            self.cxl_meta_by_plane = self.cxl_meta_by_device
        # One cryptographic domain per tenant (single tenant: the platform
        # key set, unchanged).
        self.keys_by_tenant: Tuple[KeySet, ...] = tuple(
            KeySet.from_seed(
                partition.tenant_key_seed(t, "salus-hpca-2024").encode("utf-8")
            )
            for t in range(partition.num_tenants)
        )
        # locate() is a pure function of (cxl_addr, frame); the per-request
        # walk calls it for every demand access and every dirty-sector
        # writeback, so the coordinates are memoized. The key packs both
        # inputs into one int (frame < num_frames) to keep lookups cheap.
        self._loc_cache: dict = {}
        self._single_device = topology.num_devices == 1
        # Page -> (home device, device-local page) lookup tables over the
        # whole footprint. Multi-tenant fabrics always build them (above,
        # from the per-tenant shard maps - the plane-local index is not a
        # global-shard function). Single-tenant multi-device fabrics build
        # them in one vectorized shot with the ShardMap batch queries when
        # numpy is present; otherwise the scalar arithmetic answers
        # directly.
        if self.tenant_map is None:
            self._home_by_page: Optional[List[int]] = None
            self._local_by_page: Optional[List[int]] = None
            if not self._single_device:
                from ..kernel import numpy_or_none

                np = numpy_or_none()
                if np is not None:
                    pages = np.arange(footprint_pages, dtype=np.int64)
                    self._home_by_page = self.shard.home_of_pages(pages).tolist()
                    self._local_by_page = self.shard.local_pages(pages).tolist()

    # -- topology ------------------------------------------------------------
    @property
    def link(self) -> LinkPair:
        """The first (paper's single) expansion device's link pair."""
        return self.links[0]

    @property
    def cxl_meta(self) -> MetadataCaches:
        """The first expansion device's controller metadata caches."""
        return self.cxl_meta_by_device[0]

    def home_of_page(self, page: int) -> int:
        """Home expansion device of a CXL page (precomputed-table lookup)."""
        table = self._home_by_page
        if table is not None and 0 <= page < len(table):
            return table[page]
        if self._single_device:
            return 0
        return self.shard.home_of_page(page)

    def local_page(self, page: int) -> int:
        """Plane-local page index (precomputed-table lookup).

        Single tenant: the page's index within its home device's slice.
        Multi-tenant: its index within the (tenant, device) security plane,
        which per-plane metadata layouts and Merkle trees are keyed by.
        """
        table = self._local_by_page
        if table is not None and 0 <= page < len(table):
            return table[page]
        if self._single_device:
            return page
        return self.shard.local_page(page)

    # -- tenancy -------------------------------------------------------------
    def tenant_of_page(self, page: int) -> int:
        """Owning tenant of a CXL page (0 on the single-owner fabric)."""
        tm = self.tenant_map
        return 0 if tm is None else tm.tenant_of_page(page)

    def plane_of_page(self, page: int) -> int:
        """Security plane of a CXL page.

        A plane is one (tenant, home device) pair: the unit that owns a
        controller metadata-cache set, a counter space, and a Merkle root.
        Single tenant: plane == home device, so plane-indexed model state
        is laid out exactly as the historical per-device state.
        """
        table = self._plane_by_page
        if table is not None and 0 <= page < len(table):
            return table[page]
        return self.home_of_page(page)

    def plane_device(self, plane: int) -> int:
        """The expansion device whose link carries a plane's traffic."""
        if self.tenant_map is None:
            return plane
        return plane % self.num_devices

    def plane_pages(self, plane: int) -> int:
        """How many CXL pages a security plane is home to (>= 1 for sizing)."""
        if self._plane_counts is not None:
            return max(1, self._plane_counts[plane])
        return self.shard.pages_on(plane)

    def chunk_location(self, page: int, frame: int, chunk_in_page: int) -> Tuple[int, int]:
        """Map a resident chunk to its (channel, local chunk slot).

        Single tenant: the classic whole-array interleaving. Multi-tenant:
        the owning tenant's frames interleave over its private channel run
        only, so every device-side structure a channel owns (L2 slice,
        metadata caches, counter stores, crypto engines) stays
        tenant-private.
        """
        tm = self.tenant_map
        if tm is None:
            return self.interleaver.device_chunk_location(frame, chunk_in_page)
        tenant = tm.tenant_of_page(page)
        channel, local_chunk = self._tenant_interleavers[tenant].device_chunk_location(
            frame, chunk_in_page
        )
        return tm.channel_base(tenant) + channel, local_chunk

    def mapping_channel(self, page: int) -> int:
        """Device channel holding a page's mapping sector.

        Mapping sectors are hashed/interleaved over the page owner's
        channels (all of them for the single-owner fabric).
        """
        tm = self.tenant_map
        if tm is None:
            return (page // 4) % self.config.gpu.num_channels
        tenant = tm.tenant_of_page(page)
        return tm.channel_base(tenant) + (page // 4) % tm.channels_per_tenant

    @property
    def data_sectors_per_channel(self) -> int:
        """Channel-local data-sector span the device metadata must cover.

        Frames interleave over the owning tenant's channel run, so with
        partitioning each channel covers a ``channels_per_tenant`` share of
        the frame space rather than a ``num_channels`` share. The device
        counter stores and layouts of both security models size from this.
        """
        geom = self.geometry
        channels = self.config.gpu.num_channels
        if self.tenant_map is not None:
            channels = self.tenant_map.channels_per_tenant
        return max(
            geom.sectors_per_chunk,
            self.num_frames * geom.sectors_per_page // channels,
        )

    # -- coordinates ---------------------------------------------------------
    def locate(self, cxl_addr: int, frame: int) -> SectorLoc:
        key = cxl_addr * self.num_frames + frame
        loc = self._loc_cache.get(key)
        if loc is not None:
            return loc
        geom = self.geometry
        page = geom.page_of(cxl_addr)
        sector_in_page = geom.sector_in_page(cxl_addr)
        chunk_in_page = geom.chunk_in_page(cxl_addr)
        sector_in_chunk = geom.sector_in_chunk(cxl_addr)
        channel, local_chunk = self.chunk_location(page, frame, chunk_in_page)
        local_sector = local_chunk * geom.sectors_per_chunk + sector_in_chunk
        device_chunk = frame * geom.chunks_per_page + chunk_in_page
        loc = SectorLoc(
            cxl_addr=cxl_addr,
            page=page,
            sector_in_page=sector_in_page,
            chunk_in_page=chunk_in_page,
            sector_in_chunk=sector_in_chunk,
            frame=frame,
            channel=channel,
            local_sector=local_sector,
            local_chunk=local_chunk,
            device_chunk=device_chunk,
            home_device=self.home_of_page(page),
        )
        self._loc_cache[key] = loc
        return loc

    def locate_batch(self, cxl_addrs, frames, ts=None) -> List[SectorLoc]:
        """Vectorized :meth:`locate` over parallel address/frame arrays.

        All static coordinate math (page, chunk, sector, channel, local
        slot) is computed with shift/mask array ops in one shot; each home
        device's rows are then materialized as an independent batch and the
        per-device results merged deterministically by
        ``(timestamp, device, seq)`` - ``ts`` defaults to the row ordinal,
        so the merged order is the input order regardless of how rows were
        grouped across planes. Results are installed in (and served from)
        the same memo the scalar path uses, so warming an epoch through
        here is observationally inert. Requires numpy.
        """
        from ..kernel import require_numpy

        np = require_numpy()
        addrs = np.asarray(cxl_addrs, dtype=np.int64)
        frs = np.asarray(frames, dtype=np.int64)
        if addrs.shape != frs.shape:
            raise SimulationError("locate_batch: addrs and frames must align")
        n = int(addrs.size)
        if n == 0:
            return []
        geom = self.geometry
        geom._check_addr(int(addrs.min()))
        if self.tenant_map is not None:
            # Tenant-aware channel routing is per-page; the coordinates are
            # pure and memoized, so a scalar sweep in input order matches
            # the merged vectorized result exactly.
            return [
                self.locate(int(a), int(f))
                for a, f in zip(addrs.tolist(), frs.tolist())
            ]
        ts_arr = np.arange(n, dtype=np.int64) if ts is None else np.asarray(ts, dtype=np.int64)
        pages = addrs // geom.page_bytes
        in_page = addrs % geom.page_bytes
        sector_in_page = in_page // geom.sector_bytes
        chunk_in_page = in_page // geom.chunk_bytes
        sector_in_chunk = (addrs % geom.chunk_bytes) // geom.sector_bytes
        channels, local_chunks = self.interleaver.device_chunk_locations(
            frs, chunk_in_page
        )
        local_sectors = local_chunks * geom.sectors_per_chunk + sector_in_chunk
        device_chunks = frs * geom.chunks_per_page + chunk_in_page
        if self._single_device:
            homes = np.zeros(n, dtype=np.int64)
        else:
            homes = self.shard.home_of_pages(pages)
        columns = (addrs, pages, sector_in_page, chunk_in_page, sector_in_chunk,
                   frs, channels, local_sectors, local_chunks, device_chunks)
        merged = []
        for device in range(self.num_devices):
            idx = np.nonzero(homes == device)[0]
            if idx.size == 0:
                continue
            plane = [col[idx].tolist() for col in columns]
            for seq, (t, i, row) in enumerate(
                zip(ts_arr[idx].tolist(), idx.tolist(), zip(*plane))
            ):
                merged.append((t, device, seq, i, row))
        merged.sort(key=lambda item: (item[0], item[1], item[2]))
        out: List[Optional[SectorLoc]] = [None] * n
        cache = self._loc_cache
        num_frames = self.num_frames
        for t, device, seq, i, row in merged:
            addr, page, sip, cip, sic, frame, channel, lsec, lchunk, dchunk = row
            key = addr * num_frames + frame
            loc = cache.get(key)
            if loc is None:
                loc = SectorLoc(
                    cxl_addr=addr, page=page, sector_in_page=sip,
                    chunk_in_page=cip, sector_in_chunk=sic, frame=frame,
                    channel=channel, local_sector=lsec, local_chunk=lchunk,
                    device_chunk=dchunk, home_device=device,
                )
                cache[key] = loc
            out[i] = loc
        return out

    # -- raw bookings ----------------------------------------------------------
    def device_read(
        self, now: int, channel: int, nbytes: int, category: TrafficCategory,
        critical: bool = True, priority: bool = False,
    ) -> int:
        return self.channels[channel].book(
            now, nbytes, category, critical=critical, priority=priority
        )

    def device_write(
        self, now: int, channel: int, nbytes: int, category: TrafficCategory
    ) -> int:
        return self.channels[channel].book(now, nbytes, category, critical=False)

    def link_read(
        self, now: int, nbytes: int, category: TrafficCategory,
        critical: bool = True, priority: bool = False, device: int = 0,
    ) -> int:
        """Read from expander ``device``: data flows toward the GPU (RX)."""
        return self.links[device].to_device.book(
            now, nbytes, category, critical=critical, priority=priority
        )

    def link_write(
        self, now: int, nbytes: int, category: TrafficCategory,
        critical: bool = False, device: int = 0,
    ) -> int:
        """Write toward expander ``device`` (TX); posted by default."""
        return self.links[device].to_cxl.book(now, nbytes, category, critical=critical)

    # -- metadata-through-cache helpers --------------------------------------------
    def metadata_access(
        self,
        now: int,
        cache,
        unit: int,
        read_fn: Callable[[int, int], int],
        write_fn: Callable[[int, int], int],
        category: TrafficCategory,
        write: bool = False,
        tag_payload: object = None,
    ) -> Tuple[int, bool]:
        """Access one 32 B metadata unit through a sectored metadata cache.

        ``read_fn(now, nbytes)`` books the fill on a miss and returns its
        ready time; ``write_fn(now, nbytes)`` books posted writebacks of any
        dirty sectors pushed out by the allocation. Returns the pair
        ``(ready_cycle, sector_hit)`` - the cycle the unit is usable and
        whether it was already resident.
        """
        result = cache.access(unit // 4, unit % 4, write=write, tag_payload=tag_payload)
        ready = now
        if not result.sector_hit:
            ready = read_fn(now, METADATA_UNIT_BYTES)
            if self.tracer.enabled:
                self.tracer.instant(
                    cache.name, f"{category.value}_miss", now, cat="metadata",
                    args={"unit": unit},
                )
        if result.evicted is not None and result.evicted.dirty_sectors:
            for _ in result.evicted.dirty_sectors:
                write_fn(now, METADATA_UNIT_BYTES)
        _ = category  # categorization is carried by the bound read/write fns
        return ready, result.sector_hit

    def bmt_read_walk(
        self,
        now: int,
        cache,
        geom: BMTGeometry,
        leaf: int,
        read_fn: Callable[[int, int], int],
        write_fn: Callable[[int, int], int],
    ) -> int:
        """Verification walk from a counter leaf toward the on-chip root.

        The walk stops at the first internal node already present in the BMT
        cache (cached nodes were verified when fetched), so a warm cache
        costs nothing. Each missing node is a 64 B read.
        """
        ready = now
        levels = 0
        # path_steps precomputes each node's cache coordinates (a 64 B node
        # occupies half a 128 B line: two nodes per line, sector slots 0/2).
        for line, slot in geom.path_steps(leaf):
            result = cache.access(line, slot)
            if result.evicted is not None and result.evicted.dirty_sectors:
                for _ in result.evicted.dirty_sectors:
                    write_fn(now, BMT_NODE_BYTES)
            if result.sector_hit:
                break
            levels += 1
            fetched = read_fn(ready, BMT_NODE_BYTES)
            if fetched > ready:
                ready = fetched
        if levels and self.tracer.enabled:
            self.tracer.span(
                cache.name, "bmt_walk", now, ready - now, cat="metadata",
                args={"leaf": leaf, "levels": levels},
            )
        return ready

    def bmt_update_walk(
        self,
        now: int,
        cache,
        geom: BMTGeometry,
        leaf: int,
        read_fn: Callable[[int, int], int],
        write_fn: Callable[[int, int], int],
    ) -> None:
        """Update walk after a counter write: dirty the leaf's parent node.

        Real BMT write machinery lazily propagates updates upward; the
        traffic that matters is the dirty node writebacks, which the cache
        eviction path produces. Only the immediate parent is dirtied here -
        higher levels update on-chip when the parent is evicted, which the
        64 B writeback accounts for.
        """
        if geom.depth <= 1:
            return  # the leaf's parent is the on-chip root; no traffic
        level, index = geom.parent(0, leaf)
        node = geom.node_ordinal(level, index)
        result = cache.access(node // 2, (node % 2) * 2, write=True)
        if not result.sector_hit:
            read_fn(now, BMT_NODE_BYTES)
        if result.evicted is not None and result.evicted.dirty_sectors:
            for _ in result.evicted.dirty_sectors:
                write_fn(now, BMT_NODE_BYTES)

    # -- finalization ------------------------------------------------------------
    def flush_metadata_caches(
        self,
        now: int,
        device_categories,
        cxl_categories,
    ) -> None:
        """Drain dirty metadata at end of run so traffic totals are honest.

        ``device_categories``/``cxl_categories`` map cache kind ('counter',
        'mac', 'bmt') to the traffic category its writebacks carry.
        """
        for channel, caches in enumerate(self.device_meta):
            for kind, cache in (("counter", caches.counter), ("mac", caches.mac), ("bmt", caches.bmt)):
                category = device_categories.get(kind)
                if category is None:
                    continue
                nbytes = BMT_NODE_BYTES if kind == "bmt" else METADATA_UNIT_BYTES
                for line in cache.flush_dirty():
                    for _ in line.dirty_sectors:
                        self.device_write(now, channel, nbytes, category)
        for plane, caches in enumerate(self.cxl_meta_by_plane):
            device = self.plane_device(plane)
            for kind, cache in (
                ("counter", caches.counter),
                ("mac", caches.mac),
                ("bmt", caches.bmt),
            ):
                category = cxl_categories.get(kind)
                if category is None:
                    continue
                nbytes = BMT_NODE_BYTES if kind == "bmt" else METADATA_UNIT_BYTES
                for line in cache.flush_dirty():
                    for _ in line.dirty_sectors:
                        self.link_write(now, nbytes, category, device=device)

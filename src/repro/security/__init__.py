"""Security models for the timing simulator, plus the functional system.

Three timing personalities plug into the GPU simulator:

* :class:`~repro.security.none.NoSecurityModel` - the normalization basis of
  Figure 10: identical memory system, zero security operations.
* :class:`~repro.security.baseline.BaselineSecurityModel` - the conventional
  design: metadata keyed to physical location, full decrypt/re-encrypt and
  metadata transfer on every page move, page-granularity dirty tracking.
* :class:`repro.core.salus.SalusSecurityModel` - the paper's contribution
  (lives in :mod:`repro.core`).

:mod:`repro.security.functional` implements the byte-accurate functional
security system (real AES/MAC/Merkle) used to prove the security argument.
"""

from .fabric import MemoryFabric, SectorLoc
from .functional import FunctionalSecureSystem, FunctionalStats
from .model import TimingSecurityModel
from .none import NoSecurityModel
from .baseline import BaselineSecurityModel

__all__ = [
    "BaselineSecurityModel",
    "FunctionalSecureSystem",
    "FunctionalStats",
    "MemoryFabric",
    "NoSecurityModel",
    "SectorLoc",
    "TimingSecurityModel",
]

"""The no-security reference system.

Identical memory system and migration machinery, zero security operations:
this is the normalization basis of Figures 10, 13 and 14 ("a system with the
same memory configuration but without any security support"). It uses the
conventional page-granularity dirty bit, like an unprotected GPU would.
"""

from __future__ import annotations

from typing import Tuple

from .fabric import SectorLoc
from .model import TimingSecurityModel


class NoSecurityModel(TimingSecurityModel):
    """Data traffic only - the unprotected upper bound."""

    name = "nosec"

    def read_complete(self, now: int, loc: SectorLoc, data_ready: int) -> int:
        return data_ready

    def writeback(self, now: int, loc: SectorLoc) -> None:
        # The data write itself is booked by the simulator; nothing extra.
        return None

    def fill(self, now: int, page: int, frame: int) -> int:
        _, install_done = self._copy_page_to_device(now, page, frame)
        return install_done

    def evict(
        self, now: int, page: int, frame: int,
        dirty_chunks: Tuple[int, ...], page_dirty: bool,
    ) -> int:
        if not page_dirty:
            return now
        # Page-granularity dirty bit: the whole page goes back.
        all_chunks = tuple(range(self.geometry.chunks_per_page))
        return self._copy_chunks_to_cxl(now, page, frame, all_chunks)

    def finalize(self, now: int) -> None:
        return None

"""The functional security system: real bytes, real crypto, real trees.

While the timing models count cycles, this module *implements* the two
security designs over byte-accurate memory images, with AES-128 counter-mode
encryption, truncated HMAC MACs, and hashed Bonsai Merkle trees. It exists
to prove, by execution, the paper's security argument:

* data written through the secure path reads back correctly across any
  sequence of migrations and evictions (round-trip);
* under **Salus**, migration moves ciphertext verbatim - the bytes in the
  CXL image and the device image are bit-identical, and the migration
  re-encryption counter stays at zero;
* under the **baseline**, every migration decrypts and re-encrypts (the
  ciphertext changes), which the re-encryption counter records;
* any tampering with ciphertext or MACs raises
  :class:`~repro.errors.IntegrityError`;
* replaying a stale-but-self-consistent snapshot (data + MAC + counters +
  Merkle leaf) raises :class:`~repro.errors.FreshnessError`, because the
  on-chip root has moved on;
* one-time pads never repeat, because the IV's spatial half is the
  permanent CXL address (checked exhaustively in tests).

The implementation is deliberately compact: device memory is a page cache
of the CXL image, reads/writes operate on 32 B sectors, and the Salus mode
reuses the same counter organizations (:mod:`repro.metadata.counters`) and
MAC-sector layout (:mod:`repro.metadata.mac_store`) as the timing layer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from ..address import Geometry
from ..core.unified import UnifiedAddressSpace
from ..crypto.ctr_mode import CounterModeCipher
from ..crypto.keys import KeySet
from ..crypto.mac import truncated_mac, verify_mac
from ..cxl.device import SectorStore
from ..errors import FreshnessError, IntegrityError, SimulationError
from ..metadata.bmt import BMTGeometry, BonsaiMerkleTree
from ..metadata.counters import (
    CollapsedCounterStore,
    ConventionalSplitCounterStore,
    CounterPair,
    InterleavingFriendlyCounterStore,
)
from ..metadata.mac_store import MacSector, MacStore
from ..migration.dirty import DirtyTracker
from ..migration.page_cache import PageCache


@dataclass
class FunctionalStats:
    """Observable outcomes the functional tests assert on."""

    migration_reencrypted_sectors: int = 0
    writeback_reencrypted_sectors: int = 0
    fills: int = 0
    evictions: int = 0
    metadata_chunks_fetched: int = 0
    mac_checks: int = 0
    bmt_verifies: int = 0


class FunctionalSecureSystem:
    """A working two-tier secure GPU memory (Salus or baseline mode)."""

    def __init__(
        self,
        footprint_pages: int,
        frames: int,
        mode: str = "salus",
        geometry: Optional[Geometry] = None,
        keys: Optional[KeySet] = None,
    ) -> None:
        if mode not in ("salus", "baseline"):
            raise SimulationError(f"unknown mode {mode!r}")
        self.mode = mode
        self.geometry = geometry if geometry is not None else Geometry()
        self.keys = keys if keys is not None else KeySet.default()
        self.unified = UnifiedAddressSpace(self.geometry, footprint_pages)
        self.cipher = CounterModeCipher(self.keys.encryption_key)
        self.stats = FunctionalStats()

        geom = self.geometry
        self.footprint_pages = footprint_pages
        # Untrusted memory images (ciphertext only).
        self.cxl_data = SectorStore(geom.sector_bytes)
        self.device_data = SectorStore(geom.sector_bytes)
        self.page_cache = PageCache(frames)
        self.dirty = DirtyTracker(geom.chunks_per_page)

        # CXL-side metadata (always keyed by permanent CXL coordinates).
        self.cxl_macs = MacStore()
        if mode == "salus":
            self.cxl_counters = CollapsedCounterStore(
                chunks_per_page=geom.chunks_per_page
            )
            self.device_groups = InterleavingFriendlyCounterStore(
                sectors_per_chunk=geom.sectors_per_chunk
            )
            cxl_leaves = footprint_pages  # one collapsed sector per page
            cxl_default = struct.pack(
                f">{geom.chunks_per_page}Q", *([0] * geom.chunks_per_page)
            )
        else:
            self.cxl_counters_conv = ConventionalSplitCounterStore()
            self.device_counters_conv = ConventionalSplitCounterStore()
            self.device_macs = MacStore()
            cxl_leaves = max(
                1, footprint_pages * geom.sectors_per_page // 32
            )
            cxl_default = struct.pack(">64I", *([0] * 64))
        # Default leaves encode the all-zero counter state so untouched
        # memory verifies without ever having been written.
        self.cxl_bmt = BonsaiMerkleTree(
            BMTGeometry(num_leaves=cxl_leaves), default_leaf=cxl_default
        )
        device_leaves = max(1, frames * geom.chunks_per_page)
        device_default = struct.pack(
            f">{2 * geom.sectors_per_chunk}Q", *([0] * 2 * geom.sectors_per_chunk)
        )
        self.device_bmt = BonsaiMerkleTree(
            BMTGeometry(num_leaves=device_leaves), default_leaf=device_default
        )

    # ------------------------------------------------------------------ helpers
    def _coords(self, cxl_addr: int):
        return self.unified.coordinates(cxl_addr)

    def _device_sector(self, frame: int, sector_in_page: int) -> int:
        return frame * self.geometry.sectors_per_page + sector_in_page

    def _cxl_sector(self, cxl_addr: int) -> int:
        return cxl_addr // self.geometry.sector_bytes

    # -- Merkle leaf payloads: the counter state as stored in memory ----------
    def _cxl_leaf_payload_salus(self, page: int) -> bytes:
        epochs = [
            self.cxl_counters.chunk_epoch(page, c)
            for c in range(self.geometry.chunks_per_page)
        ]
        return struct.pack(f">{len(epochs)}Q", *epochs)

    def _cxl_leaf_payload_baseline(self, group: int) -> bytes:
        base = group * 32
        pairs = [self.cxl_counters_conv.read(base + s) for s in range(32)]
        return struct.pack(
            ">64I", *[v for p in pairs for v in (p.major, p.minor)]
        )

    def _device_leaf_payload(self, device_chunk: int) -> bytes:
        if self.mode == "salus":
            try:
                pairs = [
                    self.device_groups.read(device_chunk, s)
                    for s in range(self.geometry.sectors_per_chunk)
                ]
            except KeyError:
                return b""
        else:
            base = device_chunk * self.geometry.sectors_per_chunk
            pairs = [
                self.device_counters_conv.read(base + s)
                for s in range(self.geometry.sectors_per_chunk)
            ]
        return struct.pack(
            f">{2 * len(pairs)}Q", *[v for p in pairs for v in (p.major, p.minor)]
        )

    def _update_cxl_leaf(self, page: int, chunk_in_page: int, cxl_sector: int) -> None:
        if self.mode == "salus":
            self.cxl_bmt.update(page, self._cxl_leaf_payload_salus(page))
        else:
            group = self.cxl_counters_conv.group_index(cxl_sector)
            self.cxl_bmt.update(group, self._cxl_leaf_payload_baseline(group))
        _ = chunk_in_page

    def _verify_cxl_leaf(self, page: int, cxl_sector: int) -> None:
        self.stats.bmt_verifies += 1
        if self.mode == "salus":
            self.cxl_bmt.verify_or_raise(page, self._cxl_leaf_payload_salus(page))
        else:
            group = self.cxl_counters_conv.group_index(cxl_sector)
            self.cxl_bmt.verify_or_raise(
                group, self._cxl_leaf_payload_baseline(group)
            )

    # ------------------------------------------------------------------ residency
    def _ensure_resident(self, page: int) -> int:
        frame = self.page_cache.frame_of(page)
        if frame is not None:
            self.page_cache.touch(page)
            return frame
        result = self.page_cache.fault(page)
        if result.victim_page is not None:
            self._evict(result.victim_page, result.victim_frame)
        self._fill(page, result.frame)
        return result.frame

    def _fill(self, page: int, frame: int) -> None:
        """Copy a page's ciphertext into device memory.

        Salus: a verbatim copy, metadata fetched lazily on access.
        Baseline: decrypt with CXL counters, re-encrypt with device-local
        counters, rebuild device MACs - the full location-tied toll.
        """
        geom = self.geometry
        self.stats.fills += 1
        for s in range(geom.sectors_per_page):
            cxl_sector = page * geom.sectors_per_page + s
            ciphertext = self.cxl_data.read(cxl_sector)
            if self.mode == "salus":
                self.device_data.write(self._device_sector(frame, s), ciphertext)
                continue
            # Baseline: verify + decrypt under CXL metadata...
            cxl_addr = cxl_sector * geom.sector_bytes
            pair = self.cxl_counters_conv.read(cxl_sector)
            self._verify_cxl_leaf(page, cxl_sector)
            self._check_mac(self.cxl_macs, cxl_sector, ciphertext, cxl_addr, pair)
            plaintext = self.cipher.crypt_sector(
                ciphertext, cxl_addr, pair.major, pair.minor
            )
            # ...then re-encrypt under the device location's counters. An
            # increment that would overflow the shared major first rescues
            # every covered sibling (the 1 KiB unification re-encryption).
            dev_sector = self._device_sector(frame, s)
            current = self.device_counters_conv.read(dev_sector)
            touched = set()
            if current.minor + 1 >= (1 << self.device_counters_conv.minor_bits):
                touched = self._reencrypt_baseline_span(dev_sector)
            inc = self.device_counters_conv.increment(dev_sector)
            self.stats.migration_reencrypted_sectors += 1
            new_cipher = self.cipher.crypt_sector(
                plaintext, dev_sector * geom.sector_bytes, inc.pair.major, inc.pair.minor
            )
            self.device_data.write(dev_sector, new_cipher)
            self._set_mac(
                self.device_macs, dev_sector, new_cipher,
                dev_sector * geom.sector_bytes, inc.pair,
            )
            device_chunk = dev_sector // geom.sectors_per_chunk
            for chunk in touched | {device_chunk}:
                self.device_bmt.update(chunk, self._device_leaf_payload(chunk))

    def _evict(self, page: int, frame: int) -> None:
        """Write dirty state back to the CXL image and drop device state."""
        geom = self.geometry
        self.stats.evictions += 1
        dirty_chunks = set(self.dirty.dirty_chunks(page))
        if self.mode == "baseline" and self.dirty.is_page_dirty(page):
            dirty_chunks = set(range(geom.chunks_per_page))
        for chunk in sorted(dirty_chunks):
            self._writeback_chunk(page, frame, chunk)
        # Drop device-side state for every chunk of the page.
        for chunk in range(geom.chunks_per_page):
            device_chunk = frame * geom.chunks_per_page + chunk
            if self.mode == "salus":
                self.device_groups.evict(device_chunk)
            for s in range(geom.sectors_per_chunk):
                self.device_data.discard(
                    device_chunk * geom.sectors_per_chunk + s
                )
        self.dirty.clear(page)

    def _writeback_chunk(self, page: int, frame: int, chunk: int) -> None:
        """Collapse (Salus) or re-encrypt (baseline) one chunk back to CXL."""
        geom = self.geometry
        device_chunk = frame * geom.chunks_per_page + chunk
        if self.mode == "salus":
            # Advance the chunk epoch, re-encrypt all 8 sectors to
            # (new_epoch, 0), recompute MACs with the embedded epoch.
            if not self.device_groups.any_minor_nonzero(device_chunk):
                # Nothing was actually written since install; the CXL copy
                # is still current.
                return
            new_pair = self.cxl_counters.collapse(page, chunk).pair
        for s in range(geom.sectors_per_chunk):
            sector_in_page = chunk * geom.sectors_per_chunk + s
            dev_sector = self._device_sector(frame, sector_in_page)
            cxl_sector = page * geom.sectors_per_page + sector_in_page
            cxl_addr = cxl_sector * geom.sector_bytes
            ciphertext = self.device_data.read(dev_sector)
            if self.mode == "salus":
                old_pair = self.device_groups.read(device_chunk, s)
                plaintext = self.cipher.crypt_sector(
                    ciphertext, cxl_addr, old_pair.major, old_pair.minor
                )
                self.stats.writeback_reencrypted_sectors += 1
                new_cipher = self.cipher.crypt_sector(
                    plaintext, cxl_addr, new_pair.major, new_pair.minor
                )
                self.cxl_data.write(cxl_sector, new_cipher)
                self._set_mac(
                    self.cxl_macs, cxl_sector, new_cipher, cxl_addr, new_pair,
                    embedded=new_pair.major,
                )
            else:
                dev_pair = self.device_counters_conv.read(dev_sector)
                plaintext = self.cipher.crypt_sector(
                    ciphertext, dev_sector * geom.sector_bytes,
                    dev_pair.major, dev_pair.minor,
                )
                inc = self.cxl_counters_conv.increment(cxl_sector)
                self.stats.migration_reencrypted_sectors += 1
                new_cipher = self.cipher.crypt_sector(
                    plaintext, cxl_addr, inc.pair.major, inc.pair.minor
                )
                self.cxl_data.write(cxl_sector, new_cipher)
                self._set_mac(
                    self.cxl_macs, cxl_sector, new_cipher, cxl_addr, inc.pair
                )
        self._update_cxl_leaf(
            page, chunk,
            page * geom.sectors_per_page + chunk * geom.sectors_per_chunk,
        )

    # ------------------------------------------------------------------ MACs
    def _set_mac(
        self,
        store: MacStore,
        sector_index: int,
        ciphertext: bytes,
        addr_for_mac: int,
        pair: CounterPair,
        embedded: Optional[int] = None,
    ) -> None:
        block = sector_index // self.geometry.sectors_per_block
        within = sector_index % self.geometry.sectors_per_block
        mac = truncated_mac(
            self.keys.mac_key, ciphertext, addr_for_mac, pair.major, pair.minor
        )
        sector = store.get(block)
        sector.macs[within] = mac
        if embedded is not None:
            store.put(
                block,
                MacSector(
                    macs=list(sector.macs),
                    embedded_major=embedded & 0xFFFFFFFF,
                ),
            )

    def _check_mac(
        self,
        store: MacStore,
        sector_index: int,
        ciphertext: bytes,
        addr_for_mac: int,
        pair: CounterPair,
    ) -> None:
        block = sector_index // self.geometry.sectors_per_block
        within = sector_index % self.geometry.sectors_per_block
        expected = store.get(block).macs[within]
        self.stats.mac_checks += 1
        if expected == 0 and ciphertext == b"\x00" * len(ciphertext):
            # Initialized state: the sector was never written through the
            # secure path (secure-wipe leaves zeroed data and zeroed MACs).
            return
        if not verify_mac(
            self.keys.mac_key, ciphertext, addr_for_mac,
            pair.major, pair.minor, expected,
        ):
            raise IntegrityError(
                f"MAC mismatch for sector at {addr_for_mac:#x}: data or "
                "metadata was tampered with"
            )

    # ------------------------------------------------------------------ Salus lazy metadata
    def _ensure_chunk_metadata(self, page: int, frame: int, chunk: int) -> None:
        """Fetch-on-access: install the chunk's counter group from the CXL
        side (epoch verified against the CXL tree) on first touch."""
        device_chunk = frame * self.geometry.chunks_per_page + chunk
        if self.device_groups.is_installed_for(device_chunk, page):
            return
        self._verify_cxl_leaf(page, page * self.geometry.sectors_per_page)
        epoch = self.cxl_counters.chunk_epoch(page, chunk)
        self.device_groups.install(device_chunk, epoch, page)
        self.device_bmt.update(device_chunk, self._device_leaf_payload(device_chunk))
        self.stats.metadata_chunks_fetched += 1

    # ------------------------------------------------------------------ public API
    def write(self, cxl_addr: int, plaintext: bytes) -> None:
        """Write one 32 B sector through the secure path."""
        geom = self.geometry
        if len(plaintext) != geom.sector_bytes:
            raise SimulationError(f"writes are {geom.sector_bytes} B sectors")
        coords = self._coords(cxl_addr)
        frame = self._ensure_resident(coords.page)
        sector_in_page = geom.sector_in_page(cxl_addr)
        dev_sector = self._device_sector(frame, sector_in_page)
        device_chunk = dev_sector // geom.sectors_per_chunk

        if self.mode == "salus":
            self._ensure_chunk_metadata(coords.page, frame, coords.chunk_in_page)
            current = self.device_groups.read(device_chunk, coords.sector_in_chunk)
            if current.minor + 1 >= (1 << self.device_groups.minor_bits):
                # The increment below will overflow and reset the whole
                # group; rescue the chunk's plaintext first so the siblings
                # can be re-encrypted under the bumped major.
                self._reencrypt_salus_chunk(coords.page, frame, coords.chunk_in_page)
            inc = self.device_groups.increment(device_chunk, coords.sector_in_chunk)
            ciphertext = self.cipher.crypt_sector(
                plaintext, coords.cxl_sector_addr, inc.pair.major, inc.pair.minor
            )
            self.device_data.write(dev_sector, ciphertext)
            # Device-resident MACs live alongside the CXL MAC image in this
            # functional model: unified addressing means the same MAC store
            # serves both, keyed by the permanent CXL sector.
            self._set_mac(
                self.cxl_macs, self._cxl_sector(cxl_addr), ciphertext,
                coords.cxl_sector_addr, inc.pair,
            )
        else:
            current = self.device_counters_conv.read(dev_sector)
            touched_chunks = set()
            if current.minor + 1 >= (1 << self.device_counters_conv.minor_bits):
                touched_chunks = self._reencrypt_baseline_span(dev_sector)
            inc = self.device_counters_conv.increment(dev_sector)
            ciphertext = self.cipher.crypt_sector(
                plaintext, dev_sector * geom.sector_bytes,
                inc.pair.major, inc.pair.minor,
            )
            self.device_data.write(dev_sector, ciphertext)
            self._set_mac(
                self.device_macs, dev_sector, ciphertext,
                dev_sector * geom.sector_bytes, inc.pair,
            )
            # Refresh Merkle leaves of every chunk the overflow touched,
            # now that the store holds the post-reset values.
            for other_chunk in touched_chunks - {device_chunk}:
                self.device_bmt.update(
                    other_chunk, self._device_leaf_payload(other_chunk)
                )
        self.device_bmt.update(device_chunk, self._device_leaf_payload(device_chunk))
        self.dirty.mark(coords.page, coords.chunk_in_page)

    def read(self, cxl_addr: int) -> bytes:
        """Read one 32 B sector through the secure path (verify + decrypt)."""
        geom = self.geometry
        coords = self._coords(cxl_addr)
        frame = self._ensure_resident(coords.page)
        sector_in_page = geom.sector_in_page(cxl_addr)
        dev_sector = self._device_sector(frame, sector_in_page)
        device_chunk = dev_sector // geom.sectors_per_chunk
        ciphertext = self.device_data.read(dev_sector)

        if self.mode == "salus":
            self._ensure_chunk_metadata(coords.page, frame, coords.chunk_in_page)
            pair = self.device_groups.read(device_chunk, coords.sector_in_chunk)
            self.device_bmt.verify_or_raise(
                device_chunk, self._device_leaf_payload(device_chunk)
            )
            self.stats.bmt_verifies += 1
            self._check_mac(
                self.cxl_macs, self._cxl_sector(cxl_addr), ciphertext,
                coords.cxl_sector_addr, pair,
            )
            return self.cipher.crypt_sector(
                ciphertext, coords.cxl_sector_addr, pair.major, pair.minor
            )
        pair = self.device_counters_conv.read(dev_sector)
        self.device_bmt.verify_or_raise(
            device_chunk, self._device_leaf_payload(device_chunk)
        )
        self.stats.bmt_verifies += 1
        self._check_mac(
            self.device_macs, dev_sector, ciphertext,
            dev_sector * geom.sector_bytes, pair,
        )
        return self.cipher.crypt_sector(
            ciphertext, dev_sector * geom.sector_bytes, pair.major, pair.minor
        )

    # ------------------------------------------------------------------ overflow paths
    def _reencrypt_salus_chunk(self, page: int, frame: int, chunk: int) -> None:
        """Chunk-local minor overflow (called *before* the overflowing
        increment): decrypt the chunk's sectors under their current pairs
        and re-encrypt under (major+1, 0). Neighbouring chunks are never
        touched - the locality guarantee of the Figure-4 groups."""
        geom = self.geometry
        device_chunk = frame * geom.chunks_per_page + chunk
        new_major = self.device_groups.read(device_chunk, 0).major + 1
        for s in range(geom.sectors_per_chunk):
            sector_in_page = chunk * geom.sectors_per_chunk + s
            dev_sector = self._device_sector(frame, sector_in_page)
            if dev_sector not in self.device_data:
                continue
            cxl_sector = page * geom.sectors_per_page + sector_in_page
            cxl_addr = cxl_sector * geom.sector_bytes
            old_pair = self.device_groups.read(device_chunk, s)
            plaintext = self.cipher.crypt_sector(
                self.device_data.read(dev_sector), cxl_addr,
                old_pair.major, old_pair.minor,
            )
            new_pair = CounterPair(major=new_major, minor=0)
            new_cipher = self.cipher.crypt_sector(
                plaintext, cxl_addr, new_pair.major, new_pair.minor
            )
            self.device_data.write(dev_sector, new_cipher)
            self._set_mac(self.cxl_macs, cxl_sector, new_cipher, cxl_addr, new_pair)
            self.stats.writeback_reencrypted_sectors += 1

    def _reencrypt_baseline_span(self, written_sector: int) -> set:
        """Shared-major overflow (called *before* the overflowing
        increment): every sector the major covers decrypts under its current
        pair and re-encrypts under (major+1, 0) - even sectors belonging to
        entirely different CXL pages, the unification cost of Section IV-A1.

        Returns the device chunks touched; the caller refreshes their Merkle
        leaves *after* the increment mutates the counter store, so the tree
        always reflects the stored values.
        """
        geom = self.geometry
        store = self.device_counters_conv
        base = store.group_index(written_sector) * store.minors_per_major
        new_major = store.read(written_sector).major + 1
        # Every covered chunk's counters reset, whether or not its data is
        # present, so every covered Merkle leaf must refresh afterwards.
        touched = {
            s // geom.sectors_per_chunk
            for s in range(base, base + store.minors_per_major)
        }
        for dev_sector in range(base, base + store.minors_per_major):
            if dev_sector not in self.device_data:
                continue
            old_pair = store.read(dev_sector)
            addr = dev_sector * geom.sector_bytes
            plaintext = self.cipher.crypt_sector(
                self.device_data.read(dev_sector), addr,
                old_pair.major, old_pair.minor,
            )
            new_pair = CounterPair(major=new_major, minor=0)
            new_cipher = self.cipher.crypt_sector(
                plaintext, addr, new_pair.major, new_pair.minor
            )
            self.device_data.write(dev_sector, new_cipher)
            self._set_mac(self.device_macs, dev_sector, new_cipher, addr, new_pair)
            self.stats.migration_reencrypted_sectors += 1
        return touched

    # ------------------------------------------------------------------ attack surface
    def tamper_device_sector(self, cxl_addr: int, new_bytes: bytes) -> None:
        """Physically overwrite ciphertext in device memory (attacker)."""
        coords = self._coords(cxl_addr)
        frame = self.page_cache.frame_of(coords.page)
        if frame is None:
            raise SimulationError("page not resident; tamper the CXL image")
        dev_sector = self._device_sector(
            frame, self.geometry.sector_in_page(cxl_addr)
        )
        self.device_data.write(dev_sector, new_bytes)

    def tamper_cxl_sector(self, cxl_addr: int, new_bytes: bytes) -> None:
        """Physically overwrite ciphertext in the expansion memory."""
        self.cxl_data.write(self._cxl_sector(cxl_addr), new_bytes)

    def snapshot_chunk(self, cxl_addr: int) -> dict:
        """Record everything an attacker needs for a replay attempt."""
        coords = self._coords(cxl_addr)
        geom = self.geometry
        base = coords.page * geom.sectors_per_page + coords.chunk_in_page * geom.sectors_per_chunk
        return {
            "page": coords.page,
            "chunk": coords.chunk_in_page,
            "data": {s: self.cxl_data.read(base + s) for s in range(geom.sectors_per_chunk)},
            "macs": {
                (base + s) // geom.sectors_per_block: MacSector(
                    macs=list(self.cxl_macs.get((base + s) // geom.sectors_per_block).macs),
                    embedded_major=self.cxl_macs.get(
                        (base + s) // geom.sectors_per_block
                    ).embedded_major,
                )
                for s in range(geom.sectors_per_chunk)
            },
            "leaf_hash": self.cxl_bmt.raw_leaf_hash(
                coords.page if self.mode == "salus"
                else self.cxl_counters_conv.group_index(base)
            ),
            "epoch": (
                self.cxl_counters.chunk_epoch(coords.page, coords.chunk_in_page)
                if self.mode == "salus" else None
            ),
        }

    def replay_chunk(self, snapshot: dict) -> None:
        """Restore a stale-but-consistent chunk image (attacker).

        Data, MACs, counters and even the Merkle *leaf hash* are restored,
        so everything in untrusted memory is self-consistent; only the
        on-chip root knows better.
        """
        geom = self.geometry
        page, chunk = snapshot["page"], snapshot["chunk"]
        base = page * geom.sectors_per_page + chunk * geom.sectors_per_chunk
        for s, data in snapshot["data"].items():
            self.cxl_data.write(base + s, data)
        for block, sector in snapshot["macs"].items():
            self.cxl_macs.put(block, sector)
        if self.mode == "salus" and snapshot["epoch"] is not None:
            # Roll the collapsed counter back by direct state manipulation,
            # as a physical attacker rewriting the counter region would.
            state = self.cxl_counters._pages[page]  # attacker's eye view
            state.minors[chunk] = snapshot["epoch"] & (
                (1 << self.cxl_counters.minor_bits) - 1
            )
            state.major = snapshot["epoch"] >> self.cxl_counters.minor_bits
        leaf = page if self.mode == "salus" else self.cxl_counters_conv.group_index(base)
        self.cxl_bmt.restore_leaf_hash(leaf, snapshot["leaf_hash"])

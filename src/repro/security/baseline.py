"""The conventional security model (the paper's baseline).

Every memory unit - the GPU device memory and the CXL expansion memory -
keeps its own security metadata, keyed to *local physical addresses*
(Section II-C, PSSM-style): split counters (one 32-bit major shared by 32
seven-bit minors, covering 1 KiB), one MAC sector per 128 B block, and a
local Bonsai Merkle tree over the counter region.

Because metadata is location-bound, every page migration pays the full
toll the paper's motivation quantifies as a 2.04x slowdown (Figure 3):

* **fill** (CXL -> device): read the page's CXL counters, MACs and Merkle
  proof over the narrow link, decrypt all 128 sectors, re-encrypt them under
  device-local counters (incrementing minors; overflows re-encrypt their
  whole 1 KiB span), write device counters/MACs and update the device tree;
* **evict** (device -> CXL): the mirror image, gated by a page-granularity
  dirty bit, so one dirty byte writes back 4 KiB of data plus metadata.

``free_migration_security=True`` removes the security work from both
migration directions while keeping the demand path protected - the "no
security overheads due to data movement" comparison of Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..metadata.counters import ConventionalSplitCounterStore
from ..metadata.layout import ConventionalLayout
from ..sim.stats import TrafficCategory
from .fabric import MemoryFabric, SectorLoc
from .model import TimingSecurityModel


class BaselineSecurityModel(TimingSecurityModel):
    """Location-keyed metadata on both memory sides."""

    name = "baseline"

    def __init__(self, fabric: MemoryFabric, free_migration_security: bool = False) -> None:
        super().__init__(fabric)
        self.free_migration_security = free_migration_security
        geom = self.geometry
        gpu = self.config.gpu

        self._dev_layout = ConventionalLayout(
            geometry=geom, data_sectors=fabric.data_sectors_per_channel
        )
        self._dev_bmt = self._dev_layout.bmt_geometry(self.config.security.bmt_arity)
        self._dev_counters: Dict[int, ConventionalSplitCounterStore] = {
            c: ConventionalSplitCounterStore(
                minor_bits=self.config.security.minor_counter_bits
            )
            for c in range(gpu.num_channels)
        }

        # One CXL-side security plane per (tenant, expansion device) pair -
        # just per device on the single-owner fabric - each sized by the
        # pages homed there and keyed by plane-local sectors. A shared
        # device carries fully separate counter stores and Merkle trees for
        # every resident tenant.
        self._cxl_layouts: List[ConventionalLayout] = []
        self._cxl_bmts = []
        self._cxl_counters_by_plane: List[ConventionalSplitCounterStore] = []
        for plane in range(fabric.num_planes):
            plane_sectors = fabric.plane_pages(plane) * geom.sectors_per_page
            layout = ConventionalLayout(geometry=geom, data_sectors=plane_sectors)
            self._cxl_layouts.append(layout)
            self._cxl_bmts.append(
                layout.bmt_geometry(self.config.security.bmt_arity)
            )
            self._cxl_counters_by_plane.append(
                ConventionalSplitCounterStore(
                    minor_bits=self.config.security.minor_counter_bits
                )
            )

    # ------------------------------------------------------------------ demand
    def read_complete(self, now: int, loc: SectorLoc, data_ready: int) -> int:
        fabric = self.fabric
        ch = loc.channel
        caches = fabric.device_meta[ch]
        fns = self.chfns[ch]

        ctr_unit = self._dev_layout.counter_sector(loc.local_sector)
        ctr_ready, ctr_hit = fabric.metadata_access(
            now, caches.counter, ctr_unit, fns.ctr_rd_prio, fns.ctr_wr,
            TrafficCategory.COUNTER,
        )
        if not ctr_hit:
            # Freshly fetched counters must be verified against the channel's
            # local Merkle tree before their OTP may be trusted.
            ctr_ready = max(
                ctr_ready,
                fabric.bmt_read_walk(
                    now, caches.bmt, self._dev_bmt, ctr_unit,
                    fns.bmt_rd_prio, fns.bmt_wr,
                ),
            )
        otp_ready = fabric.aes_engines[ch].book(ctr_ready)

        mac_unit = self._dev_layout.mac_sector(loc.local_sector)
        mac_ready, _ = fabric.metadata_access(
            now, caches.mac, mac_unit, fns.mac_rd_prio, fns.mac_wr,
            TrafficCategory.MAC,
        )

        plaintext_ready = max(data_ready, otp_ready) + 1
        verified = fabric.mac_engines[ch].book(max(data_ready, mac_ready))
        return max(plaintext_ready, verified)

    def writeback(self, now: int, loc: SectorLoc) -> None:
        """Posted: counter++, re-encrypt, MAC update, tree update."""
        fabric = self.fabric
        ch = loc.channel
        caches = fabric.device_meta[ch]
        store = self._dev_counters[ch]

        result = store.increment(loc.local_sector)
        if result.overflowed:
            self._reencrypt_device_span(now, ch, len(result.reencrypt_units))

        fns = self.chfns[ch]
        ctr_unit = self._dev_layout.counter_sector(loc.local_sector)
        fabric.metadata_access(
            now, caches.counter, ctr_unit, fns.ctr_rd_post, fns.ctr_wr,
            TrafficCategory.COUNTER, write=True,
        )
        fabric.aes_engines[ch].book(now)
        fabric.metadata_access(
            now, caches.mac, self._dev_layout.mac_sector(loc.local_sector),
            fns.mac_rd_post, fns.mac_wr, TrafficCategory.MAC, write=True,
        )
        fabric.mac_engines[ch].book(now)
        fabric.bmt_update_walk(
            now, caches.bmt, self._dev_bmt, ctr_unit, fns.bmt_rd_post, fns.bmt_wr
        )

    def _reencrypt_device_span(self, now: int, channel: int, sectors: int) -> None:
        """A minor overflow re-encrypts the whole span its major covers."""
        nbytes = sectors * self.geometry.sector_bytes
        self.stats.bump("baseline.ctr_overflow_reencrypts")
        read_done = self.fabric.device_read(
            now, channel, nbytes, TrafficCategory.REENC_DATA, critical=False
        )
        self.fabric.aes_engines[channel].book(read_done, sectors)
        self.fabric.device_write(read_done, channel, nbytes, TrafficCategory.REENC_DATA)

    def _cxl_ctr_units(self, layout: ConventionalLayout, base_sector: int) -> range:
        """CXL counter sectors covering one page, in ascending order.

        ``counter_sector`` is a monotone floor division, so the distinct
        units of a page's contiguous sector range form a contiguous range of
        unit indices - equivalent to the sorted set over all 128 sectors but
        without 128 calls per migration. ``layout`` is the home device's
        CXL-side layout; ``base_sector`` is device-local.
        """
        per = layout.sectors_per_counter
        first = base_sector // per
        last = (base_sector + self.geometry.sectors_per_page - 1) // per
        return range(first, last + 1)

    # ------------------------------------------------------------------ migration
    def fill(self, now: int, page: int, frame: int) -> int:
        geom = self.geometry
        fabric = self.fabric
        if self.free_migration_security:
            _, install_done = self._copy_page_to_device(now, page, frame)
            return install_done
        self.stats.bump("baseline.secure_fills")
        dev = fabric.home_of_page(page)
        plane = fabric.plane_of_page(page)
        cxl_meta = fabric.cxl_meta_by_plane[plane]
        cxl_layout = self._cxl_layouts[plane]
        cxl_bmt = self._cxl_bmts[plane]
        # Ciphertext streams over the link in parallel with the metadata legs
        # below, but it cannot be installed into device memory until it has
        # been decrypted (CXL counters) and re-encrypted (device counters) -
        # the location-tied-metadata cost this model exists to measure.
        link_ready = fabric.link_read(
            now, geom.page_bytes, TrafficCategory.DATA, device=dev
        )

        # 1. Fetch and verify the page's CXL-side counters and MACs. Each
        #    metadata sector is an individual memory transaction (this is
        #    how the conventional design issues them - through the regular
        #    memory request path), but all of a page's requests issue
        #    together, so the counter verification walks share ancestors in
        #    the BMT cache - the bulk-verify locality the paper credits the
        #    baseline with.
        link = self.linkfns_by_device[dev]
        meta_ready = now
        base_sector = fabric.local_page(page) * geom.sectors_per_page
        for unit in self._cxl_ctr_units(cxl_layout, base_sector):
            ready, hit = fabric.metadata_access(
                now, cxl_meta.counter, unit, link.ctr_rd, link.ctr_wr,
                TrafficCategory.COUNTER,
            )
            if not hit:
                walked = fabric.bmt_read_walk(
                    now, cxl_meta.bmt, cxl_bmt, unit,
                    link.bmt_rd, link.bmt_wr,
                )
                if walked > ready:
                    ready = walked
            if ready > meta_ready:
                meta_ready = ready
        mac_base = cxl_layout.mac_sector(base_sector)
        for block in range(geom.blocks_per_page):
            ready, _ = fabric.metadata_access(
                now, cxl_meta.mac, mac_base + block, link.mac_rd, link.mac_wr,
                TrafficCategory.MAC,
            )
            if ready > meta_ready:
                meta_ready = ready

        # 2. Decrypt with CXL counters and re-encrypt with device counters:
        #    each owning partition pipes its chunk's sectors twice. Only the
        #    re-encrypted ciphertext may be written to device memory, so the
        #    data installs chain behind the crypto.
        crypto_start = max(link_ready, meta_ready)
        crypto_done = crypto_start
        spc = geom.sectors_per_chunk
        install_done = crypto_start
        for chunk in range(geom.chunks_per_page):
            channel, _ = fabric.chunk_location(page, frame, chunk)
            done = fabric.aes_engines[channel].book(crypto_start, 2 * spc)
            fabric.mac_engines[channel].book(crypto_start, spc)
            if done > crypto_done:
                crypto_done = done
            wrote = fabric.device_write(
                done, channel, geom.chunk_bytes, TrafficCategory.DATA
            )
            if wrote > install_done:
                install_done = wrote

        # 3. Install device-side counters (every sector is a write here),
        #    MACs and tree updates.
        for chunk in range(geom.chunks_per_page):
            channel, local_chunk = fabric.chunk_location(page, frame, chunk)
            caches = fabric.device_meta[channel]
            store = self._dev_counters[channel]
            fns = self.chfns[channel]
            local_base = local_chunk * spc
            for result in store.increment_span(local_base, spc):
                self._reencrypt_device_span(now, channel, len(result.reencrypt_units))
            ctr_unit = self._dev_layout.counter_sector(local_base)
            fabric.metadata_access(
                now, caches.counter, ctr_unit, fns.ctr_rd_post, fns.ctr_wr,
                TrafficCategory.COUNTER, write=True,
            )
            for block in range(geom.blocks_per_chunk):
                unit = self._dev_layout.mac_sector(local_base) + block
                fabric.metadata_access(
                    now, caches.mac, unit, fns.mac_rd_post, fns.mac_wr,
                    TrafficCategory.MAC, write=True,
                )
            fabric.bmt_update_walk(
                now, caches.bmt, self._dev_bmt, ctr_unit, fns.bmt_rd_post, fns.bmt_wr
            )

        return max(install_done, crypto_done)

    def fill_chunk(self, now: int, page: int, frame: int, chunk_in_page: int) -> int:
        """Demand chunk fill with location-tied metadata: even a single
        256 B chunk drags its CXL counters/MACs across, gets decrypted and
        re-encrypted, and installs device-side metadata."""
        if self.free_migration_security:
            return super().fill_chunk(now, page, frame, chunk_in_page)
        geom = self.geometry
        fabric = self.fabric
        self.stats.bump("baseline.secure_chunk_fills")
        dev = fabric.home_of_page(page)
        plane = fabric.plane_of_page(page)
        cxl_meta = fabric.cxl_meta_by_plane[plane]
        cxl_layout = self._cxl_layouts[plane]
        link_ready = fabric.link_read(
            now, geom.chunk_bytes, TrafficCategory.DATA, device=dev
        )

        # CXL metadata for this chunk (device-local addressing).
        base_sector = (
            fabric.local_page(page) * geom.sectors_per_page
            + chunk_in_page * geom.sectors_per_chunk
        )
        link = self.linkfns_by_device[dev]
        ctr_unit = cxl_layout.counter_sector(base_sector)
        meta_ready, hit = fabric.metadata_access(
            now, cxl_meta.counter, ctr_unit, link.ctr_rd, link.ctr_wr,
            TrafficCategory.COUNTER,
        )
        if not hit:
            meta_ready = max(
                meta_ready,
                fabric.bmt_read_walk(
                    now, cxl_meta.bmt, self._cxl_bmts[plane], ctr_unit,
                    link.bmt_rd, link.bmt_wr,
                ),
            )
        for block in range(geom.blocks_per_chunk):
            unit = cxl_layout.mac_sector(base_sector) + block
            ready, _ = fabric.metadata_access(
                now, cxl_meta.mac, unit, link.mac_rd, link.mac_wr,
                TrafficCategory.MAC,
            )
            meta_ready = max(meta_ready, ready)

        # Decrypt + re-encrypt the chunk, install device metadata.
        channel, local_chunk = fabric.chunk_location(page, frame, chunk_in_page)
        spc = geom.sectors_per_chunk
        crypto_start = max(link_ready, meta_ready)
        crypto_done = fabric.aes_engines[channel].book(crypto_start, 2 * spc)
        fabric.mac_engines[channel].book(crypto_start, spc)
        caches = fabric.device_meta[channel]
        store = self._dev_counters[channel]
        fns = self.chfns[channel]
        local_base = local_chunk * spc
        for result in store.increment_span(local_base, spc):
            self._reencrypt_device_span(now, channel, len(result.reencrypt_units))
        dev_ctr_unit = self._dev_layout.counter_sector(local_base)
        fabric.metadata_access(
            now, caches.counter, dev_ctr_unit, fns.ctr_rd_post, fns.ctr_wr,
            TrafficCategory.COUNTER, write=True,
        )
        for block in range(geom.blocks_per_chunk):
            fabric.metadata_access(
                now, caches.mac, self._dev_layout.mac_sector(local_base) + block,
                fns.mac_rd_post, fns.mac_wr, TrafficCategory.MAC, write=True,
            )
        fabric.bmt_update_walk(
            now, caches.bmt, self._dev_bmt, dev_ctr_unit, fns.bmt_rd_post, fns.bmt_wr
        )
        wrote = fabric.device_write(
            crypto_done, channel, geom.chunk_bytes, TrafficCategory.DATA
        )
        return max(crypto_done, wrote)

    def evict(
        self, now: int, page: int, frame: int,
        dirty_chunks: Tuple[int, ...], page_dirty: bool,
    ) -> int:
        if not page_dirty:
            # Device-side metadata for the page is simply discarded.
            self._drop_device_page_metadata(frame, page)
            return now
        geom = self.geometry
        fabric = self.fabric
        all_chunks = tuple(range(geom.chunks_per_page))
        drain = self._copy_chunks_to_cxl(now, page, frame, all_chunks)
        if self.free_migration_security:
            return drain
        self.stats.bump("baseline.secure_evictions")
        spc = geom.sectors_per_chunk
        dev = fabric.home_of_page(page)
        plane = fabric.plane_of_page(page)
        cxl_meta = fabric.cxl_meta_by_plane[plane]
        cxl_layout = self._cxl_layouts[plane]

        # 1. Read and verify device-side metadata, decrypt, re-encrypt with
        #    CXL counters (every sector writes back under the coarse bit).
        base_sector = fabric.local_page(page) * geom.sectors_per_page
        for chunk in all_chunks:
            channel, local_chunk = fabric.chunk_location(page, frame, chunk)
            caches = fabric.device_meta[channel]
            fns = self.chfns[channel]
            local_base = local_chunk * spc
            ctr_unit = self._dev_layout.counter_sector(local_base)
            _, ctr_hit = fabric.metadata_access(
                now, caches.counter, ctr_unit, fns.ctr_rd_post, fns.ctr_wr,
                TrafficCategory.COUNTER,
            )
            if not ctr_hit:
                fabric.bmt_read_walk(
                    now, caches.bmt, self._dev_bmt, ctr_unit,
                    fns.bmt_rd_post, fns.bmt_wr,
                )
            for block in range(geom.blocks_per_chunk):
                unit = self._dev_layout.mac_sector(local_base) + block
                fabric.metadata_access(
                    now, caches.mac, unit, fns.mac_rd_post, fns.mac_wr,
                    TrafficCategory.MAC,
                )
            fabric.aes_engines[channel].book(now, 2 * spc)
            fabric.mac_engines[channel].book(now, spc)

        # 2. Advance CXL counters for every sector and write CXL metadata.
        for result in self._cxl_counters_by_plane[plane].increment_span(
            base_sector, geom.sectors_per_page
        ):
            nbytes = len(result.reencrypt_units) * geom.sector_bytes
            self.stats.bump("baseline.cxl_overflow_reencrypts")
            self.fabric.link_read(
                now, nbytes, TrafficCategory.REENC_DATA, critical=False, device=dev
            )
            self.fabric.link_write(now, nbytes, TrafficCategory.REENC_DATA, device=dev)
        # The page's updated counter sectors and recomputed MACs write back
        # as individual transactions through the metadata path, extending
        # the eviction's outbound drain.
        link = self.linkfns_by_device[dev]
        for unit in self._cxl_ctr_units(cxl_layout, base_sector):
            wrote = fabric.link_write(now, 32, TrafficCategory.COUNTER, device=dev)
            if wrote > drain:
                drain = wrote
            fabric.metadata_access(
                now, cxl_meta.counter, unit, link.ctr_rd_post, link.ctr_wr,
                TrafficCategory.COUNTER,
            )
            fabric.bmt_update_walk(
                now, cxl_meta.bmt, self._cxl_bmts[plane], unit,
                link.bmt_rd_post, link.bmt_wr,
            )
        for _ in range(geom.blocks_per_page):
            wrote = fabric.link_write(now, 32, TrafficCategory.MAC, device=dev)
            if wrote > drain:
                drain = wrote
        self._drop_device_page_metadata(frame, page)
        return drain

    # ------------------------------------------------------------------ lifecycle
    def finalize(self, now: int) -> None:
        categories = {
            "counter": TrafficCategory.COUNTER,
            "mac": TrafficCategory.MAC,
            "bmt": TrafficCategory.BMT,
        }
        self.fabric.flush_metadata_caches(now, categories, categories)

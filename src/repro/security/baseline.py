"""The conventional security model (the paper's baseline).

Every memory unit - the GPU device memory and the CXL expansion memory -
keeps its own security metadata, keyed to *local physical addresses*
(Section II-C, PSSM-style): split counters (one 32-bit major shared by 32
seven-bit minors, covering 1 KiB), one MAC sector per 128 B block, and a
local Bonsai Merkle tree over the counter region.

Because metadata is location-bound, every page migration pays the full
toll the paper's motivation quantifies as a 2.04x slowdown (Figure 3):

* **fill** (CXL -> device): read the page's CXL counters, MACs and Merkle
  proof over the narrow link, decrypt all 128 sectors, re-encrypt them under
  device-local counters (incrementing minors; overflows re-encrypt their
  whole 1 KiB span), write device counters/MACs and update the device tree;
* **evict** (device -> CXL): the mirror image, gated by a page-granularity
  dirty bit, so one dirty byte writes back 4 KiB of data plus metadata.

``free_migration_security=True`` removes the security work from both
migration directions while keeping the demand path protected - the "no
security overheads due to data movement" comparison of Figure 3.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..metadata.counters import ConventionalSplitCounterStore
from ..metadata.layout import ConventionalLayout
from ..sim.stats import TrafficCategory
from .fabric import MemoryFabric, SectorLoc
from .model import TimingSecurityModel


class BaselineSecurityModel(TimingSecurityModel):
    """Location-keyed metadata on both memory sides."""

    name = "baseline"

    def __init__(self, fabric: MemoryFabric, free_migration_security: bool = False) -> None:
        super().__init__(fabric)
        self.free_migration_security = free_migration_security
        geom = self.geometry
        gpu = self.config.gpu

        device_sectors_per_channel = max(
            geom.sectors_per_chunk,
            fabric.num_frames * geom.sectors_per_page // gpu.num_channels,
        )
        self._dev_layout = ConventionalLayout(
            geometry=geom, data_sectors=device_sectors_per_channel
        )
        self._dev_bmt = self._dev_layout.bmt_geometry(self.config.security.bmt_arity)
        self._dev_counters: Dict[int, ConventionalSplitCounterStore] = {
            c: ConventionalSplitCounterStore(
                minor_bits=self.config.security.minor_counter_bits
            )
            for c in range(gpu.num_channels)
        }

        cxl_sectors = fabric.footprint_pages * geom.sectors_per_page
        self._cxl_layout = ConventionalLayout(geometry=geom, data_sectors=cxl_sectors)
        self._cxl_bmt = self._cxl_layout.bmt_geometry(self.config.security.bmt_arity)
        self._cxl_counters = ConventionalSplitCounterStore(
            minor_bits=self.config.security.minor_counter_bits
        )

    # ------------------------------------------------------------------ demand
    def read_complete(self, now: int, loc: SectorLoc, data_ready: int) -> int:
        fabric = self.fabric
        ch = loc.channel
        caches = fabric.device_meta[ch]
        read_fn = lambda t, n: fabric.device_read(
            t, ch, n, TrafficCategory.COUNTER, priority=True
        )
        wb_fn = lambda t, n: fabric.device_write(t, ch, n, TrafficCategory.COUNTER)

        ctr_unit = self._dev_layout.counter_sector(loc.local_sector)
        ctr_ready, ctr_hit = fabric.metadata_access(
            now, caches.counter, ctr_unit, read_fn, wb_fn, TrafficCategory.COUNTER
        )
        if not ctr_hit:
            # Freshly fetched counters must be verified against the channel's
            # local Merkle tree before their OTP may be trusted.
            bmt_read = lambda t, n: fabric.device_read(
                t, ch, n, TrafficCategory.BMT, priority=True
            )
            bmt_wb = lambda t, n: fabric.device_write(t, ch, n, TrafficCategory.BMT)
            ctr_ready = max(
                ctr_ready,
                fabric.bmt_read_walk(
                    now, caches.bmt, self._dev_bmt, ctr_unit, bmt_read, bmt_wb
                ),
            )
        otp_ready = fabric.aes_engines[ch].book(ctr_ready)

        mac_read = lambda t, n: fabric.device_read(
            t, ch, n, TrafficCategory.MAC, priority=True
        )
        mac_wb = lambda t, n: fabric.device_write(t, ch, n, TrafficCategory.MAC)
        mac_unit = self._dev_layout.mac_sector(loc.local_sector)
        mac_ready, _ = fabric.metadata_access(
            now, caches.mac, mac_unit, mac_read, mac_wb, TrafficCategory.MAC
        )

        plaintext_ready = max(data_ready, otp_ready) + 1
        verified = fabric.mac_engines[ch].book(max(data_ready, mac_ready))
        return max(plaintext_ready, verified)

    def writeback(self, now: int, loc: SectorLoc) -> None:
        """Posted: counter++, re-encrypt, MAC update, tree update."""
        fabric = self.fabric
        ch = loc.channel
        caches = fabric.device_meta[ch]
        store = self._dev_counters[ch]

        result = store.increment(loc.local_sector)
        if result.overflowed:
            self._reencrypt_device_span(now, ch, len(result.reencrypt_units))

        ctr_read = lambda t, n: fabric.device_read(
            t, ch, n, TrafficCategory.COUNTER, critical=False
        )
        ctr_wb = lambda t, n: fabric.device_write(t, ch, n, TrafficCategory.COUNTER)
        ctr_unit = self._dev_layout.counter_sector(loc.local_sector)
        fabric.metadata_access(
            now, caches.counter, ctr_unit, ctr_read, ctr_wb,
            TrafficCategory.COUNTER, write=True,
        )
        fabric.aes_engines[ch].book(now)
        mac_read = lambda t, n: fabric.device_read(
            t, ch, n, TrafficCategory.MAC, critical=False
        )
        mac_wb = lambda t, n: fabric.device_write(t, ch, n, TrafficCategory.MAC)
        fabric.metadata_access(
            now, caches.mac, self._dev_layout.mac_sector(loc.local_sector),
            mac_read, mac_wb, TrafficCategory.MAC, write=True,
        )
        fabric.mac_engines[ch].book(now)
        bmt_read = lambda t, n: fabric.device_read(
            t, ch, n, TrafficCategory.BMT, critical=False
        )
        bmt_wb = lambda t, n: fabric.device_write(t, ch, n, TrafficCategory.BMT)
        fabric.bmt_update_walk(
            now, caches.bmt, self._dev_bmt, ctr_unit, bmt_read, bmt_wb
        )

    def _reencrypt_device_span(self, now: int, channel: int, sectors: int) -> None:
        """A minor overflow re-encrypts the whole span its major covers."""
        nbytes = sectors * self.geometry.sector_bytes
        self.stats.bump("baseline.ctr_overflow_reencrypts")
        read_done = self.fabric.device_read(
            now, channel, nbytes, TrafficCategory.REENC_DATA, critical=False
        )
        self.fabric.aes_engines[channel].book(read_done, sectors)
        self.fabric.device_write(read_done, channel, nbytes, TrafficCategory.REENC_DATA)

    # ------------------------------------------------------------------ migration
    def fill(self, now: int, page: int, frame: int) -> int:
        geom = self.geometry
        fabric = self.fabric
        if self.free_migration_security:
            _, install_done = self._copy_page_to_device(now, page, frame)
            return install_done
        self.stats.bump("baseline.secure_fills")
        # Ciphertext streams over the link in parallel with the metadata legs
        # below, but it cannot be installed into device memory until it has
        # been decrypted (CXL counters) and re-encrypted (device counters) -
        # the location-tied-metadata cost this model exists to measure.
        link_ready = fabric.link_read(
            now, geom.page_bytes, TrafficCategory.DATA
        )

        # 1. Fetch and verify the page's CXL-side counters and MACs. Each
        #    metadata sector is an individual memory transaction (this is
        #    how the conventional design issues them - through the regular
        #    memory request path), but all of a page's requests issue
        #    together, so the counter verification walks share ancestors in
        #    the BMT cache - the bulk-verify locality the paper credits the
        #    baseline with.
        link_rd = lambda t, n: fabric.link_read(t, n, TrafficCategory.COUNTER)
        link_wr = lambda t, n: fabric.link_write(t, n, TrafficCategory.COUNTER)
        bmt_rd = lambda t, n: fabric.link_read(t, n, TrafficCategory.BMT)
        bmt_wr = lambda t, n: fabric.link_write(t, n, TrafficCategory.BMT)
        meta_ready = now
        base_sector = page * geom.sectors_per_page
        ctr_units = sorted(
            {
                self._cxl_layout.counter_sector(base_sector + s)
                for s in range(geom.sectors_per_page)
            }
        )
        for unit in ctr_units:
            ready, hit = fabric.metadata_access(
                now, fabric.cxl_meta.counter, unit, link_rd, link_wr,
                TrafficCategory.COUNTER,
            )
            if not hit:
                ready = max(
                    ready,
                    fabric.bmt_read_walk(
                        now, fabric.cxl_meta.bmt, self._cxl_bmt, unit, bmt_rd, bmt_wr
                    ),
                )
            meta_ready = max(meta_ready, ready)
        mac_rd = lambda t, n: fabric.link_read(t, n, TrafficCategory.MAC)
        mac_wr = lambda t, n: fabric.link_write(t, n, TrafficCategory.MAC)
        mac_base = self._cxl_layout.mac_sector(base_sector)
        for block in range(geom.blocks_per_page):
            ready, _ = fabric.metadata_access(
                now, fabric.cxl_meta.mac, mac_base + block, mac_rd, mac_wr,
                TrafficCategory.MAC,
            )
            meta_ready = max(meta_ready, ready)

        # 2. Decrypt with CXL counters and re-encrypt with device counters:
        #    each owning partition pipes its chunk's sectors twice. Only the
        #    re-encrypted ciphertext may be written to device memory, so the
        #    data installs chain behind the crypto.
        crypto_start = max(link_ready, meta_ready)
        crypto_done = crypto_start
        spc = geom.sectors_per_chunk
        install_done = crypto_start
        for chunk in range(geom.chunks_per_page):
            channel, _ = fabric.interleaver.device_chunk_location(frame, chunk)
            done = fabric.aes_engines[channel].book(crypto_start, 2 * spc)
            fabric.mac_engines[channel].book(crypto_start, spc)
            crypto_done = max(crypto_done, done)
            wrote = fabric.device_write(
                done, channel, geom.chunk_bytes, TrafficCategory.DATA
            )
            install_done = max(install_done, wrote)

        # 3. Install device-side counters (every sector is a write here),
        #    MACs and tree updates.
        for chunk in range(geom.chunks_per_page):
            channel, local_chunk = fabric.interleaver.device_chunk_location(frame, chunk)
            caches = fabric.device_meta[channel]
            store = self._dev_counters[channel]
            local_base = local_chunk * spc
            for s in range(spc):
                result = store.increment(local_base + s)
                if result.overflowed:
                    self._reencrypt_device_span(now, channel, len(result.reencrypt_units))
            ctr_rd = lambda t, n, _c=channel: fabric.device_read(
                t, _c, n, TrafficCategory.COUNTER, critical=False
            )
            ctr_wr = lambda t, n, _c=channel: fabric.device_write(
                t, _c, n, TrafficCategory.COUNTER
            )
            ctr_unit = self._dev_layout.counter_sector(local_base)
            fabric.metadata_access(
                now, caches.counter, ctr_unit, ctr_rd, ctr_wr,
                TrafficCategory.COUNTER, write=True,
            )
            mac_rd2 = lambda t, n, _c=channel: fabric.device_read(
                t, _c, n, TrafficCategory.MAC, critical=False
            )
            mac_wr2 = lambda t, n, _c=channel: fabric.device_write(
                t, _c, n, TrafficCategory.MAC
            )
            for block in range(geom.blocks_per_chunk):
                unit = self._dev_layout.mac_sector(local_base) + block
                fabric.metadata_access(
                    now, caches.mac, unit, mac_rd2, mac_wr2,
                    TrafficCategory.MAC, write=True,
                )
            bmt_rd2 = lambda t, n, _c=channel: fabric.device_read(
                t, _c, n, TrafficCategory.BMT, critical=False
            )
            bmt_wr2 = lambda t, n, _c=channel: fabric.device_write(
                t, _c, n, TrafficCategory.BMT
            )
            fabric.bmt_update_walk(
                now, caches.bmt, self._dev_bmt, ctr_unit, bmt_rd2, bmt_wr2
            )

        return max(install_done, crypto_done)

    def fill_chunk(self, now: int, page: int, frame: int, chunk_in_page: int) -> int:
        """Demand chunk fill with location-tied metadata: even a single
        256 B chunk drags its CXL counters/MACs across, gets decrypted and
        re-encrypted, and installs device-side metadata."""
        if self.free_migration_security:
            return super().fill_chunk(now, page, frame, chunk_in_page)
        geom = self.geometry
        fabric = self.fabric
        self.stats.bump("baseline.secure_chunk_fills")
        link_ready = fabric.link_read(now, geom.chunk_bytes, TrafficCategory.DATA)

        # CXL metadata for this chunk.
        base_sector = page * geom.sectors_per_page + chunk_in_page * geom.sectors_per_chunk
        link_rd = lambda t, n: fabric.link_read(t, n, TrafficCategory.COUNTER)
        link_wr = lambda t, n: fabric.link_write(t, n, TrafficCategory.COUNTER)
        ctr_unit = self._cxl_layout.counter_sector(base_sector)
        meta_ready, hit = fabric.metadata_access(
            now, fabric.cxl_meta.counter, ctr_unit, link_rd, link_wr,
            TrafficCategory.COUNTER,
        )
        if not hit:
            bmt_rd = lambda t, n: fabric.link_read(t, n, TrafficCategory.BMT)
            bmt_wr = lambda t, n: fabric.link_write(t, n, TrafficCategory.BMT)
            meta_ready = max(
                meta_ready,
                fabric.bmt_read_walk(
                    now, fabric.cxl_meta.bmt, self._cxl_bmt, ctr_unit, bmt_rd, bmt_wr
                ),
            )
        mac_rd = lambda t, n: fabric.link_read(t, n, TrafficCategory.MAC)
        mac_wr = lambda t, n: fabric.link_write(t, n, TrafficCategory.MAC)
        for block in range(geom.blocks_per_chunk):
            unit = self._cxl_layout.mac_sector(base_sector) + block
            ready, _ = fabric.metadata_access(
                now, fabric.cxl_meta.mac, unit, mac_rd, mac_wr, TrafficCategory.MAC
            )
            meta_ready = max(meta_ready, ready)

        # Decrypt + re-encrypt the chunk, install device metadata.
        channel, local_chunk = fabric.interleaver.device_chunk_location(frame, chunk_in_page)
        spc = geom.sectors_per_chunk
        crypto_start = max(link_ready, meta_ready)
        crypto_done = fabric.aes_engines[channel].book(crypto_start, 2 * spc)
        fabric.mac_engines[channel].book(crypto_start, spc)
        caches = fabric.device_meta[channel]
        store = self._dev_counters[channel]
        local_base = local_chunk * spc
        for s in range(spc):
            result = store.increment(local_base + s)
            if result.overflowed:
                self._reencrypt_device_span(now, channel, len(result.reencrypt_units))
        dev_rd = lambda t, n: fabric.device_read(
            t, channel, n, TrafficCategory.COUNTER, critical=False
        )
        dev_wr = lambda t, n: fabric.device_write(t, channel, n, TrafficCategory.COUNTER)
        dev_ctr_unit = self._dev_layout.counter_sector(local_base)
        fabric.metadata_access(
            now, caches.counter, dev_ctr_unit, dev_rd, dev_wr,
            TrafficCategory.COUNTER, write=True,
        )
        mac_rd2 = lambda t, n: fabric.device_read(
            t, channel, n, TrafficCategory.MAC, critical=False
        )
        mac_wr2 = lambda t, n: fabric.device_write(t, channel, n, TrafficCategory.MAC)
        for block in range(geom.blocks_per_chunk):
            fabric.metadata_access(
                now, caches.mac, self._dev_layout.mac_sector(local_base) + block,
                mac_rd2, mac_wr2, TrafficCategory.MAC, write=True,
            )
        bmt_rd2 = lambda t, n: fabric.device_read(
            t, channel, n, TrafficCategory.BMT, critical=False
        )
        bmt_wr2 = lambda t, n: fabric.device_write(t, channel, n, TrafficCategory.BMT)
        fabric.bmt_update_walk(
            now, caches.bmt, self._dev_bmt, dev_ctr_unit, bmt_rd2, bmt_wr2
        )
        wrote = fabric.device_write(
            crypto_done, channel, geom.chunk_bytes, TrafficCategory.DATA
        )
        return max(crypto_done, wrote)

    def evict(
        self, now: int, page: int, frame: int,
        dirty_chunks: Tuple[int, ...], page_dirty: bool,
    ) -> int:
        if not page_dirty:
            # Device-side metadata for the page is simply discarded.
            self._drop_device_page_metadata(frame)
            return now
        geom = self.geometry
        fabric = self.fabric
        all_chunks = tuple(range(geom.chunks_per_page))
        drain = self._copy_chunks_to_cxl(now, frame, all_chunks)
        if self.free_migration_security:
            return drain
        self.stats.bump("baseline.secure_evictions")
        spc = geom.sectors_per_chunk

        # 1. Read and verify device-side metadata, decrypt, re-encrypt with
        #    CXL counters (every sector writes back under the coarse bit).
        base_sector = page * geom.sectors_per_page
        for chunk in all_chunks:
            channel, local_chunk = fabric.interleaver.device_chunk_location(frame, chunk)
            caches = fabric.device_meta[channel]
            local_base = local_chunk * spc
            ctr_rd = lambda t, n, _c=channel: fabric.device_read(
                t, _c, n, TrafficCategory.COUNTER, critical=False
            )
            ctr_wr = lambda t, n, _c=channel: fabric.device_write(
                t, _c, n, TrafficCategory.COUNTER
            )
            ctr_unit = self._dev_layout.counter_sector(local_base)
            _, ctr_hit = fabric.metadata_access(
                now, caches.counter, ctr_unit, ctr_rd, ctr_wr, TrafficCategory.COUNTER
            )
            if not ctr_hit:
                bmt_rd = lambda t, n, _c=channel: fabric.device_read(
                    t, _c, n, TrafficCategory.BMT, critical=False
                )
                bmt_wr = lambda t, n, _c=channel: fabric.device_write(
                    t, _c, n, TrafficCategory.BMT
                )
                fabric.bmt_read_walk(
                    now, caches.bmt, self._dev_bmt, ctr_unit, bmt_rd, bmt_wr
                )
            mac_rd = lambda t, n, _c=channel: fabric.device_read(
                t, _c, n, TrafficCategory.MAC, critical=False
            )
            mac_wr = lambda t, n, _c=channel: fabric.device_write(
                t, _c, n, TrafficCategory.MAC
            )
            for block in range(geom.blocks_per_chunk):
                unit = self._dev_layout.mac_sector(local_base) + block
                fabric.metadata_access(
                    now, caches.mac, unit, mac_rd, mac_wr, TrafficCategory.MAC
                )
            fabric.aes_engines[channel].book(now, 2 * spc)
            fabric.mac_engines[channel].book(now, spc)

        # 2. Advance CXL counters for every sector and write CXL metadata.
        for s in range(geom.sectors_per_page):
            result = self._cxl_counters.increment(base_sector + s)
            if result.overflowed:
                nbytes = len(result.reencrypt_units) * geom.sector_bytes
                self.stats.bump("baseline.cxl_overflow_reencrypts")
                self.fabric.link_read(now, nbytes, TrafficCategory.REENC_DATA, critical=False)
                self.fabric.link_write(now, nbytes, TrafficCategory.REENC_DATA)
        # The page's updated counter sectors and recomputed MACs write back
        # as individual transactions through the metadata path, extending
        # the eviction's outbound drain.
        link_rd = lambda t, n: fabric.link_read(t, n, TrafficCategory.COUNTER, critical=False)
        link_wr = lambda t, n: fabric.link_write(t, n, TrafficCategory.COUNTER)
        ctr_units = sorted(
            {
                self._cxl_layout.counter_sector(base_sector + s)
                for s in range(geom.sectors_per_page)
            }
        )
        bmt_rd2 = lambda t, n: fabric.link_read(t, n, TrafficCategory.BMT, critical=False)
        bmt_wr2 = lambda t, n: fabric.link_write(t, n, TrafficCategory.BMT)
        for unit in ctr_units:
            drain = max(
                drain, fabric.link_write(now, 32, TrafficCategory.COUNTER)
            )
            fabric.metadata_access(
                now, fabric.cxl_meta.counter, unit, link_rd, link_wr,
                TrafficCategory.COUNTER,
            )
            fabric.bmt_update_walk(
                now, fabric.cxl_meta.bmt, self._cxl_bmt, unit, bmt_rd2, bmt_wr2
            )
        for _ in range(geom.blocks_per_page):
            drain = max(
                drain, fabric.link_write(now, 32, TrafficCategory.MAC)
            )
        self._drop_device_page_metadata(frame)
        return drain

    # ------------------------------------------------------------------ lifecycle
    def finalize(self, now: int) -> None:
        categories = {
            "counter": TrafficCategory.COUNTER,
            "mac": TrafficCategory.MAC,
            "bmt": TrafficCategory.BMT,
        }
        self.fabric.flush_metadata_caches(now, categories, categories)

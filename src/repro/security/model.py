"""Abstract interface every timing security model implements.

The GPU simulator drives the common path (mapping lookup, migration, L2,
data fetch) and calls into the active security model at four points:

* a demand **read** missed L2 and its data fetch was booked - the model adds
  counter/BMT/MAC legs and returns when the verified plaintext is ready;
* a dirty L2 sector is **written back** - the model books the (posted)
  counter increment, re-encryption, MAC update and metadata writebacks;
* a page **fill** - the model books the data copy plus whatever security
  work its design requires when data moves CXL -> device;
* a page **eviction** - the posted reverse direction.

A model may also hook demand stores (Salus's dirty-bitmask bookkeeping) and
is finalized once at end of run to drain dirty metadata caches so traffic
totals are complete.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

from ..sim.stats import TrafficCategory
from .fabric import MemoryFabric, SectorLoc


class ChannelBookings:
    """Pre-bound metadata booking callables for one device channel.

    The demand path books several counter/MAC/BMT legs per request; building
    the read/write closures fresh inside every ``read_complete``/``writeback``
    call is measurable in profiles. One instance per channel is built at
    model construction and reused for the whole run. ``_prio`` marks
    latency-critical demand reads, ``_post`` posted (non-critical) reads.
    """

    __slots__ = (
        "ctr_rd_prio", "ctr_rd_post", "ctr_wr",
        "mac_rd_prio", "mac_rd_post", "mac_wr",
        "bmt_rd_prio", "bmt_rd_post", "bmt_wr",
    )

    def __init__(self, fabric: MemoryFabric, channel: int) -> None:
        # Bind Channel.book directly: fabric.device_read/device_write are
        # thin index-and-forward wrappers, and this path is hot enough that
        # the extra call frame per booking shows up in profiles. A device
        # write is a posted booking (critical=False), matching device_write.
        bk = fabric.channels[channel].book
        TC = TrafficCategory
        self.ctr_rd_prio = lambda t, n: bk(t, n, TC.COUNTER, priority=True)
        self.ctr_rd_post = lambda t, n: bk(t, n, TC.COUNTER, critical=False)
        self.ctr_wr = lambda t, n: bk(t, n, TC.COUNTER, critical=False)
        self.mac_rd_prio = lambda t, n: bk(t, n, TC.MAC, priority=True)
        self.mac_rd_post = lambda t, n: bk(t, n, TC.MAC, critical=False)
        self.mac_wr = lambda t, n: bk(t, n, TC.MAC, critical=False)
        self.bmt_rd_prio = lambda t, n: bk(t, n, TC.BMT, priority=True)
        self.bmt_rd_post = lambda t, n: bk(t, n, TC.BMT, critical=False)
        self.bmt_wr = lambda t, n: bk(t, n, TC.BMT, critical=False)


class LinkBookings:
    """Pre-bound metadata booking callables for one CXL link (both ways).

    One instance per expansion device; a model indexes
    ``linkfns_by_device`` with a page's home device to book metadata legs
    on the link that actually carries them.
    """

    __slots__ = (
        "ctr_rd", "ctr_rd_prio", "ctr_rd_post", "ctr_wr",
        "mac_rd", "mac_rd_prio", "mac_wr",
        "bmt_rd", "bmt_rd_prio", "bmt_rd_post", "bmt_wr",
    )

    def __init__(self, fabric: MemoryFabric, device: int = 0) -> None:
        # As in ChannelBookings, bind the directional Channel.book methods
        # directly: a link read is an RX booking (critical by default), a
        # link write a posted TX booking - identical to fabric.link_read /
        # fabric.link_write minus one call frame per booking.
        rx = fabric.links[device].to_device.book
        tx = fabric.links[device].to_cxl.book
        TC = TrafficCategory
        self.ctr_rd = lambda t, n: rx(t, n, TC.COUNTER)
        self.ctr_rd_prio = lambda t, n: rx(t, n, TC.COUNTER, priority=True)
        self.ctr_rd_post = lambda t, n: rx(t, n, TC.COUNTER, critical=False)
        self.ctr_wr = lambda t, n: tx(t, n, TC.COUNTER, critical=False)
        self.mac_rd = lambda t, n: rx(t, n, TC.MAC)
        self.mac_rd_prio = lambda t, n: rx(t, n, TC.MAC, priority=True)
        self.mac_wr = lambda t, n: tx(t, n, TC.MAC, critical=False)
        self.bmt_rd = lambda t, n: rx(t, n, TC.BMT)
        self.bmt_rd_prio = lambda t, n: rx(t, n, TC.BMT, priority=True)
        self.bmt_rd_post = lambda t, n: rx(t, n, TC.BMT, critical=False)
        self.bmt_wr = lambda t, n: tx(t, n, TC.BMT, critical=False)


class TimingSecurityModel(ABC):
    """Base class for the no-security, baseline and Salus timing models."""

    name: str = "abstract"

    def __init__(self, fabric: MemoryFabric) -> None:
        self.fabric = fabric
        self.stats = fabric.stats
        self.geometry = fabric.geometry
        self.config = fabric.config
        self.dirty_tracker = None
        # Shared pre-bound booking closures (see ChannelBookings).
        self.chfns = [
            ChannelBookings(fabric, c) for c in range(len(fabric.channels))
        ]
        self.linkfns_by_device = [
            LinkBookings(fabric, d) for d in range(fabric.num_devices)
        ]
        # Device-0 bindings; the single-device path (and any code that does
        # not care about topology) keeps using this alias unchanged.
        self.linkfns = self.linkfns_by_device[0]

    def attach_dirty_tracker(self, tracker) -> None:
        """Bind the shared dirty-state tracker (called by the simulator).

        All models observe the same write stream through the same tracker;
        they differ only in which granularity they consult at eviction and
        whether updates cost mapping traffic (Salus overrides this).
        """
        self.dirty_tracker = tracker

    # -- demand path -------------------------------------------------------------
    @abstractmethod
    def read_complete(self, now: int, loc: SectorLoc, data_ready: int) -> int:
        """Cycle at which a demand-read sector is decrypted and verified."""

    @abstractmethod
    def writeback(self, now: int, loc: SectorLoc) -> None:
        """Posted security work for one dirty L2 sector writeback."""

    def on_store(self, now: int, loc: SectorLoc) -> None:
        """Hook for demand stores: record dirtiness (free by default)."""
        if self.dirty_tracker is not None:
            self.dirty_tracker.mark(loc.page, loc.chunk_in_page)

    # -- migration path ---------------------------------------------------------
    @abstractmethod
    def fill(self, now: int, page: int, frame: int) -> int:
        """Book a page fill (data + security); returns usable-at cycle."""

    @abstractmethod
    def evict(
        self, now: int, page: int, frame: int,
        dirty_chunks: Tuple[int, ...], page_dirty: bool,
    ) -> int:
        """Posted writeback of an evicted page (data + security).

        Returns the cycle at which the eviction's outbound traffic drains;
        the migration engine uses it for writeback-buffer backpressure.
        """

    def fill_chunk(self, now: int, page: int, frame: int, chunk_in_page: int) -> int:
        """Demand chunk fill (``fill_granularity='chunk'``): move one 256 B
        chunk's ciphertext on its first access. Default: data only - models
        with location-tied metadata override to add their per-chunk security
        work. Returns when the chunk is usable in device memory.
        """
        geom = self.geometry
        link_ready = self.fabric.link_read(
            now, geom.chunk_bytes, TrafficCategory.DATA,
            device=self.fabric.home_of_page(page),
        )
        channel, _ = self.fabric.chunk_location(page, frame, chunk_in_page)
        wrote = self.fabric.device_write(
            link_ready, channel, geom.chunk_bytes, TrafficCategory.DATA
        )
        return max(link_ready, wrote)

    # -- lifecycle ----------------------------------------------------------------
    def finalize(self, now: int) -> None:
        """Drain any dirty metadata so end-of-run traffic is accounted."""

    # -- shared data-copy bookings -------------------------------------------------
    def _copy_page_to_device(self, now: int, page: int, frame: int):
        """Book the raw data movement of a fill: link read + device writes.

        Returns ``(link_ready, install_done)``: when the page's bytes have
        crossed the link, and when the device-side writes have drained.
        """
        geom = self.geometry
        link_ready = self.fabric.link_read(
            now, geom.page_bytes, TrafficCategory.DATA,
            device=self.fabric.home_of_page(page),
        )
        done = link_ready
        for chunk in range(geom.chunks_per_page):
            channel, _ = self.fabric.chunk_location(page, frame, chunk)
            wrote = self.fabric.device_write(
                link_ready, channel, geom.chunk_bytes, TrafficCategory.DATA
            )
            if wrote > done:
                done = wrote
        return link_ready, done

    def _drop_device_page_metadata(self, frame: int, page: int) -> None:
        """Invalidate a just-evicted page's device MAC sectors, no writeback.

        Once a page leaves device memory its device-side MACs are dead state:
        dirty chunks' MACs were recomputed and written to the CXL side by the
        eviction itself, and clean chunks' MACs still match the CXL copies.
        Writing them back to the device MAC region would be pure waste, so
        both the baseline and Salus drop them.
        """
        geom = self.geometry
        for chunk in range(geom.chunks_per_page):
            channel, local_chunk = self.fabric.chunk_location(page, frame, chunk)
            mac_cache = self.fabric.device_meta[channel].mac
            first_unit = local_chunk * geom.blocks_per_chunk
            for block in range(geom.blocks_per_chunk):
                unit = first_unit + block
                mac_cache.invalidate_sector(unit // 4, unit % 4)

    def _copy_chunks_to_cxl(
        self, now: int, page: int, frame: int, chunks: Tuple[int, ...]
    ) -> int:
        """Book the raw data movement of a (partial) eviction; posted.

        The chunks are read from their owning channels (separate DRAM
        transactions - they live in different partitions) and leave over the
        page's home-device link as one coalesced burst, since the eviction
        engine drains them together.
        """
        geom = self.geometry
        if not chunks:
            return now
        gathered = now
        for chunk in chunks:
            channel, _ = self.fabric.chunk_location(page, frame, chunk)
            read_done = self.fabric.device_read(
                now, channel, geom.chunk_bytes, TrafficCategory.DATA, critical=False
            )
            if read_done > gathered:
                gathered = read_done
        return self.fabric.link_write(
            gathered, len(chunks) * geom.chunk_bytes, TrafficCategory.DATA,
            device=self.fabric.home_of_page(page),
        )

"""Exception hierarchy for the Salus reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause. Security-relevant
failures (integrity, freshness) get dedicated subclasses because callers are
expected to treat them as attack evidence rather than programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AddressError(ReproError):
    """An address is out of range or violates an alignment requirement."""


class SecurityError(ReproError):
    """Base class for security-guarantee violations."""


class IntegrityError(SecurityError):
    """A MAC check failed: data or metadata was tampered with in memory."""


class FreshnessError(SecurityError):
    """A Merkle-tree check failed: stale (replayed) data or counters."""


class CounterOverflowError(SecurityError):
    """An encryption counter cannot be incremented without OTP reuse.

    The functional layer raises this instead of silently wrapping, because a
    wrapped counter with an unchanged key would repeat a one-time pad.
    """


class SimulationError(ReproError):
    """The timing simulator reached an inconsistent internal state."""


class TraceError(ReproError):
    """A workload trace is malformed or references an unmapped address."""


class IsolationError(TraceError):
    """A request crossed its tenant's partition boundary.

    Raised by both execution kernels when a trace record addresses a page
    outside the issuing tenant's memory partition. Subclassing
    :class:`TraceError` keeps existing trace-validation handlers working
    while letting multi-tenant callers treat the violation as attack
    evidence.
    """


class EngineError(ReproError):
    """One or more jobs of an experiment batch failed to execute."""


class ServiceError(ReproError):
    """The simulation job service (or a client talking to it) failed."""


class ServiceSaturatedError(ServiceError):
    """The service's bounded job queue is full: retryable backpressure.

    Carries ``retry_after_s``, the server's hint for when capacity is
    expected (surfaced over HTTP as a 429 with a ``Retry-After`` header).
    Clients should back off and resubmit rather than treat this as failure.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceClosedError(ServiceError):
    """The service is shutting down (draining) and accepts no new jobs."""

"""Address geometry shared by every layer of the reproduction.

The Salus paper fixes four granularities (Section II-D and IV-A1):

* **sector** - 32 B, the memory-access and security granularity. Encryption
  counters, MACs and DRAM bursts all operate on sectors.
* **block** - 128 B, the cache-line granularity of the sectored L1/L2 caches
  (4 sectors per block). A MAC sector holds the MACs of one data block.
* **chunk** - 256 B, the fine-grained channel-interleaving granularity
  (2 blocks, 8 sectors). Salus groups one major counter per chunk.
* **page** - 4096 B by default, the migration granularity between the CXL
  expansion memory and the GPU device memory (16 chunks).

Two distinct address spaces exist:

* the **CXL (home) address space**, which is permanent: page tables and all
  Salus security computations use it; and
* the **device address space**, which names frames of the GPU device memory
  used as a page cache. Data moves between frames, so device addresses are
  transient.

The CXL address space may span several expansion devices
(:class:`~repro.config.TopologyConfig`); :class:`ShardMap` holds the pure
CXL-address -> home-device sharding arithmetic. Because security metadata is
keyed to permanent CXL addresses, a page's home device is a fixed function
of its address - no re-keying ever happens, no matter which device or frame
the bytes occupy.

This module provides the pure arithmetic for all of it; it has no simulator
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import AddressError

SECTOR_BYTES = 32
BLOCK_BYTES = 128
CHUNK_BYTES = 256
DEFAULT_PAGE_BYTES = 4096

SECTORS_PER_BLOCK = BLOCK_BYTES // SECTOR_BYTES
SECTORS_PER_CHUNK = CHUNK_BYTES // SECTOR_BYTES
BLOCKS_PER_CHUNK = CHUNK_BYTES // BLOCK_BYTES


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class Geometry:
    """Fixed carving of an address space into pages/chunks/blocks/sectors.

    Instances are immutable and cheap; every component that needs address
    arithmetic receives one Geometry rather than loose constants, so a whole
    simulation is guaranteed to agree on granularities.
    """

    page_bytes: int = DEFAULT_PAGE_BYTES
    chunk_bytes: int = CHUNK_BYTES
    block_bytes: int = BLOCK_BYTES
    sector_bytes: int = SECTOR_BYTES

    # Derived ratios, precomputed once in __post_init__ so the simulator's
    # per-request walk pays a plain attribute load instead of a property
    # call plus division. They are not dataclass fields: equality, hashing
    # and asdict still consider only the four byte sizes above.
    sectors_per_block: int = field(init=False, repr=False, compare=False, default=0)
    sectors_per_chunk: int = field(init=False, repr=False, compare=False, default=0)
    sectors_per_page: int = field(init=False, repr=False, compare=False, default=0)
    blocks_per_chunk: int = field(init=False, repr=False, compare=False, default=0)
    blocks_per_page: int = field(init=False, repr=False, compare=False, default=0)
    chunks_per_page: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        ordered = (self.sector_bytes, self.block_bytes, self.chunk_bytes, self.page_bytes)
        names = ("sector_bytes", "block_bytes", "chunk_bytes", "page_bytes")
        for name, value in zip(names, ordered):
            if not is_power_of_two(value):
                raise AddressError(f"{name}={value} must be a power of two")
        if not (self.sector_bytes <= self.block_bytes <= self.chunk_bytes <= self.page_bytes):
            raise AddressError(
                "granularities must nest: sector <= block <= chunk <= page, got "
                f"{ordered}"
            )
        fill = object.__setattr__
        fill(self, "sectors_per_block", self.block_bytes // self.sector_bytes)
        fill(self, "sectors_per_chunk", self.chunk_bytes // self.sector_bytes)
        fill(self, "sectors_per_page", self.page_bytes // self.sector_bytes)
        fill(self, "blocks_per_chunk", self.chunk_bytes // self.block_bytes)
        fill(self, "blocks_per_page", self.page_bytes // self.block_bytes)
        fill(self, "chunks_per_page", self.page_bytes // self.chunk_bytes)

    # -- index extraction --------------------------------------------------
    def page_of(self, addr: int) -> int:
        """Page number containing byte address ``addr``."""
        self._check_addr(addr)
        return addr // self.page_bytes

    def chunk_of(self, addr: int) -> int:
        """Global chunk number containing byte address ``addr``."""
        self._check_addr(addr)
        return addr // self.chunk_bytes

    def block_of(self, addr: int) -> int:
        """Global block number containing byte address ``addr``."""
        self._check_addr(addr)
        return addr // self.block_bytes

    def sector_of(self, addr: int) -> int:
        """Global sector number containing byte address ``addr``."""
        self._check_addr(addr)
        return addr // self.sector_bytes

    def chunk_in_page(self, addr: int) -> int:
        """Index (0-based) of the chunk inside its page."""
        return (addr % self.page_bytes) // self.chunk_bytes

    def block_in_chunk(self, addr: int) -> int:
        """Index (0-based) of the block inside its chunk."""
        return (addr % self.chunk_bytes) // self.block_bytes

    def sector_in_chunk(self, addr: int) -> int:
        """Index (0-based) of the sector inside its chunk."""
        return (addr % self.chunk_bytes) // self.sector_bytes

    def sector_in_block(self, addr: int) -> int:
        """Index (0-based) of the sector inside its block."""
        return (addr % self.block_bytes) // self.sector_bytes

    def sector_in_page(self, addr: int) -> int:
        """Index (0-based) of the sector inside its page."""
        return (addr % self.page_bytes) // self.sector_bytes

    # -- address construction ----------------------------------------------
    def page_base(self, page: int) -> int:
        """Byte address where ``page`` starts."""
        return page * self.page_bytes

    def chunk_base(self, chunk: int) -> int:
        """Byte address where global chunk ``chunk`` starts."""
        return chunk * self.chunk_bytes

    def sector_base(self, sector: int) -> int:
        """Byte address where global sector ``sector`` starts."""
        return sector * self.sector_bytes

    def sector_addr(self, page: int, sector_in_page: int) -> int:
        """Byte address of the ``sector_in_page``-th sector of ``page``."""
        if not 0 <= sector_in_page < self.sectors_per_page:
            raise AddressError(
                f"sector_in_page={sector_in_page} outside page of "
                f"{self.sectors_per_page} sectors"
            )
        return page * self.page_bytes + sector_in_page * self.sector_bytes

    def chunk_addr(self, page: int, chunk_in_page: int) -> int:
        """Byte address of the ``chunk_in_page``-th chunk of ``page``."""
        if not 0 <= chunk_in_page < self.chunks_per_page:
            raise AddressError(
                f"chunk_in_page={chunk_in_page} outside page of "
                f"{self.chunks_per_page} chunks"
            )
        return page * self.page_bytes + chunk_in_page * self.chunk_bytes

    # -- alignment ----------------------------------------------------------
    def align_sector(self, addr: int) -> int:
        """Round ``addr`` down to its sector base."""
        self._check_addr(addr)
        return addr & ~(self.sector_bytes - 1)

    def align_chunk(self, addr: int) -> int:
        """Round ``addr`` down to its chunk base."""
        self._check_addr(addr)
        return addr & ~(self.chunk_bytes - 1)

    def align_page(self, addr: int) -> int:
        """Round ``addr`` down to its page base."""
        self._check_addr(addr)
        return addr & ~(self.page_bytes - 1)

    @staticmethod
    def _check_addr(addr: int) -> None:
        if addr < 0:
            raise AddressError(f"negative address {addr:#x}")


#: Home-device sharding policies a :class:`ShardMap` understands.
SHARDING_POLICIES = frozenset({"page", "range"})


@dataclass(frozen=True)
class ShardMap:
    """CXL-address -> home-device sharding over a multi-device fabric.

    A total, balanced partition of the CXL page space onto ``num_devices``
    expansion devices. Two policies:

    * ``"page"`` - round-robin by page number (``page % num_devices``).
      Perfectly balanced for any footprint; consecutive pages land on
      different devices, spreading migration bursts over all links.
    * ``"range"`` - contiguous equal splits of ``total_pages``: device 0
      homes the first ``ceil(total/n)`` pages, and so on. Models pooled
      memory carved into regions; requires ``total_pages > 0``.

    Every page also has a **device-local page index** (its position within
    its home device's slice), which per-device metadata layouts and Merkle
    trees are sized and keyed by. ``local_page`` is a bijection between a
    device's homed pages and ``range(pages_on(device))`` - the property
    tests verify totality and balance.
    """

    geometry: Geometry
    num_devices: int = 1
    policy: str = "page"
    total_pages: int = 0

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise AddressError("num_devices must be at least 1")
        if self.policy not in SHARDING_POLICIES:
            raise AddressError(
                f"unknown sharding policy {self.policy!r}; "
                f"choose from {sorted(SHARDING_POLICIES)}"
            )
        if self.policy == "range" and self.total_pages <= 0:
            raise AddressError("range sharding requires total_pages > 0")

    @property
    def _range_span(self) -> int:
        """Pages per device under range sharding (ceil division)."""
        return -(-self.total_pages // self.num_devices)

    # -- page -> device ------------------------------------------------------
    def home_of_page(self, page: int) -> int:
        """Home device of a CXL page; total over all non-negative pages."""
        if page < 0:
            raise AddressError(f"negative page {page}")
        if self.num_devices == 1:
            return 0
        if self.policy == "page":
            return page % self.num_devices
        device = page // self._range_span
        return device if device < self.num_devices else self.num_devices - 1

    def home_of_addr(self, addr: int) -> int:
        """Home device of the page containing byte address ``addr``."""
        self.geometry._check_addr(addr)
        return self.home_of_page(addr // self.geometry.page_bytes)

    def local_page(self, page: int) -> int:
        """Device-local index of ``page`` within its home device's slice."""
        if page < 0:
            raise AddressError(f"negative page {page}")
        if self.num_devices == 1:
            return page
        if self.policy == "page":
            return page // self.num_devices
        return page - self.home_of_page(page) * self._range_span

    # -- batch queries (shift/mask array ops over whole page vectors) --------
    def home_of_pages(self, pages):
        """Vectorized :meth:`home_of_page` over an int array of pages.

        Returns an int64 numpy array; element ``i`` equals
        ``home_of_page(pages[i])`` exactly (same totality, same clipping of
        the short last range). Requires numpy.
        """
        from .kernel import require_numpy

        np = require_numpy()
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size and int(pages.min()) < 0:
            raise AddressError(f"negative page {int(pages.min())}")
        if self.num_devices == 1:
            return np.zeros_like(pages)
        if self.policy == "page":
            return pages % self.num_devices
        return np.minimum(pages // self._range_span, self.num_devices - 1)

    def local_pages(self, pages):
        """Vectorized :meth:`local_page` over an int array of pages."""
        from .kernel import require_numpy

        np = require_numpy()
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size and int(pages.min()) < 0:
            raise AddressError(f"negative page {int(pages.min())}")
        if self.num_devices == 1:
            return pages.copy()
        if self.policy == "page":
            return pages // self.num_devices
        return pages - self.home_of_pages(pages) * self._range_span

    # -- sizing --------------------------------------------------------------
    def pages_on(self, device: int, total_pages: int = 0) -> int:
        """How many of ``total_pages`` CXL pages are homed on ``device``.

        Uses the map's own ``total_pages`` when the argument is omitted.
        """
        total = total_pages or self.total_pages
        if total <= 0:
            raise AddressError("pages_on needs a positive page count")
        if not 0 <= device < self.num_devices:
            raise AddressError(f"device {device} outside fabric of {self.num_devices}")
        if self.num_devices == 1:
            return total
        if self.policy == "page":
            # Pages device, device+n, device+2n, ... below total.
            return (total - device + self.num_devices - 1) // self.num_devices
        span = self._range_span
        start = device * span
        return max(0, min(total, start + span) - start)


@dataclass(frozen=True)
class TenantMap:
    """Tenant partitioning of the SM array, channels, pages, and devices.

    The pure arithmetic behind :class:`~repro.config.PartitionConfig`: a
    total, disjoint partition of every resource class across
    ``num_tenants`` security domains.

    * **SMs** - contiguous equal groups, GPC aligned (CPX-style compute
      partitions). ``num_tenants`` must divide ``num_gpcs``, so a tenant's
      group is a whole number of GPCs and the SM -> interconnect-port
      mapping stays valid within the partition.
    * **Channels** - contiguous equal runs (NPS-style memory partitions).
      Each channel carries its own L2 slice and metadata caches, so
      channel disjointness makes those structures tenant-private for free.
    * **Pages** - contiguous equal spans of the CXL page space (the last
      tenant absorbs any remainder), mirroring ``"range"`` sharding.
    * **Devices** - disjoint contiguous subsets when ``num_devices`` is a
      multiple of ``num_tenants``; otherwise every tenant uses all devices
      (links shared, per-tenant metadata planes still isolated).

    Like :class:`ShardMap` this is pure arithmetic with no simulator state;
    the property tests verify each partition is disjoint and covering.
    """

    geometry: Geometry
    num_tenants: int
    total_pages: int
    num_sms: int
    num_gpcs: int
    num_channels: int
    num_devices: int = 1

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise AddressError("num_tenants must be at least 1")
        if self.total_pages <= 0:
            raise AddressError("total_pages must be positive")
        if self.num_gpcs < 1 or self.num_sms % self.num_gpcs != 0:
            raise AddressError("num_sms must divide evenly into num_gpcs")
        if self.num_gpcs % self.num_tenants != 0:
            raise AddressError(
                f"num_tenants={self.num_tenants} must divide "
                f"num_gpcs={self.num_gpcs}"
            )
        if self.num_channels % self.num_tenants != 0:
            raise AddressError(
                f"num_tenants={self.num_tenants} must divide "
                f"num_channels={self.num_channels}"
            )
        if self.num_devices < 1:
            raise AddressError("num_devices must be at least 1")

    # -- page partition ------------------------------------------------------
    @property
    def page_span(self) -> int:
        """Pages per tenant (ceil division; last tenant may run short)."""
        return -(-self.total_pages // self.num_tenants)

    def tenant_of_page(self, page: int) -> int:
        """Owning tenant of a CXL page; total over non-negative pages."""
        if page < 0:
            raise AddressError(f"negative page {page}")
        if self.num_tenants == 1:
            return 0
        tenant = page // self.page_span
        return tenant if tenant < self.num_tenants else self.num_tenants - 1

    def tenant_of_pages(self, pages):
        """Vectorized :meth:`tenant_of_page` over an int array of pages."""
        from .kernel import require_numpy

        np = require_numpy()
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size and int(pages.min()) < 0:
            raise AddressError(f"negative page {int(pages.min())}")
        if self.num_tenants == 1:
            return np.zeros_like(pages)
        return np.minimum(pages // self.page_span, self.num_tenants - 1)

    def page_base(self, tenant: int) -> int:
        """First CXL page of one tenant's span."""
        self._check_tenant(tenant)
        return tenant * self.page_span

    def pages_of(self, tenant: int) -> int:
        """How many CXL pages belong to one tenant's span."""
        self._check_tenant(tenant)
        start = tenant * self.page_span
        return max(0, min(self.total_pages, start + self.page_span) - start)

    # -- compute partition ---------------------------------------------------
    @property
    def sms_per_tenant(self) -> int:
        return self.num_sms // self.num_tenants

    def sm_base(self, tenant: int) -> int:
        """First SM of one tenant's compute partition."""
        self._check_tenant(tenant)
        return tenant * self.sms_per_tenant

    def sm_slot(self, tenant: int, hint: int) -> int:
        """Global SM index for a tenant-local scheduling hint."""
        self._check_tenant(tenant)
        return tenant * self.sms_per_tenant + hint % self.sms_per_tenant

    # -- memory partition ----------------------------------------------------
    @property
    def channels_per_tenant(self) -> int:
        return self.num_channels // self.num_tenants

    def channel_base(self, tenant: int) -> int:
        """First memory channel of one tenant's partition."""
        self._check_tenant(tenant)
        return tenant * self.channels_per_tenant

    def channels_of(self, tenant: int) -> range:
        """The contiguous channel run one tenant owns."""
        base = self.channel_base(tenant)
        return range(base, base + self.channels_per_tenant)

    # -- device partition ----------------------------------------------------
    @property
    def devices_shared(self) -> bool:
        """True when tenants share all CXL devices (count not divisible)."""
        return self.num_devices % self.num_tenants != 0

    @property
    def devices_per_tenant(self) -> int:
        if self.devices_shared:
            return self.num_devices
        return self.num_devices // self.num_tenants

    def devices_of(self, tenant: int):
        """The CXL devices one tenant's pages may be homed on."""
        self._check_tenant(tenant)
        if self.devices_shared:
            return range(self.num_devices)
        span = self.num_devices // self.num_tenants
        return range(tenant * span, (tenant + 1) * span)

    def _check_tenant(self, tenant: int) -> None:
        if not 0 <= tenant < self.num_tenants:
            raise AddressError(
                f"tenant {tenant} outside partition of {self.num_tenants}"
            )


DEFAULT_GEOMETRY = Geometry()

"""SM-to-memory-partition interconnect.

Requests cross the on-chip network between a GPC's port and the L2 slice of
the owning memory partition (the routing decision that needs the CXL-to-GPU
mapping first, Section IV-B). The model charges a fixed traversal latency
plus a per-GPC injection-port serialization of one request per cycle, which
is enough to surface GPC-port contention without simulating a topology.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError


class Interconnect:
    """Fixed-latency crossbar with per-GPC injection serialization."""

    def __init__(self, num_gpcs: int, latency_cycles: int) -> None:
        if num_gpcs <= 0:
            raise ConfigError("need at least one GPC port")
        if latency_cycles < 0:
            raise ConfigError("latency must be non-negative")
        self.latency_cycles = latency_cycles
        self._port_free: List[int] = [0] * num_gpcs
        self.requests = 0

    def traverse(self, now: int, gpc: int) -> int:
        """Inject a request at ``gpc``'s port; returns arrival at the slice."""
        start = max(now, self._port_free[gpc])
        self._port_free[gpc] = start + 1
        self.requests += 1
        return start + self.latency_cycles

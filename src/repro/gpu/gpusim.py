"""Top-level trace-driven simulator: wires every substrate together.

One :class:`GpuSim` instance simulates one (configuration, security model,
workload) triple. The per-request walk follows the paper's Section IV-B
flow:

1. the SM issues (warp-level latency hiding, :mod:`repro.gpu.sm`);
2. the GPC's mapping cache translates the CXL address to a device frame;
   a miss goes to the mapping-miss control logic (mapping-sector read), and
   a non-resident page triggers a migration fill (plus a background victim
   eviction);
3. the interconnect routes by device address to the owning partition's L2
   slice (sectored, MSHR-merged);
4. an L2 miss books the data fetch on the partition channel and hands the
   security model the chance to add its counter/Merkle/MAC legs;
5. dirty L2 evictions invoke the model's posted writeback path.

The security model is any :class:`~repro.security.model.TimingSecurityModel`;
passing different models over the same trace and config is exactly how every
figure of the paper is produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

from ..config import SystemConfig
from ..cxl.mapping import MappingTable
from ..cxl.mapping_cache import MappingMissHandler
from ..memsys.l2cache import L2Slice
from ..memsys.request import MemoryRequest
from ..migration.dirty import DirtyTracker
from ..migration.engine import MigrationEngine
from ..migration.page_cache import PageCache
from ..security.fabric import MemoryFabric
from ..security.model import TimingSecurityModel
from ..sim.events import EventQueue, PeriodicSampler
from ..sim.metrics import collect_metrics
from ..sim.stats import Side, StatRegistry, TrafficCategory
from ..sim.trace import Tracer, resolve_tracer
from .interconnect import Interconnect
from .sm import StreamingMultiprocessor

MAPPING_SECTOR_BYTES = 32
MAPPING_HIT_CYCLES = 2


@dataclass
class RunResult:
    """Everything a finished simulation exposes to the harness.

    Serialization contract (relied on by the result cache and ``repro
    report``): :meth:`to_dict` / :meth:`from_dict` round-trip the complete
    observable state - the :class:`~repro.sim.stats.StatRegistry` tallies,
    the migration counts, the model counter namespace, and the
    per-component ``metrics`` tree of :mod:`repro.sim.metrics` - so a
    result loaded from the on-disk cache renders the same report as a
    fresh simulation. Derived quantities (``ipc``, security shares, hit
    rates) are intentionally *not* stored; they are recomputed from the raw
    tallies at report time. Any change to this contract must bump
    ``repro.harness.engine.SCHEMA_VERSION``.
    """

    model: str
    workload: str
    stats: StatRegistry
    fills: int
    evictions: int
    counters: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def cycles(self) -> int:
        return self.stats.final_cycle

    def security_traffic(self) -> int:
        return self.stats.security_bytes()

    def to_dict(self) -> Dict:
        """Complete JSON-serializable form (CLI ``--json``, result cache).

        The derived summary fields (``ipc``, ``cycles``, ``security_bytes``,
        ``traffic_bytes``) are included for human/downstream convenience;
        :meth:`from_dict` reconstructs everything from ``stats`` alone.
        """
        return {
            "model": self.model,
            "workload": self.workload,
            "ipc": self.ipc,
            "cycles": self.cycles,
            "instructions": self.stats.instructions,
            "fills": self.fills,
            "evictions": self.evictions,
            "traffic_bytes": self.stats.breakdown(),
            "security_bytes": self.stats.security_bytes(),
            "counters": {k: v for k, v in self.counters.items()},
            "metrics": {k: v for k, v in self.metrics.items()},
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        """Inverse of :meth:`to_dict` - a full round-trip reconstruction."""
        return cls(
            model=str(data["model"]),
            workload=str(data["workload"]),
            stats=StatRegistry.from_dict(data["stats"]),
            fills=int(data["fills"]),
            evictions=int(data["evictions"]),
            counters=dict(data.get("counters", {})),
            metrics=dict(data.get("metrics", {})),
        )

    def utilization(self, side: Side, fabric_busy: int) -> float:
        if self.cycles <= 0:
            return 0.0
        return fabric_busy / self.cycles

    def fingerprint(self) -> str:
        """Stable content hash of the complete observable result.

        Two simulations whose fingerprints match produced bit-identical
        observable behaviour: every traffic tally, event counter, metric
        leaf and timing total agrees. The perf harness
        (``scripts/bench_perf.py``) gates on this - an optimization is only
        accepted when fingerprints are unchanged - and it is the same
        determinism contract the golden-trace test and the result cache
        rely on.
        """
        import hashlib
        import json

        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Default heartbeat epoch (simulated cycles) for progress callbacks. An
#: order of magnitude coarser than the tracer's sample epoch: heartbeats
#: cross process boundaries, samples stay in-process.
DEFAULT_PROGRESS_EPOCH = 50_000


class GpuSim:
    """Trace-driven simulation of one system configuration."""

    def __init__(
        self,
        config: SystemConfig,
        footprint_pages: int,
        model_factory,
        tracer: Optional[Tracer] = None,
        progress: Optional[Callable[[Dict[str, int]], None]] = None,
        progress_epoch: int = DEFAULT_PROGRESS_EPOCH,
    ) -> None:
        """``model_factory(fabric) -> TimingSecurityModel`` builds the
        security personality against this run's fabric. ``tracer`` (optional)
        receives the structured event stream; with the default
        ``NULL_TRACER`` every instrumentation site is a single attribute
        check and simulated timing is bit-identical either way.

        ``progress`` (optional) is the live-telemetry heartbeat: every
        ``progress_epoch`` simulated cycles it receives a snapshot dict
        (``cycles``, ``instructions``, ``fills``, ``evictions``,
        ``epoch``). Like the tracer, it *observes* the simulation and books
        nothing - enabling it is proven fingerprint-inert by test - and the
        untraced, progress-free hot path is untouched (no event queue is
        even created)."""
        self.config = config
        self.geometry = config.geometry
        self.stats = StatRegistry()
        self.tracer = resolve_tracer(tracer)
        self.fabric = MemoryFabric(
            config, footprint_pages, self.stats, tracer=self.tracer
        )
        self.model: TimingSecurityModel = model_factory(self.fabric)

        gpu = config.gpu
        self.sms = [
            StreamingMultiprocessor(i, gpu.warps_per_sm) for i in range(gpu.num_sms)
        ]
        self.interconnect = Interconnect(gpu.num_gpcs, gpu.interconnect_latency_cycles)
        self.l2 = [
            L2Slice(
                c, gpu, self.geometry.sector_bytes, self.geometry.block_bytes,
                tracer=self.tracer,
            )
            for c in range(gpu.num_channels)
        ]
        self.mapping = MappingTable(footprint_pages)
        self.miss_handler = MappingMissHandler(gpu.num_gpcs)
        self.dirty = DirtyTracker(self.geometry.chunks_per_page)
        self.model.attach_dirty_tracker(self.dirty)
        home_of = None if self.fabric.num_devices == 1 else self.fabric.home_of_page
        self.page_cache = PageCache(self.fabric.num_frames, home_of=home_of)
        self.engine = MigrationEngine(
            page_cache=self.page_cache,
            mapping=self.mapping,
            dirty=self.dirty,
            fill_cb=self._fill_page,
            evict_cb=self._evict_page,
            evict_buffer_pages=gpu.evict_buffer_pages,
            tracer=self.tracer,
            home_of=home_of,
            num_devices=self.fabric.num_devices,
        )
        self._now = 0  # advances with issue order; used by posted eviction work
        # Per-epoch metric sampling (observability layer) and progress
        # heartbeats share one event queue; it exists only when at least one
        # observer asked for it, so the plain hot path never touches it.
        self._sample_queue: Optional[EventQueue] = None
        self._sampler: Optional[PeriodicSampler] = None
        self._progress = progress
        self._progress_sampler: Optional[PeriodicSampler] = None
        self._progress_epochs = 0
        if self.tracer.enabled or progress is not None:
            self._sample_queue = EventQueue()
        if self.tracer.enabled:
            self._sampler = PeriodicSampler(
                self._sample_queue, self.tracer.sample_epoch, self._sample_metrics
            )
        if progress is not None:
            self._progress_sampler = PeriodicSampler(
                self._sample_queue, max(1, int(progress_epoch)), self._emit_progress
            )
        # Demand chunk-fill state (fill_granularity="chunk"): which chunks
        # of each resident page have arrived, and in-flight chunk copies.
        self._chunk_mode = gpu.fill_granularity == "chunk"
        self._present_chunks: Dict[int, int] = {}
        self._inflight_chunks: Dict[Tuple[int, int], int] = {}
        # Hot-path scalars, hoisted so the per-request walk does plain integer
        # arithmetic instead of geometry/config attribute chains.
        self._page_bytes = self.geometry.page_bytes
        self._block_bytes = self.geometry.block_bytes
        self._sector_bytes = self.geometry.sector_bytes
        self._l2_latency = gpu.l2_latency_cycles
        self._map_channels = gpu.num_channels
        # Tenancy: partitioned fabrics route mapping sectors inside the
        # owning tenant's channel run and tally migrations per tenant. The
        # single-tenant hot path keeps the plain scalar arithmetic.
        self._partitioned = self.fabric.tenant_map is not None
        self._tenant_fills: Optional[list] = None
        self._tenant_evicts: Optional[list] = None
        if self._partitioned:
            self._tenant_fills = [0] * self.fabric.num_tenants
            self._tenant_evicts = [0] * self.fabric.num_tenants

    # ------------------------------------------------------------------ sampling
    def _sample_metrics(self, now: int) -> None:
        """Periodic counter snapshot (Chrome 'C' events, one per epoch)."""
        stats = self.stats
        self.tracer.counter(
            "traffic_bytes", now,
            {
                "device_data": stats.data_bytes(Side.DEVICE),
                "device_security": stats.security_bytes(Side.DEVICE),
                "cxl_data": stats.data_bytes(Side.CXL),
                "cxl_security": stats.security_bytes(Side.CXL),
            },
        )
        self.tracer.counter(
            "migration", now,
            {"fills": self.engine.fill_count, "evictions": self.engine.evict_count},
        )

    def _emit_progress(self, now: int) -> None:
        """Heartbeat callback: snapshot the live run for the telemetry sink.

        Read-only by construction - it sums counters the simulation already
        maintains and hands the dict to the callback; nothing here can move
        simulated time or traffic.
        """
        self._progress_epochs += 1
        snapshot = {
            "epoch": self._progress_epochs,
            "cycles": now,
            "instructions": sum(sm.instructions for sm in self.sms),
            "fills": self.engine.fill_count,
            "evictions": self.engine.evict_count,
        }
        try:
            self._progress(snapshot)
        except Exception:
            # A broken telemetry sink must never kill (or alter) the run.
            pass

    # ------------------------------------------------------------------ fills
    def _fill_page(self, now: int, page: int, frame: int) -> int:
        """Engine fill callback: whole-page copy, or lazy chunk arrival."""
        if self._tenant_fills is not None:
            self._tenant_fills[self.fabric.tenant_of_page(page)] += 1
        if not self._chunk_mode:
            return self.model.fill(now, page, frame)
        # Chunk mode: the fault allocates the frame; data arrives per chunk
        # on first access (including the faulting one, in _access_memory).
        self._present_chunks[page] = 0
        return now

    def _ensure_chunk(self, now: int, loc) -> int:
        """Chunk mode: guarantee the accessed chunk's data is in the frame."""
        mask = self._present_chunks.get(loc.page, 0)
        bit = 1 << loc.chunk_in_page
        key = (loc.page, loc.chunk_in_page)
        if mask & bit:
            inflight = self._inflight_chunks.get(key)
            if inflight is not None:
                if inflight <= now:
                    del self._inflight_chunks[key]
                    return now
                return inflight
            return now
        completion = self.model.fill_chunk(now, loc.page, loc.frame, loc.chunk_in_page)
        self._present_chunks[loc.page] = mask | bit
        self._inflight_chunks[key] = completion
        self.stats.bump("chunk_fills")
        return completion

    # ------------------------------------------------------------------ eviction
    def _evict_page(
        self, now: int, page: int, frame: int,
        dirty_chunks: Tuple[int, ...], page_dirty: bool,
    ) -> int:
        """Background eviction: flush the page's L2 lines, then let the
        security model write the page (or its dirty chunks) back. Returns
        the model's outbound drain time for writeback-buffer backpressure."""
        geom = self.geometry
        if self._tenant_evicts is not None:
            self._tenant_evicts[self.fabric.tenant_of_page(page)] += 1
        for block in range(geom.blocks_per_page):
            chunk = block // geom.blocks_per_chunk
            channel, _ = self.fabric.chunk_location(page, frame, chunk)
            evicted = self.l2[channel].cache.invalidate_line((page, block))
            if evicted is None or not evicted.dirty_sectors:
                continue
            for sector in evicted.dirty_sectors:
                cxl_addr = (
                    page * geom.page_bytes
                    + block * geom.block_bytes
                    + sector * geom.sector_bytes
                )
                loc = self.fabric.locate(cxl_addr, frame)
                self.fabric.device_write(
                    now, loc.channel, geom.sector_bytes, TrafficCategory.DATA
                )
                self.model.writeback(now, loc)
        self.miss_handler.invalidate_page(page)
        if self._chunk_mode:
            self._present_chunks.pop(page, None)
        return self.model.evict(now, page, frame, dirty_chunks, page_dirty)

    # ------------------------------------------------------------------ translation
    def _translate(self, now: int, gpc: int, page: int) -> Tuple[int, int]:
        """Mapping-cache lookup + residency guarantee.

        Returns ``(frame, ready_cycle)`` - the device frame and when both the
        translation and the page's data are usable.
        """
        cache = self.miss_handler.cache_for(gpc)
        cached_frame = cache.lookup(page)
        if cached_frame is not None:
            frame, fill_ready = self.engine.ensure_resident(now, page)
            return frame, max(now + MAPPING_HIT_CYCLES, fill_ready)
        return self._translate_miss(now, gpc, page)

    def _translate_miss(self, now: int, gpc: int, page: int) -> Tuple[int, int]:
        """Mapping-cache miss: the control logic reads the mapping sector
        from device memory and, if the page is absent, starts the copy
        (Section IV-B). The caller has already counted the miss."""
        if self._partitioned:
            map_channel = self.fabric.mapping_channel(page)
        else:
            map_channel = (page // 4) % self._map_channels
        map_ready = self.fabric.device_read(
            now, map_channel, MAPPING_SECTOR_BYTES, TrafficCategory.MAPPING,
            priority=True,
        )
        frame, fill_ready = self.engine.ensure_resident(now, page)
        self.miss_handler.record_fill(gpc, page, frame)
        return frame, max(map_ready, fill_ready)

    # ------------------------------------------------------------------ L2 + memory
    def _handle_l2_evictions(self, now: int, evicted) -> None:
        if evicted is None or not evicted.dirty_sectors:
            return
        page, block = evicted.line_addr
        frame = self.page_cache.frame_of(page)
        if frame is None:
            # The owning page left device memory and its flush already wrote
            # these sectors; nothing further to account.
            return
        geom = self.geometry
        for sector in evicted.dirty_sectors:
            cxl_addr = (
                page * geom.page_bytes
                + block * geom.block_bytes
                + sector * geom.sector_bytes
            )
            loc = self.fabric.locate(cxl_addr, frame)
            self.fabric.device_write(
                now, loc.channel, geom.sector_bytes, TrafficCategory.DATA
            )
            self.model.writeback(now, loc)

    def _access_memory(self, now: int, addr: int, is_write: bool, frame: int) -> int:
        loc = self.fabric.locate(addr, frame)
        if self._chunk_mode:
            # Writes also wait for the chunk (read-for-ownership: untouched
            # sectors of a dirty chunk must hold valid ciphertext so the
            # whole chunk can be written back later).
            now = max(now, self._ensure_chunk(now, loc))
        slice_ = self.l2[loc.channel]
        block_in_page = (addr % self._page_bytes) // self._block_bytes
        line_addr = (loc.page, block_in_page)
        sector_in_block = (addr % self._block_bytes) // self._sector_bytes

        if is_write:
            self.model.on_store(now, loc)
            result = slice_.access(line_addr, sector_in_block, write=True)
            self._handle_l2_evictions(now, result.evicted)
            # Stores retire through the store buffer; the warp does not wait
            # for memory. Dirty data pays its security toll at writeback.
            return now + self._l2_latency

        result = slice_.access(line_addr, sector_in_block, write=False)
        self._handle_l2_evictions(now, result.evicted)
        if result.sector_hit:
            return now + self._l2_latency
        merged = slice_.inflight_completion(now, line_addr, sector_in_block)
        if merged is not None:
            return max(now + self._l2_latency, merged)
        data_ready = self.fabric.device_read(
            now, loc.channel, self._sector_bytes, TrafficCategory.DATA,
            priority=True,
        )
        completion = self.model.read_complete(now, loc, data_ready)
        slice_.register_fill(now, line_addr, sector_in_block, completion)
        return completion

    # ------------------------------------------------------------------ main loop
    def run(
        self,
        requests: Iterable[MemoryRequest],
        compute_per_mem: int = 0,
        workload_name: str = "trace",
        kernel: Optional[str] = None,
    ) -> RunResult:
        """Process a trace to completion and return the collected results.

        ``kernel`` selects the request-path engine (``scalar``, ``batched``
        or ``auto``); ``None`` defers to ``REPRO_KERNEL`` and then the
        ``auto`` default. Both engines are bound by the dual-engine
        contract: the returned :class:`RunResult` (and hence its
        fingerprint) is bit-identical either way.
        """
        from ..kernel import resolve_kernel

        engine = resolve_kernel(kernel)
        if engine == "batched":
            from ..kernel.batched import run_batched

            run_batched(self, requests, compute_per_mem)
        else:
            from ..kernel.scalar import run_scalar

            run_scalar(self, requests, compute_per_mem)
        return self._finish(workload_name)

    def _finish(self, workload_name: str) -> RunResult:
        """Shared post-loop tail: drain, finalize the model, collect stats."""
        final = max((sm.drain_cycle for sm in self.sms), default=0)
        if self._sample_queue is not None:
            # Flush outstanding epoch samples up to the drain cycle, then a
            # final snapshot so the counter tracks cover the whole run.
            self._sample_queue.run(until=final)
            if self._sampler is not None:
                self._sampler.stop()
            if self._progress_sampler is not None:
                self._progress_sampler.stop()
                self._emit_progress(final)
        self.model.finalize(final)
        self.stats.final_cycle = final
        self.stats.instructions = sum(sm.instructions for sm in self.sms)
        if self.tracer.enabled:
            self._sample_metrics(final)
        return self._result(workload_name)

    def _result(self, workload_name: str) -> RunResult:
        device_busy = sum(ch.busy_cycles for ch in self.fabric.channels)
        num_ch = len(self.fabric.channels)
        counters = {
            "device_busy_cycles": device_busy,
            "device_utilization": (
                device_busy / (num_ch * self.stats.final_cycle)
                if self.stats.final_cycle
                else 0.0
            ),
            "cxl_busy_cycles": sum(l.busy_cycles for l in self.fabric.links),
            "cxl_utilization": (
                sum(l.busy_cycles for l in self.fabric.links)
                / (2 * len(self.fabric.links) * self.stats.final_cycle)
                if self.stats.final_cycle
                else 0.0
            ),
            "l2_hit_rate": (
                sum(s.cache.hits for s in self.l2)
                / max(1, sum(s.cache.hits + s.cache.misses for s in self.l2))
            ),
            "mapping_hit_rate": (
                sum(c.hits for c in self.miss_handler.caches)
                / max(
                    1,
                    sum(c.hits + c.misses for c in self.miss_handler.caches),
                )
            ),
        }
        counters.update(self.stats.counters)
        return RunResult(
            model=self.model.name,
            workload=workload_name,
            stats=self.stats,
            fills=self.engine.fill_count,
            evictions=self.engine.evict_count,
            counters=counters,
            metrics=collect_metrics(self),
        )

"""Streaming-multiprocessor front end: warp-level latency hiding.

Each SM owns ``warps_per_sm`` warp contexts. A memory instruction issues
when both the SM's issue slot and its warp are free; the warp then blocks
until the memory system answers while the SM issues other warps' work. The
SM's issue clock advances by the instruction block size (one memory
instruction plus the workload's compute instructions per memory op), which
yields the classic throughput behaviour: compute-bound when the per-warp
compute block exceeds (memory latency / warps), memory-bound otherwise.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError


class StreamingMultiprocessor:
    """Issue bookkeeping for one SM."""

    def __init__(self, sm_id: int, warps: int) -> None:
        if warps <= 0:
            raise ConfigError("an SM needs at least one warp context")
        self.sm_id = sm_id
        self.warps = warps
        self.clock: int = 0
        self.warp_ready: List[int] = [0] * warps
        self.instructions: int = 0
        self._next_warp = 0

    def pick_warp(self, hint: int = None) -> int:
        """Round-robin warp assignment (or honour a trace-provided hint)."""
        if hint is not None:
            return hint % self.warps
        warp = self._next_warp
        self._next_warp = (self._next_warp + 1) % self.warps
        return warp

    def issue(self, warp: int, block_instructions: int) -> int:
        """Issue one instruction block on ``warp``; returns the issue cycle.

        The block is the memory instruction plus its accompanying compute
        instructions. The SM's issue slot is busy for the whole block (one
        instruction per cycle); the warp must also be free.
        """
        if block_instructions <= 0:
            raise ConfigError("block_instructions must be positive")
        clock = self.clock
        warp_free = self.warp_ready[warp]
        t_issue = clock if clock >= warp_free else warp_free
        self.clock = t_issue + block_instructions
        self.instructions += block_instructions
        return t_issue

    def complete(self, warp: int, cycle: int) -> None:
        """The warp's outstanding memory access finished at ``cycle``."""
        if cycle > self.warp_ready[warp]:
            self.warp_ready[warp] = cycle

    @property
    def drain_cycle(self) -> int:
        """When this SM's last work (issue or outstanding warp) finishes."""
        return max(self.clock, max(self.warp_ready))

"""GPU front end and top-level simulator.

The front end is deliberately simple - warp contexts that block on their
outstanding memory access while the SM keeps issuing from other warps -
because every result in the paper is a *ratio* between systems that share
the front end. What must be faithful is the memory side: mapping caches,
migration, sectored L2, and the security models, which
:class:`~repro.gpu.gpusim.GpuSim` wires together.
"""

from .sm import StreamingMultiprocessor
from .interconnect import Interconnect
from .gpusim import GpuSim, RunResult

__all__ = ["GpuSim", "Interconnect", "RunResult", "StreamingMultiprocessor"]

"""System configuration, mirroring Tables I and II of the Salus paper.

Four dataclasses compose the full configuration:

* :class:`GPUConfig` - the baseline GPU (Table I, NVIDIA Volta class): SM
  count, warp slots, memory partitions, bandwidths, cache geometry, and the
  CXL expansion parameters (aggregate CXL bandwidth as a ratio of device
  bandwidth, default 1/16 ~ PCIe 5.0 x16).
* :class:`SecurityConfig` - the security machinery (Table II): per-partition
  metadata caches, MAC/AES latencies, counter/MAC/Merkle-tree geometry.
* :class:`SalusConfig` - feature flags for the four Salus optimizations, so
  ablation benchmarks can enable them one at a time.
* :class:`TopologyConfig` - shape of the CXL fabric: how many expansion
  devices, how CXL pages shard onto them, and per-device link overrides.
  Defaults to the paper's single-device topology.

:class:`SystemConfig` bundles all three plus the address
:class:`~repro.address.Geometry` and the device-capacity-to-footprint ratio
swept by Figure 14.

Two factory presets are provided: :func:`SystemConfig.volta` reproduces the
paper's evaluation machine, and :func:`SystemConfig.small` is a scaled-down
system for fast unit tests (identical mechanisms, smaller resources).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Tuple

from .address import SHARDING_POLICIES, Geometry
from .errors import ConfigError


@dataclass(frozen=True)
class GPUConfig:
    """Baseline GPU model parameters (paper Table I, Volta class)."""

    num_sms: int = 80
    warps_per_sm: int = 64
    num_gpcs: int = 8
    core_clock_ghz: float = 1.4

    num_channels: int = 32
    device_bandwidth_gbps: float = 900.0
    dram_latency_cycles: int = 200
    # Fixed per-transaction occupancy (row activation / protocol flits).
    # Scattered 32 B metadata accesses pay this in full; streamed page
    # copies amortize it, which is why metadata traffic costs more than its
    # byte count suggests.
    device_access_overhead_cycles: int = 8
    cxl_access_overhead_cycles: int = 24

    l2_total_bytes: int = 4608 * 1024
    l2_ways: int = 16
    l2_latency_cycles: int = 30
    l2_mshrs_per_slice: int = 256

    interconnect_latency_cycles: int = 20

    cxl_bw_ratio: float = 1.0 / 16.0
    cxl_latency_cycles: int = 400

    # Victim writeback buffering: how many page evictions may be in flight
    # before a new fill must wait for the oldest to drain. Finite buffers
    # couple eviction traffic back into fill latency, which is what makes
    # heavyweight (full-page + metadata) evictions expensive in practice.
    evict_buffer_pages: int = 8

    # How data moves on a page fault (paper Section IV-A3: prior DRAM-cache
    # work either moves the whole page or only the parts expected to be
    # accessed, and Salus works with either):
    #   "page"  - the whole 4 KiB page streams across on the fault;
    #   "chunk" - only the faulting 256 B chunk moves; other chunks fill on
    #             their own first access (demand chunk fills).
    fill_granularity: str = "page"

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.warps_per_sm <= 0:
            raise ConfigError("num_sms and warps_per_sm must be positive")
        if self.num_gpcs <= 0 or self.num_sms % self.num_gpcs != 0:
            raise ConfigError("num_sms must divide evenly into num_gpcs")
        if self.num_channels <= 0:
            raise ConfigError("num_channels must be positive")
        if not 0.0 < self.cxl_bw_ratio <= 1.0:
            raise ConfigError("cxl_bw_ratio must be in (0, 1]")
        if self.device_bandwidth_gbps <= 0:
            raise ConfigError("device_bandwidth_gbps must be positive")
        if self.l2_total_bytes % self.num_channels != 0:
            raise ConfigError("l2_total_bytes must split evenly over channels")
        if self.fill_granularity not in ("page", "chunk"):
            raise ConfigError(
                f"fill_granularity must be 'page' or 'chunk', "
                f"got {self.fill_granularity!r}"
            )

    @property
    def sms_per_gpc(self) -> int:
        """Streaming multiprocessors per graphics processing cluster."""
        return self.num_sms // self.num_gpcs

    @property
    def device_bytes_per_cycle_per_channel(self) -> float:
        """Service bandwidth of a single device-memory channel."""
        total = self.device_bandwidth_gbps / self.core_clock_ghz  # bytes/cycle
        return total / self.num_channels

    @property
    def cxl_bytes_per_cycle(self) -> float:
        """Aggregate service bandwidth of the CXL link, in bytes per cycle."""
        total = self.device_bandwidth_gbps / self.core_clock_ghz
        return total * self.cxl_bw_ratio

    @property
    def l2_slice_bytes(self) -> int:
        """L2 capacity of one memory partition's slice."""
        return self.l2_total_bytes // self.num_channels


@dataclass(frozen=True)
class SecurityConfig:
    """Security machinery parameters (paper Table II plus Section IV)."""

    # Per-partition metadata caches (sectored, allocate-on-fill).
    mac_cache_bytes: int = 2 * 1024
    counter_cache_bytes: int = 8 * 1024
    bmt_cache_bytes: int = 4 * 1024
    metadata_cache_ways: int = 4
    metadata_cache_block_bytes: int = 128
    metadata_mshrs: int = 256

    # Engine latencies (cycles).
    mac_latency_cycles: int = 40
    aes_latency_cycles: int = 40
    aes_pipes_per_partition: int = 1
    # A pipelined AES engine accepts one sector per interval once warmed up.
    aes_pipe_interval_cycles: int = 4

    # Metadata geometry.
    mac_bits: int = 56                 # Gueron-style truncated MAC per sector
    major_counter_bits: int = 32
    minor_counter_bits: int = 7        # device-side split counters
    cxl_minor_counter_bits: int = 14   # doubled-width minors on the CXL side
    bmt_arity: int = 8                 # 8 child hashes per 64 B tree node
    bmt_node_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("mac_cache_bytes", "counter_cache_bytes", "bmt_cache_bytes"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.bmt_arity < 2:
            raise ConfigError("bmt_arity must be at least 2")
        if not 0 < self.mac_bits <= 64:
            raise ConfigError("mac_bits must be in (0, 64]")
        if self.minor_counter_bits <= 0 or self.major_counter_bits <= 0:
            raise ConfigError("counter widths must be positive")


@dataclass(frozen=True)
class TopologyConfig:
    """Shape of the CXL fabric: how many expansion devices and their links.

    Salus keys all security metadata to permanent CXL addresses
    (Section IV-A), which makes the scheme naturally multi-device: each
    type-3 device owns its own security plane (counter/MAC stores, Merkle
    root, link-side metadata caches) over the slice of the CXL address
    space it is home to, and unified addressing means a page never needs
    re-keying no matter which device it lives on or which GPU frame caches
    it. The default is the paper's single-device topology.

    * ``num_devices`` - expansion devices on the fabric (each with its own
      full-duplex link pair).
    * ``sharding`` - how CXL pages map to home devices: ``"page"``
      (round-robin by page number, the balanced default) or ``"range"``
      (contiguous equal splits of the footprint).
    * ``link_bw_ratios`` / ``link_latencies`` - optional per-device
      overrides of the link bandwidth ratio (vs. device memory bandwidth)
      and link latency; empty tuples mean every device uses the
      :class:`GPUConfig` values. Heterogeneous fabrics (e.g. one near
      device, one far pooled device) set these per slot.
    """

    num_devices: int = 1
    sharding: str = "page"
    link_bw_ratios: Tuple[float, ...] = ()
    link_latencies: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ConfigError("num_devices must be at least 1")
        if self.sharding not in SHARDING_POLICIES:
            raise ConfigError(
                f"sharding must be one of {sorted(SHARDING_POLICIES)}, "
                f"got {self.sharding!r}"
            )
        for name in ("link_bw_ratios", "link_latencies"):
            values = getattr(self, name)
            if values and len(values) != self.num_devices:
                raise ConfigError(
                    f"{name} must be empty or have one entry per device "
                    f"({self.num_devices}), got {len(values)}"
                )
        if any(not 0.0 < r <= 1.0 for r in self.link_bw_ratios):
            raise ConfigError("link_bw_ratios entries must be in (0, 1]")
        if any(lat < 0 for lat in self.link_latencies):
            raise ConfigError("link_latencies entries must be non-negative")

    def bw_ratio(self, device: int, default: float) -> float:
        """Link bandwidth ratio of one device (falling back to the GPU's)."""
        if self.link_bw_ratios:
            return self.link_bw_ratios[device]
        return default

    def latency(self, device: int, default: int) -> int:
        """Link latency of one device (falling back to the GPU's)."""
        if self.link_latencies:
            return self.link_latencies[device]
        return default


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's security domain, bound to a compute/memory partition.

    A tenant owns a contiguous SM group (CPX-style compute partition, GPC
    aligned so the interconnect port mapping stays valid), a contiguous
    channel subset with its private L2 slices and per-channel metadata
    caches (NPS-style memory partition), a slice of the CXL page space, and
    its own MAC/encryption key domain. Both fields are optional labels and
    overrides; partition *shape* lives in :class:`PartitionConfig`.

    * ``name`` - human-readable label (defaults to ``tenant<t>``).
    * ``key_seed`` - override for the tenant's key-derivation seed; the
      empty string derives a per-tenant seed from the platform seed and the
      tenant index, which already guarantees distinct key domains.
    """

    name: str = ""
    key_seed: str = ""


@dataclass(frozen=True)
class PartitionConfig:
    """Compute/memory partitioning of the GPU + CXL fabric across tenants.

    Models SPX/CPX-style SM-group partitions combined with NPS-style memory
    partitions: ``num_tenants`` equal slices of the SM array (whole GPCs),
    the channel array (contiguous runs, each with its own L2 slices and
    metadata caches), and the CXL page space. The default single tenant
    owns everything, and every structure the simulator builds in that case
    is identical to the pre-partitioning code path.

    ``tenants`` optionally names the domains; it must be empty or carry one
    :class:`TenantSpec` per tenant.
    """

    num_tenants: int = 1
    tenants: Tuple[TenantSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ConfigError("num_tenants must be at least 1")
        if self.tenants and len(self.tenants) != self.num_tenants:
            raise ConfigError(
                f"tenants must be empty or have one entry per tenant "
                f"({self.num_tenants}), got {len(self.tenants)}"
            )

    def tenant_name(self, tenant: int) -> str:
        """Display name of one tenant (``tenant<t>`` unless spec'd)."""
        if self.tenants and self.tenants[tenant].name:
            return self.tenants[tenant].name
        return f"tenant{tenant}"

    def tenant_key_seed(self, tenant: int, platform_seed: str) -> str:
        """Key-derivation seed of one tenant's cryptographic domain."""
        if self.tenants and self.tenants[tenant].key_seed:
            return self.tenants[tenant].key_seed
        if self.num_tenants == 1:
            return platform_seed
        return f"{platform_seed}|tenant{tenant}"


@dataclass(frozen=True)
class SalusConfig:
    """Feature flags for the four Salus optimizations (Section IV-A).

    The full Salus design enables all of them; ablation benchmarks flip them
    individually. ``unified_metadata`` is the root idea - the others layer on
    top of it, and the validator enforces that dependency.
    """

    unified_metadata: bool = True
    interleaving_friendly_counters: bool = True
    collapsed_counters: bool = True
    fetch_on_access: bool = True
    fine_dirty_tracking: bool = True

    def __post_init__(self) -> None:
        dependents = (
            self.interleaving_friendly_counters,
            self.collapsed_counters,
            self.fetch_on_access,
        )
        if any(dependents) and not self.unified_metadata:
            raise ConfigError(
                "interleaving-friendly / collapsed / fetch-on-access counters "
                "all require unified_metadata=True"
            )
        if self.collapsed_counters and not self.interleaving_friendly_counters:
            raise ConfigError(
                "collapsed_counters requires interleaving_friendly_counters "
                "(majors must be per-chunk before they can be collapsed)"
            )

    @classmethod
    def full(cls) -> "SalusConfig":
        """All optimizations on - the design evaluated in the paper."""
        return cls()

    @classmethod
    def unified_only(cls) -> "SalusConfig":
        """Only address-location decoupling - first ablation step."""
        return cls(
            interleaving_friendly_counters=False,
            collapsed_counters=False,
            fetch_on_access=False,
            fine_dirty_tracking=False,
        )


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of one simulated system."""

    gpu: GPUConfig = field(default_factory=GPUConfig)
    security: SecurityConfig = field(default_factory=SecurityConfig)
    salus: SalusConfig = field(default_factory=SalusConfig)
    geometry: Geometry = field(default_factory=Geometry)
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    partition: PartitionConfig = field(default_factory=PartitionConfig)

    # Fraction of the application footprint that fits in device memory
    # (Figure 14 sweeps {0.20, 0.35, 0.50}; the main evaluation uses 0.35).
    device_capacity_ratio: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 < self.device_capacity_ratio <= 1.0:
            raise ConfigError("device_capacity_ratio must be in (0, 1]")
        tenants = self.partition.num_tenants
        if tenants > 1:
            # Compute partitions are whole GPCs (keeps the SM->GPC
            # interconnect port mapping valid inside a partition) and
            # memory partitions are whole channels (each channel's L2
            # slice and metadata caches stay tenant-private).
            if self.gpu.num_gpcs % tenants != 0:
                raise ConfigError(
                    f"num_tenants={tenants} must divide num_gpcs="
                    f"{self.gpu.num_gpcs} (GPC-aligned compute partitions)"
                )
            if self.gpu.num_channels % tenants != 0:
                raise ConfigError(
                    f"num_tenants={tenants} must divide num_channels="
                    f"{self.gpu.num_channels} (channel-aligned memory "
                    f"partitions)"
                )
        if self.geometry.page_bytes % self.gpu.num_channels > 0:
            # Pages interleave over channels in whole chunks; a page smaller
            # than one chunk per channel is fine, but the chunk count must be
            # a power of two so the modulo mapping stays balanced.
            pass

    @classmethod
    def volta(cls, **overrides) -> "SystemConfig":
        """The paper's evaluation configuration (Tables I and II)."""
        return cls(**overrides)

    @classmethod
    def bench(cls, **overrides) -> "SystemConfig":
        """Laptop-scale evaluation machine used by the benchmark harness.

        Mechanisms and Table-II security parameters are identical to
        :meth:`volta`; the GPU is scaled down (16 SMs / 16 channels / 512 KiB
        L2) so that the synthetic footprints (4-6 MiB) exercise the same
        capacity relationships the paper's machine has - footprint >> L2,
        device page cache a fixed fraction of footprint, CXL link at a
        bandwidth ratio of the device memory. See DESIGN.md Section 2.
        """
        gpu = GPUConfig(
            num_sms=16,
            warps_per_sm=16,
            num_gpcs=4,
            num_channels=16,
            device_bandwidth_gbps=256.0,
            l2_total_bytes=512 * 1024,
            l2_mshrs_per_slice=64,
        )
        # Metadata caches are scaled to keep the paper's *coverage fraction*:
        # Table II's 2-8 KiB per-partition caches cover well under 1% of a
        # multi-GB device memory, so at a few-MiB bench footprint the caches
        # must shrink accordingly or device-side metadata becomes free.
        security = SecurityConfig(
            mac_cache_bytes=512,
            counter_cache_bytes=1024,
            bmt_cache_bytes=512,
        )
        defaults = {"gpu": gpu, "security": security}
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def small(cls, **overrides) -> "SystemConfig":
        """A scaled-down system for fast tests - same mechanisms throughout."""
        gpu = GPUConfig(
            num_sms=4,
            warps_per_sm=8,
            num_gpcs=2,
            num_channels=8,
            device_bandwidth_gbps=128.0,
            l2_total_bytes=64 * 1024,
            l2_mshrs_per_slice=32,
        )
        security = SecurityConfig(
            mac_cache_bytes=512,
            counter_cache_bytes=1024,
            bmt_cache_bytes=512,
            metadata_mshrs=32,
        )
        defaults = {"gpu": gpu, "security": security}
        defaults.update(overrides)
        return cls(**defaults)

    def to_dict(self) -> dict:
        """Nested plain-value dict of every parameter (JSON-safe)."""
        return asdict(self)

    @staticmethod
    def _init_kwargs(cls_, data: dict) -> dict:
        """Keep only the constructor parameters of ``cls_``.

        ``to_dict`` (``asdict``) also serializes derived ``init=False``
        fields (e.g. the precomputed Geometry ratios); reconstruction must
        drop them and let ``__post_init__`` recompute, so a round-tripped
        config is field-identical to the original.
        """
        from dataclasses import fields

        allowed = {f.name for f in fields(cls_) if f.init}
        return {k: v for k, v in data.items() if k in allowed}

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Inverse of :meth:`to_dict`: rebuild a config from its plain dict.

        Tolerates JSON round-trips (tuples arrive as lists) and ignores
        unknown keys, so payloads from newer/older peers degrade to the
        defaults rather than erroring. The contract the job service relies
        on: ``SystemConfig.from_dict(c.to_dict()).fingerprint() ==
        c.fingerprint()`` for every constructible config.
        """
        if not isinstance(data, dict):
            raise ConfigError(f"config payload must be a dict, got {type(data).__name__}")
        topo_kwargs = cls._init_kwargs(TopologyConfig, data.get("topology", {}))
        for name in ("link_bw_ratios", "link_latencies"):
            if name in topo_kwargs:
                topo_kwargs[name] = tuple(topo_kwargs[name])
        part_kwargs = cls._init_kwargs(PartitionConfig, data.get("partition", {}))
        if "tenants" in part_kwargs:
            part_kwargs["tenants"] = tuple(
                TenantSpec(**cls._init_kwargs(TenantSpec, spec))
                for spec in part_kwargs["tenants"]
            )
        kwargs = {
            "gpu": GPUConfig(**cls._init_kwargs(GPUConfig, data.get("gpu", {}))),
            "security": SecurityConfig(
                **cls._init_kwargs(SecurityConfig, data.get("security", {}))
            ),
            "salus": SalusConfig(**cls._init_kwargs(SalusConfig, data.get("salus", {}))),
            "geometry": Geometry(**cls._init_kwargs(Geometry, data.get("geometry", {}))),
            "topology": TopologyConfig(**topo_kwargs),
            "partition": PartitionConfig(**part_kwargs),
        }
        if "device_capacity_ratio" in data:
            kwargs["device_capacity_ratio"] = data["device_capacity_ratio"]
        return cls(**kwargs)

    def fingerprint(self) -> str:
        """Stable content hash of the full configuration.

        Two configs fingerprint equal iff every nested parameter is equal,
        independent of process, platform or hash randomization - the
        experiment engine uses this as part of its on-disk cache key.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def with_salus(self, salus: SalusConfig) -> "SystemConfig":
        """Copy of this config with a different Salus feature set."""
        return replace(self, salus=salus)

    def with_cxl_bw_ratio(self, ratio: float) -> "SystemConfig":
        """Copy with a different CXL-to-device bandwidth ratio (Figure 13)."""
        return replace(self, gpu=replace(self.gpu, cxl_bw_ratio=ratio))

    def with_capacity_ratio(self, ratio: float) -> "SystemConfig":
        """Copy with a different device-capacity ratio (Figure 14)."""
        return replace(self, device_capacity_ratio=ratio)

    def with_topology(self, topology: TopologyConfig) -> "SystemConfig":
        """Copy of this config with a different CXL fabric topology."""
        return replace(self, topology=topology)

    def with_cxl_devices(self, num_devices: int, sharding: str = "page") -> "SystemConfig":
        """Copy with an N-device CXL fabric (uniform links, default sharding)."""
        return replace(
            self, topology=TopologyConfig(num_devices=num_devices, sharding=sharding)
        )

    def with_tenants(
        self, num_tenants: int, tenants: Tuple[TenantSpec, ...] = ()
    ) -> "SystemConfig":
        """Copy partitioned into ``num_tenants`` equal security domains."""
        return replace(
            self,
            partition=PartitionConfig(num_tenants=num_tenants, tenants=tenants),
        )

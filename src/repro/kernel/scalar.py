"""Reference scalar engine: the original per-request dispatch loop.

This is the oracle side of the dual-engine contract. The loop body is the
one that produced every recorded fingerprint in ``BENCH_perf.json``; it
was moved here verbatim from ``GpuSim.run`` when the kernel seam was
introduced. Any behavioural change to this file invalidates the recorded
trajectory and must be treated as a new baseline, not an optimization.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import IsolationError, TraceError
from ..memsys.request import MemoryRequest


def run_scalar(sim, requests: Iterable[MemoryRequest], compute_per_mem: int = 0) -> None:
    """Drive ``sim`` through ``requests`` one request at a time.

    On a partitioned fabric (``num_tenants > 1``) each request is routed to
    its tenant's SM group and checked against the tenant's page span; a
    cross-tenant access raises :class:`IsolationError` before the request
    issues. The single-tenant path (``tenant_map is None``) is the original
    frozen trajectory, untouched.
    """
    gpu = sim.config.gpu
    block_instructions = 1 + max(0, compute_per_mem)
    footprint_bytes = sim.fabric.footprint_pages * sim.geometry.page_bytes
    # Loop-invariant locals: attribute loads inside this loop are paid
    # once per trace request, which dominates small-config runs.
    sms = sim.sms
    num_sms = gpu.num_sms
    sms_per_gpc = gpu.sms_per_gpc
    page_bytes = sim._page_bytes
    sample_queue = sim._sample_queue
    tracing = sim.tracer.enabled
    tmap = sim.fabric.tenant_map

    for req in requests:
        if not 0 <= req.cxl_addr < footprint_bytes:
            raise TraceError(
                f"trace address {req.cxl_addr:#x} outside footprint "
                f"of {footprint_bytes} bytes"
            )
        if tmap is None:
            sm = sms[req.sm % num_sms]
        else:
            ten = req.tenant
            if not 0 <= ten < tmap.num_tenants:
                raise IsolationError(
                    f"request tenant {ten} outside partition of "
                    f"{tmap.num_tenants} tenants"
                )
            owner = tmap.tenant_of_page(req.cxl_addr // page_bytes)
            if owner != ten:
                raise IsolationError(
                    f"tenant {ten} request for address {req.cxl_addr:#x} "
                    f"crosses into tenant {owner}'s pages"
                )
            sm = sms[tmap.sm_slot(ten, req.sm)]
        gpc = sm.sm_id // sms_per_gpc
        warp = sm.pick_warp(req.warp)
        t_issue = sm.issue(warp, block_instructions)
        if t_issue > sim._now:
            sim._now = t_issue
        if sample_queue is not None and sim._now > sample_queue.now:
            sample_queue.run(until=sim._now)

        page = req.cxl_addr // page_bytes
        frame, ready = sim._translate(t_issue, gpc, page)
        t_mem = sim.interconnect.traverse(ready, gpc)
        completion = sim._access_memory(t_mem, req.cxl_addr, req.is_write, frame)
        sm.complete(warp, completion)
        if tracing:
            args = {"addr": req.cxl_addr, "warp": warp}
            if tmap is not None:
                args["tenant"] = req.tenant
            sim.tracer.span(
                f"sm{sm.sm_id}", "write" if req.is_write else "read",
                t_issue, completion - t_issue, cat="request",
                args=args,
            )

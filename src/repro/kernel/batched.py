"""Epoch-batched engine: vectorized precompute + fused dispatch loop.

The dual-engine contract (ARCHITECTURE.md) demands bit-identical
``RunResult`` trees against :mod:`repro.kernel.scalar`, so the dynamic
state machines - SM issue clocks, mapping/L2/metadata LRU caches, channel
timelines, migration state - must transition in exactly the scalar order.
What *can* leave the per-request loop is everything static:

* per-epoch numpy precompute of all address arithmetic (page, block- and
  sector-in-page, SM/GPC/warp routing) as shift/mask array ops over the
  trace's dense int64 columns;
* a one-shot :meth:`MemoryFabric.locate_batch` warm per epoch covering
  the epoch's resident pages (per-device planes merged by
  ``(timestamp, device, seq)``), so the fused loop's coordinate lookups
  are memo hits;
* inlined hot-path fast cases (mapping-cache hit + resident page, L2
  sector hit, L2 write to a present line) that replicate the scalar
  transitions - including hit/miss tallies and LRU movement - without
  crossing any method boundary.

Everything else - mapping misses, residency faults, L2 misses and
evictions, MSHR merges, chunk-granularity fills, every security-model
leg - falls back to the *same* scalar methods the reference engine uses,
at the exact point where the inline probe (which mutates nothing until
the fast case is certain) bows out. That fallback seam is the "scalar
tail" the docs describe.
"""

from __future__ import annotations

from typing import Iterable

from . import require_numpy
from ..errors import IsolationError, TraceError

#: Requests per vectorized slab. Large enough to amortize the numpy ops,
#: small enough that the per-epoch locate warm runs after the early
#: epochs' migration fills have built residency (a single huge slab would
#: warm against an empty page cache and win nothing).
EPOCH_SIZE = 2048


def _as_dense(requests: Iterable):
    """Coerce any request source the scalar engine accepts to columns."""
    from ..workloads.trace import DenseTrace, Trace

    if isinstance(requests, DenseTrace):
        return requests
    if isinstance(requests, Trace):
        return requests.dense()
    return DenseTrace.from_requests(list(requests))


def _warm_locations(fabric, epoch_addrs, page_bytes, pc_frames, num_frames):
    """Batch-locate the epoch's resident, not-yet-memoized sectors.

    Frames are read from the page cache *as of the epoch start*; a page
    that migrates mid-epoch simply misses the warm entry and takes the
    scalar ``locate`` in the loop. Either way every produced ``SectorLoc``
    is keyed by (addr, frame), so warming is observationally inert.
    """
    import numpy as np

    uniq = np.unique(epoch_addrs)
    loc_cache = fabric._loc_cache
    miss_addrs = []
    miss_frames = []
    for addr, page in zip(uniq.tolist(), (uniq // page_bytes).tolist()):
        frame = pc_frames.get(page)
        if frame is not None and addr * num_frames + frame not in loc_cache:
            miss_addrs.append(addr)
            miss_frames.append(frame)
    if miss_addrs:
        fabric.locate_batch(miss_addrs, miss_frames)


def run_batched(sim, requests: Iterable, compute_per_mem: int = 0) -> None:
    """Drive ``sim`` through ``requests`` one epoch-batched slab at a time."""
    require_numpy()
    from ..gpu.gpusim import MAPPING_HIT_CYCLES

    dense = _as_dense(requests)
    gpu = sim.config.gpu
    block = 1 + max(0, compute_per_mem)
    footprint_bytes = sim.fabric.footprint_pages * sim.geometry.page_bytes
    page_bytes = sim._page_bytes
    block_bytes = sim._block_bytes
    sector_bytes = sim._sector_bytes
    l2_lat = sim._l2_latency
    hit_lat = MAPPING_HIT_CYCLES
    num_sms = gpu.num_sms
    sms_per_gpc = gpu.sms_per_gpc
    warps = gpu.warps_per_sm
    chunk_mode = sim._chunk_mode

    # Pre-bound state the fused loop transitions in scalar order. Every
    # container here is mutated in place by the fallback paths, never
    # rebound, so holding direct references is safe.
    sms = sim.sms
    map_caches = sim.miss_handler.caches
    map_lrus = [c._lru for c in map_caches]
    pc_frames = sim.page_cache._page_to_frame
    pc_on_access = sim.page_cache._policy.on_access
    inflight_fills = sim.engine._inflight_fills
    ensure_resident = sim.engine.ensure_resident
    translate_miss = sim._translate_miss
    interconnect = sim.interconnect
    port_free = interconnect._port_free
    ic_lat = interconnect.latency_cycles
    fabric = sim.fabric
    loc_get = fabric._loc_cache.get
    locate = fabric.locate
    num_frames = fabric.num_frames
    l2_caches = [slice_.cache for slice_ in sim.l2]
    on_store = sim.model.on_store
    access_memory = sim._access_memory
    sample_queue = sim._sample_queue
    tracer = sim.tracer
    tracing = tracer.enabled

    addrs = dense.addrs
    is_write = dense.is_write
    sm_arr = dense.sm_id
    warp_arr = dense.warp
    tenant_arr = dense.tenant
    tmap = fabric.tenant_map
    sms_per_tenant = tmap.sms_per_tenant if tmap is not None else 0

    now_hwm = sim._now
    ic_booked = 0

    for start, stop in dense.epoch_bounds(EPOCH_SIZE):
        a = addrs[start:stop]
        # Bounds check the whole slab up front; process the valid prefix
        # (matching the scalar engine's partial progress) before raising.
        # Partitioned fabrics additionally screen every in-bounds request
        # against its tenant's page span, exactly as the scalar engine does
        # per request; the first bad row of either kind caps the prefix.
        oob = (a < 0) | (a >= footprint_bytes)
        if tmap is None:
            bad = oob
            ten_v = None
            owner_v = None
        else:
            ten_v = tenant_arr[start:stop]
            owner_v = tmap.tenant_of_pages(a // page_bytes)
            bad_ten = (ten_v < 0) | (ten_v >= tmap.num_tenants)
            bad = oob | (~oob & (bad_ten | (owner_v != ten_v)))
        bad_local = int(bad.argmax()) if bad.any() else -1
        limit = bad_local if bad_local >= 0 else int(a.shape[0])

        # Epoch-vectorized static arithmetic: one shot of array ops covers
        # what the scalar loop recomputes per request.
        av = a[:limit]
        pages_v = av // page_bytes
        in_page = av - pages_v * page_bytes
        bip_v = in_page // block_bytes
        sib_v = (in_page - bip_v * block_bytes) // sector_bytes
        if tmap is None:
            smx_v = sm_arr[start:start + limit] % num_sms
        else:
            # Scalar: sms[tmap.sm_slot(ten, req.sm)] - tenant SM group base
            # plus the hint folded into the group.
            smx_v = (
                ten_v[:limit] * sms_per_tenant
                + sm_arr[start:start + limit] % sms_per_tenant
            )
        gpc_v = smx_v // sms_per_gpc
        warp_v = warp_arr[start:start + limit] % warps

        if limit and not chunk_mode:
            _warm_locations(fabric, av, page_bytes, pc_frames, num_frames)

        rows = zip(
            av.tolist(), pages_v.tolist(), bip_v.tolist(), sib_v.tolist(),
            smx_v.tolist(), gpc_v.tolist(), warp_v.tolist(),
            is_write[start:start + limit].tolist(),
        )
        for addr, page, bip, sib, smx, gpc, warp, w in rows:
            sm = sms[smx]
            # SM issue (StreamingMultiprocessor.issue, inlined)
            wr = sm.warp_ready
            clock = sm.clock
            warp_free = wr[warp]
            t_issue = clock if clock >= warp_free else warp_free
            sm.clock = t_issue + block
            sm.instructions += block
            if t_issue > now_hwm:
                now_hwm = t_issue
            if sample_queue is not None and now_hwm > sample_queue.now:
                sim._now = now_hwm
                sample_queue.run(until=now_hwm)

            # Translate: mapping-cache hit + resident-page fast path inline;
            # misses and faults fall back to the shared scalar machinery.
            mlru = map_lrus[gpc]
            if mlru.get(page) is not None:
                map_caches[gpc].hits += 1
                mlru.move_to_end(page)
                frame = pc_frames.get(page)
                if frame is not None and page not in inflight_fills:
                    pc_on_access(page)
                    ready = t_issue + hit_lat
                else:
                    frame, fill_ready = ensure_resident(t_issue, page)
                    ready = t_issue + hit_lat
                    if fill_ready > ready:
                        ready = fill_ready
            else:
                map_caches[gpc].misses += 1
                frame, ready = translate_miss(t_issue, gpc, page)

            # Interconnect traverse, inlined.
            pf = port_free[gpc]
            t0 = ready if ready >= pf else pf
            port_free[gpc] = t0 + 1
            ic_booked += 1
            t_mem = t0 + ic_lat

            # Memory access: L2 fast cases inline; anything that books
            # traffic or evicts goes through the scalar path untouched.
            if chunk_mode:
                completion = access_memory(t_mem, addr, bool(w), frame)
            else:
                loc = loc_get(addr * num_frames + frame)
                if loc is None:
                    loc = locate(addr, frame)
                cache = l2_caches[loc.channel]
                line_addr = (page, bip)
                cache_set = cache._set_lookup.get(line_addr)
                if cache_set is None:
                    cache_set = cache._set_for(line_addr)
                line = cache_set.get(line_addr)
                bit = 1 << sib
                if w:
                    if line is not None:
                        on_store(t_mem, loc)
                        cache_set.move_to_end(line_addr)
                        if line.valid_mask & bit:
                            cache.hits += 1
                            line.dirty_mask |= bit
                        else:
                            line.valid_mask |= bit
                            line.dirty_mask |= bit
                            cache.misses += 1
                        completion = t_mem + l2_lat
                    else:
                        completion = access_memory(t_mem, addr, True, frame)
                elif line is not None and line.valid_mask & bit:
                    cache_set.move_to_end(line_addr)
                    cache.hits += 1
                    completion = t_mem + l2_lat
                else:
                    completion = access_memory(t_mem, addr, False, frame)

            # Warp completion (StreamingMultiprocessor.complete, inlined)
            if completion > wr[warp]:
                wr[warp] = completion
            if tracing:
                targs = {"addr": addr, "warp": warp}
                if tmap is not None:
                    # Enforcement already proved the requester owns the
                    # page, so the page's owner IS the request's tenant.
                    targs["tenant"] = tmap.tenant_of_page(page)
                tracer.span(
                    f"sm{sm.sm_id}", "write" if w else "read",
                    t_issue, completion - t_issue, cat="request",
                    args=targs,
                )

        if bad_local >= 0:
            interconnect.requests += ic_booked
            sim._now = now_hwm
            if bool(oob[bad_local]):
                raise TraceError(
                    f"trace address {int(a[bad_local]):#x} outside footprint "
                    f"of {footprint_bytes} bytes"
                )
            # Tenant screen tripped: raise the same IsolationError the
            # scalar engine raises for this row, invalid-id check first.
            ten = int(ten_v[bad_local])
            if not 0 <= ten < tmap.num_tenants:
                raise IsolationError(
                    f"request tenant {ten} outside partition of "
                    f"{tmap.num_tenants} tenants"
                )
            raise IsolationError(
                f"tenant {ten} request for address {int(a[bad_local]):#x} "
                f"crosses into tenant {int(owner_v[bad_local])}'s pages"
            )

    interconnect.requests += ic_booked
    sim._now = now_hwm

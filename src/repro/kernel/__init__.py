"""Kernel backend selection: the scalar/batched dual-engine seam.

The simulator has two interchangeable request-path engines:

``scalar``
    The reference oracle - the original per-request Python dispatch loop,
    moved verbatim into :mod:`repro.kernel.scalar`. Runs everywhere,
    requires nothing beyond the standard library.

``batched``
    The epoch-vectorized engine (:mod:`repro.kernel.batched`): per-epoch
    numpy precomputation of all static address arithmetic plus a fused
    dispatch loop that inlines the hot-path fast cases and falls back to
    the scalar machinery for the serialization-sensitive tail (misses,
    evictions, migration boundaries, chunk mode). Requires numpy.

Both engines are bound by the *dual-engine contract* (see
ARCHITECTURE.md): for any trace and configuration they must produce
bit-identical :class:`~repro.gpu.gpusim.RunResult` trees, so their
sha-256 fingerprints - and therefore the recorded ``BENCH_perf.json``
trajectory, the result cache, and the run ledger - agree exactly.

Selection precedence: an explicit ``--kernel``/API argument beats the
``REPRO_KERNEL`` environment variable beats the default (``auto``).
``auto`` resolves to ``batched`` when numpy imports, else ``scalar``.
The chosen kernel never enters any fingerprint: identical results by
contract means both backends hit the same cache and ledger entries.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from ..errors import ConfigError

#: Accepted names for ``--kernel`` / ``REPRO_KERNEL``.
KERNEL_NAMES: Tuple[str, ...] = ("scalar", "batched", "auto")

#: Environment variable consulted when no explicit kernel is given.
KERNEL_ENV_VAR = "REPRO_KERNEL"

DEFAULT_KERNEL = "auto"

_NUMPY = None
_NUMPY_PROBED = False


def numpy_or_none():
    """Return the numpy module if importable, else ``None`` (memoized)."""
    global _NUMPY, _NUMPY_PROBED
    if not _NUMPY_PROBED:
        try:
            import numpy  # noqa: F401 - probing availability
        except ImportError:
            _NUMPY = None
        else:
            _NUMPY = numpy
        _NUMPY_PROBED = True
    return _NUMPY


def require_numpy():
    """Return numpy or raise a :class:`ConfigError` naming the fallback."""
    np = numpy_or_none()
    if np is None:
        raise ConfigError(
            "the batched kernel requires numpy; install it or select "
            "--kernel scalar (REPRO_KERNEL=scalar)"
        )
    return np


def numpy_version() -> Optional[str]:
    """numpy's version string, or ``None`` when numpy is unavailable."""
    np = numpy_or_none()
    return None if np is None else str(np.__version__)


def resolve_kernel(choice: Optional[str] = None) -> str:
    """Resolve a kernel request to a concrete engine name.

    ``choice`` (e.g. a ``--kernel`` flag) wins over ``REPRO_KERNEL``,
    which wins over the ``auto`` default. Returns ``"scalar"`` or
    ``"batched"``; raises :class:`ConfigError` on unknown names or when
    ``batched`` is demanded without numpy present.
    """
    name = choice if choice is not None else os.environ.get(KERNEL_ENV_VAR)
    if name is None or name == "":
        name = DEFAULT_KERNEL
    name = str(name).strip().lower()
    if name not in KERNEL_NAMES:
        raise ConfigError(
            f"unknown kernel {name!r}; expected one of {', '.join(KERNEL_NAMES)}"
        )
    if name == "auto":
        return "batched" if numpy_or_none() is not None else "scalar"
    if name == "batched":
        require_numpy()
    return name

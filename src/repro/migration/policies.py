"""Victim-selection policies for the device-memory page cache.

The paper's DRAM-cache substrate evicts in the background to keep free
frames available; which page to evict is a policy choice. LRU is the
evaluation default; FIFO exists as a cheaper point of comparison and to let
tests distinguish recency effects from pure capacity effects.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict

from ..errors import SimulationError


class ReplacementPolicy(ABC):
    """Tracks resident pages and picks eviction victims."""

    @abstractmethod
    def on_insert(self, page: int) -> None:
        """A page became resident."""

    @abstractmethod
    def on_access(self, page: int) -> None:
        """A resident page was accessed."""

    @abstractmethod
    def on_remove(self, page: int) -> None:
        """A page left device memory."""

    @abstractmethod
    def victim(self) -> int:
        """Choose a page to evict (must currently be resident)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of tracked resident pages."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used victim selection."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_insert(self, page: int) -> None:
        self._order[page] = None
        self._order.move_to_end(page)

    def on_access(self, page: int) -> None:
        if page in self._order:
            self._order.move_to_end(page)

    def on_remove(self, page: int) -> None:
        self._order.pop(page, None)

    def victim(self) -> int:
        if not self._order:
            raise SimulationError("no resident pages to evict")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out victim selection (insertion order, no recency)."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_insert(self, page: int) -> None:
        if page not in self._order:
            self._order[page] = None

    def on_access(self, page: int) -> None:
        pass  # FIFO ignores recency by definition

    def on_remove(self, page: int) -> None:
        self._order.pop(page, None)

    def victim(self) -> int:
        if not self._order:
            raise SimulationError("no resident pages to evict")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

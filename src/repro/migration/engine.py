"""Migration engine: orchestrates fills and evictions around the page cache.

The engine connects residency state (:class:`~repro.migration.page_cache.PageCache`),
dirty tracking, the mapping table, and two injected callbacks supplied by the
simulator's security model:

* ``fill_cb(now, page, frame) -> completion_cycle`` - move the page's data
  (and whatever metadata the model requires) into device memory; the
  faulting request waits for the returned cycle.
* ``evict_cb(now, page, frame, dirty_chunks, page_dirty) -> drain_cycle`` -
  background writeback of the victim. Nothing waits on it directly, but the
  returned drain time feeds the finite victim-writeback buffer: once
  ``evict_buffer_pages`` evictions are in flight, the next fill stalls until
  the oldest drains. That backpressure is how heavyweight evictions (the
  baseline's full page + metadata) slow fills down, exactly as a real
  memory controller's finite write-pending queue would.

The engine also merges concurrent faults to the same page: while a fill is
in flight, later requests wait on the same completion instead of launching a
second copy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from typing import Optional

from ..cxl.mapping import MappingTable
from ..errors import SimulationError
from ..sim.trace import Tracer, resolve_tracer
from .dirty import DirtyTracker
from .page_cache import PageCache

FillCallback = Callable[[int, int, int], int]
EvictCallback = Callable[[int, int, int, Tuple[int, ...], bool], int]


@dataclass(frozen=True)
class MigrationEvent:
    """Record of one completed migration, for tests and reporting."""

    kind: str  # "fill" or "evict"
    page: int
    frame: int
    cycle: int
    dirty_chunks: Tuple[int, ...] = ()


class MigrationEngine:
    """Demand-fill, background-evict page migration."""

    def __init__(
        self,
        page_cache: PageCache,
        mapping: MappingTable,
        dirty: DirtyTracker,
        fill_cb: FillCallback,
        evict_cb: EvictCallback,
        evict_buffer_pages: int = 8,
        record_events: bool = False,
        tracer: Optional[Tracer] = None,
        home_of: Optional[Callable[[int], int]] = None,
        num_devices: int = 1,
    ) -> None:
        self.page_cache = page_cache
        self.mapping = mapping
        self.dirty = dirty
        self.tracer = resolve_tracer(tracer)
        self._fill_cb = fill_cb
        self._evict_cb = evict_cb
        self._inflight_fills: Dict[int, int] = {}
        self.evict_buffer_pages = max(1, evict_buffer_pages)
        self._pending_evicts: "deque[int]" = deque()
        self.events = [] if record_events else None
        self.fill_count = 0
        self.evict_count = 0
        self.evict_stall_cycles = 0
        # Topology: which expansion device homes each page. Per-device
        # fill/evict tallies let multi-device runs report traffic balance;
        # with the default single-device identity everything lands on dev 0.
        self._home_of = home_of
        self.num_devices = max(1, num_devices)
        self.fills_by_device = [0] * self.num_devices
        self.evicts_by_device = [0] * self.num_devices

    def _home_device(self, page: int) -> int:
        return self._home_of(page) if self._home_of is not None else 0

    def ensure_resident(self, now: int, page: int) -> Tuple[int, int]:
        """Guarantee ``page`` is (becoming) resident.

        Returns ``(frame, ready_cycle)``: the frame the page occupies and the
        cycle at which its data is usable. For an already-resident page with
        no in-flight fill, ``ready_cycle`` is ``now``.
        """
        frame = self.page_cache.frame_of(page)
        if frame is not None:
            self.page_cache.touch(page)
            ready = self._inflight_fills.get(page)
            if ready is not None:
                if ready <= now:
                    del self._inflight_fills[page]
                    ready = now
                return frame, max(now, ready)
            return frame, now
        return self._fault(now, page)

    def _fault(self, now: int, page: int) -> Tuple[int, int]:
        result = self.page_cache.fault(page)
        if result.victim_page is not None:
            self._evict(now, result.victim_page, result.victim_frame)
        self.mapping.map_page(page, result.frame)
        # Finite writeback buffer: stall the fill until there is room.
        start = now
        while self._pending_evicts and self._pending_evicts[0] <= now:
            self._pending_evicts.popleft()
        while len(self._pending_evicts) > self.evict_buffer_pages:
            start = max(start, self._pending_evicts.popleft())
        if start > now:
            self.evict_stall_cycles += start - now
            if self.tracer.enabled:
                self.tracer.span(
                    "migration", "evict_buffer_stall", now, start - now,
                    cat="migration", args={"page": page},
                )
        completion = self._fill_cb(start, page, result.frame)
        if completion < start:
            raise SimulationError("fill callback returned a past cycle")
        if self.tracer.enabled:
            self.tracer.span(
                "migration", "fill", start, completion - start, cat="migration",
                args={"page": page, "frame": result.frame},
            )
        self._inflight_fills[page] = completion
        self.fill_count += 1
        self.fills_by_device[self._home_device(page)] += 1
        if self.events is not None:
            self.events.append(
                MigrationEvent(kind="fill", page=page, frame=result.frame, cycle=completion)
            )
        return result.frame, completion

    def _evict(self, now: int, page: int, frame: int) -> None:
        entry = self.mapping.unmap_page(page)
        dirty_chunks = self.dirty.dirty_chunks(page)
        page_dirty = self.dirty.is_page_dirty(page)
        self.dirty.clear(page)
        self._inflight_fills.pop(page, None)
        drain = self._evict_cb(now, page, frame, dirty_chunks, page_dirty)
        if drain is None:
            drain = now
        if drain > now:
            self._pending_evicts.append(drain)
        if self.tracer.enabled:
            self.tracer.span(
                "migration", "evict", now, drain - now, cat="migration",
                args={"page": page, "frame": frame, "dirty": len(dirty_chunks)},
            )
        self.evict_count += 1
        self.evicts_by_device[self._home_device(page)] += 1
        if self.events is not None:
            self.events.append(
                MigrationEvent(
                    kind="evict",
                    page=page,
                    frame=frame,
                    cycle=now,
                    dirty_chunks=dirty_chunks,
                )
            )

    def evict_now(self, now: int, page: int) -> None:
        """Explicit eviction (used by tests and capacity-pressure hooks)."""
        frame = self.page_cache.frame_of(page)
        if frame is None:
            raise SimulationError(f"cannot evict non-resident page {page}")
        self.page_cache.evict(page)
        self._evict(now, page, frame)

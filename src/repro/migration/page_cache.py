"""Residency state of the device-memory page cache.

Tracks the bijection between resident CXL pages and device frames, the free
frame list, and recency (through a pluggable replacement policy). The page
cache is purely structural; traffic and security consequences of a fill or
eviction are the simulator's and security model's business.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from .policies import LRUPolicy, ReplacementPolicy


@dataclass(frozen=True)
class FaultResult:
    """Outcome of a page fault: the frame to fill and an evicted victim."""

    frame: int
    victim_page: Optional[int] = None
    victim_frame: Optional[int] = None


class PageCache:
    """Device memory viewed as a fully-associative cache of CXL pages."""

    def __init__(
        self,
        num_frames: int,
        policy: Optional[ReplacementPolicy] = None,
        home_of: Optional[Callable[[int], int]] = None,
    ) -> None:
        if num_frames <= 0:
            raise SimulationError("page cache needs at least one frame")
        self.num_frames = num_frames
        self._policy = policy if policy is not None else LRUPolicy()
        self._page_to_frame: Dict[int, int] = {}
        self._frame_to_page: Dict[int, int] = {}
        self._free_frames: List[int] = list(range(num_frames - 1, -1, -1))
        self.fills = 0
        self.evictions = 0
        # Optional topology hook: maps a CXL page to its home expansion
        # device so residency can be summarized per device.
        self._home_of = home_of

    # -- queries ----------------------------------------------------------------
    def frame_of(self, page: int) -> Optional[int]:
        return self._page_to_frame.get(page)

    def page_in(self, frame: int) -> Optional[int]:
        return self._frame_to_page.get(frame)

    def is_resident(self, page: int) -> bool:
        return page in self._page_to_frame

    @property
    def resident_pages(self) -> Tuple[int, ...]:
        return tuple(self._page_to_frame)

    @property
    def free_frame_count(self) -> int:
        return len(self._free_frames)

    def resident_on(self, device: int) -> int:
        """Resident pages homed on ``device`` (0 without a topology hook)."""
        if self._home_of is None:
            return len(self._page_to_frame) if device == 0 else 0
        return sum(1 for page in self._page_to_frame if self._home_of(page) == device)

    # -- operations ----------------------------------------------------------------
    def touch(self, page: int) -> None:
        """Record an access to a resident page (recency update)."""
        if page not in self._page_to_frame:
            raise SimulationError(f"touch on non-resident page {page}")
        self._policy.on_access(page)

    def fault(self, page: int) -> FaultResult:
        """Make room for and install ``page``; returns frame and any victim.

        If a free frame exists it is used; otherwise the policy's victim is
        evicted and its frame recycled. The caller is responsible for the
        victim's writeback (data and security) before reusing the frame's
        contents.
        """
        if page in self._page_to_frame:
            raise SimulationError(f"fault on already-resident page {page}")
        victim_page = None
        victim_frame = None
        if self._free_frames:
            frame = self._free_frames.pop()
        else:
            victim_page = self._policy.victim()
            victim_frame = self._page_to_frame[victim_page]
            self._remove(victim_page)
            self.evictions += 1
            frame = victim_frame
        self._page_to_frame[page] = frame
        self._frame_to_page[frame] = page
        self._policy.on_insert(page)
        self.fills += 1
        return FaultResult(frame=frame, victim_page=victim_page, victim_frame=victim_frame)

    def evict(self, page: int) -> int:
        """Explicitly evict a resident page; returns the freed frame."""
        if page not in self._page_to_frame:
            raise SimulationError(f"evict on non-resident page {page}")
        frame = self._page_to_frame[page]
        self._remove(page)
        self._free_frames.append(frame)
        self.evictions += 1
        return frame

    def _remove(self, page: int) -> None:
        frame = self._page_to_frame.pop(page)
        self._frame_to_page.pop(frame)
        self._policy.on_remove(page)

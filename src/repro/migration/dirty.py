"""Fine-granularity dirty tracking (paper Section IV-A4, after Kona).

Conventional systems keep one dirty bit per page, so any write forces the
whole page (and all its security metadata) back to the expansion memory on
eviction. Salus tracks dirtiness at the interleaving-chunk granularity in
the CXL-to-GPU mapping entries; only dirty chunks are collapsed,
re-encrypted and written back.

:class:`DirtyTracker` is the authoritative functional bitmask state, shared
by all security models so that comparisons see identical write streams -
models differ only in which *granularity* they consult at eviction.
"""

from __future__ import annotations

from typing import Dict, Tuple


class DirtyTracker:
    """Per-page chunk-granularity dirty bitmasks."""

    def __init__(self, chunks_per_page: int) -> None:
        if chunks_per_page <= 0:
            raise ValueError("chunks_per_page must be positive")
        self.chunks_per_page = chunks_per_page
        self._masks: Dict[int, int] = {}

    def mark(self, page: int, chunk_in_page: int) -> bool:
        """Mark a chunk dirty; returns True if the bit was newly set."""
        if not 0 <= chunk_in_page < self.chunks_per_page:
            raise ValueError(
                f"chunk {chunk_in_page} outside page of {self.chunks_per_page}"
            )
        mask = self._masks.get(page, 0)
        bit = 1 << chunk_in_page
        if mask & bit:
            return False
        self._masks[page] = mask | bit
        return True

    def is_page_dirty(self, page: int) -> bool:
        """Conventional coarse view: was anything in the page written?"""
        return self._masks.get(page, 0) != 0

    def dirty_chunks(self, page: int) -> Tuple[int, ...]:
        """Salus fine view: exactly which chunks were written."""
        mask = self._masks.get(page, 0)
        return tuple(c for c in range(self.chunks_per_page) if mask & (1 << c))

    def dirty_count(self, page: int) -> int:
        return bin(self._masks.get(page, 0)).count("1")

    def clear(self, page: int) -> int:
        """Reset a page's mask (on eviction); returns the old mask."""
        return self._masks.pop(page, 0)

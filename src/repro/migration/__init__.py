"""Dynamic page migration between CXL memory and GPU device memory.

The GPU device memory acts as a page cache of the CXL expansion memory
(paper Section III-B): hot pages are copied in on demand and cold pages are
evicted in the background. This package owns residency state (which page is
in which frame), victim selection, and fine-grained dirty tracking - the
mechanisms every security model plugs into.
"""

from .dirty import DirtyTracker
from .engine import MigrationEngine, MigrationEvent
from .page_cache import PageCache
from .policies import FIFOPolicy, LRUPolicy, ReplacementPolicy

__all__ = [
    "DirtyTracker",
    "FIFOPolicy",
    "LRUPolicy",
    "MigrationEngine",
    "MigrationEvent",
    "PageCache",
    "ReplacementPolicy",
]

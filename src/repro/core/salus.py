"""The Salus timing security model (paper Section IV, evaluated in Sec. V).

Composes the unified address space, interleaving-friendly device counters,
collapsed CXL counters with MAC-sector embedding, fetch-on-access metadata
movement, and fine-granularity dirty tracking into one
:class:`~repro.security.model.TimingSecurityModel`.

Every optimization is individually switchable through
:class:`~repro.config.SalusConfig` so the ablation benchmarks can measure
each increment:

* ``fetch_on_access=False`` - all MAC (and, without collapse, counter)
  sectors of a page cross the link at fill time instead of lazily;
* ``collapsed_counters=False`` - counter sectors travel as dedicated
  transfers and the CXL Merkle tree is built over the finer counter space;
* ``fine_dirty_tracking=False`` - evictions fall back to the coarse
  page-dirty bit (any write -> all 16 chunks write back);
* ``interleaving_friendly_counters=False`` - the "unified-only" ablation:
  metadata is still CXL-addressed (no migration re-encryption), but device
  counters keep the conventional 1 KiB-shared-major structure, so chunk
  installs and dirty writebacks pay the major-unification re-encryptions
  Section IV-A1 describes.

What never changes inside this class: data ciphertext crosses the link
**as-is** in both directions, because all IVs are keyed to permanent CXL
addresses. That single property is where most of Figure 10's speedup
comes from.

Observability: the model publishes its event counters into the run's
:class:`~repro.sim.stats.StatRegistry` under the ``salus.`` namespace
(``salus.first_touch_fetches``, ``salus.chunk_overflow_reencrypts``,
``salus.unification_reencrypts``, ``salus.conv_overflow_reencrypts``,
``salus.page_epoch_overflows``); these ride along in
``RunResult.counters`` and are documented in docs/METRICS.md. When the
simulation carries a :class:`~repro.sim.trace.Tracer` (``repro trace``),
first-touch metadata fetches and re-encryptions additionally appear on the
``salus`` track of the exported timeline.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..config import SalusConfig
from ..metadata.counters import ConventionalSplitCounterStore
from ..metadata.layout import SalusDeviceLayout
from ..security.fabric import MemoryFabric, SectorLoc
from ..security.model import TimingSecurityModel
from ..sim.stats import TrafficCategory
from .collapsed import CollapsedCXLMetadata
from .dirty_tracking import FineDirtyTracking
from .fetch_on_access import FetchOnAccessTracker
from .ifsc import DeviceCounterGroups
from .unified import UnifiedAddressSpace

MAPPING_SECTOR_BYTES = 32


class SalusSecurityModel(TimingSecurityModel):
    """Data-relocation-friendly security with unified metadata."""

    name = "salus"

    def __init__(
        self, fabric: MemoryFabric, salus_config: Optional[SalusConfig] = None
    ) -> None:
        super().__init__(fabric)
        self.cfg = salus_config if salus_config is not None else fabric.config.salus
        geom = self.geometry
        gpu = self.config.gpu
        sec = self.config.security

        self.unified = UnifiedAddressSpace(
            geometry=geom, footprint_pages=fabric.footprint_pages
        )

        self.groups = DeviceCounterGroups(
            geometry=geom,
            num_channels=gpu.num_channels,
            data_sectors_per_channel=fabric.data_sectors_per_channel,
            minor_bits=sec.minor_counter_bits,
        )
        self._dev_bmt = self.groups.bmt_geometry(sec.bmt_arity)

        # One collapsed-counter plane and Merkle tree per security plane -
        # per expansion device on the single-owner fabric, per (tenant,
        # device) pair under partitioning - sized by the pages homed there
        # and keyed by plane-local page indices. Unified addressing means
        # the planes never interact: a page's metadata lives on its home
        # plane forever.
        self.cxl_state_by_plane = []
        self._cxl_bmts = []
        for plane in range(fabric.num_planes):
            plane_pages = fabric.plane_pages(plane)
            state = CollapsedCXLMetadata(
                geometry=geom,
                footprint_pages=plane_pages,
                minor_bits=sec.cxl_minor_counter_bits,
            )
            self.cxl_state_by_plane.append(state)
            if self.cfg.collapsed_counters:
                self._cxl_bmts.append(state.bmt_geometry(sec.bmt_arity))
            else:
                # Without collapse the CXL tree covers the finer IFSC counter
                # space: one 32 B sector per two chunks instead of per page.
                fine = SalusDeviceLayout(
                    geometry=geom,
                    data_sectors=plane_pages * geom.sectors_per_page,
                )
                self._cxl_bmts.append(fine.bmt_geometry(sec.bmt_arity))
        # Historical names: the per-device list (identical to the plane
        # list on a single-tenant fabric) and the device-0 plane, for
        # single-device callers and tests.
        self.cxl_state_by_dev = self.cxl_state_by_plane
        self.cxl_state = self.cxl_state_by_plane[0]

        self.foa = FetchOnAccessTracker(groups=self.groups)
        # A private tracker by default; the simulator re-attaches its shared
        # one so all models observe the identical write stream.
        self.fine_dirty: Optional[FineDirtyTracking] = None
        from ..migration.dirty import DirtyTracker

        self.attach_dirty_tracker(DirtyTracker(geom.chunks_per_page))

        # Unified-only ablation state: conventional device counters and the
        # per-counter-sector resident major used for unification accounting.
        if not self.cfg.interleaving_friendly_counters:
            self._conv_dev_counters: Dict[int, ConventionalSplitCounterStore] = {
                c: ConventionalSplitCounterStore(minor_bits=sec.minor_counter_bits)
                for c in range(gpu.num_channels)
            }
            self._resident_major: Dict[Tuple[int, int], int] = {}

    # -- wiring ------------------------------------------------------------------
    def attach_dirty_tracker(self, tracker) -> None:
        super().attach_dirty_tracker(tracker)
        self.fine_dirty = FineDirtyTracking(tracker=tracker)

    # -- small helpers -----------------------------------------------------------
    def _mapping_channel(self, page: int) -> int:
        """Mapping sectors are hashed/interleaved over the owner's channels."""
        return self.fabric.mapping_channel(page)

    def _cxl_counter_unit(self, plane: int, local_page: int, chunk_in_page: int) -> int:
        """CXL counter unit of a chunk, in its home plane's local space."""
        if self.cfg.collapsed_counters:
            return self.cxl_state_by_plane[plane].counter_sector_unit(local_page)
        local_chunk = local_page * self.geometry.chunks_per_page + chunk_in_page
        return local_chunk // 2

    def _device_chunks_of(self, frame: int) -> Tuple[int, ...]:
        cpp = self.geometry.chunks_per_page
        return tuple(frame * cpp + c for c in range(cpp))

    # ------------------------------------------------------------------ demand read
    def read_complete(self, now: int, loc: SectorLoc, data_ready: int) -> int:
        fabric = self.fabric
        ch = loc.channel
        caches = fabric.device_meta[ch]

        meta_ready = now
        if self.cfg.fetch_on_access and self.foa.needs_fetch(loc.page, loc.device_chunk):
            meta_ready = self._fetch_chunk_metadata(
                now, loc.page, loc.frame, loc.chunk_in_page, critical=True
            )
        elif not self.cfg.interleaving_friendly_counters:
            pass  # conventional device counters are installed at fill time

        # Counter leg through the device counter cache + local Merkle tree.
        fns = self.chfns[ch]
        ctr_unit = self.groups.counter_sector_unit(loc.local_sector)
        ctr_ready, ctr_hit = fabric.metadata_access(
            now, caches.counter, ctr_unit, fns.ctr_rd_prio, fns.ctr_wr,
            TrafficCategory.COUNTER,
        )
        if not ctr_hit:
            ctr_ready = max(
                ctr_ready,
                fabric.bmt_read_walk(
                    now, caches.bmt, self._dev_bmt, ctr_unit,
                    fns.bmt_rd_prio, fns.bmt_wr,
                ),
            )
        otp_ready = fabric.aes_engines[ch].book(max(ctr_ready, meta_ready))

        # MAC leg through the device MAC cache.
        mac_ready, _ = fabric.metadata_access(
            now, caches.mac, loc.local_block, fns.mac_rd_prio, fns.mac_wr,
            TrafficCategory.MAC,
        )
        mac_ready = max(mac_ready, meta_ready)

        plaintext_ready = max(data_ready, otp_ready) + 1
        verified = fabric.mac_engines[ch].book(max(data_ready, mac_ready))
        return max(plaintext_ready, verified)

    # ------------------------------------------------------------------ first touch
    def _fetch_chunk_metadata(
        self, now: int, page: int, frame: int, chunk_in_page: int, critical: bool,
        link_paid: bool = False,
    ) -> int:
        """One-time metadata pull for a chunk (Figure 7 right-hand path).

        Brings the chunk's two MAC sectors (with the embedded epoch) across
        the link, verifies the epoch against the CXL counter sector and its
        Merkle path, installs the device counter group, and dirties the
        device-side metadata cache lines so they eventually persist locally.
        """
        fabric = self.fabric
        geom = self.geometry
        channel, local_chunk = fabric.chunk_location(page, frame, chunk_in_page)
        caches = fabric.device_meta[channel]
        device_chunk = frame * geom.chunks_per_page + chunk_in_page
        dev = fabric.home_of_page(page)
        plane = fabric.plane_of_page(page)
        local_page = fabric.local_page(page)
        self.stats.bump("salus.first_touch_fetches")
        tracer = fabric.tracer
        if tracer.enabled:
            tracer.begin(
                "salus", "first_touch_fetch", now, cat="security",
                args={"page": page, "chunk": chunk_in_page, "critical": critical},
            )

        # MAC sectors: 2 x 32 B per chunk, carrying the embedded epoch
        # (``link_paid`` marks the non-lazy fill path, where the page's MAC
        # region already streamed across in one bulk transfer).
        mac_ready = now
        if not link_paid:
            mac_ready = fabric.link_read(
                now, 2 * MAPPING_SECTOR_BYTES, TrafficCategory.MAC,
                critical=critical, priority=critical, device=dev,
            )
            if not self.cfg.collapsed_counters:
                # Dedicated counter transfer when the embed slot is disabled.
                mac_ready = max(
                    mac_ready,
                    fabric.link_read(
                        now, MAPPING_SECTOR_BYTES, TrafficCategory.COUNTER,
                        critical=critical, priority=critical, device=dev,
                    ),
                )

        # Epoch freshness: the CXL counter sector and its Merkle path.
        link = self.linkfns_by_device[dev]
        cxl_meta = fabric.cxl_meta_by_plane[plane]
        link_rd = link.ctr_rd_prio if critical else link.ctr_rd_post
        unit = self._cxl_counter_unit(plane, local_page, chunk_in_page)
        ctr_ready, ctr_hit = fabric.metadata_access(
            now, cxl_meta.counter, unit, link_rd, link.ctr_wr,
            TrafficCategory.COUNTER,
        )
        if not ctr_hit:
            bmt_rd = link.bmt_rd_prio if critical else link.bmt_rd_post
            ctr_ready = max(
                ctr_ready,
                fabric.bmt_read_walk(
                    now, cxl_meta.bmt, self._cxl_bmts[plane], unit,
                    bmt_rd, link.bmt_wr,
                ),
            )

        # Install: counter group (or conventional majors) plus dirty device
        # metadata lines that will persist via cache writebacks.
        epoch = self.cxl_state_by_plane[plane].chunk_epoch(local_page, chunk_in_page)
        if self.cfg.interleaving_friendly_counters:
            self.foa.record_fetch(page, device_chunk, epoch)
        else:
            self._install_conventional(now, channel, local_chunk, epoch)
        local_base = local_chunk * geom.sectors_per_chunk
        ctr_unit = self.groups.counter_sector_unit(local_base)
        fns = self.chfns[channel]
        fabric.metadata_access(
            now, caches.counter, ctr_unit, fns.ctr_rd_post, fns.ctr_wr,
            TrafficCategory.COUNTER, write=True, tag_payload=page,
        )
        for block in range(geom.blocks_per_chunk):
            fabric.metadata_access(
                now, caches.mac, local_base // geom.sectors_per_block + block,
                fns.mac_rd_post, fns.mac_wr, TrafficCategory.MAC, write=True,
                tag_payload=page,
            )
        fabric.bmt_update_walk(
            now, caches.bmt, self._dev_bmt, ctr_unit, fns.bmt_rd_post, fns.bmt_wr
        )
        if tracer.enabled:
            tracer.end("salus", max(mac_ready, ctr_ready))
        return max(mac_ready, ctr_ready)

    def _install_conventional(
        self, now: int, channel: int, local_chunk: int, epoch: int
    ) -> None:
        """Unified-only ablation: install into location-shared majors.

        The conventional counter sector covers four chunks of different CXL
        pages. If the sector's resident major differs from the incoming
        epoch, the incoming chunk must be re-encrypted to the shared value -
        the unification cost of Section IV-A1.
        """
        geom = self.geometry
        local_base = local_chunk * geom.sectors_per_chunk
        store = self._conv_dev_counters[channel]
        unit = store.group_index(local_base)
        resident = self._resident_major.get((channel, unit))
        if resident is not None and resident != epoch:
            self.stats.bump("salus.unification_reencrypts")
            if self.fabric.tracer.enabled:
                self.fabric.tracer.instant(
                    "salus", "unification_reencrypt", now, cat="security",
                    args={"channel": channel, "unit": unit},
                )
            nbytes = geom.chunk_bytes
            done = self.fabric.device_read(
                now, channel, nbytes, TrafficCategory.REENC_DATA, critical=False
            )
            self.fabric.aes_engines[channel].book(done, geom.sectors_per_chunk)
            self.fabric.device_write(done, channel, nbytes, TrafficCategory.REENC_DATA)
        self._resident_major[(channel, unit)] = epoch

    # ------------------------------------------------------------------ demand write
    def on_store(self, now: int, loc: SectorLoc) -> None:
        if not self.cfg.fine_dirty_tracking:
            self.dirty_tracker.mark(loc.page, loc.chunk_in_page)
            return
        cost = self.fine_dirty.on_store(loc.page, loc.chunk_in_page)
        if cost.mapping_reads or cost.mapping_writes:
            ch = self._mapping_channel(loc.page)
            for _ in range(cost.mapping_reads):
                self.fabric.device_read(
                    now, ch, MAPPING_SECTOR_BYTES, TrafficCategory.MAPPING,
                    critical=False,
                )
            for _ in range(cost.mapping_writes):
                self.fabric.device_write(
                    now, ch, MAPPING_SECTOR_BYTES, TrafficCategory.MAPPING
                )

    def writeback(self, now: int, loc: SectorLoc) -> None:
        """Posted L2 dirty-sector writeback: counter++, re-encrypt, MAC."""
        fabric = self.fabric
        ch = loc.channel
        caches = fabric.device_meta[ch]

        if self.cfg.interleaving_friendly_counters:
            if not self.groups.is_installed_for(loc.device_chunk, loc.page):
                # Write-validate without a prior read: the metadata debt is
                # paid here (posted).
                self._fetch_chunk_metadata(
                    now, loc.page, loc.frame, loc.chunk_in_page, critical=False
                )
            result = self.groups.increment(loc.device_chunk, loc.sector_in_chunk)
            if result.overflowed:
                self._reencrypt_chunk(now, ch, loc)
        else:
            result = self._conv_dev_counters[ch].increment(loc.local_sector)
            if result.overflowed:
                self.stats.bump("salus.conv_overflow_reencrypts")
                nbytes = len(result.reencrypt_units) * self.geometry.sector_bytes
                done = fabric.device_read(
                    now, ch, nbytes, TrafficCategory.REENC_DATA, critical=False
                )
                fabric.aes_engines[ch].book(done, len(result.reencrypt_units))
                fabric.device_write(done, ch, nbytes, TrafficCategory.REENC_DATA)

        fns = self.chfns[ch]
        ctr_unit = self.groups.counter_sector_unit(loc.local_sector)
        fabric.metadata_access(
            now, caches.counter, ctr_unit, fns.ctr_rd_post, fns.ctr_wr,
            TrafficCategory.COUNTER, write=True,
        )
        fabric.aes_engines[ch].book(now)
        fabric.metadata_access(
            now, caches.mac, loc.local_block, fns.mac_rd_post, fns.mac_wr,
            TrafficCategory.MAC, write=True,
        )
        fabric.mac_engines[ch].book(now)
        fabric.bmt_update_walk(
            now, caches.bmt, self._dev_bmt, ctr_unit, fns.bmt_rd_post, fns.bmt_wr
        )

    def _reencrypt_chunk(self, now: int, channel: int, loc: SectorLoc) -> None:
        """A chunk-local minor overflow re-encrypts only its own 256 B."""
        self.stats.bump("salus.chunk_overflow_reencrypts")
        if self.fabric.tracer.enabled:
            self.fabric.tracer.instant(
                "salus", "chunk_overflow_reencrypt", now, cat="security",
                args={"channel": channel, "chunk": loc.device_chunk},
            )
        nbytes = self.geometry.chunk_bytes
        done = self.fabric.device_read(
            now, channel, nbytes, TrafficCategory.REENC_DATA, critical=False
        )
        self.fabric.aes_engines[channel].book(done, self.geometry.sectors_per_chunk)
        self.fabric.device_write(done, channel, nbytes, TrafficCategory.REENC_DATA)

    # ------------------------------------------------------------------ migration
    def fill(self, now: int, page: int, frame: int) -> int:
        """Fill = pure ciphertext copy. No re-encryption, ever.

        With fetch-on-access the metadata debt is deferred per chunk; without
        it, every chunk's metadata crosses the link right now.
        """
        geom = self.geometry
        fabric = self.fabric
        _, install_done = self._copy_page_to_device(now, page, frame)
        device_chunks = self._device_chunks_of(frame)
        if self.cfg.fetch_on_access:
            self.foa.note_fill(page, device_chunks)
            return install_done
        # Non-lazy ablation: every chunk's metadata crosses the link at fill
        # time, exactly like the demand-time fetch but all at once.
        ready = install_done
        for chunk in range(geom.chunks_per_page):
            fetched = self._fetch_chunk_metadata(now, page, frame, chunk, critical=True)
            if fetched > ready:
                ready = fetched
        return ready

    def fill_chunk(self, now: int, page: int, frame: int, chunk_in_page: int) -> int:
        """Demand chunk fill: still a pure ciphertext copy under Salus.

        Unified addressing makes the partial-fill policy free to adopt
        (Section IV-A3: "our proposal works with any of these"): the 256 B
        chunk moves verbatim and its metadata follows the normal
        fetch-on-access path on first use.
        """
        ready = super().fill_chunk(now, page, frame, chunk_in_page)
        if self.cfg.fetch_on_access:
            device_chunk = frame * self.geometry.chunks_per_page + chunk_in_page
            self.foa.note_fill(page, (device_chunk,))
        else:
            ready = max(
                ready,
                self._fetch_chunk_metadata(now, page, frame, chunk_in_page, critical=True),
            )
        return ready

    def evict(
        self, now: int, page: int, frame: int,
        dirty_chunks: Tuple[int, ...], page_dirty: bool,
    ) -> int:
        geom = self.geometry
        fabric = self.fabric
        drain = now
        dev = fabric.home_of_page(page)
        plane = fabric.plane_of_page(page)
        local_page = fabric.local_page(page)
        cxl_state = self.cxl_state_by_plane[plane]
        self._drop_device_page_metadata(frame, page)

        if self.cfg.fine_dirty_tracking:
            chunks = dirty_chunks
            if self.fine_dirty is not None:
                buffered = self.fine_dirty.buffer.drop(page)
                if not buffered and page_dirty:
                    # Freshest bitmask must be read from the mapping sector.
                    fabric.device_read(
                        now, self._mapping_channel(page), MAPPING_SECTOR_BYTES,
                        TrafficCategory.MAPPING, critical=False,
                    )
        else:
            chunks = tuple(range(geom.chunks_per_page)) if page_dirty else ()

        touched_ctr_units = set()
        for chunk in chunks:
            channel, local_chunk = fabric.chunk_location(page, frame, chunk)
            device_chunk = frame * geom.chunks_per_page + chunk

            # Data: read the chunk, re-encrypt under the advanced epoch,
            # push the ciphertext across the link. (Collapse re-encryption
            # is required - the stored epoch must cover all 8 sectors.)
            drain = max(drain, self._copy_chunks_to_cxl(now, page, frame, (chunk,)))
            if self.cfg.interleaving_friendly_counters:
                # Collapse only if the chunk was actually written (any minor
                # non-zero); with fine dirty tracking that is always true for
                # chunks in the list, but the coarse-bit fallback also drags
                # clean chunks through here.
                needs = self.groups.needs_collapse(device_chunk)
            else:
                needs = True
            if needs:
                result = cxl_state.collapse(local_page, chunk)
                if result.overflowed:
                    self.stats.bump("salus.page_epoch_overflows")
                    if fabric.tracer.enabled:
                        fabric.tracer.instant(
                            "salus", "page_epoch_overflow", now, cat="security",
                            args={"page": page},
                        )
                    fabric.link_read(
                        now, geom.page_bytes, TrafficCategory.REENC_DATA,
                        critical=False, device=dev,
                    )
                    fabric.link_write(
                        now, geom.page_bytes, TrafficCategory.REENC_DATA,
                        device=dev,
                    )
                fabric.aes_engines[channel].book(now, geom.sectors_per_chunk)
                fabric.mac_engines[channel].book(now, geom.sectors_per_chunk)

            # MAC sectors travel with the embedded (new) epoch: 2 x 32 B.
            drain = max(
                drain,
                fabric.link_write(
                    now, 2 * MAPPING_SECTOR_BYTES, TrafficCategory.MAC, device=dev
                ),
            )
            if not self.cfg.collapsed_counters:
                fabric.link_write(
                    now, MAPPING_SECTOR_BYTES, TrafficCategory.COUNTER, device=dev
                )
            if not self.cfg.interleaving_friendly_counters:
                # Unification debt: the chunk was sharing a location major.
                self.stats.bump("salus.unification_reencrypts")
                done = fabric.device_read(
                    now, channel, geom.chunk_bytes, TrafficCategory.REENC_DATA,
                    critical=False,
                )
                fabric.device_write(done, channel, geom.chunk_bytes, TrafficCategory.REENC_DATA)

            touched_ctr_units.add(self._cxl_counter_unit(plane, local_page, chunk))
            _ = local_chunk

        # CXL counter sectors + Merkle updates, once per touched unit.
        link = self.linkfns_by_device[dev]
        cxl_meta = fabric.cxl_meta_by_plane[plane]
        for unit in sorted(touched_ctr_units):
            fabric.metadata_access(
                now, cxl_meta.counter, unit, link.ctr_rd_post, link.ctr_wr,
                TrafficCategory.COUNTER, write=True,
            )
            fabric.bmt_update_walk(
                now, cxl_meta.bmt, self._cxl_bmts[plane], unit,
                link.bmt_rd_post, link.bmt_wr,
            )

        # Device-side bookkeeping: drop counter groups and count avoided
        # metadata fetches (the Figure 11 win).
        if self.cfg.interleaving_friendly_counters:
            self.foa.note_evict(page, self._device_chunks_of(frame))
        return drain

    # ------------------------------------------------------------------ lifecycle
    def finalize(self, now: int) -> None:
        categories = {
            "counter": TrafficCategory.COUNTER,
            "mac": TrafficCategory.MAC,
            "bmt": TrafficCategory.BMT,
        }
        self.fabric.flush_metadata_caches(now, categories, categories)

"""Collapsed checkpointed counters, CXL side (Section IV-A2, Figures 5-6).

While a page rests in the CXL expansion memory its fine-grained minors carry
no information - every sector was re-encrypted at writeback time under the
chunk's single epoch. Salus therefore *collapses* the counters: the CXL side
stores only one value per chunk (split as a page-level major plus
doubled-width 14-bit per-chunk minors to delay overflow), and at transfer
time that value rides in the 32 spare bits of the chunk's MAC sectors
(4 x 56-bit MACs + 32-bit embedded epoch = exactly one 32 B sector).

Net effect on the link: **zero dedicated counter transfers** in either
direction. The CXL Bonsai Merkle tree is built over the compact counter
sectors - one 32 B sector per 4 KiB page, a 4x smaller leaf space than the
conventional one-per-KiB organization - shrinking verification traffic on
the bandwidth-starved side (the paper's Figure 6 rationale).

:class:`CollapsedCXLMetadata` owns the collapsed store, the MAC-sector
embedding, and the CXL-side layout/tree math.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..address import Geometry
from ..errors import SecurityError
from ..metadata.bmt import BMTGeometry
from ..metadata.counters import CollapsedCounterStore, IncrementResult
from ..metadata.layout import SalusCXLLayout
from ..metadata.mac_store import MacSector

EMBED_LIMIT = 1 << 32


@dataclass
class CollapsedCXLMetadata:
    """Collapsed counter state and layout for the expansion memory."""

    geometry: Geometry
    footprint_pages: int
    minor_bits: int = 14

    def __post_init__(self) -> None:
        self.store = CollapsedCounterStore(
            chunks_per_page=self.geometry.chunks_per_page,
            minor_bits=self.minor_bits,
        )
        self.layout = SalusCXLLayout(
            geometry=self.geometry,
            data_sectors=self.footprint_pages * self.geometry.sectors_per_page,
        )
        self.collapses = 0

    # -- epochs ----------------------------------------------------------------
    def chunk_epoch(self, page: int, chunk_in_page: int) -> int:
        """Current epoch of a chunk: the major installed on device fill."""
        return self.store.chunk_epoch(page, chunk_in_page)

    def collapse(self, page: int, chunk_in_page: int) -> IncrementResult:
        """Advance a chunk's epoch for a dirty writeback (Section IV-A2).

        Seen from the device side this is "major incremented, minors reset";
        in the split CXL encoding it is a 14-bit minor increment, with a
        rare page-wide overflow that re-encrypts all 16 chunks.
        """
        self.collapses += 1
        return self.store.collapse(page, chunk_in_page)

    # -- MAC-sector embedding -------------------------------------------------------
    def embed_epoch(self, mac_sector: MacSector, epoch: int) -> MacSector:
        """Place a chunk epoch into a MAC sector's spare 32 bits."""
        if epoch >= EMBED_LIMIT:
            raise SecurityError(
                f"chunk epoch {epoch} no longer fits the 32-bit embed slot; "
                "re-keying required"
            )
        return MacSector(macs=list(mac_sector.macs), embedded_major=epoch)

    @staticmethod
    def extract_epoch(mac_sector: MacSector) -> int:
        """Recover the embedded epoch on the device side of a transfer."""
        return mac_sector.embedded_major

    # -- layout ----------------------------------------------------------------
    def counter_sector_unit(self, page: int) -> int:
        """One collapsed counter sector per page."""
        return self.layout.counter_sector(page * self.geometry.sectors_per_page)

    def mac_sector_unit(self, page: int, block_in_page: int) -> int:
        """CXL MAC-sector index for one data block of ``page``."""
        base = page * self.geometry.sectors_per_page
        return self.layout.mac_sector(base) + block_in_page

    def bmt_geometry(self, arity: int = 8) -> BMTGeometry:
        """Shape of the compact CXL tree (one leaf per page)."""
        return self.layout.bmt_geometry(arity)

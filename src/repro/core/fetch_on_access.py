"""Fetch-only-on-access for security metadata (Section IV-A3, Figure 7).

A page's data may be copied to device memory wholesale, but many chunks are
never touched before the page is evicted again - the paper observes that
for the biggest winners (NW, B+tree, Lava) *most* channels of a page go
unaccessed per residency. Salus therefore moves MAC sectors lazily: the
first access to a chunk in device memory performs a single CXL-tag
comparison against the metadata resident at that device location; a tag
mismatch (or empty slot) triggers the one-time fetch from the expansion
memory.

:class:`FetchOnAccessTracker` implements the tag check bookkeeping and the
win/loss accounting that Figure 11's traffic reduction comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set, Tuple

from .ifsc import DeviceCounterGroups


@dataclass
class FetchOnAccessTracker:
    """Tracks which device chunks hold valid metadata for which CXL page."""

    groups: DeviceCounterGroups
    first_touch_fetches: int = 0
    tag_hits: int = 0
    avoided_fetches: int = 0
    _filled_untouched: Set[Tuple[int, int]] = field(default_factory=set)

    def note_fill(self, page: int, device_chunks: Tuple[int, ...]) -> None:
        """A page's *data* arrived; its metadata did not. Remember the debt."""
        for device_chunk in device_chunks:
            self._filled_untouched.add((page, device_chunk))

    def needs_fetch(self, page: int, device_chunk: int) -> bool:
        """The Figure-7 tag comparison on an access to ``device_chunk``."""
        if self.groups.is_installed_for(device_chunk, page):
            self.tag_hits += 1
            return False
        return True

    def record_fetch(self, page: int, device_chunk: int, epoch: int) -> None:
        """Metadata was pulled from CXL and installed at the device slot."""
        self.groups.install(device_chunk, epoch, page)
        self._filled_untouched.discard((page, device_chunk))
        self.first_touch_fetches += 1

    def note_evict(self, page: int, device_chunks: Tuple[int, ...]) -> None:
        """Page leaves; untouched chunks never paid metadata traffic."""
        for device_chunk in device_chunks:
            if (page, device_chunk) in self._filled_untouched:
                self._filled_untouched.discard((page, device_chunk))
                self.avoided_fetches += 1
            self.groups.drop(device_chunk)

    @property
    def avoidance_rate(self) -> float:
        """Fraction of chunk-residencies whose metadata never moved."""
        total = self.first_touch_fetches + self.avoided_fetches
        return self.avoided_fetches / total if total else 0.0

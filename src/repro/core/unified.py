"""Unified security addressing (paper Section IV-A).

The root idea of Salus: because the GPU device memory is a *cache* of the
CXL expansion memory, every datum has one permanent address - its CXL
address - and that address can anchor all security computation regardless of
where the bytes physically live. Consequences:

* the IV's spatial component is the CXL sector address, so ciphertext is
  valid in either memory and **migration never re-encrypts**;
* MACs bind to the CXL address, so they migrate untouched;
* a device location may host different CXL pages over time and even reuse
  counter values - OTP uniqueness still holds because the IVs differ in
  their address component (the paper's "Security Impact" argument).

:class:`UnifiedAddressSpace` is the one place that computes security
coordinates, shared by the functional system and the timing model so the
two layers cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..address import Geometry
from ..errors import AddressError


@dataclass(frozen=True)
class SecurityCoordinates:
    """Everything the security machinery needs to know about one sector."""

    cxl_sector_addr: int   # spatial IV component (byte address, permanent)
    page: int
    chunk_in_page: int
    sector_in_chunk: int
    block_in_page: int
    sector_in_block: int


@dataclass(frozen=True)
class UnifiedAddressSpace:
    """Maps permanent CXL addresses to security coordinates."""

    geometry: Geometry
    footprint_pages: int

    def __post_init__(self) -> None:
        if self.footprint_pages <= 0:
            raise AddressError("footprint_pages must be positive")

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_pages * self.geometry.page_bytes

    def coordinates(self, cxl_addr: int) -> SecurityCoordinates:
        """Security coordinates of the sector containing ``cxl_addr``."""
        if not 0 <= cxl_addr < self.footprint_bytes:
            raise AddressError(
                f"address {cxl_addr:#x} outside protected footprint of "
                f"{self.footprint_bytes} bytes"
            )
        geom = self.geometry
        return SecurityCoordinates(
            cxl_sector_addr=geom.align_sector(cxl_addr),
            page=geom.page_of(cxl_addr),
            chunk_in_page=geom.chunk_in_page(cxl_addr),
            sector_in_chunk=geom.sector_in_chunk(cxl_addr),
            block_in_page=(cxl_addr % geom.page_bytes) // geom.block_bytes,
            sector_in_block=geom.sector_in_block(cxl_addr),
        )

    def iv_spatial(self, cxl_addr: int) -> int:
        """The spatial IV component: the permanent sector address."""
        return self.coordinates(cxl_addr).cxl_sector_addr

    def chunk_key(self, cxl_addr: int) -> Tuple[int, int]:
        """(page, chunk) - the unit counters collapse over."""
        coords = self.coordinates(cxl_addr)
        return coords.page, coords.chunk_in_page

"""Fine-granularity dirty tracking in the address mappings (Section IV-A4).

GPU page tables may not even have a dirty bit, and a single coarse bit per
page forces full-page writebacks. Salus keeps one dirty bit per interleaving
chunk inside the CXL-to-GPU mapping entry and funnels updates through the
32-entry buffer in the mapping-miss control logic: a write whose mapping is
buffered costs nothing; otherwise the mapping sector is read once, and only
LRU pressure writes it back.

:class:`FineDirtyTracking` combines the authoritative bitmask state (shared
:class:`~repro.migration.dirty.DirtyTracker`) with the buffer's traffic
behaviour, exposing exactly what the timing model must book.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..cxl.mapping_cache import DirtyBuffer
from ..migration.dirty import DirtyTracker


@dataclass(frozen=True)
class DirtyWriteCost:
    """Bookings a dirty-bit update requires (32 B mapping sectors)."""

    mapping_reads: int = 0
    mapping_writes: int = 0


@dataclass
class FineDirtyTracking:
    """Chunk-granularity dirty bitmasks living in the mapping entries."""

    tracker: DirtyTracker
    buffer_entries: int = 32

    def __post_init__(self) -> None:
        self.buffer = DirtyBuffer(self.buffer_entries)
        self.buffered_updates = 0
        self.mapping_fetches = 0
        self.mapping_writebacks = 0

    def on_store(self, page: int, chunk_in_page: int) -> DirtyWriteCost:
        """Record a write; returns the mapping traffic it caused."""
        self.tracker.mark(page, chunk_in_page)
        needed_fetch, evicted = self.buffer.note_write(page)
        reads = 0
        writes = 0
        if needed_fetch:
            self.mapping_fetches += 1
            reads = 1
        else:
            self.buffered_updates += 1
        if evicted is not None:
            self.mapping_writebacks += 1
            writes = 1
        return DirtyWriteCost(mapping_reads=reads, mapping_writes=writes)

    def consume_on_evict(self, page: int) -> Tuple[Tuple[int, ...], int]:
        """Eviction consults the bitmask; returns (dirty chunks, extra reads).

        If the freshest mask is neither buffered nor already in a mapping
        cache line, the control logic reads the mapping sector once.
        """
        extra_reads = 0
        if not self.buffer.drop(page):
            if self.tracker.is_page_dirty(page):
                extra_reads = 1
        chunks = self.tracker.dirty_chunks(page)
        return chunks, extra_reads

    def mask_of(self, page: int) -> Optional[Tuple[int, ...]]:
        """Current dirty chunks of ``page`` (None when clean)."""
        chunks = self.tracker.dirty_chunks(page)
        return chunks if chunks else None

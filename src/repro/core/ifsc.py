"""Interleaving-friendly split counters, device side (Section IV-A1, Fig. 4).

The conventional split-counter sector shares one major across 1 KiB of
consecutive *device* addresses - four 256 B interleaving chunks that, in a
page-cache device memory, belong to four different CXL pages with different
write histories. Sharing a major across them forces unification
re-encryptions on every install and eviction.

Salus regroups: one major per chunk, eight minors (one per sector), a 32-bit
CXL-page tag per group, two groups per 32 B counter sector. A chunk's
counters now travel with the chunk, overflows stay chunk-local, and the
counter sector a chunk lands in is a pure function of its *device* location
while all values remain keyed to its *CXL* identity.

:class:`DeviceCounterGroups` manages those groups for the whole device
memory: install on first metadata touch, per-sector increments on
writebacks, the collapse predicate at eviction, and the layout math that
tells the timing layer which counter sector and Merkle leaf a chunk uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..address import Geometry
from ..metadata.counters import (
    CounterPair,
    IncrementResult,
    InterleavingFriendlyCounterStore,
)
from ..metadata.layout import SalusDeviceLayout
from ..metadata.bmt import BMTGeometry


@dataclass
class DeviceCounterGroups:
    """All Figure-4 counter groups of the GPU device memory."""

    geometry: Geometry
    num_channels: int
    data_sectors_per_channel: int
    minor_bits: int = 7

    def __post_init__(self) -> None:
        self.store = InterleavingFriendlyCounterStore(
            sectors_per_chunk=self.geometry.sectors_per_chunk,
            minor_bits=self.minor_bits,
        )
        self.layout = SalusDeviceLayout(
            geometry=self.geometry, data_sectors=self.data_sectors_per_channel
        )
        self.installs = 0
        self.evictions = 0

    # -- group lifecycle --------------------------------------------------------
    def install(self, device_chunk: int, epoch: int, cxl_page: int) -> None:
        """Fill a group from CXL metadata (major=epoch, minors reset)."""
        self.store.install(device_chunk, epoch, cxl_page)
        self.installs += 1

    def is_installed_for(self, device_chunk: int, cxl_page: int) -> bool:
        """The CXL-tag comparison of Figure 7."""
        return self.store.is_installed_for(device_chunk, cxl_page)

    def drop(self, device_chunk: int) -> None:
        """Discard a group when its page leaves device memory."""
        self.store.evict(device_chunk)
        self.evictions += 1

    # -- counter operations --------------------------------------------------------
    def read(self, device_chunk: int, sector_in_chunk: int) -> CounterPair:
        """Current (major=epoch, minor) pair of one sector's counters."""
        return self.store.read(device_chunk, sector_in_chunk)

    def increment(self, device_chunk: int, sector_in_chunk: int) -> IncrementResult:
        """Write path: minor++; an overflow re-encrypts only this chunk."""
        return self.store.increment(device_chunk, sector_in_chunk)

    def needs_collapse(self, device_chunk: int) -> bool:
        """True when any minor is non-zero (the chunk was written)."""
        return self.store.any_minor_nonzero(device_chunk)

    # -- layout ----------------------------------------------------------------
    def counter_sector_unit(self, local_sector: int) -> int:
        """Channel-local counter-sector index for a data sector."""
        return self.layout.counter_sector(local_sector)

    def bmt_geometry(self, arity: int = 8) -> BMTGeometry:
        """Shape of each channel's local tree over its counter sectors."""
        return self.layout.bmt_geometry(arity)

    def chunk_sectors(self) -> Tuple[int, ...]:
        """Sector indices within a chunk (convenience for iteration)."""
        return tuple(range(self.geometry.sectors_per_chunk))

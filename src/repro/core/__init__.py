"""Salus: the paper's primary contribution.

This package implements the data-relocation-friendly security design of
Section IV, composed from four separable optimizations plus the unified
addressing idea they all build on:

* :mod:`repro.core.unified` - security computations keyed to the permanent
  CXL address (Section IV-A): migration without re-encryption.
* :mod:`repro.core.ifsc` - interleaving-friendly split counters
  (Section IV-A1, Figure 4): one tagged major per 256 B chunk.
* :mod:`repro.core.collapsed` - collapsed checkpointed counters
  (Section IV-A2, Figures 5-6): CXL-side counters collapse to per-chunk
  epochs embedded in MAC sectors at transfer.
* :mod:`repro.core.fetch_on_access` - lazy MAC fetching (Section IV-A3,
  Figure 7): metadata crosses the link only for chunks actually touched.
* :mod:`repro.core.dirty_tracking` - fine-granularity dirty tracking in the
  CXL-to-GPU mappings (Section IV-A4): only dirty chunks write back.

:class:`repro.core.salus.SalusSecurityModel` composes them into the timing
model evaluated in Figures 10-14; each piece can be disabled through
:class:`repro.config.SalusConfig` for the ablation benchmarks.
"""

from .collapsed import CollapsedCXLMetadata
from .dirty_tracking import FineDirtyTracking
from .fetch_on_access import FetchOnAccessTracker
from .ifsc import DeviceCounterGroups
from .salus import SalusSecurityModel
from .unified import UnifiedAddressSpace

__all__ = [
    "CollapsedCXLMetadata",
    "DeviceCounterGroups",
    "FetchOnAccessTracker",
    "FineDirtyTracking",
    "SalusSecurityModel",
    "UnifiedAddressSpace",
]

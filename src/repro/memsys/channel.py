"""Bandwidth-and-latency resource models: memory channels and crypto engines.

A transaction of ``n`` bytes occupies a channel for ``n / bytes_per_cycle``
cycles and completes a fixed access latency after its service slot ends
(latency is pipelined and does not occupy the channel).

Channels are modelled as *timestamp-ordered* work-conserving servers rather
than strict FCFS ``next_free`` timestamps: a booking waits behind the work
that arrived (by timestamp) at or before it, regardless of the order the
simulator happened to issue the bookings in. A serially-chained access
(e.g. a Merkle walk whose level-N read starts only after level N-1
returned) therefore leaves the channel free for other traffic during its
think time instead of punching a hole in the schedule, and a booking whose
timestamp lies in the past still queues behind everything that was already
in flight back then - wall-clock progress made by later-timestamped traffic
can never retroactively erase its queue. Busy cycles and per-category byte
counts feed Figures 11 and 12.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional

from ..errors import SimulationError
from ..sim.stats import Side, StatRegistry, TrafficCategory
from ..sim.trace import Tracer, resolve_tracer


class _ServiceTimeline:
    """Completion frontier of a server fed with non-monotone timestamps.

    Jobs are kept sorted by arrival timestamp; ``frontier[i]`` is the time
    the server finishes all jobs up to and including ``i`` when serving them
    in timestamp order (``F = max(F_prev, t_i) + busy_i``). A new arrival at
    ``now`` starts after the frontier of every job with timestamp <= now.

    Completions already handed out are never revised: a retro-timestamped
    insertion only raises the frontier that *future* queries observe. For
    monotone timestamps this degenerates to the classic work-conserving
    leaky bucket (insertion is an append and the prefix scan is O(1)).
    """

    __slots__ = ("_times", "_busys", "_frontier")

    def __init__(self) -> None:
        self._times: list = []
        self._busys: list = []
        self._frontier: list = []

    def book(self, now: int, busy: int) -> int:
        """Insert a job of ``busy`` service cycles arriving at ``now``.

        Returns the cycle its service slot ends (no latency applied).

        Jobs sharing a timestamp are *merged* into one entry instead of
        inserted side by side: two jobs at the same ``t`` serve back to back
        (``max(max(F, t) + b1, t) + b2 == max(F, t) + b1 + b2`` since service
        times are positive), so one entry with the summed busy time yields
        bit-identical completions and frontiers. Migration fills book dozens
        of legs at one timestamp, and the merge turns those from O(n) list
        insertions into in-place updates.
        """
        times = self._times
        busys = self._busys
        frontier = self._frontier
        if not times:
            completion = now + busy
            times.append(now)
            busys.append(busy)
            frontier.append(completion)
            return completion
        last = times[-1]
        if now > last:
            # Monotone arrival (the overwhelmingly common case): append-only,
            # no bisect, no mid-list insertion, no ripple.
            f = frontier[-1]
            completion = (f if f > now else now) + busy
            times.append(now)
            busys.append(busy)
            frontier.append(completion)
            return completion
        if now == last:
            busys[-1] += busy
            completion = frontier[-1] + busy
            frontier[-1] = completion
            return completion
        idx = bisect_right(times, now)
        if idx and times[idx - 1] == now:
            busys[idx - 1] += busy
            completion = frontier[idx - 1] + busy
            frontier[idx - 1] = f = completion
            i = idx
        else:
            f_prev = frontier[idx - 1] if idx else 0
            times.insert(idx, now)
            busys.insert(idx, busy)
            frontier.insert(idx, 0)
            completion = (f_prev if f_prev > now else now) + busy
            frontier[idx] = f = completion
            i = idx + 1
        n = len(times)
        while i < n:
            t_i = times[i]
            updated = (f if f > t_i else t_i) + busys[i]
            if updated == frontier[i]:
                break  # the ripple died out; the rest of the suffix is unchanged
            frontier[i] = f = updated
            i += 1
        return completion

    def backlog(self, now: int) -> int:
        """Queued service cycles a job arriving at ``now`` would wait."""
        idx = bisect_right(self._times, now)
        if not idx:
            return 0
        return max(0, self._frontier[idx - 1] - now)


class Channel:
    """One memory channel (device partition) or the aggregate CXL link."""

    def __init__(
        self,
        name: str,
        bytes_per_cycle: float,
        latency_cycles: int,
        side: Side,
        stats: StatRegistry,
        overhead_cycles: int = 0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise SimulationError(f"{name}: bytes_per_cycle must be positive")
        if latency_cycles < 0 or overhead_cycles < 0:
            raise SimulationError(f"{name}: latency/overhead must be non-negative")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.latency_cycles = latency_cycles
        # Fixed per-transaction occupancy (row activation, protocol flits):
        # this is what makes scattered 32 B metadata accesses so much less
        # bandwidth-efficient than a streamed page copy.
        self.overhead_cycles = overhead_cycles
        self.side = side
        self.stats = stats
        self.tracer = resolve_tracer(tracer)
        self.busy_cycles: int = 0
        # Per-component traffic attribution for the metric taxonomy:
        # {category: [bytes, transactions]}. Kept as a plain dict of mutable
        # pairs so the hot path pays one lookup and two adds, no strings.
        self.category_tallies: Dict[TrafficCategory, List[int]] = {}
        # Two service classes model FR-FCFS-style scheduling: small demand
        # (priority) reads overtake bulk migration/writeback transfers, but
        # every transfer consumes bandwidth that bulk traffic must wait for.
        self._all_work = _ServiceTimeline()    # every transaction (bulk view)
        self._prio_work = _ServiceTimeline()   # priority transactions only
        # Transactions come in a handful of sizes (32 B sectors, 64 B nodes,
        # 256 B chunks, 4 KiB pages); memoize the ceil-division per size.
        self._svc_cache: Dict[int, int] = {}
        self._traffic = stats.traffic_bytes

    def service_cycles(self, nbytes: int) -> int:
        """Channel occupancy for a transaction of ``nbytes``."""
        busy = self._svc_cache.get(nbytes)
        if busy is None:
            busy = self._svc_cache[nbytes] = self.overhead_cycles + max(
                1, math.ceil(nbytes / self.bytes_per_cycle)
            )
        return busy

    def queue_delay(self, now: int) -> float:
        """Backlog (cycles of queued work) a bulk request arriving now sees."""
        return float(self._all_work.backlog(now))

    def book(
        self,
        now: int,
        nbytes: int,
        category: TrafficCategory,
        *,
        critical: bool = True,
        priority: bool = False,
    ) -> int:
        """Book a transaction; returns its completion time.

        ``critical=False`` marks posted traffic (writebacks, background
        eviction): it occupies the channel and is tallied, but the returned
        completion time is the service end without the access latency, since
        nothing waits on it.

        ``priority=True`` marks latency-sensitive demand reads, which the
        controller services ahead of queued bulk transfers (page copies,
        writebacks) - they wait only behind other priority work.
        """
        if now < 0 or nbytes <= 0:
            raise SimulationError(
                f"{self.name}: invalid booking now={now} nbytes={nbytes}"
            )
        busy = self._svc_cache.get(nbytes)
        if busy is None:
            busy = self.service_cycles(nbytes)
        # Every transaction consumes bandwidth the bulk class must wait for;
        # priority transactions additionally get their own (shorter) queue.
        # The timeline's monotone-append fast path is inlined here (this is
        # the hottest call site in the simulator); non-monotone arrivals fall
        # back to the full insertion logic in _ServiceTimeline.book.
        tl = self._all_work
        times = tl._times
        if times and now > times[-1]:
            frontier = tl._frontier[-1]
            completion = (frontier if frontier > now else now) + busy
            times.append(now)
            tl._busys.append(busy)
            tl._frontier.append(completion)
            bulk_completion = completion
        elif times and now == times[-1]:
            tl._busys[-1] += busy
            bulk_completion = tl._frontier[-1] + busy
            tl._frontier[-1] = bulk_completion
        else:
            bulk_completion = tl.book(now, busy)
        if priority:
            tl = self._prio_work
            times = tl._times
            if times and now > times[-1]:
                frontier = tl._frontier[-1]
                completion = (frontier if frontier > now else now) + busy
                times.append(now)
                tl._busys.append(busy)
                tl._frontier.append(completion)
            elif times and now == times[-1]:
                tl._busys[-1] += busy
                completion = tl._frontier[-1] + busy
                tl._frontier[-1] = completion
            else:
                completion = tl.book(now, busy)
        else:
            completion = bulk_completion
        self.busy_cycles += busy
        self._traffic[(self.side, category)] += nbytes
        tally = self.category_tallies.get(category)
        if tally is None:
            tally = self.category_tallies[category] = [0, 0]
        tally[0] += nbytes
        tally[1] += 1
        if self.tracer.enabled:
            self.tracer.span(
                self.name, category.value, now, completion - now, cat="mem",
                args={"bytes": nbytes, "prio": priority},
            )
        if critical:
            return completion + self.latency_cycles
        return completion

    def utilization(self, final_cycle: int) -> float:
        """Fraction of cycles this channel spent transferring."""
        if final_cycle <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / final_cycle)


class CryptoEngine:
    """A pipelined per-partition AES/MAC engine (paper Table II).

    One sector enters the pipeline every ``interval`` cycles; the result is
    ready ``latency`` cycles after it enters. Counter-mode lets the OTP be
    precomputed as soon as the counter is known, so callers pass the time the
    counter became available, not the time the data arrived.
    """

    def __init__(
        self,
        name: str,
        latency_cycles: int,
        interval_cycles: int,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if latency_cycles < 0 or interval_cycles <= 0:
            raise SimulationError(f"{name}: bad engine timing parameters")
        self.name = name
        self.latency_cycles = latency_cycles
        self.interval_cycles = interval_cycles
        self.tracer = resolve_tracer(tracer)
        self.sectors_processed: int = 0
        self._work = _ServiceTimeline()

    def book(self, ready: int, sectors: int = 1) -> int:
        """Push ``sectors`` sector operations; returns completion of the last.

        Same timestamp-ordered service model as :class:`Channel`: a booking
        queues behind the ops that entered the pipe at or before its own
        timestamp, so out-of-order bookings neither punch idle holes into
        the schedule nor jump ahead of work that was already in flight.
        """
        if sectors <= 0:
            raise SimulationError(f"{self.name}: sectors must be positive")
        busy = sectors * self.interval_cycles
        # Same inlined monotone-append/merge fast path as Channel.book.
        tl = self._work
        times = tl._times
        if times and ready > times[-1]:
            frontier = tl._frontier[-1]
            slot_end = (frontier if frontier > ready else ready) + busy
            times.append(ready)
            tl._busys.append(busy)
            tl._frontier.append(slot_end)
        elif times and ready == times[-1]:
            tl._busys[-1] += busy
            slot_end = tl._frontier[-1] + busy
            tl._frontier[-1] = slot_end
        else:
            slot_end = tl.book(ready, busy)
        self.sectors_processed += sectors
        if self.tracer.enabled:
            self.tracer.span(
                self.name, "pipe", ready, slot_end - ready, cat="crypto",
                args={"sectors": sectors},
            )
        return slot_end - self.interval_cycles + self.latency_cycles


class LinkPair:
    """Convenience holder for the two directions of the CXL link.

    CXL over PCIe has independent TX and RX lanes; modelling them separately
    keeps a fill burst from serializing behind eviction writebacks. On a
    multi-device fabric each expansion device owns one LinkPair; ``name``
    distinguishes them ("cxl" for the paper's single device, "cxl<i>" for
    additional fabric slots).
    """

    def __init__(
        self,
        bytes_per_cycle: float,
        latency_cycles: int,
        stats: StatRegistry,
        overhead_cycles: int = 0,
        tracer: Optional[Tracer] = None,
        name: str = "cxl",
    ) -> None:
        half = bytes_per_cycle / 2.0
        self.name = name
        self.to_device = Channel(
            f"{name}-rx", half, latency_cycles, Side.CXL, stats, overhead_cycles,
            tracer=tracer,
        )
        self.to_cxl = Channel(
            f"{name}-tx", half, latency_cycles, Side.CXL, stats, overhead_cycles,
            tracer=tracer,
        )

    @property
    def busy_cycles(self) -> int:
        return self.to_device.busy_cycles + self.to_cxl.busy_cycles

"""Bandwidth-and-latency resource models: memory channels and crypto engines.

A transaction of ``n`` bytes occupies a channel for ``n / bytes_per_cycle``
cycles and completes a fixed access latency after its service slot ends
(latency is pipelined and does not occupy the channel).

Channels are modelled as *work-conserving* leaky-bucket servers rather than
strict FCFS ``next_free`` timestamps: the pending backlog drains in real
time between bookings, so a serially-chained access (e.g. a Merkle walk
whose level-N read starts only after level N-1 returned) leaves the channel
free for other traffic during its think time instead of punching a hole in
the schedule. This matters because the simulator books requests in issue
order while their timestamps are not monotone. Busy cycles and per-category
byte counts feed Figures 11 and 12.
"""

from __future__ import annotations

import math
from ..errors import SimulationError
from ..sim.stats import Side, StatRegistry, TrafficCategory


class Channel:
    """One memory channel (device partition) or the aggregate CXL link."""

    def __init__(
        self,
        name: str,
        bytes_per_cycle: float,
        latency_cycles: int,
        side: Side,
        stats: StatRegistry,
        overhead_cycles: int = 0,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise SimulationError(f"{name}: bytes_per_cycle must be positive")
        if latency_cycles < 0 or overhead_cycles < 0:
            raise SimulationError(f"{name}: latency/overhead must be non-negative")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.latency_cycles = latency_cycles
        # Fixed per-transaction occupancy (row activation, protocol flits):
        # this is what makes scattered 32 B metadata accesses so much less
        # bandwidth-efficient than a streamed page copy.
        self.overhead_cycles = overhead_cycles
        self.side = side
        self.stats = stats
        self.busy_cycles: int = 0
        # Leaky-bucket state: backlog cycles still queued as of _last_time.
        # Two service classes model FR-FCFS-style scheduling: small demand
        # (priority) reads overtake bulk migration/writeback transfers, but
        # every transfer consumes bandwidth that bulk traffic must wait for.
        self._backlog: float = 0.0        # total queued work (bulk view)
        self._prio_backlog: float = 0.0   # queued priority work only
        self._last_time: int = 0

    def service_cycles(self, nbytes: int) -> int:
        """Channel occupancy for a transaction of ``nbytes``."""
        return self.overhead_cycles + max(1, math.ceil(nbytes / self.bytes_per_cycle))

    def queue_delay(self, now: int) -> float:
        """Backlog (cycles of queued work) a bulk request arriving now sees."""
        return max(0.0, self._backlog - max(0, now - self._last_time))

    def _drain(self, now: int) -> None:
        if now > self._last_time:
            elapsed = now - self._last_time
            self._backlog = max(0.0, self._backlog - elapsed)
            self._prio_backlog = max(0.0, self._prio_backlog - elapsed)
            self._last_time = now

    def book(
        self,
        now: int,
        nbytes: int,
        category: TrafficCategory,
        *,
        critical: bool = True,
        priority: bool = False,
    ) -> int:
        """Book a transaction; returns its completion time.

        ``critical=False`` marks posted traffic (writebacks, background
        eviction): it occupies the channel and is tallied, but the returned
        completion time is the service end without the access latency, since
        nothing waits on it.

        ``priority=True`` marks latency-sensitive demand reads, which the
        controller services ahead of queued bulk transfers (page copies,
        writebacks) - they wait only behind other priority work.
        """
        if now < 0 or nbytes <= 0:
            raise SimulationError(
                f"{self.name}: invalid booking now={now} nbytes={nbytes}"
            )
        busy = self.service_cycles(nbytes)
        # Drain the backlog for the wall-clock time that passed, then queue
        # this transaction behind whatever work remains in its class.
        self._drain(now)
        if priority:
            start_delay = self._prio_backlog
            self._prio_backlog += busy
        else:
            start_delay = self._backlog
        self._backlog += busy
        self.busy_cycles += busy
        self.stats.add_traffic(self.side, category, nbytes)
        completion = now + int(start_delay) + busy
        if critical:
            return completion + self.latency_cycles
        return completion

    def utilization(self, final_cycle: int) -> float:
        """Fraction of cycles this channel spent transferring."""
        if final_cycle <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / final_cycle)


class CryptoEngine:
    """A pipelined per-partition AES/MAC engine (paper Table II).

    One sector enters the pipeline every ``interval`` cycles; the result is
    ready ``latency`` cycles after it enters. Counter-mode lets the OTP be
    precomputed as soon as the counter is known, so callers pass the time the
    counter became available, not the time the data arrived.
    """

    def __init__(self, name: str, latency_cycles: int, interval_cycles: int) -> None:
        if latency_cycles < 0 or interval_cycles <= 0:
            raise SimulationError(f"{name}: bad engine timing parameters")
        self.name = name
        self.latency_cycles = latency_cycles
        self.interval_cycles = interval_cycles
        self.sectors_processed: int = 0
        self._backlog: float = 0.0
        self._last_time: int = 0

    def book(self, ready: int, sectors: int = 1) -> int:
        """Push ``sectors`` sector operations; returns completion of the last.

        Same work-conserving backlog model as :class:`Channel`: the pipe
        drains between bookings, so out-of-order timestamps cannot punch
        idle holes into the schedule.
        """
        if sectors <= 0:
            raise SimulationError(f"{self.name}: sectors must be positive")
        busy = sectors * self.interval_cycles
        if ready > self._last_time:
            self._backlog = max(0.0, self._backlog - (ready - self._last_time))
            self._last_time = ready
        start_delay = self._backlog
        self._backlog += busy
        self.sectors_processed += sectors
        return ready + int(start_delay) + busy - self.interval_cycles + self.latency_cycles


class LinkPair:
    """Convenience holder for the two directions of the CXL link.

    CXL over PCIe has independent TX and RX lanes; modelling them separately
    keeps a fill burst from serializing behind eviction writebacks.
    """

    def __init__(
        self,
        bytes_per_cycle: float,
        latency_cycles: int,
        stats: StatRegistry,
        overhead_cycles: int = 0,
    ) -> None:
        half = bytes_per_cycle / 2.0
        self.to_device = Channel(
            "cxl-rx", half, latency_cycles, Side.CXL, stats, overhead_cycles
        )
        self.to_cxl = Channel(
            "cxl-tx", half, latency_cycles, Side.CXL, stats, overhead_cycles
        )

    @property
    def busy_cycles(self) -> int:
        return self.to_device.busy_cycles + self.to_cxl.busy_cycles

"""Memory-system substrate: channels, interleaving, sectored caches.

These components model the GPU memory hierarchy of the paper's Table I
machine at transaction granularity: per-channel bandwidth and queuing,
sectored set-associative caches with MSHRs, and the 256 B fine-grained
channel interleaving of Section II-D.
"""

from .channel import Channel, CryptoEngine
from .interleave import Interleaver
from .request import Access, MemoryRequest
from .sectored_cache import SectoredCache
from .l2cache import L2Slice

__all__ = [
    "Access",
    "Channel",
    "CryptoEngine",
    "Interleaver",
    "L2Slice",
    "MemoryRequest",
    "SectoredCache",
]

"""A generic sectored, set-associative, write-back cache model.

Volta's L1/L2 are sectored (128 B lines of four 32 B sectors) and the paper's
metadata caches follow the same organization (Table II). One implementation
serves all of them: lines are allocated whole, but validity and dirtiness
are tracked per sector, so a miss fetches only the needed sector
(allocate-on-fill).

The model is purely structural - it answers hit/miss and reports evictions;
timing is the caller's business.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from ..errors import ConfigError


def stable_line_key(line_addr: Hashable) -> int:
    """Deterministic integer key for a cache line address.

    The builtin ``hash()`` is salted by ``PYTHONHASHSEED`` for ``str`` and
    ``bytes`` values, which would silently break cross-process determinism
    (golden traces, the result cache, the perf-harness fingerprint gate) the
    moment a non-int line address is used. This function is an explicit,
    seed-independent replacement: ints map to themselves (matching
    ``hash(int)`` for the magnitudes a simulation produces), str/bytes go
    through CRC-32, and tuples fold their elements recursively (tuples of
    ints already hash deterministically, so existing ``(page, block)`` keys
    keep their historical set mapping).
    """
    kind = type(line_addr)
    if kind is int:
        return line_addr
    if kind is str:
        return zlib.crc32(line_addr.encode("utf-8"))
    if kind is bytes:
        return zlib.crc32(line_addr)
    if kind is tuple:
        return hash(tuple(stable_line_key(element) for element in line_addr))
    return hash(line_addr)


@dataclass
class EvictedLine:
    """A victim line pushed out by an allocation."""

    line_addr: Hashable
    dirty_sectors: Tuple[int, ...]

    @property
    def was_dirty(self) -> bool:
        return bool(self.dirty_sectors)


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    sector_hit: bool
    line_hit: bool
    evicted: Optional[EvictedLine] = None


# The three evict-free outcomes are by far the most common, and callers only
# ever read an AccessResult, so `access` hands out shared instances instead
# of allocating ~one object per simulated memory access.
_HIT = AccessResult(sector_hit=True, line_hit=True)
_SECTOR_MISS = AccessResult(sector_hit=False, line_hit=True)
_LINE_MISS = AccessResult(sector_hit=False, line_hit=False)


class _Line:
    __slots__ = ("valid_mask", "dirty_mask", "tag_payload")

    def __init__(self, tag_payload: object = None) -> None:
        self.valid_mask = 0
        self.dirty_mask = 0
        self.tag_payload = tag_payload  # opaque per-line annotation (e.g. CXL tag)


class SectoredCache:
    """Set-associative sectored cache with per-set LRU replacement."""

    def __init__(
        self,
        name: str,
        total_bytes: int,
        ways: int,
        line_bytes: int,
        sector_bytes: int,
    ) -> None:
        if total_bytes <= 0 or ways <= 0 or line_bytes <= 0 or sector_bytes <= 0:
            raise ConfigError(f"{name}: all cache dimensions must be positive")
        if line_bytes % sector_bytes != 0:
            raise ConfigError(f"{name}: line_bytes must be a multiple of sector_bytes")
        if total_bytes % (ways * line_bytes) != 0:
            raise ConfigError(
                f"{name}: total_bytes={total_bytes} must divide into "
                f"{ways} ways of {line_bytes} B lines"
            )
        self.name = name
        self.ways = ways
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.sectors_per_line = line_bytes // sector_bytes
        self.num_sets = total_bytes // (ways * line_bytes)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        # line_addr -> resolved set, so repeat accesses skip the Python-level
        # stable_line_key computation. The *stored* mapping is computed from
        # stable_line_key, so it stays seed-independent; the lookup dict's
        # internal bucket order (which may use salted hashes for str keys)
        # is never observable. Bounded by the distinct line addresses of a
        # run's footprint.
        self._set_lookup: dict = {}
        # dirty_mask -> tuple of sector indices, for the common small lines.
        self._mask_table: Optional[List[Tuple[int, ...]]] = None
        if self.sectors_per_line <= 8:
            self._mask_table = [
                _mask_to_sectors_slow(mask) for mask in range(1 << self.sectors_per_line)
            ]

    # -- helpers ---------------------------------------------------------------
    def _set_for(self, line_addr: Hashable) -> OrderedDict:
        cache_set = self._set_lookup.get(line_addr)
        if cache_set is None:
            cache_set = self._sets[stable_line_key(line_addr) % self.num_sets]
            self._set_lookup[line_addr] = cache_set
        return cache_set

    def _check_sector(self, sector: int) -> None:
        if not 0 <= sector < self.sectors_per_line:
            raise ConfigError(
                f"{self.name}: sector {sector} outside line of "
                f"{self.sectors_per_line} sectors"
            )

    # -- main interface ----------------------------------------------------------
    def access(
        self,
        line_addr: Hashable,
        sector: int,
        write: bool = False,
        tag_payload: object = None,
    ) -> AccessResult:
        """Access one sector; allocates line+sector on miss (allocate-on-fill).

        On a write the sector is marked dirty. ``tag_payload`` annotates the
        line (Salus stores the owning CXL page there); it is set on
        allocation and left untouched on hits.
        """
        if sector >= self.sectors_per_line or sector < 0:
            self._check_sector(sector)
        cache_set = self._set_lookup.get(line_addr)
        if cache_set is None:
            cache_set = self._set_for(line_addr)
        line = cache_set.get(line_addr)
        bit = 1 << sector
        if line is not None:
            cache_set.move_to_end(line_addr)
            if line.valid_mask & bit:
                self.hits += 1
                if write:
                    line.dirty_mask |= bit
                return _HIT
            line.valid_mask |= bit
            if write:
                line.dirty_mask |= bit
            self.misses += 1
            return _SECTOR_MISS
        evicted = None
        if len(cache_set) >= self.ways:
            victim_addr, victim = cache_set.popitem(last=False)
            evicted = EvictedLine(
                line_addr=victim_addr,
                dirty_sectors=self._mask_to_sectors(victim.dirty_mask),
            )
        line = _Line(tag_payload=tag_payload)
        cache_set[line_addr] = line
        line.valid_mask = bit
        if write:
            line.dirty_mask = bit
        self.misses += 1
        if evicted is None:
            return _LINE_MISS
        return AccessResult(sector_hit=False, line_hit=False, evicted=evicted)

    def probe(self, line_addr: Hashable, sector: int) -> bool:
        """Non-destructive sector presence check (no LRU update)."""
        self._check_sector(sector)
        line = self._set_for(line_addr).get(line_addr)
        return line is not None and bool(line.valid_mask & (1 << sector))

    def probe_batch(self, line_addrs, sectors):
        """Batch :meth:`probe` over parallel line/sector sequences.

        Returns a numpy bool array; like ``probe`` this never touches LRU
        state or hit/miss tallies, so it is safe to interleave with live
        accesses (the batched kernel and tooling use it as the read-only
        tag-probe face of the cache). Requires numpy.
        """
        from ..kernel import require_numpy

        np = require_numpy()
        n = len(line_addrs)
        out = np.zeros(n, dtype=bool)
        set_for = self._set_for
        spl = self.sectors_per_line
        for i in range(n):
            sector = sectors[i]
            if not 0 <= sector < spl:
                self._check_sector(sector)
            line_addr = line_addrs[i]
            line = set_for(line_addr).get(line_addr)
            out[i] = line is not None and bool(line.valid_mask & (1 << sector))
        return out

    def line_payload(self, line_addr: Hashable) -> object:
        """The opaque annotation stored with a resident line (None if absent)."""
        line = self._set_for(line_addr).get(line_addr)
        return None if line is None else line.tag_payload

    def invalidate_sector(self, line_addr: Hashable, sector: int) -> bool:
        """Drop one sector without writeback; returns True if it was dirty.

        Used when a sector's backing state becomes dead (e.g. device-side
        metadata of an evicted page, whose authority moved to the CXL side):
        the dirty bit is discarded rather than flushed.
        """
        self._check_sector(sector)
        line = self._set_for(line_addr).get(line_addr)
        if line is None:
            return False
        bit = 1 << sector
        was_dirty = bool(line.dirty_mask & bit)
        line.valid_mask &= ~bit
        line.dirty_mask &= ~bit
        return was_dirty

    def invalidate_line(self, line_addr: Hashable) -> Optional[EvictedLine]:
        """Drop a line; returns its dirty sectors so the caller can write back."""
        cache_set = self._set_for(line_addr)
        line = cache_set.pop(line_addr, None)
        if line is None:
            return None
        return EvictedLine(
            line_addr=line_addr, dirty_sectors=self._mask_to_sectors(line.dirty_mask)
        )

    def flush_dirty(self) -> List[EvictedLine]:
        """Drain every dirty line (end-of-run writeback accounting)."""
        drained: List[EvictedLine] = []
        for cache_set in self._sets:
            for line_addr, line in cache_set.items():
                if line.dirty_mask:
                    drained.append(
                        EvictedLine(
                            line_addr=line_addr,
                            dirty_sectors=self._mask_to_sectors(line.dirty_mask),
                        )
                    )
                    line.dirty_mask = 0
        return drained

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _mask_to_sectors(self, mask: int) -> Tuple[int, ...]:
        table = self._mask_table
        if table is not None:
            return table[mask]
        return _mask_to_sectors_slow(mask)


def _mask_to_sectors_slow(mask: int) -> Tuple[int, ...]:
    out = []
    idx = 0
    while mask:
        if mask & 1:
            out.append(idx)
        mask >>= 1
        idx += 1
    return tuple(out)

"""A generic sectored, set-associative, write-back cache model.

Volta's L1/L2 are sectored (128 B lines of four 32 B sectors) and the paper's
metadata caches follow the same organization (Table II). One implementation
serves all of them: lines are allocated whole, but validity and dirtiness
are tracked per sector, so a miss fetches only the needed sector
(allocate-on-fill).

The model is purely structural - it answers hit/miss and reports evictions;
timing is the caller's business.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from ..errors import ConfigError


@dataclass
class EvictedLine:
    """A victim line pushed out by an allocation."""

    line_addr: Hashable
    dirty_sectors: Tuple[int, ...]

    @property
    def was_dirty(self) -> bool:
        return bool(self.dirty_sectors)


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    sector_hit: bool
    line_hit: bool
    evicted: Optional[EvictedLine] = None


@dataclass
class _Line:
    valid_mask: int = 0
    dirty_mask: int = 0
    tag_payload: object = None  # opaque per-line annotation (e.g. CXL tag)


class SectoredCache:
    """Set-associative sectored cache with per-set LRU replacement."""

    def __init__(
        self,
        name: str,
        total_bytes: int,
        ways: int,
        line_bytes: int,
        sector_bytes: int,
    ) -> None:
        if total_bytes <= 0 or ways <= 0 or line_bytes <= 0 or sector_bytes <= 0:
            raise ConfigError(f"{name}: all cache dimensions must be positive")
        if line_bytes % sector_bytes != 0:
            raise ConfigError(f"{name}: line_bytes must be a multiple of sector_bytes")
        if total_bytes % (ways * line_bytes) != 0:
            raise ConfigError(
                f"{name}: total_bytes={total_bytes} must divide into "
                f"{ways} ways of {line_bytes} B lines"
            )
        self.name = name
        self.ways = ways
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.sectors_per_line = line_bytes // sector_bytes
        self.num_sets = total_bytes // (ways * line_bytes)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    # -- helpers ---------------------------------------------------------------
    def _set_for(self, line_addr: Hashable) -> OrderedDict:
        return self._sets[hash(line_addr) % self.num_sets]

    def _check_sector(self, sector: int) -> None:
        if not 0 <= sector < self.sectors_per_line:
            raise ConfigError(
                f"{self.name}: sector {sector} outside line of "
                f"{self.sectors_per_line} sectors"
            )

    # -- main interface ----------------------------------------------------------
    def access(
        self,
        line_addr: Hashable,
        sector: int,
        write: bool = False,
        tag_payload: object = None,
    ) -> AccessResult:
        """Access one sector; allocates line+sector on miss (allocate-on-fill).

        On a write the sector is marked dirty. ``tag_payload`` annotates the
        line (Salus stores the owning CXL page there); it is set on
        allocation and left untouched on hits.
        """
        self._check_sector(sector)
        cache_set = self._set_for(line_addr)
        line = cache_set.get(line_addr)
        evicted = None
        if line is None:
            line_hit = False
            sector_hit = False
            if len(cache_set) >= self.ways:
                victim_addr, victim = cache_set.popitem(last=False)
                evicted = EvictedLine(
                    line_addr=victim_addr,
                    dirty_sectors=self._mask_to_sectors(victim.dirty_mask),
                )
            line = _Line(tag_payload=tag_payload)
            cache_set[line_addr] = line
        else:
            line_hit = True
            sector_hit = bool(line.valid_mask & (1 << sector))
            cache_set.move_to_end(line_addr)
        line.valid_mask |= 1 << sector
        if write:
            line.dirty_mask |= 1 << sector
        if sector_hit:
            self.hits += 1
        else:
            self.misses += 1
        return AccessResult(sector_hit=sector_hit, line_hit=line_hit, evicted=evicted)

    def probe(self, line_addr: Hashable, sector: int) -> bool:
        """Non-destructive sector presence check (no LRU update)."""
        self._check_sector(sector)
        line = self._set_for(line_addr).get(line_addr)
        return line is not None and bool(line.valid_mask & (1 << sector))

    def line_payload(self, line_addr: Hashable) -> object:
        """The opaque annotation stored with a resident line (None if absent)."""
        line = self._set_for(line_addr).get(line_addr)
        return None if line is None else line.tag_payload

    def invalidate_sector(self, line_addr: Hashable, sector: int) -> bool:
        """Drop one sector without writeback; returns True if it was dirty.

        Used when a sector's backing state becomes dead (e.g. device-side
        metadata of an evicted page, whose authority moved to the CXL side):
        the dirty bit is discarded rather than flushed.
        """
        self._check_sector(sector)
        line = self._set_for(line_addr).get(line_addr)
        if line is None:
            return False
        bit = 1 << sector
        was_dirty = bool(line.dirty_mask & bit)
        line.valid_mask &= ~bit
        line.dirty_mask &= ~bit
        return was_dirty

    def invalidate_line(self, line_addr: Hashable) -> Optional[EvictedLine]:
        """Drop a line; returns its dirty sectors so the caller can write back."""
        cache_set = self._set_for(line_addr)
        line = cache_set.pop(line_addr, None)
        if line is None:
            return None
        return EvictedLine(
            line_addr=line_addr, dirty_sectors=self._mask_to_sectors(line.dirty_mask)
        )

    def flush_dirty(self) -> List[EvictedLine]:
        """Drain every dirty line (end-of-run writeback accounting)."""
        drained: List[EvictedLine] = []
        for cache_set in self._sets:
            for line_addr, line in cache_set.items():
                if line.dirty_mask:
                    drained.append(
                        EvictedLine(
                            line_addr=line_addr,
                            dirty_sectors=self._mask_to_sectors(line.dirty_mask),
                        )
                    )
                    line.dirty_mask = 0
        return drained

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @staticmethod
    def _mask_to_sectors(mask: int) -> Tuple[int, ...]:
        out = []
        idx = 0
        while mask:
            if mask & 1:
                out.append(idx)
            mask >>= 1
            idx += 1
        return tuple(out)

"""Per-partition L2 slice: a sectored cache plus MSHR merge tracking.

Each memory partition (channel) owns one L2 slice, addressed with
channel-local device block numbers (the paper's flipped translation routes
requests by device address before L2, Section IV-B). MSHRs merge concurrent
misses to the same in-flight sector so a burst of warp accesses to one
sector pays the memory round trip once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..config import GPUConfig
from ..errors import ConfigError
from ..sim.trace import Tracer, resolve_tracer
from .sectored_cache import AccessResult, SectoredCache


class L2Slice:
    """One L2 slice bound to a memory partition."""

    def __init__(
        self,
        channel_id: int,
        gpu: GPUConfig,
        sector_bytes: int,
        line_bytes: int,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if gpu.l2_slice_bytes < line_bytes * gpu.l2_ways:
            raise ConfigError("L2 slice too small for its associativity")
        self.channel_id = channel_id
        self.tracer = resolve_tracer(tracer)
        self.cache = SectoredCache(
            name=f"l2[{channel_id}]",
            total_bytes=gpu.l2_slice_bytes,
            ways=gpu.l2_ways,
            line_bytes=line_bytes,
            sector_bytes=sector_bytes,
        )
        self.max_mshrs = gpu.l2_mshrs_per_slice
        # sector key -> completion time of the in-flight fill
        self._mshrs: "OrderedDict[tuple, int]" = OrderedDict()
        self.mshr_merges = 0

    def access(self, local_block: int, sector_in_block: int, write: bool) -> AccessResult:
        """Structural access; timing handled by the caller."""
        return self.cache.access(local_block, sector_in_block, write=write)

    # -- MSHR tracking -------------------------------------------------------
    def inflight_completion(self, now: int, local_block: int, sector: int) -> Optional[int]:
        """If this sector is already being fetched, return that completion."""
        self._expire(now)
        completion = self._mshrs.get((local_block, sector))
        if completion is not None:
            self.mshr_merges += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    self.cache.name, "mshr_merge", now, cat="cache",
                    args={"sector": sector},
                )
        return completion

    def register_fill(self, now: int, local_block: int, sector: int, completion: int) -> None:
        """Record an outstanding fill so later misses can merge into it."""
        self._expire(now)
        if self.tracer.enabled:
            self.tracer.span(
                self.cache.name, "miss_fill", now, completion - now, cat="cache",
                args={"sector": sector},
            )
        if len(self._mshrs) >= self.max_mshrs:
            # Structural hazard: drop the oldest entry. The merge opportunity
            # is lost but correctness is unaffected (the late request simply
            # re-fetches), matching how a full MSHR file stalls real hardware.
            self._mshrs.popitem(last=False)
        self._mshrs[(local_block, sector)] = completion

    def _expire(self, now: int) -> None:
        while self._mshrs:
            key, completion = next(iter(self._mshrs.items()))
            if completion <= now:
                self._mshrs.popitem(last=False)
            else:
                break

"""Fine-grained channel interleaving (paper Section II-D).

GPUs interleave consecutive memory at sub-page granularity across channels
to maximize memory-level parallelism; the paper assumes 256 B chunks. A
4 KiB page therefore spreads over ``min(chunks_per_page, num_channels)``
channels.

The interleaver maps a *device frame* (a page-sized slot of GPU device
memory) and a chunk index within it to:

* the device **channel** that owns the chunk, and
* the **local chunk slot** within that channel (channel-local address),

which is what the per-partition caches, counter stores and metadata layout
key on. The mapping is a bijection per channel, which the property tests
verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..address import Geometry
from ..errors import AddressError


@dataclass(frozen=True)
class Interleaver:
    """Chunk-granularity round-robin interleaving across device channels."""

    geometry: Geometry
    num_channels: int

    # The mapping is a pure function of (frame, chunk_in_page); the memo
    # table turns the hot-path divmod plus tuple allocation into one dict
    # hit. Keyed by the global chunk id, bounded by frames x chunks_per_page.
    _loc_cache: Dict[int, Tuple[int, int]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise AddressError("num_channels must be positive")

    def device_chunk_location(self, frame: int, chunk_in_page: int) -> Tuple[int, int]:
        """Map (frame, chunk index) to (channel, local chunk slot).

        Frames interleave continuously: the first chunk of frame ``f`` lands
        on channel ``(f * chunks_per_page) % num_channels``, so consecutive
        frames do not all start on channel 0 (avoiding partition camping).
        """
        cpp = self.geometry.chunks_per_page
        if frame < 0:
            raise AddressError(f"negative frame {frame}")
        if not 0 <= chunk_in_page < cpp:
            raise AddressError(
                f"chunk_in_page={chunk_in_page} outside page of {cpp} chunks"
            )
        global_chunk = frame * cpp + chunk_in_page
        loc = self._loc_cache.get(global_chunk)
        if loc is None:
            local_slot, channel = divmod(global_chunk, self.num_channels)
            loc = self._loc_cache[global_chunk] = (channel, local_slot)
        return loc

    def device_chunk_locations(self, frames, chunks_in_page):
        """Vectorized :meth:`device_chunk_location` over parallel int arrays.

        Returns ``(channels, local_slots)`` as int64 numpy arrays computed
        with the same round-robin arithmetic; the scalar memo table is
        untouched. Requires numpy.
        """
        from ..kernel import require_numpy

        np = require_numpy()
        frames = np.asarray(frames, dtype=np.int64)
        chunks = np.asarray(chunks_in_page, dtype=np.int64)
        cpp = self.geometry.chunks_per_page
        if frames.size and int(frames.min()) < 0:
            raise AddressError(f"negative frame {int(frames.min())}")
        if chunks.size and (int(chunks.min()) < 0 or int(chunks.max()) >= cpp):
            raise AddressError(f"chunk_in_page outside page of {cpp} chunks")
        global_chunks = frames * cpp + chunks
        return global_chunks % self.num_channels, global_chunks // self.num_channels

    def device_sector_location(self, frame: int, sector_in_page: int) -> Tuple[int, int]:
        """Map (frame, sector index) to (channel, local sector slot)."""
        spc = self.geometry.sectors_per_chunk
        chunk_in_page = sector_in_page // spc
        sector_in_chunk = sector_in_page % spc
        channel, local_chunk = self.device_chunk_location(frame, chunk_in_page)
        return channel, local_chunk * spc + sector_in_chunk

    def channels_of_page(self, frame: int) -> Tuple[int, ...]:
        """The distinct channels a frame's chunks occupy, in chunk order."""
        cpp = self.geometry.chunks_per_page
        seen = []
        for c in range(cpp):
            channel, _ = self.device_chunk_location(frame, c)
            if channel not in seen:
                seen.append(channel)
        return tuple(seen)

    @property
    def channels_per_page(self) -> int:
        """How many distinct channels one page spreads over."""
        return min(self.geometry.chunks_per_page, self.num_channels)

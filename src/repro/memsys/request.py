"""Memory request types flowing through the simulated hierarchy."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Access(enum.Enum):
    """Direction of a memory access."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is Access.WRITE


@dataclass(frozen=True)
class MemoryRequest:
    """One post-L1 sector access issued by an SM warp.

    ``cxl_addr`` is a byte address in the permanent CXL (home) address space,
    already aligned to a sector by the trace layer. ``sm`` and ``warp``
    identify the issuing context for latency-hiding bookkeeping. ``tenant``
    names the security domain that issued the request; under partitioning
    the kernels treat ``sm`` as a tenant-local hint and enforce that the
    address lies inside the tenant's page span.
    """

    cxl_addr: int
    access: Access
    sm: int = 0
    warp: int = 0
    tenant: int = 0

    @property
    def is_write(self) -> bool:
        return self.access.is_write

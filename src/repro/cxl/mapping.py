"""The hashed CXL-to-GPU mapping table (paper Section IV-B).

Page tables permanently hold CXL addresses (so no TLB shootdowns, no L1
flushes); a second translation - CXL page to device frame - is consulted
before the interconnect routing decision. That translation lives in a hashed
table in device memory: each 32 B mapping sector holds four consecutive CXL
page mappings, and Salus additionally keeps the per-chunk dirty bitmask
inside the mapping entry (Section IV-A4).

This module is the authoritative, functional table; the timing costs of
reaching it (mapping-cache misses, dirty-buffer writebacks) are modelled by
:mod:`repro.cxl.mapping_cache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import AddressError

MAPPINGS_PER_SECTOR = 4
MAPPING_SECTOR_BYTES = 32


@dataclass
class MappingEntry:
    """One CXL page's mapping: resident frame plus dirty state.

    ``dirty_mask`` has one bit per chunk (Salus fine tracking);
    ``page_dirty`` is the conventional single coarse bit. Both are kept so
    any security model can read the granularity it supports from the same
    entry.
    """

    frame: Optional[int] = None
    dirty_mask: int = 0
    page_dirty: bool = False

    @property
    def resident(self) -> bool:
        return self.frame is not None

    def mark_dirty_chunk(self, chunk_in_page: int) -> None:
        self.dirty_mask |= 1 << chunk_in_page
        self.page_dirty = True

    def clear_dirty(self) -> None:
        self.dirty_mask = 0
        self.page_dirty = False

    def dirty_chunks(self, chunks_per_page: int) -> tuple:
        return tuple(
            c for c in range(chunks_per_page) if self.dirty_mask & (1 << c)
        )


class MappingTable:
    """All CXL-to-GPU mappings, addressed by CXL page number."""

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise AddressError("num_pages must be positive")
        self.num_pages = num_pages
        self._entries: Dict[int, MappingEntry] = {}

    def entry(self, page: int) -> MappingEntry:
        self._check(page)
        state = self._entries.get(page)
        if state is None:
            state = MappingEntry()
            self._entries[page] = state
        return state

    def is_resident(self, page: int) -> bool:
        self._check(page)
        state = self._entries.get(page)
        return state is not None and state.resident

    def map_page(self, page: int, frame: int) -> None:
        entry = self.entry(page)
        entry.frame = frame
        entry.clear_dirty()

    def unmap_page(self, page: int) -> MappingEntry:
        """Remove residency; returns the entry (with its final dirty state)."""
        entry = self.entry(page)
        if not entry.resident:
            raise AddressError(f"page {page} is not resident")
        snapshot = MappingEntry(
            frame=entry.frame,
            dirty_mask=entry.dirty_mask,
            page_dirty=entry.page_dirty,
        )
        entry.frame = None
        entry.clear_dirty()
        return snapshot

    @staticmethod
    def mapping_sector(page: int) -> int:
        """Which mapping sector (32 B, 4 entries) holds this page's mapping."""
        return page // MAPPINGS_PER_SECTOR

    def _check(self, page: int) -> None:
        if not 0 <= page < self.num_pages:
            raise AddressError(
                f"page {page} outside footprint of {self.num_pages} pages"
            )

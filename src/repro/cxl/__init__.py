"""CXL expansion-memory substrate (paper Sections II-B and IV-B).

Models a type-3 memory expander reached over a CXL link whose aggregate
bandwidth is a configurable fraction of the device-memory bandwidth, plus
the flipped address-translation machinery of Section IV-B: a hashed
CXL-to-GPU mapping table stored in device memory, per-GPC mapping caches,
and the miss-handling control logic with its 32-entry dirty-bitmask buffer.
"""

from .device import ExpansionMemory, SectorStore
from .mapping import MappingEntry, MappingTable
from .mapping_cache import DirtyBuffer, MappingCache, MappingMissHandler

__all__ = [
    "DirtyBuffer",
    "ExpansionMemory",
    "MappingCache",
    "MappingEntry",
    "MappingMissHandler",
    "MappingTable",
    "SectorStore",
]

"""Per-GPC mapping caches and the miss-handling control logic (Section IV-B).

Every GPC's single interconnect connection is augmented with a 128-entry
CXL-to-GPU mapping cache. Misses go to a dedicated control logic that reads
mapping sectors from device memory, triggers page copies when the page is
not resident, and tracks which caches may hold a translation so eviction
invalidations are targeted.

The control logic also owns a 32-entry :class:`DirtyBuffer` holding mappings
whose dirty bitmask changed since last written to memory - writes hit the
buffer for free, and only LRU evictions from the buffer cost a mapping-sector
writeback (Section IV-A4's traffic optimization).

These classes are structural (hit/miss, what-to-invalidate); the simulator
books the resulting channel transactions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Set, Tuple

from ..errors import ConfigError


class MappingCache:
    """A small fully-associative LRU cache of CXL-page -> frame mappings."""

    def __init__(self, gpc_id: int, entries: int = 128) -> None:
        if entries <= 0:
            raise ConfigError("mapping cache needs at least one entry")
        self.gpc_id = gpc_id
        self.entries = entries
        self._lru: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, page: int) -> Optional[int]:
        frame = self._lru.get(page)
        if frame is None:
            self.misses += 1
            return None
        self._lru.move_to_end(page)
        self.hits += 1
        return frame

    def install(self, page: int, frame: int) -> None:
        if page in self._lru:
            self._lru.move_to_end(page)
        elif len(self._lru) >= self.entries:
            self._lru.popitem(last=False)
        self._lru[page] = frame

    def invalidate(self, page: int) -> bool:
        """Drop a stale mapping; silent (dirty bits live elsewhere)."""
        return self._lru.pop(page, None) is not None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DirtyBuffer:
    """The 32-entry buffer of mappings with pending dirty-bit updates."""

    def __init__(self, entries: int = 32) -> None:
        if entries <= 0:
            raise ConfigError("dirty buffer needs at least one entry")
        self.entries = entries
        self._lru: "OrderedDict[int, bool]" = OrderedDict()

    def note_write(self, page: int) -> Tuple[bool, Optional[int]]:
        """Record a write to ``page``'s dirty bitmask.

        Returns ``(needed_fetch, evicted_page)``: ``needed_fetch`` is True
        when the mapping was not buffered (the control logic must read it
        from memory first), and ``evicted_page`` is the LRU mapping pushed
        out to memory to make room (a mapping-sector writeback), if any.
        """
        if page in self._lru:
            self._lru.move_to_end(page)
            return False, None
        evicted = None
        if len(self._lru) >= self.entries:
            evicted, _ = self._lru.popitem(last=False)
        self._lru[page] = True
        return True, evicted

    def drop(self, page: int) -> bool:
        """Remove a page (its dirty state was just consumed by an eviction)."""
        return self._lru.pop(page, None) is not None

    def __contains__(self, page: int) -> bool:
        return page in self._lru

    def __len__(self) -> int:
        return len(self._lru)


class MappingMissHandler:
    """Control logic behind the mapping caches.

    Tracks, per page, which GPC caches were handed the translation, so an
    eviction invalidates only that subset (reducing invalidation traffic,
    as the paper suggests). Also hosts the dirty buffer.
    """

    def __init__(self, num_gpcs: int, dirty_buffer_entries: int = 32) -> None:
        if num_gpcs <= 0:
            raise ConfigError("need at least one GPC")
        self.caches = [MappingCache(g) for g in range(num_gpcs)]
        self.dirty_buffer = DirtyBuffer(dirty_buffer_entries)
        self._holders: dict = {}
        self.invalidations_sent = 0

    def cache_for(self, gpc: int) -> MappingCache:
        return self.caches[gpc]

    def record_fill(self, gpc: int, page: int, frame: int) -> None:
        """A miss response was delivered to one GPC's cache."""
        self.caches[gpc].install(page, frame)
        self._holders.setdefault(page, set()).add(gpc)

    def invalidate_page(self, page: int) -> int:
        """Invalidate a just-evicted page in the caches that may hold it.

        Returns how many invalidation messages were sent (traffic proxy).
        """
        holders: Set[int] = self._holders.pop(page, set())
        sent = 0
        for gpc in holders:
            if self.caches[gpc].invalidate(page):
                sent += 1
        self.invalidations_sent += sent
        return sent

"""Byte-level memory images for the functional layer.

:class:`SectorStore` is a sparse sector-granularity byte store used for both
the GPU device memory image and the CXL expansion memory image in the
functional security system. Absent sectors read as zeros, like initialized
DRAM after a secure wipe.

:class:`ExpansionMemory` specializes the store with a capacity bound, which
is all a type-3 device adds functionally - the *timing* personality of CXL
(bandwidth, latency) lives in :class:`repro.memsys.channel.LinkPair`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..address import SECTOR_BYTES
from ..errors import AddressError


class SectorStore:
    """Sparse sector-granularity byte storage.

    Observability: the store counts its reads/writes (``reads_performed``,
    ``writes_performed``) and, when built with a
    :class:`~repro.sim.trace.Tracer`, tags each write as an instant event on
    its ``name`` component - the functional-layer view of "which image is
    being mutated" that pairs with the timing layer's byte accounting.
    """

    def __init__(
        self, sector_bytes: int = SECTOR_BYTES, name: str = "store", tracer=None
    ) -> None:
        from ..sim.trace import resolve_tracer

        self.sector_bytes = sector_bytes
        self.name = name
        self.tracer = resolve_tracer(tracer)
        self.reads_performed = 0
        self.writes_performed = 0
        self._sectors: Dict[int, bytes] = {}

    def read(self, sector_index: int) -> bytes:
        """Read one sector; untouched sectors read as zeros."""
        self._check(sector_index)
        self.reads_performed += 1
        return self._sectors.get(sector_index, b"\x00" * self.sector_bytes)

    def write(self, sector_index: int, data: bytes) -> None:
        self._check(sector_index)
        if len(data) != self.sector_bytes:
            raise AddressError(
                f"sector write must be exactly {self.sector_bytes} bytes, "
                f"got {len(data)}"
            )
        self.writes_performed += 1
        if self.tracer.enabled:
            self.tracer.instant(
                self.name, "sector_write", self.writes_performed,
                cat="functional", args={"sector": sector_index},
            )
        self._sectors[sector_index] = bytes(data)

    def discard(self, sector_index: int) -> None:
        """Drop a sector (used when a frame is recycled)."""
        self._sectors.pop(sector_index, None)

    def __contains__(self, sector_index: int) -> bool:
        return sector_index in self._sectors

    def __len__(self) -> int:
        return len(self._sectors)

    def items(self) -> Iterator[Tuple[int, bytes]]:
        return iter(self._sectors.items())

    def _check(self, sector_index: int) -> None:
        if sector_index < 0:
            raise AddressError(f"negative sector index {sector_index}")


class ExpansionMemory(SectorStore):
    """A CXL type-3 expander's data image with an optional capacity bound."""

    def __init__(
        self, sector_bytes: int = SECTOR_BYTES, capacity_sectors: Optional[int] = None
    ) -> None:
        super().__init__(sector_bytes)
        self.capacity_sectors = capacity_sectors

    def _check(self, sector_index: int) -> None:
        super()._check(sector_index)
        if self.capacity_sectors is not None and sector_index >= self.capacity_sectors:
            raise AddressError(
                f"sector {sector_index} beyond expander capacity of "
                f"{self.capacity_sectors} sectors"
            )

"""Counter-mode encryption with the Salus spatio-temporal IV.

Counter-mode encryption (paper Section II-A1, Figure 1) never feeds data
through the block cipher. Instead a unique initialization vector - the
concatenation of a *spatial* component and a *temporal* component - is
encrypted to produce a one-time pad (OTP), and the pad is XORed with the
plaintext. Security rests entirely on never reusing an IV under the same
key.

Salus's key insight lives in the spatial component: it is always the
**CXL (home) address** of the sector, never the transient device-memory
address. That is what lets ciphertext move between memories without
re-encryption, and it is also why reusing a *device* location for different
CXL pages is safe - the IVs still differ (paper, "Security Impact").

The temporal component is the (major, minor) split counter pair.
"""

from __future__ import annotations

import struct

from .aes import AES128


def make_iv(cxl_sector_addr: int, major: int, minor: int) -> bytes:
    """Pack the spatio-temporal IV for one 32 B sector into an AES block.

    Layout (16 bytes): 6-byte sector address, 6-byte major counter,
    2-byte minor counter, 2-byte block ordinal slot (filled by the cipher
    for each 16 B slice of the sector).
    """
    if cxl_sector_addr < 0 or major < 0 or minor < 0:
        raise ValueError("IV components must be non-negative")
    return struct.pack(
        ">QQ",
        (cxl_sector_addr & 0xFFFFFFFFFFFF) << 16 | (major >> 32) & 0xFFFF,
        (major & 0xFFFFFFFF) << 32 | (minor & 0xFFFF) << 16,
    )


class CounterModeCipher:
    """Encrypt/decrypt 32 B sectors with AES-128 counter mode.

    Encryption and decryption are the same operation (XOR with the OTP), so
    a single :meth:`crypt_sector` serves both directions, exactly like the
    hardware engine the paper models.
    """

    SECTOR_BYTES = 32

    def __init__(self, encryption_key: bytes) -> None:
        self._aes = AES128(encryption_key)

    def one_time_pad(self, cxl_sector_addr: int, major: int, minor: int) -> bytes:
        """Generate the 32 B OTP for a sector (two AES blocks).

        The pad depends only on (address, major, minor) so it can be
        pre-computed before the data arrives - the property that takes
        decryption off the read critical path.
        """
        iv = make_iv(cxl_sector_addr, major, minor)
        pad0 = self._aes.encrypt_block(iv[:-1] + bytes([0]))
        pad1 = self._aes.encrypt_block(iv[:-1] + bytes([1]))
        return pad0 + pad1

    def crypt_sector(
        self, data: bytes, cxl_sector_addr: int, major: int, minor: int
    ) -> bytes:
        """XOR a 32 B sector with its OTP (encrypts plaintext or decrypts
        ciphertext - counter mode is symmetric)."""
        if len(data) != self.SECTOR_BYTES:
            raise ValueError(f"sector must be {self.SECTOR_BYTES} bytes")
        pad = self.one_time_pad(cxl_sector_addr, major, minor)
        return bytes(d ^ p for d, p in zip(data, pad))

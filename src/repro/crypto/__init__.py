"""Functional cryptography substrate.

This package implements the actual cryptographic primitives the security
models are built on: AES-128 (pure Python, validated against the FIPS-197
test vectors), counter-mode one-time-pad generation with the Salus
spatio-temporal initialization vector, and truncated keyed MACs.

The *timing* simulator never touches real bytes - it only models engine
latency and occupancy - but the *functional* layer (tests, the
``confidential_migration`` example) uses these primitives to prove the
paper's security argument end to end: ciphertext migrates between memories
unchanged, tampering trips the MAC, replay trips the Merkle tree, and OTPs
never repeat because the permanent CXL address is the spatial IV component.
"""

from .aes import AES128
from .ctr_mode import CounterModeCipher, make_iv
from .keys import KeySet
from .mac import truncated_mac, verify_mac

__all__ = [
    "AES128",
    "CounterModeCipher",
    "KeySet",
    "make_iv",
    "truncated_mac",
    "verify_mac",
]

"""Truncated keyed MACs over sectors (paper Section II-A2).

The paper adopts Gueron's result that a 56-bit MAC per protected unit gives a
sufficient security level, which is exactly what leaves the spare 32 bits in
a MAC sector for embedding the collapsed major counter (Section IV-A2).

The MAC binds together the ciphertext, the permanent CXL address, and the
counter values used for encryption. Binding the counter is what links the
Merkle tree to the MACs - a fresh counter with a stale MAC (or vice versa)
fails verification (Section II-A3).
"""

from __future__ import annotations

import hashlib
import hmac
import struct


def truncated_mac(
    mac_key: bytes,
    ciphertext: bytes,
    cxl_sector_addr: int,
    major: int,
    minor: int,
    mac_bits: int = 56,
) -> int:
    """Compute a ``mac_bits``-bit MAC over (ciphertext, address, counters)."""
    if not 0 < mac_bits <= 64:
        raise ValueError("mac_bits must be in (0, 64]")
    message = ciphertext + struct.pack(
        ">QQQ", cxl_sector_addr, major, minor
    )
    digest = hmac.new(mac_key, message, hashlib.sha256).digest()
    (value,) = struct.unpack(">Q", digest[:8])
    return value >> (64 - mac_bits)


def verify_mac(
    mac_key: bytes,
    ciphertext: bytes,
    cxl_sector_addr: int,
    major: int,
    minor: int,
    expected: int,
    mac_bits: int = 56,
) -> bool:
    """Constant-shape recomputation check of a truncated MAC."""
    actual = truncated_mac(mac_key, ciphertext, cxl_sector_addr, major, minor, mac_bits)
    return hmac.compare_digest(
        actual.to_bytes(8, "big"), expected.to_bytes(8, "big")
    )
